//! Quickstart: simulate a kernel in full detail, then with Photon, and
//! compare the paper's two metrics (simulated kernel time error and
//! wall-clock speedup).
//!
//! Run with: `cargo run --release --example quickstart`

use gpu_sim::{GpuConfig, GpuSimulator, NullController};
use gpu_workloads::registry::Benchmark;
use photon::{PhotonConfig, PhotonController};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A quarter-scale R9 Nano (Table 1 parameters, 16 CUs) keeps the
    // full-detailed baseline quick for a demo.
    let config = GpuConfig::r9_nano().with_num_cus(16);

    // ReLU over 16K warps (1M threads) — the paper's prototypical
    // small-kernel workload.
    let warps = 16_384;

    // --- full detailed simulation (the accuracy baseline) ------------
    let mut gpu = GpuSimulator::new(config.clone());
    let app = Benchmark::Relu.build(&mut gpu, warps, 42);
    let t0 = Instant::now();
    let full = app.run(&mut gpu, &mut NullController)?;
    let full_wall = t0.elapsed();

    // --- Photon sampled simulation ------------------------------------
    let mut gpu = GpuSimulator::new(config.clone());
    let app = Benchmark::Relu.build(&mut gpu, warps, 42);
    let photon_cfg = PhotonConfig {
        warp_window: 512, // scaled with the problem size
        ..PhotonConfig::default()
    };
    let mut photon = PhotonController::new(photon_cfg, config.num_cus as u64);
    let t1 = Instant::now();
    let sampled = app.run(&mut gpu, &mut photon)?;
    let sampled_wall = t1.elapsed();

    let error = (full.total_cycles() as f64 - sampled.total_cycles() as f64).abs()
        / full.total_cycles() as f64;
    println!(
        "full detailed : {} cycles in {:?}",
        full.total_cycles(),
        full_wall
    );
    println!(
        "photon        : {} cycles in {:?}",
        sampled.total_cycles(),
        sampled_wall
    );
    println!(
        "sampling error: {:.2}%   wall-clock speedup: {:.2}x",
        100.0 * error,
        full_wall.as_secs_f64() / sampled_wall.as_secs_f64()
    );
    println!("photon stats  : {:?}", photon.stats());
    Ok(())
}

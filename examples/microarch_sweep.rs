//! The §6.3 "Online/Offline Tradeoff" use case: a hardware researcher
//! sweeping a micro-architecture parameter. The analysis Photon
//! produces online (warp types, block distributions, GPU BBVs) is
//! micro-architecture *agnostic*, so it is computed once and reused
//! across every configuration of the sweep — only the timing changes.
//!
//! Run with: `cargo run --release --example microarch_sweep`

use gpu_sim::{GpuConfig, GpuSimulator};
use gpu_workloads::registry::Benchmark;
use photon::{OfflineData, PhotonConfig, PhotonController};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let warps = 8192;
    let base = GpuConfig::r9_nano().with_num_cus(16);
    let pcfg = PhotonConfig {
        warp_window: 512,
        ..PhotonConfig::default()
    };

    // Pass 1: baseline configuration with online analysis; export it.
    let mut gpu = GpuSimulator::new(base.clone());
    let app = Benchmark::Sc.build(&mut gpu, warps, 7);
    let mut online = PhotonController::new(pcfg.clone(), base.num_cus as u64);
    let t = Instant::now();
    let baseline = app.run(&mut gpu, &mut online)?;
    println!(
        "baseline L2 {:>4} KB/bank: {:>8} cycles  ({:.2?}, online analysis)",
        base.mem.l2.size_bytes / 1024,
        baseline.total_cycles(),
        t.elapsed()
    );
    let analyses = OfflineData::new(online.export_analyses().to_vec());

    // Passes 2..n: sweep the per-bank L2 capacity, reusing the analyses.
    for l2_kb in [64u64, 512, 1024] {
        let mut cfg = base.clone();
        cfg.mem.l2.size_bytes = l2_kb * 1024;
        let mut gpu = GpuSimulator::new(cfg.clone());
        let app = Benchmark::Sc.build(&mut gpu, warps, 7);
        let mut ctrl = PhotonController::with_offline(
            pcfg.clone(),
            cfg.num_cus as u64,
            analyses.analyses.clone(),
        );
        let t = Instant::now();
        let result = app.run(&mut gpu, &mut ctrl)?;
        println!(
            "swept    L2 {:>4} KB/bank: {:>8} cycles  ({:.2?}, offline reuse; {} functional insts)",
            l2_kb,
            result.total_cycles(),
            t.elapsed(),
            result.total_functional_insts()
        );
    }
    println!("(larger L2 => fewer DRAM trips => fewer cycles, measured under sampling)");
    Ok(())
}

//! Real-world workload: one ResNet-18 inference (batch size 1), full
//! detailed vs Photon — the paper's headline use case, where
//! kernel-sampling skips the repeated layers of deep networks.
//!
//! Run with: `cargo run --release --example dnn_inference`

use gpu_sim::{GpuConfig, GpuSimulator, NullController};
use gpu_workloads::dnn::{resnet, DnnScale, ResNetDepth};
use photon::{PhotonConfig, PhotonController};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = GpuConfig::r9_nano().with_num_cus(16);
    // 64x64 input, channels at 1/4 of the published widths (see
    // DESIGN.md's substitution table).
    let scale = DnnScale {
        input_hw: 64,
        channel_div: 4,
    };

    let mut gpu = GpuSimulator::new(config.clone());
    let app = resnet(&mut gpu, ResNetDepth::R18, scale, 1);
    println!(
        "{}: {} kernel launches, {} warps total",
        app.name(),
        app.launches().len(),
        app.total_warps()
    );

    let t0 = Instant::now();
    let full = app.run(&mut gpu, &mut NullController)?;
    let full_wall = t0.elapsed();

    let mut gpu = GpuSimulator::new(config.clone());
    let app = resnet(&mut gpu, ResNetDepth::R18, scale, 1);
    let mut photon = PhotonController::new(PhotonConfig::default(), config.num_cus as u64);
    let t1 = Instant::now();
    let sampled = app.run(&mut gpu, &mut photon)?;
    let photon_wall = t1.elapsed();

    let error = (full.total_cycles() as f64 - sampled.total_cycles() as f64).abs()
        / full.total_cycles() as f64;
    println!(
        "full detailed : {:>12} cycles  {:?}",
        full.total_cycles(),
        full_wall
    );
    println!(
        "photon        : {:>12} cycles  {:?}  ({} of {} kernels skipped)",
        sampled.total_cycles(),
        photon_wall,
        sampled.skipped_kernels(),
        sampled.kernels.len()
    );
    println!(
        "error {:.1}%, wall speedup {:.2}x",
        100.0 * error,
        full_wall.as_secs_f64() / photon_wall.as_secs_f64()
    );
    Ok(())
}

//! Writing your own GPU kernel against the `gpu-isa` builder and
//! simulating it: a SAXPY (`y = a*x + y`) with divergence (odd lanes
//! only), showing the EXEC-mask idioms, functional correctness checks,
//! and the basic-block structure Photon analyzes.
//!
//! Run with: `cargo run --release --example custom_kernel`

use gpu_isa::{CmpOp, Kernel, KernelBuilder, KernelLaunch, MemWidth, VAluOp, VectorSrc};
use gpu_sim::{GpuConfig, GpuSimulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- build the kernel ---------------------------------------------
    let mut kb = KernelBuilder::new("saxpy_odd_lanes");
    let s_x = kb.sreg();
    let s_y = kb.sreg();
    kb.load_arg(s_x, 0);
    kb.load_arg(s_y, 1);
    let v_tid = kb.vreg();
    kb.global_thread_id(v_tid);
    let v_off = kb.vreg();
    kb.valu(VAluOp::Shl, v_off, VectorSrc::Reg(v_tid), VectorSrc::Imm(2));

    // only odd threads update: tid & 1 == 1
    let v_bit = kb.vreg();
    kb.valu(VAluOp::And, v_bit, VectorSrc::Reg(v_tid), VectorSrc::Imm(1));
    kb.vcmp(CmpOp::Eq, VectorSrc::Reg(v_bit), VectorSrc::Imm(1), false);
    kb.if_vcc(|kb| {
        let v_x = kb.vreg();
        let v_y = kb.vreg();
        kb.global_load(v_x, s_x, v_off, 0, MemWidth::B32);
        kb.global_load(v_y, s_y, v_off, 0, MemWidth::B32);
        // y = 2.5 * x + y
        kb.vfma(
            v_y,
            VectorSrc::Reg(v_x),
            VectorSrc::ImmF32(2.5),
            VectorSrc::Reg(v_y),
        );
        kb.global_store(v_y, s_y, v_off, 0, MemWidth::B32);
    });
    let program = kb.finish()?;

    println!("disassembly:\n{program}");
    println!("Photon basic blocks: {:?}", program.basic_blocks().blocks());

    // --- run it ---------------------------------------------------------
    let mut gpu = GpuSimulator::new(GpuConfig::tiny());
    let n = 4 * 64u64; // 4 warps
    let x = gpu.alloc_buffer(n * 4)?;
    let y = gpu.alloc_buffer(n * 4)?;
    for i in 0..n {
        gpu.mem_mut().write_f32(x + 4 * i, i as f32);
        gpu.mem_mut().write_f32(y + 4 * i, 1.0);
    }
    let launch = KernelLaunch::new(Kernel::new(program), 1, 4, vec![x, y]);
    let result = gpu.run_kernel(&launch)?;
    println!(
        "simulated {} cycles, {} instructions",
        result.cycles, result.detailed_insts
    );

    // --- verify ----------------------------------------------------------
    for i in [0u64, 1, 2, 3, 100, 101] {
        let expect = if i % 2 == 1 {
            2.5 * i as f32 + 1.0
        } else {
            1.0
        };
        let got = gpu.mem().read_f32(y + 4 * i);
        assert_eq!(got, expect, "element {i}");
        println!("y[{i}] = {got}");
    }
    println!("functional check passed");
    Ok(())
}

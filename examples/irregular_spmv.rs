//! Irregular workloads: SpMV has data-dependent loop trip counts and
//! no dominant warp type, so warp-sampling never engages — only
//! basic-block-sampling applies (§4.2, §6.1). This example shows the
//! warp-type distribution and which Photon level fires.
//!
//! Run with: `cargo run --release --example irregular_spmv`

use gpu_sim::{GpuConfig, GpuSimulator, NullController};
use gpu_workloads::spmv::{build_with_matrix, CsrMatrix};
use photon::{sample_warp_ids, OnlineAnalysis, PhotonConfig, PhotonController};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = GpuConfig::r9_nano().with_num_cus(16);
    let matrix = CsrMatrix::random(64 * 1024, 16, 9);
    println!(
        "CSR matrix: {} rows, {} non-zeros (skewed row lengths)",
        matrix.n,
        matrix.nnz()
    );

    // Online analysis view: how many warp types does a 1% sample see?
    let mut gpu = GpuSimulator::new(config.clone());
    let app = build_with_matrix(&mut gpu, &matrix, 9);
    let launch = &app.launches()[0].launch;
    let ids = sample_warp_ids(launch.total_warps(), 0.01, 8);
    let traces: Vec<_> = ids
        .iter()
        .map(|&w| {
            gpu_sim::trace_warp_isolated(launch, gpu.mem(), w, 100_000_000)
                .expect("spmv traces cleanly")
        })
        .collect();
    let analysis = OnlineAnalysis::from_traces(&traces, launch.kernel.program().basic_blocks())
        .expect("sample is non-empty");
    println!(
        "1% sample: {} warps, {} distinct warp types, dominant type {:.1}% (warp-sampling gate needs 95%)",
        analysis.sampled_warps,
        analysis.types.len(),
        100.0 * analysis.dominant_fraction
    );

    // Full detailed vs Photon.
    let t0 = Instant::now();
    let full = app.run(&mut gpu, &mut NullController)?;
    let full_wall = t0.elapsed();

    let mut gpu = GpuSimulator::new(config.clone());
    let app = build_with_matrix(&mut gpu, &matrix, 9);
    let mut photon = PhotonController::new(PhotonConfig::default(), config.num_cus as u64);
    let t1 = Instant::now();
    let sampled = app.run(&mut gpu, &mut photon)?;
    let wall = t1.elapsed();

    let stats = photon.stats();
    println!(
        "photon: bb-sampling switches {}, warp-sampling switches {} (irregular => warp level never fires)",
        stats.bb_switches, stats.warp_switches
    );
    let error = (full.total_cycles() as f64 - sampled.total_cycles() as f64).abs()
        / full.total_cycles() as f64;
    println!(
        "full {} cycles ({:?}) vs photon {} cycles ({:?}): err {:.1}%, speedup {:.2}x",
        full.total_cycles(),
        full_wall,
        sampled.total_cycles(),
        wall,
        100.0 * error,
        full_wall.as_secs_f64() / wall.as_secs_f64()
    );
    Ok(())
}

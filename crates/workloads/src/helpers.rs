//! Shared kernel-construction helpers.

use gpu_isa::{CmpOp, KernelBuilder, Sreg, VAluOp, VectorSrc, Vreg};
use gpu_sim::GpuSimulator;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The deterministic RNG used by all workload data generators.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Allocates a device buffer of `n` random `f32` in `[lo, hi)`.
///
/// # Panics
/// Panics if allocation fails (workload setup is infallible by sizing).
pub fn alloc_f32(gpu: &mut GpuSimulator, n: u64, lo: f32, hi: f32, rng: &mut StdRng) -> u64 {
    let buf = gpu.alloc_buffer(n * 4).expect("device allocation");
    for i in 0..n {
        let v = lo + (hi - lo) * rng.gen::<f32>();
        gpu.mem_mut().write_f32(buf + 4 * i, v);
    }
    buf
}

/// Allocates a device buffer of `n` zero `f32`s.
///
/// # Panics
/// Panics if allocation fails.
pub fn alloc_zeroed(gpu: &mut GpuSimulator, bytes: u64) -> u64 {
    gpu.alloc_buffer(bytes).expect("device allocation")
}

/// Allocates and fills a `u32` device buffer.
///
/// # Panics
/// Panics if allocation fails.
pub fn alloc_u32_slice(gpu: &mut GpuSimulator, values: &[u32]) -> u64 {
    let buf = gpu
        .alloc_buffer(values.len() as u64 * 4)
        .expect("device allocation");
    gpu.mem_mut().write_u32_slice(buf, values);
    buf
}

/// Emits the flat thread id into a fresh vreg and its byte offset
/// (`tid * 4`) into another; returns `(v_tid, v_off)`.
pub fn tid_and_offset(kb: &mut KernelBuilder) -> (Vreg, Vreg) {
    let v_tid = kb.vreg();
    kb.global_thread_id(v_tid);
    let v_off = kb.vreg();
    kb.valu(VAluOp::Shl, v_off, VectorSrc::Reg(v_tid), VectorSrc::Imm(2));
    (v_tid, v_off)
}

/// Wraps `body` in a bounds guard: only lanes with `tid < s_n` run it.
pub fn guard_tid(
    kb: &mut KernelBuilder,
    v_tid: Vreg,
    s_n: Sreg,
    body: impl FnOnce(&mut KernelBuilder),
) {
    kb.vcmp(
        CmpOp::Lt,
        VectorSrc::Reg(v_tid),
        VectorSrc::Sreg(s_n),
        false,
    );
    kb.if_vcc(body);
}

/// Number of workgroups needed to cover `warps` warps at `warps_per_wg`.
pub fn wg_count(warps: u64, warps_per_wg: u32) -> u32 {
    warps.div_ceil(warps_per_wg as u64) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::GpuConfig;

    #[test]
    fn rng_is_deterministic() {
        let a: u32 = rng(7).gen();
        let b: u32 = rng(7).gen();
        assert_eq!(a, b);
    }

    #[test]
    fn alloc_f32_in_range() {
        let mut gpu = GpuSimulator::new(GpuConfig::tiny());
        let mut r = rng(1);
        let buf = alloc_f32(&mut gpu, 100, -1.0, 1.0, &mut r);
        for i in 0..100 {
            let v = gpu.mem().read_f32(buf + 4 * i);
            assert!((-1.0..1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn wg_count_rounds_up() {
        assert_eq!(wg_count(8, 4), 2);
        assert_eq!(wg_count(9, 4), 3);
        assert_eq!(wg_count(1, 4), 1);
    }
}

//! Matrix Multiplication (AMD APP SDK): LDS-tiled `C = A × B`.
//!
//! The paper's flagship *complex kernel*: 16×16 LDS tiles, `s_barrier`
//! synchronization between tile phases, and a long uniform loop over
//! the K dimension. The barriers make basic blocks end at
//! synchronization points (§3 Obs 3) and the inter-warp competition
//! produces the fluctuating IPC of Figure 1b.

use crate::app::App;
use crate::helpers::{alloc_f32, alloc_zeroed, rng};
use gpu_isa::{
    Kernel, KernelBuilder, KernelLaunch, MemWidth, SAluOp, ScalarSrc, SpecialReg, VAluOp, VectorSrc,
};
use gpu_sim::GpuSimulator;

/// Tile side: 16×16 threads per workgroup (4 warps).
pub const TILE: u64 = 16;

/// LDS bytes: two 16×16 f32 tiles.
const LDS_BYTES: u32 = 2 * (TILE * TILE) as u32 * 4;
const B_TILE_BASE: i32 = (TILE * TILE) as i32 * 4;

fn mm_kernel() -> Kernel {
    let mut kb = KernelBuilder::new("matrix_multiplication");
    let s_a = kb.sreg();
    let s_b = kb.sreg();
    let s_c = kb.sreg();
    let s_n = kb.sreg(); // square matrices N×N
    kb.load_arg(s_a, 0);
    kb.load_arg(s_b, 1);
    kb.load_arg(s_c, 2);
    kb.load_arg(s_n, 3);

    // tiles per row of the matrix
    let s_tiles = kb.sreg();
    kb.salu(SAluOp::Div, s_tiles, s_n, TILE as i64);
    // (tile_y, tile_x) from the flat workgroup id
    let s_wg = kb.sreg();
    kb.special(s_wg, SpecialReg::WgId);
    let s_ty = kb.sreg();
    let s_tx = kb.sreg();
    kb.salu(SAluOp::Div, s_ty, s_wg, ScalarSrc::Reg(s_tiles));
    kb.salu(SAluOp::Rem, s_tx, s_wg, ScalarSrc::Reg(s_tiles));

    // thread index within the workgroup: t = warp_in_wg * 64 + lane
    let s_wiw = kb.sreg();
    kb.special(s_wiw, SpecialReg::WarpInWg);
    let s_wiw64 = kb.sreg();
    kb.salu(SAluOp::Mul, s_wiw64, s_wiw, 64i64);
    let v_t = kb.vreg();
    kb.valu(
        VAluOp::Add,
        v_t,
        VectorSrc::Sreg(s_wiw64),
        VectorSrc::LaneId,
    );
    // ty = t / 16, tx = t % 16
    let v_ty = kb.vreg();
    let v_tx = kb.vreg();
    kb.valu(VAluOp::Shr, v_ty, VectorSrc::Reg(v_t), VectorSrc::Imm(4));
    kb.valu(VAluOp::And, v_tx, VectorSrc::Reg(v_t), VectorSrc::Imm(15));

    // row = tile_y*16 + ty; col = tile_x*16 + tx
    let s_ty16 = kb.sreg();
    let s_tx16 = kb.sreg();
    kb.salu(SAluOp::Mul, s_ty16, s_ty, TILE as i64);
    kb.salu(SAluOp::Mul, s_tx16, s_tx, TILE as i64);
    let v_row = kb.vreg();
    let v_col = kb.vreg();
    kb.valu(
        VAluOp::Add,
        v_row,
        VectorSrc::Sreg(s_ty16),
        VectorSrc::Reg(v_ty),
    );
    kb.valu(
        VAluOp::Add,
        v_col,
        VectorSrc::Sreg(s_tx16),
        VectorSrc::Reg(v_tx),
    );

    // LDS addresses for this thread's slot: t*4 (A) and B_TILE_BASE + t*4 (B)
    let v_lds = kb.vreg();
    kb.valu(VAluOp::Shl, v_lds, VectorSrc::Reg(v_t), VectorSrc::Imm(2));

    let v_acc = kb.vreg();
    kb.vmov(v_acc, VectorSrc::ImmF32(0.0));

    // row * N (element index of the row start), reused in the loop
    let v_row_n = kb.vreg();
    kb.valu(
        VAluOp::Mul,
        v_row_n,
        VectorSrc::Reg(v_row),
        VectorSrc::Sreg(s_n),
    );

    let s_k0 = kb.sreg();
    let s_k0x16 = kb.sreg();
    let v_aoff = kb.vreg();
    let v_boff = kb.vreg();
    let v_aval = kb.vreg();
    let v_bval = kb.vreg();
    let v_arow = kb.vreg();
    let v_brow = kb.vreg();
    let s_kk = kb.sreg();
    let s_kk4 = kb.sreg();
    let v_aaddr = kb.vreg();
    let v_baddr = kb.vreg();
    let v_a = kb.vreg();
    let v_b = kb.vreg();
    let v_ty64 = kb.vreg();
    kb.valu(VAluOp::Shl, v_ty64, VectorSrc::Reg(v_ty), VectorSrc::Imm(6));
    let v_tx4 = kb.vreg();
    kb.valu(VAluOp::Shl, v_tx4, VectorSrc::Reg(v_tx), VectorSrc::Imm(2));

    kb.for_uniform(s_k0, 0i64, ScalarSrc::Reg(s_tiles), |kb| {
        kb.salu(SAluOp::Mul, s_k0x16, s_k0, TILE as i64);
        // A[row, k0*16 + tx] -> lds[t]
        kb.valu(
            VAluOp::Add,
            v_aoff,
            VectorSrc::Reg(v_row_n),
            VectorSrc::Sreg(s_k0x16),
        );
        kb.valu(
            VAluOp::Add,
            v_aoff,
            VectorSrc::Reg(v_aoff),
            VectorSrc::Reg(v_tx),
        );
        kb.valu(
            VAluOp::Shl,
            v_aoff,
            VectorSrc::Reg(v_aoff),
            VectorSrc::Imm(2),
        );
        kb.global_load(v_aval, s_a, v_aoff, 0, MemWidth::B32);
        kb.lds_store(v_aval, v_lds, 0);
        // B[k0*16 + ty, col] -> lds[B_TILE + t]
        kb.valu(
            VAluOp::Add,
            v_arow,
            VectorSrc::Sreg(s_k0x16),
            VectorSrc::Reg(v_ty),
        );
        kb.valu(
            VAluOp::Mul,
            v_brow,
            VectorSrc::Reg(v_arow),
            VectorSrc::Sreg(s_n),
        );
        kb.valu(
            VAluOp::Add,
            v_boff,
            VectorSrc::Reg(v_brow),
            VectorSrc::Reg(v_col),
        );
        kb.valu(
            VAluOp::Shl,
            v_boff,
            VectorSrc::Reg(v_boff),
            VectorSrc::Imm(2),
        );
        kb.global_load(v_bval, s_b, v_boff, 0, MemWidth::B32);
        kb.lds_store(v_bval, v_lds, B_TILE_BASE);
        kb.barrier();
        // accumulate over the tile
        kb.for_uniform(s_kk, 0i64, TILE as i64, |kb| {
            kb.salu(SAluOp::Shl, s_kk4, s_kk, 2i64);
            // a = ldsA[ty*16 + kk] at byte ty*64 + kk*4
            kb.valu(
                VAluOp::Add,
                v_aaddr,
                VectorSrc::Reg(v_ty64),
                VectorSrc::Sreg(s_kk4),
            );
            kb.lds_load(v_a, v_aaddr, 0);
            // b = ldsB[kk*16 + tx] at byte kk*64 + tx*4
            kb.salu(SAluOp::Shl, s_kk4, s_kk, 6i64);
            kb.valu(
                VAluOp::Add,
                v_baddr,
                VectorSrc::Reg(v_tx4),
                VectorSrc::Sreg(s_kk4),
            );
            kb.lds_load(v_b, v_baddr, B_TILE_BASE);
            kb.vfma(
                v_acc,
                VectorSrc::Reg(v_a),
                VectorSrc::Reg(v_b),
                VectorSrc::Reg(v_acc),
            );
        });
        kb.barrier();
    });

    // C[row*N + col] = acc
    let v_coff = kb.vreg();
    kb.valu(
        VAluOp::Add,
        v_coff,
        VectorSrc::Reg(v_row_n),
        VectorSrc::Reg(v_col),
    );
    kb.valu(
        VAluOp::Shl,
        v_coff,
        VectorSrc::Reg(v_coff),
        VectorSrc::Imm(2),
    );
    kb.global_store(v_acc, s_c, v_coff, 0, MemWidth::B32);
    Kernel::new(kb.finish().expect("mm kernel is well-formed"))
}

/// Builds an `n × n` matrix multiplication (`n` must be a multiple of
/// 16). The launch has `(n/16)² · 4` warps.
///
/// # Panics
/// Panics if `n` is not a positive multiple of 16.
pub fn build(gpu: &mut GpuSimulator, n: u64, seed: u64) -> App {
    assert!(
        n > 0 && n.is_multiple_of(TILE),
        "matrix side must be a multiple of 16"
    );
    let mut r = rng(seed);
    let a = alloc_f32(gpu, n * n, -1.0, 1.0, &mut r);
    let b = alloc_f32(gpu, n * n, -1.0, 1.0, &mut r);
    let c = alloc_zeroed(gpu, n * n * 4);
    let tiles = n / TILE;
    let launch = KernelLaunch::new(mm_kernel(), (tiles * tiles) as u32, 4, vec![a, b, c, n])
        .with_lds(LDS_BYTES);
    App::single("MM", launch)
}

/// Builds MM sized to approximately `num_warps` warps.
pub fn build_warps(gpu: &mut GpuSimulator, num_warps: u64, seed: u64) -> App {
    // warps = (n/16)^2 * 4 → n = 16 * sqrt(warps / 4)
    let tiles = ((num_warps as f64 / 4.0).sqrt().round() as u64).max(1);
    build(gpu, tiles * TILE, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{GpuConfig, NullController};

    #[test]
    fn mm_matches_host_reference() {
        let mut gpu = GpuSimulator::new(GpuConfig::tiny());
        let n = 32u64;
        let app = build(&mut gpu, n, 11);
        app.run(&mut gpu, &mut NullController).unwrap();
        let launch = &app.launches()[0].launch;
        let (ab, bb, cb) = (launch.args[0], launch.args[1], launch.args[2]);
        let a = gpu.mem().read_f32_vec(ab, (n * n) as usize);
        let b = gpu.mem().read_f32_vec(bb, (n * n) as usize);
        for &(row, col) in &[(0usize, 0usize), (1, 7), (31, 31), (16, 5)] {
            let mut expect = 0.0f32;
            for k in 0..n as usize {
                expect = a[row * n as usize + k].mul_add(b[k * n as usize + col], expect);
            }
            let got = gpu.mem().read_f32(cb + 4 * (row as u64 * n + col as u64));
            assert!(
                (got - expect).abs() < 1e-2 * expect.abs().max(1.0),
                "C[{row},{col}] = {got}, expected {expect}"
            );
        }
    }

    #[test]
    fn kernel_uses_lds_and_barriers() {
        let k = mm_kernel();
        let has_barrier = k
            .program()
            .insts()
            .iter()
            .any(|i| matches!(i, gpu_isa::Inst::SBarrier));
        let has_lds = k
            .program()
            .insts()
            .iter()
            .any(|i| matches!(i, gpu_isa::Inst::LdsLoad { .. }));
        assert!(has_barrier && has_lds);
    }

    #[test]
    #[should_panic(expected = "multiple of 16")]
    fn non_multiple_panics() {
        let mut gpu = GpuSimulator::new(GpuConfig::tiny());
        let _ = build(&mut gpu, 17, 0);
    }

    #[test]
    fn build_warps_rounds_to_tiles() {
        let mut gpu = GpuSimulator::new(GpuConfig::tiny());
        let app = build_warps(&mut gpu, 100, 0);
        // 5x5 tiles * 4 warps = 100
        assert_eq!(app.total_warps(), 100);
    }
}

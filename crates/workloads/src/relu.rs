//! ReLU (DNNMark): `y[i] = max(0, x[i])`.
//!
//! The paper's prototypical *small kernel* workload: a huge number of
//! warps, each executing a handful of instructions over very few basic
//! blocks — the case where basic-block-sampling carries Photon
//! (§6.2, Fig. 15).

use crate::app::App;
use crate::helpers::{alloc_f32, alloc_zeroed, guard_tid, rng, tid_and_offset, wg_count};
use gpu_isa::{Kernel, KernelBuilder, KernelLaunch, MemWidth, VAluOp, VectorSrc};
use gpu_sim::GpuSimulator;

/// Builds the ReLU kernel program (exposed for reuse by the DNN
/// lowering).
pub fn relu_kernel() -> Kernel {
    let mut kb = KernelBuilder::new("relu");
    let s_x = kb.sreg();
    let s_y = kb.sreg();
    let s_n = kb.sreg();
    kb.load_arg(s_x, 0);
    kb.load_arg(s_y, 1);
    kb.load_arg(s_n, 2);
    let (v_tid, v_off) = tid_and_offset(&mut kb);
    guard_tid(&mut kb, v_tid, s_n, |kb| {
        let v = kb.vreg();
        kb.global_load(v, s_x, v_off, 0, MemWidth::B32);
        kb.valu(VAluOp::FMax, v, VectorSrc::Reg(v), VectorSrc::ImmF32(0.0));
        kb.global_store(v, s_y, v_off, 0, MemWidth::B32);
    });
    Kernel::new(kb.finish().expect("relu kernel is well-formed"))
}

/// Builds a ReLU application over `num_warps` warps (the paper's
/// problem-size axis) with random inputs.
pub fn build(gpu: &mut GpuSimulator, num_warps: u64, seed: u64) -> App {
    let n = num_warps * 64;
    let mut r = rng(seed);
    let x = alloc_f32(gpu, n, -1.0, 1.0, &mut r);
    let y = alloc_zeroed(gpu, n * 4);
    let warps_per_wg = 4;
    let launch = KernelLaunch::new(
        relu_kernel(),
        wg_count(num_warps, warps_per_wg),
        warps_per_wg,
        vec![x, y, n],
    );
    App::single("ReLU", launch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{GpuConfig, NullController};

    #[test]
    fn relu_clamps_negatives() {
        let mut gpu = GpuSimulator::new(GpuConfig::tiny());
        let app = build(&mut gpu, 8, 42);
        app.run(&mut gpu, &mut NullController).unwrap();
        let launch = &app.launches()[0].launch;
        let (x, y, n) = (launch.args[0], launch.args[1], launch.args[2]);
        for i in 0..n {
            let xi = gpu.mem().read_f32(x + 4 * i);
            let yi = gpu.mem().read_f32(y + 4 * i);
            assert_eq!(yi, xi.max(0.0), "elem {i}");
        }
    }

    #[test]
    fn kernel_has_few_basic_blocks() {
        // the paper calls out ReLU's tiny block count
        let k = relu_kernel();
        assert!(k.program().basic_blocks().len() <= 4);
    }
}

//! Deep-learning workloads: VGG-16/19 and ResNet-18/34/50/101/152
//! inference (batch size 1), lowered to GPU kernel launches.

mod builder;
mod kernels;
mod models;

pub use builder::{Checkpoint, NetBuilder, Shape};
pub use kernels::{add_kernel, conv_kernel, dense_kernel, gap_kernel, maxpool_kernel, pad_kernel};
pub use models::{resnet, vgg, DnnScale, ResNetDepth, VggVariant};

//! Sequential network builder: lowers layers to kernel launches.

use super::kernels;
use crate::app::{App, LabeledLaunch};
use crate::helpers::{alloc_f32, rng, wg_count};
use gpu_isa::{Kernel, KernelLaunch};
use gpu_sim::GpuSimulator;
use rand::rngs::StdRng;

/// CHW activation shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shape {
    /// Channels.
    pub c: u32,
    /// Height.
    pub h: u32,
    /// Width.
    pub w: u32,
}

impl Shape {
    /// Total elements.
    pub fn len(&self) -> u64 {
        self.c as u64 * self.h as u64 * self.w as u64
    }

    /// Whether the shape is degenerate.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Output spatial dims of a windowed op, or `None` if the window
/// exceeds the padded input.
fn out_dims(shape: Shape, k: u32, stride: u32, pad: u32) -> Option<(u32, u32)> {
    let oh = (shape.h + 2 * pad).checked_sub(k)? / stride + 1;
    let ow = (shape.w + 2 * pad).checked_sub(k)? / stride + 1;
    Some((oh, ow))
}

/// A saved activation (buffer + shape) for residual connections.
#[derive(Debug, Clone, Copy)]
pub struct Checkpoint {
    /// Device buffer of the activation.
    pub buf: u64,
    /// Its shape.
    pub shape: Shape,
}

/// Builds a DNN inference as a sequence of kernel launches.
#[derive(Debug)]
pub struct NetBuilder<'a> {
    gpu: &'a mut GpuSimulator,
    launches: Vec<LabeledLaunch>,
    cur: u64,
    shape: Shape,
    rng: StdRng,
    warps_per_wg: u32,
    k_pad: Kernel,
    k_conv: Kernel,
    k_pool: Kernel,
    k_dense: Kernel,
    k_add: Kernel,
    k_gap: Kernel,
}

impl<'a> NetBuilder<'a> {
    /// Starts a network with a random input activation of `input` shape.
    pub fn new(gpu: &'a mut GpuSimulator, input: Shape, seed: u64) -> Self {
        let mut r = rng(seed);
        let cur = alloc_f32(gpu, input.len(), -1.0, 1.0, &mut r);
        NetBuilder {
            gpu,
            launches: Vec::new(),
            cur,
            shape: input,
            rng: r,
            warps_per_wg: 4,
            k_pad: kernels::pad_kernel(),
            k_conv: kernels::conv_kernel(),
            k_pool: kernels::maxpool_kernel(),
            k_dense: kernels::dense_kernel(),
            k_add: kernels::add_kernel(),
            k_gap: kernels::gap_kernel(),
        }
    }

    /// Current activation shape.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Saves the current activation for a later residual add.
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            buf: self.cur,
            shape: self.shape,
        }
    }

    /// Rewinds the head to a previous checkpoint (the buffers persist,
    /// so a side branch can be built from there).
    pub fn rewind(&mut self, cp: Checkpoint) {
        self.cur = cp.buf;
        self.shape = cp.shape;
    }

    fn alloc(&mut self, elems: u64) -> u64 {
        self.gpu
            .alloc_buffer(elems.max(1) * 4)
            .expect("device allocation")
    }

    fn launch(&mut self, layer: &str, kernel: Kernel, threads: u64, args: Vec<u64>) {
        let warps = threads.div_ceil(64).max(1);
        self.launches.push(LabeledLaunch {
            layer: layer.to_string(),
            launch: KernelLaunch::new(
                kernel,
                wg_count(warps, self.warps_per_wg),
                self.warps_per_wg,
                args,
            ),
        });
    }

    /// Emits the padded copy of the current activation; returns the
    /// padded buffer and padded dims.
    fn pad(&mut self, layer: &str, pad: u32) -> (u64, u32, u32) {
        let Shape { c, h, w } = self.shape;
        let (ph, pw) = (h + 2 * pad, w + 2 * pad);
        let padded = self.alloc(c as u64 * ph as u64 * pw as u64);
        let n = self.shape.len();
        let cur = self.cur;
        self.launch(
            layer,
            self.k_pad.clone(),
            n,
            vec![cur, padded, h as u64, w as u64, pad as u64, n],
        );
        (padded, ph, pw)
    }

    /// Convolution layer (optionally with fused ReLU).
    ///
    /// # Panics
    /// Panics if the output spatial size would be zero.
    pub fn conv(&mut self, layer: &str, out_c: u32, k: u32, stride: u32, pad: u32, relu: bool) {
        let in_shape = self.shape;
        let (oh, ow) = out_dims(in_shape, k, stride, pad)
            .unwrap_or_else(|| panic!("conv {layer}: window {k} exceeds padded input"));
        let (padded, ph, pw) = self.pad(layer, pad);
        let wcount = out_c as u64 * in_shape.c as u64 * (k * k) as u64;
        let weights = alloc_f32(self.gpu, wcount, -0.2, 0.2, &mut self.rng);
        let out_shape = Shape {
            c: out_c,
            h: oh,
            w: ow,
        };
        let out = self.alloc(out_shape.len());
        let n = out_shape.len();
        self.launch(
            layer,
            self.k_conv.clone(),
            n,
            vec![
                padded,
                weights,
                out,
                in_shape.c as u64,
                ph as u64,
                pw as u64,
                (oh * ow) as u64,
                ow as u64,
                k as u64,
                stride as u64,
                relu as u64,
                n,
            ],
        );
        self.cur = out;
        self.shape = out_shape;
    }

    /// Max-pooling layer.
    pub fn maxpool(&mut self, layer: &str, k: u32, stride: u32, pad: u32) {
        let in_shape = self.shape;
        let (oh, ow) = out_dims(in_shape, k, stride, pad)
            .unwrap_or_else(|| panic!("pool {layer}: window {k} exceeds padded input"));
        let (padded, ph, pw) = self.pad(layer, pad);
        let out_shape = Shape {
            c: in_shape.c,
            h: oh,
            w: ow,
        };
        let out = self.alloc(out_shape.len());
        let n = out_shape.len();
        self.launch(
            layer,
            self.k_pool.clone(),
            n,
            vec![
                padded,
                out,
                ph as u64,
                pw as u64,
                (oh * ow) as u64,
                ow as u64,
                k as u64,
                stride as u64,
                n,
            ],
        );
        self.cur = out;
        self.shape = out_shape;
    }

    /// Fully connected layer over the flattened activation.
    pub fn dense(&mut self, layer: &str, out_f: u32, relu: bool) {
        let in_f = self.shape.len();
        let weights = alloc_f32(self.gpu, out_f as u64 * in_f, -0.1, 0.1, &mut self.rng);
        let out = self.alloc(out_f as u64);
        let cur = self.cur;
        self.launch(
            layer,
            self.k_dense.clone(),
            out_f as u64,
            vec![cur, weights, out, in_f, relu as u64, out_f as u64],
        );
        self.cur = out;
        self.shape = Shape {
            c: out_f,
            h: 1,
            w: 1,
        };
    }

    /// Residual add of a checkpoint into the current activation.
    ///
    /// # Panics
    /// Panics if the shapes disagree.
    pub fn add_from(&mut self, layer: &str, skip: Checkpoint, relu: bool) {
        assert_eq!(
            skip.shape, self.shape,
            "residual shapes must match ({:?} vs {:?})",
            skip.shape, self.shape
        );
        let out = self.alloc(self.shape.len());
        let n = self.shape.len();
        let cur = self.cur;
        self.launch(
            layer,
            self.k_add.clone(),
            n,
            vec![cur, skip.buf, out, relu as u64, n],
        );
        self.cur = out;
    }

    /// Global average pooling to `(c, 1, 1)`.
    pub fn global_avg_pool(&mut self, layer: &str) {
        let Shape { c, h, w } = self.shape;
        let out = self.alloc(c as u64);
        let cur = self.cur;
        self.launch(
            layer,
            self.k_gap.clone(),
            c as u64,
            vec![cur, out, (h * w) as u64, c as u64],
        );
        self.cur = out;
        self.shape = Shape { c, h: 1, w: 1 };
    }

    /// Finishes the network.
    pub fn finish(self, name: impl Into<String>) -> App {
        App::new(name, self.launches)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{GpuConfig, NullController};

    #[test]
    fn tiny_net_runs_and_shapes_track() {
        let mut gpu = GpuSimulator::new(GpuConfig::tiny());
        let mut nb = NetBuilder::new(&mut gpu, Shape { c: 3, h: 8, w: 8 }, 1);
        nb.conv("c1", 4, 3, 1, 1, true);
        assert_eq!(nb.shape(), Shape { c: 4, h: 8, w: 8 });
        nb.maxpool("p1", 2, 2, 0);
        assert_eq!(nb.shape(), Shape { c: 4, h: 4, w: 4 });
        nb.global_avg_pool("gap");
        assert_eq!(nb.shape(), Shape { c: 4, h: 1, w: 1 });
        nb.dense("fc", 10, false);
        let app = nb.finish("tiny");
        app.run(&mut gpu, &mut NullController).unwrap();
        // fc output exists and is finite
        let out = app.launches().last().unwrap().launch.args[2];
        for i in 0..10 {
            assert!(gpu.mem().read_f32(out + 4 * i).is_finite());
        }
    }

    #[test]
    fn relu_fusion_clamps_conv_output() {
        let mut gpu = GpuSimulator::new(GpuConfig::tiny());
        let mut nb = NetBuilder::new(&mut gpu, Shape { c: 2, h: 4, w: 4 }, 2);
        nb.conv("c1", 2, 3, 1, 1, true);
        let out_buf = {
            let app_cp = nb.checkpoint();
            app_cp.buf
        };
        let n = nb.shape().len();
        let app = nb.finish("t");
        app.run(&mut gpu, &mut NullController).unwrap();
        for i in 0..n {
            assert!(gpu.mem().read_f32(out_buf + 4 * i) >= 0.0);
        }
    }

    #[test]
    fn residual_add_sums() {
        let mut gpu = GpuSimulator::new(GpuConfig::tiny());
        let mut nb = NetBuilder::new(&mut gpu, Shape { c: 2, h: 4, w: 4 }, 3);
        let input = nb.checkpoint();
        nb.conv("c1", 2, 3, 1, 1, false);
        nb.add_from("add", input, false);
        let final_buf = nb.checkpoint().buf;
        let app = nb.finish("t");
        app.run(&mut gpu, &mut NullController).unwrap();
        // out = conv_out + input elementwise: check one element
        let conv_out = app.launches()[1].launch.args[2];
        let got = gpu.mem().read_f32(final_buf);
        let expect = gpu.mem().read_f32(conv_out) + gpu.mem().read_f32(input.buf);
        assert!((got - expect).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "residual shapes must match")]
    fn mismatched_residual_panics() {
        let mut gpu = GpuSimulator::new(GpuConfig::tiny());
        let mut nb = NetBuilder::new(&mut gpu, Shape { c: 2, h: 4, w: 4 }, 3);
        let input = nb.checkpoint();
        nb.conv("c1", 4, 3, 1, 1, false);
        nb.add_from("add", input, false);
    }
}

//! The GPU kernels DNN layers lower to.
//!
//! One program per layer *type*; every layer instance launches the same
//! program with different argument dimensions, so layers of the same
//! shape produce identical GPU BBVs (what kernel-sampling matches, §4.3
//! and Fig. 6) while layers of different shape differ through their
//! loop trip counts.
//!
//! Convolution and pooling read from an explicitly *padded* input copy
//! (written by [`pad_kernel`]); this keeps the inner loops free of
//! boundary branches, like the im2col-style kernels real frameworks
//! launch.

use crate::helpers::{guard_tid, tid_and_offset};
use gpu_isa::{CmpOp, Kernel, KernelBuilder, MemWidth, SAluOp, ScalarSrc, VAluOp, VectorSrc};

/// Copies a CHW tensor into a zero-initialized padded CHW tensor.
///
/// args: `[in, out, h, w, pad, n]` where `n = c·h·w` threads.
pub fn pad_kernel() -> Kernel {
    let mut kb = KernelBuilder::new("pad_copy");
    let s_in = kb.sreg();
    let s_out = kb.sreg();
    let s_h = kb.sreg();
    let s_w = kb.sreg();
    let s_p = kb.sreg();
    let s_n = kb.sreg();
    kb.load_arg(s_in, 0);
    kb.load_arg(s_out, 1);
    kb.load_arg(s_h, 2);
    kb.load_arg(s_w, 3);
    kb.load_arg(s_p, 4);
    kb.load_arg(s_n, 5);
    let (v_tid, v_off) = tid_and_offset(&mut kb);
    guard_tid(&mut kb, v_tid, s_n, |kb| {
        // hw = h*w; ch = tid / hw; r = tid % hw; y = r / w; x = r % w
        let s_hw = kb.sreg();
        kb.salu(SAluOp::Mul, s_hw, s_h, ScalarSrc::Reg(s_w));
        let v_ch = kb.vreg();
        let v_r = kb.vreg();
        let v_y = kb.vreg();
        let v_x = kb.vreg();
        kb.valu(
            VAluOp::Div,
            v_ch,
            VectorSrc::Reg(v_tid),
            VectorSrc::Sreg(s_hw),
        );
        kb.valu(
            VAluOp::Rem,
            v_r,
            VectorSrc::Reg(v_tid),
            VectorSrc::Sreg(s_hw),
        );
        kb.valu(VAluOp::Div, v_y, VectorSrc::Reg(v_r), VectorSrc::Sreg(s_w));
        kb.valu(VAluOp::Rem, v_x, VectorSrc::Reg(v_r), VectorSrc::Sreg(s_w));
        // padded dims
        let s_pw = kb.sreg();
        let s_ph = kb.sreg();
        let s_p2 = kb.sreg();
        kb.salu(SAluOp::Shl, s_p2, s_p, 1i64);
        kb.salu(SAluOp::Add, s_pw, s_w, ScalarSrc::Reg(s_p2));
        kb.salu(SAluOp::Add, s_ph, s_h, ScalarSrc::Reg(s_p2));
        let s_phw = kb.sreg();
        kb.salu(SAluOp::Mul, s_phw, s_ph, ScalarSrc::Reg(s_pw));
        // dst = (ch*phw) + (y+p)*pw + (x+p)
        let v_dst = kb.vreg();
        kb.valu(
            VAluOp::Mul,
            v_dst,
            VectorSrc::Reg(v_ch),
            VectorSrc::Sreg(s_phw),
        );
        let v_t = kb.vreg();
        kb.valu(VAluOp::Add, v_t, VectorSrc::Reg(v_y), VectorSrc::Sreg(s_p));
        kb.valu(VAluOp::Mul, v_t, VectorSrc::Reg(v_t), VectorSrc::Sreg(s_pw));
        kb.valu(
            VAluOp::Add,
            v_dst,
            VectorSrc::Reg(v_dst),
            VectorSrc::Reg(v_t),
        );
        kb.valu(
            VAluOp::Add,
            v_dst,
            VectorSrc::Reg(v_dst),
            VectorSrc::Reg(v_x),
        );
        kb.valu(
            VAluOp::Add,
            v_dst,
            VectorSrc::Reg(v_dst),
            VectorSrc::Sreg(s_p),
        );
        kb.valu(VAluOp::Shl, v_dst, VectorSrc::Reg(v_dst), VectorSrc::Imm(2));
        let v = kb.vreg();
        kb.global_load(v, s_in, v_off, 0, MemWidth::B32);
        kb.global_store(v, s_out, v_dst, 0, MemWidth::B32);
    });
    Kernel::new(kb.finish().expect("pad kernel is well-formed"))
}

/// Direct convolution over a padded input.
///
/// args: `[in_padded, weights, out, in_c, ph, pw, ohw, ow, k, stride,
/// relu, n]` — `n = out_c·oh·ow` threads, `ohw = oh·ow`.
pub fn conv_kernel() -> Kernel {
    let mut kb = KernelBuilder::new("conv2d");
    let s_in = kb.sreg();
    let s_wt = kb.sreg();
    let s_out = kb.sreg();
    let s_inc = kb.sreg();
    let s_ph = kb.sreg();
    let s_pw = kb.sreg();
    let s_ohw = kb.sreg();
    let s_ow = kb.sreg();
    let s_k = kb.sreg();
    let s_stride = kb.sreg();
    let s_relu = kb.sreg();
    let s_n = kb.sreg();
    for (i, r) in [
        s_in, s_wt, s_out, s_inc, s_ph, s_pw, s_ohw, s_ow, s_k, s_stride, s_relu, s_n,
    ]
    .iter()
    .enumerate()
    {
        kb.load_arg(*r, i as u16);
    }
    let (v_tid, v_off) = tid_and_offset(&mut kb);
    guard_tid(&mut kb, v_tid, s_n, |kb| {
        // oc = tid / ohw; r = tid % ohw; oy = r / ow; ox = r % ow
        let v_oc = kb.vreg();
        let v_r = kb.vreg();
        let v_oy = kb.vreg();
        let v_ox = kb.vreg();
        kb.valu(
            VAluOp::Div,
            v_oc,
            VectorSrc::Reg(v_tid),
            VectorSrc::Sreg(s_ohw),
        );
        kb.valu(
            VAluOp::Rem,
            v_r,
            VectorSrc::Reg(v_tid),
            VectorSrc::Sreg(s_ohw),
        );
        kb.valu(
            VAluOp::Div,
            v_oy,
            VectorSrc::Reg(v_r),
            VectorSrc::Sreg(s_ow),
        );
        kb.valu(
            VAluOp::Rem,
            v_ox,
            VectorSrc::Reg(v_r),
            VectorSrc::Sreg(s_ow),
        );
        // base input coords: iy0 = oy*stride, ix0 = ox*stride
        let v_iy0 = kb.vreg();
        let v_ix0 = kb.vreg();
        kb.valu(
            VAluOp::Mul,
            v_iy0,
            VectorSrc::Reg(v_oy),
            VectorSrc::Sreg(s_stride),
        );
        kb.valu(
            VAluOp::Mul,
            v_ix0,
            VectorSrc::Reg(v_ox),
            VectorSrc::Sreg(s_stride),
        );
        // per-filter weight stride: icks = in_c * k * k; wbase = oc * icks
        let s_kk = kb.sreg();
        kb.salu(SAluOp::Mul, s_kk, s_k, ScalarSrc::Reg(s_k));
        let s_icks = kb.sreg();
        kb.salu(SAluOp::Mul, s_icks, s_inc, ScalarSrc::Reg(s_kk));
        let v_wbase = kb.vreg();
        kb.valu(
            VAluOp::Mul,
            v_wbase,
            VectorSrc::Reg(v_oc),
            VectorSrc::Sreg(s_icks),
        );

        let v_acc = kb.vreg();
        kb.vmov(v_acc, VectorSrc::ImmF32(0.0));

        let s_ic = kb.sreg();
        let s_ky = kb.sreg();
        let s_kx = kb.sreg();
        let s_icph = kb.sreg();
        let s_wrow = kb.sreg();
        let v_iy = kb.vreg();
        let v_ioff = kb.vreg();
        let v_in = kb.vreg();
        let v_woff = kb.vreg();
        let v_w = kb.vreg();
        kb.for_uniform(s_ic, 0i64, ScalarSrc::Reg(s_inc), |kb| {
            // channel plane base row: ic * ph
            kb.salu(SAluOp::Mul, s_icph, s_ic, ScalarSrc::Reg(s_ph));
            kb.for_uniform(s_ky, 0i64, ScalarSrc::Reg(s_k), |kb| {
                kb.for_uniform(s_kx, 0i64, ScalarSrc::Reg(s_k), |kb| {
                    // in[(ic*ph + iy0+ky) * pw + ix0+kx]
                    kb.valu(
                        VAluOp::Add,
                        v_iy,
                        VectorSrc::Reg(v_iy0),
                        VectorSrc::Sreg(s_ky),
                    );
                    kb.valu(
                        VAluOp::Add,
                        v_iy,
                        VectorSrc::Reg(v_iy),
                        VectorSrc::Sreg(s_icph),
                    );
                    kb.valu(
                        VAluOp::Mul,
                        v_ioff,
                        VectorSrc::Reg(v_iy),
                        VectorSrc::Sreg(s_pw),
                    );
                    kb.valu(
                        VAluOp::Add,
                        v_ioff,
                        VectorSrc::Reg(v_ioff),
                        VectorSrc::Reg(v_ix0),
                    );
                    kb.valu(
                        VAluOp::Add,
                        v_ioff,
                        VectorSrc::Reg(v_ioff),
                        VectorSrc::Sreg(s_kx),
                    );
                    kb.valu(
                        VAluOp::Shl,
                        v_ioff,
                        VectorSrc::Reg(v_ioff),
                        VectorSrc::Imm(2),
                    );
                    kb.global_load(v_in, s_in, v_ioff, 0, MemWidth::B32);
                    // w[wbase + (ic*k + ky)*k + kx]
                    kb.salu(SAluOp::Mul, s_wrow, s_ic, ScalarSrc::Reg(s_k));
                    kb.salu(SAluOp::Add, s_wrow, s_wrow, ScalarSrc::Reg(s_ky));
                    kb.salu(SAluOp::Mul, s_wrow, s_wrow, ScalarSrc::Reg(s_k));
                    kb.salu(SAluOp::Add, s_wrow, s_wrow, ScalarSrc::Reg(s_kx));
                    kb.valu(
                        VAluOp::Add,
                        v_woff,
                        VectorSrc::Reg(v_wbase),
                        VectorSrc::Sreg(s_wrow),
                    );
                    kb.valu(
                        VAluOp::Shl,
                        v_woff,
                        VectorSrc::Reg(v_woff),
                        VectorSrc::Imm(2),
                    );
                    kb.global_load(v_w, s_wt, v_woff, 0, MemWidth::B32);
                    kb.vfma(
                        v_acc,
                        VectorSrc::Reg(v_in),
                        VectorSrc::Reg(v_w),
                        VectorSrc::Reg(v_acc),
                    );
                });
            });
        });
        // optional fused ReLU (uniform branch on the flag)
        kb.scmp(CmpOp::Ne, s_relu, 0i64);
        kb.if_scc(|kb| {
            kb.valu(
                VAluOp::FMax,
                v_acc,
                VectorSrc::Reg(v_acc),
                VectorSrc::ImmF32(0.0),
            );
        });
        kb.global_store(v_acc, s_out, v_off, 0, MemWidth::B32);
    });
    Kernel::new(kb.finish().expect("conv kernel is well-formed"))
}

/// Max pooling over a padded input.
///
/// args: `[in_padded, out, ph, pw, ohw, ow, k, stride, n]` with
/// `n = c·oh·ow` threads.
pub fn maxpool_kernel() -> Kernel {
    let mut kb = KernelBuilder::new("maxpool");
    let s_in = kb.sreg();
    let s_out = kb.sreg();
    let s_ph = kb.sreg();
    let s_pw = kb.sreg();
    let s_ohw = kb.sreg();
    let s_ow = kb.sreg();
    let s_k = kb.sreg();
    let s_stride = kb.sreg();
    let s_n = kb.sreg();
    for (i, r) in [s_in, s_out, s_ph, s_pw, s_ohw, s_ow, s_k, s_stride, s_n]
        .iter()
        .enumerate()
    {
        kb.load_arg(*r, i as u16);
    }
    let (v_tid, v_off) = tid_and_offset(&mut kb);
    guard_tid(&mut kb, v_tid, s_n, |kb| {
        let v_c = kb.vreg();
        let v_r = kb.vreg();
        let v_oy = kb.vreg();
        let v_ox = kb.vreg();
        kb.valu(
            VAluOp::Div,
            v_c,
            VectorSrc::Reg(v_tid),
            VectorSrc::Sreg(s_ohw),
        );
        kb.valu(
            VAluOp::Rem,
            v_r,
            VectorSrc::Reg(v_tid),
            VectorSrc::Sreg(s_ohw),
        );
        kb.valu(
            VAluOp::Div,
            v_oy,
            VectorSrc::Reg(v_r),
            VectorSrc::Sreg(s_ow),
        );
        kb.valu(
            VAluOp::Rem,
            v_ox,
            VectorSrc::Reg(v_r),
            VectorSrc::Sreg(s_ow),
        );
        let v_iy0 = kb.vreg();
        let v_ix0 = kb.vreg();
        kb.valu(
            VAluOp::Mul,
            v_iy0,
            VectorSrc::Reg(v_oy),
            VectorSrc::Sreg(s_stride),
        );
        kb.valu(
            VAluOp::Mul,
            v_ix0,
            VectorSrc::Reg(v_ox),
            VectorSrc::Sreg(s_stride),
        );
        let s_phw = kb.sreg();
        kb.salu(SAluOp::Mul, s_phw, s_ph, ScalarSrc::Reg(s_pw));
        let v_base = kb.vreg();
        kb.valu(
            VAluOp::Mul,
            v_base,
            VectorSrc::Reg(v_c),
            VectorSrc::Sreg(s_phw),
        );
        let v_acc = kb.vreg();
        kb.vmov(v_acc, VectorSrc::ImmF32(-3.0e38));
        let s_ky = kb.sreg();
        let s_kx = kb.sreg();
        let v_iy = kb.vreg();
        let v_ioff = kb.vreg();
        let v_in = kb.vreg();
        kb.for_uniform(s_ky, 0i64, ScalarSrc::Reg(s_k), |kb| {
            kb.for_uniform(s_kx, 0i64, ScalarSrc::Reg(s_k), |kb| {
                kb.valu(
                    VAluOp::Add,
                    v_iy,
                    VectorSrc::Reg(v_iy0),
                    VectorSrc::Sreg(s_ky),
                );
                kb.valu(
                    VAluOp::Mul,
                    v_ioff,
                    VectorSrc::Reg(v_iy),
                    VectorSrc::Sreg(s_pw),
                );
                kb.valu(
                    VAluOp::Add,
                    v_ioff,
                    VectorSrc::Reg(v_ioff),
                    VectorSrc::Reg(v_ix0),
                );
                kb.valu(
                    VAluOp::Add,
                    v_ioff,
                    VectorSrc::Reg(v_ioff),
                    VectorSrc::Sreg(s_kx),
                );
                kb.valu(
                    VAluOp::Add,
                    v_ioff,
                    VectorSrc::Reg(v_ioff),
                    VectorSrc::Reg(v_base),
                );
                kb.valu(
                    VAluOp::Shl,
                    v_ioff,
                    VectorSrc::Reg(v_ioff),
                    VectorSrc::Imm(2),
                );
                kb.global_load(v_in, s_in, v_ioff, 0, MemWidth::B32);
                kb.valu(
                    VAluOp::FMax,
                    v_acc,
                    VectorSrc::Reg(v_acc),
                    VectorSrc::Reg(v_in),
                );
            });
        });
        kb.global_store(v_acc, s_out, v_off, 0, MemWidth::B32);
    });
    Kernel::new(kb.finish().expect("maxpool kernel is well-formed"))
}

/// Fully connected layer: `out[of] = Σ_i w[of·in_f + i] · x[i]`.
///
/// args: `[x, w, out, in_f, relu, n]` with `n = out_f` threads.
pub fn dense_kernel() -> Kernel {
    let mut kb = KernelBuilder::new("dense");
    let s_x = kb.sreg();
    let s_w = kb.sreg();
    let s_out = kb.sreg();
    let s_inf = kb.sreg();
    let s_relu = kb.sreg();
    let s_n = kb.sreg();
    for (i, r) in [s_x, s_w, s_out, s_inf, s_relu, s_n].iter().enumerate() {
        kb.load_arg(*r, i as u16);
    }
    let (v_tid, v_off) = tid_and_offset(&mut kb);
    guard_tid(&mut kb, v_tid, s_n, |kb| {
        let v_wbase = kb.vreg();
        kb.valu(
            VAluOp::Mul,
            v_wbase,
            VectorSrc::Reg(v_tid),
            VectorSrc::Sreg(s_inf),
        );
        let v_acc = kb.vreg();
        kb.vmov(v_acc, VectorSrc::ImmF32(0.0));
        let s_i = kb.sreg();
        let s_i4 = kb.sreg();
        let v_xoff = kb.vreg();
        let v_x = kb.vreg();
        let v_woff = kb.vreg();
        let v_w = kb.vreg();
        kb.for_uniform(s_i, 0i64, ScalarSrc::Reg(s_inf), |kb| {
            kb.salu(SAluOp::Shl, s_i4, s_i, 2i64);
            kb.vmov(v_xoff, VectorSrc::Sreg(s_i4));
            kb.global_load(v_x, s_x, v_xoff, 0, MemWidth::B32);
            kb.valu(
                VAluOp::Add,
                v_woff,
                VectorSrc::Reg(v_wbase),
                VectorSrc::Sreg(s_i),
            );
            kb.valu(
                VAluOp::Shl,
                v_woff,
                VectorSrc::Reg(v_woff),
                VectorSrc::Imm(2),
            );
            kb.global_load(v_w, s_w, v_woff, 0, MemWidth::B32);
            kb.vfma(
                v_acc,
                VectorSrc::Reg(v_x),
                VectorSrc::Reg(v_w),
                VectorSrc::Reg(v_acc),
            );
        });
        kb.scmp(CmpOp::Ne, s_relu, 0i64);
        kb.if_scc(|kb| {
            kb.valu(
                VAluOp::FMax,
                v_acc,
                VectorSrc::Reg(v_acc),
                VectorSrc::ImmF32(0.0),
            );
        });
        kb.global_store(v_acc, s_out, v_off, 0, MemWidth::B32);
    });
    Kernel::new(kb.finish().expect("dense kernel is well-formed"))
}

/// Elementwise residual add with optional ReLU.
///
/// args: `[a, b, out, relu, n]`.
pub fn add_kernel() -> Kernel {
    let mut kb = KernelBuilder::new("residual_add");
    let s_a = kb.sreg();
    let s_b = kb.sreg();
    let s_out = kb.sreg();
    let s_relu = kb.sreg();
    let s_n = kb.sreg();
    for (i, r) in [s_a, s_b, s_out, s_relu, s_n].iter().enumerate() {
        kb.load_arg(*r, i as u16);
    }
    let (v_tid, v_off) = tid_and_offset(&mut kb);
    guard_tid(&mut kb, v_tid, s_n, |kb| {
        let v_a = kb.vreg();
        let v_b = kb.vreg();
        kb.global_load(v_a, s_a, v_off, 0, MemWidth::B32);
        kb.global_load(v_b, s_b, v_off, 0, MemWidth::B32);
        kb.valu(VAluOp::FAdd, v_a, VectorSrc::Reg(v_a), VectorSrc::Reg(v_b));
        kb.scmp(CmpOp::Ne, s_relu, 0i64);
        kb.if_scc(|kb| {
            kb.valu(
                VAluOp::FMax,
                v_a,
                VectorSrc::Reg(v_a),
                VectorSrc::ImmF32(0.0),
            );
        });
        kb.global_store(v_a, s_out, v_off, 0, MemWidth::B32);
    });
    Kernel::new(kb.finish().expect("add kernel is well-formed"))
}

/// Global average pooling: one thread per channel.
///
/// args: `[in, out, hw, n]` with `n = c` threads.
pub fn gap_kernel() -> Kernel {
    let mut kb = KernelBuilder::new("global_avg_pool");
    let s_in = kb.sreg();
    let s_out = kb.sreg();
    let s_hw = kb.sreg();
    let s_n = kb.sreg();
    for (i, r) in [s_in, s_out, s_hw, s_n].iter().enumerate() {
        kb.load_arg(*r, i as u16);
    }
    let (v_tid, v_off) = tid_and_offset(&mut kb);
    guard_tid(&mut kb, v_tid, s_n, |kb| {
        let v_base = kb.vreg();
        kb.valu(
            VAluOp::Mul,
            v_base,
            VectorSrc::Reg(v_tid),
            VectorSrc::Sreg(s_hw),
        );
        let v_acc = kb.vreg();
        kb.vmov(v_acc, VectorSrc::ImmF32(0.0));
        let s_i = kb.sreg();
        let v_ioff = kb.vreg();
        let v_in = kb.vreg();
        kb.for_uniform(s_i, 0i64, ScalarSrc::Reg(s_hw), |kb| {
            kb.valu(
                VAluOp::Add,
                v_ioff,
                VectorSrc::Reg(v_base),
                VectorSrc::Sreg(s_i),
            );
            kb.valu(
                VAluOp::Shl,
                v_ioff,
                VectorSrc::Reg(v_ioff),
                VectorSrc::Imm(2),
            );
            kb.global_load(v_in, s_in, v_ioff, 0, MemWidth::B32);
            kb.valu(
                VAluOp::FAdd,
                v_acc,
                VectorSrc::Reg(v_acc),
                VectorSrc::Reg(v_in),
            );
        });
        // acc / hw
        let v_hw = kb.vreg();
        kb.vmov(v_hw, VectorSrc::Sreg(s_hw));
        kb.valu(
            VAluOp::CvtI2F,
            v_hw,
            VectorSrc::Reg(v_hw),
            VectorSrc::Imm(0),
        );
        kb.valu(
            VAluOp::FDiv,
            v_acc,
            VectorSrc::Reg(v_acc),
            VectorSrc::Reg(v_hw),
        );
        kb.global_store(v_acc, s_out, v_off, 0, MemWidth::B32);
    });
    Kernel::new(kb.finish().expect("gap kernel is well-formed"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kernels_build() {
        for (k, min_len) in [
            (pad_kernel(), 15),
            (conv_kernel(), 40),
            (maxpool_kernel(), 25),
            (dense_kernel(), 20),
            (add_kernel(), 10),
            (gap_kernel(), 15),
        ] {
            assert!(
                k.program().len() >= min_len,
                "{} too short: {}",
                k.name(),
                k.program().len()
            );
            assert!(k.program().basic_blocks().len() >= 2, "{}", k.name());
        }
    }

    #[test]
    fn loop_kernels_have_back_edges() {
        for k in [
            conv_kernel(),
            dense_kernel(),
            maxpool_kernel(),
            gap_kernel(),
        ] {
            let has_backedge = k
                .program()
                .insts()
                .iter()
                .enumerate()
                .any(|(pc, i)| i.branch_target().is_some_and(|t| t <= pc as u32));
            assert!(has_backedge, "{} has no loop", k.name());
        }
    }
}

//! VGG and ResNet model graphs (paper Table 2, §6.3).
//!
//! Layer graphs are faithful to the published architectures — the same
//! sequence of conv/pool/dense (VGG) and basic/bottleneck residual
//! blocks (ResNet) — while spatial resolution and channel width are
//! scaled by [`DnnScale`] so a *full detailed* baseline fits a test
//! budget (see DESIGN.md "Substitutions"). The kernel-launch count and
//! the repetition structure kernel-sampling exploits are preserved.

use super::builder::{NetBuilder, Shape};
use crate::app::App;
use gpu_sim::GpuSimulator;

/// Scaling knobs for the DNN workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct DnnScale {
    /// Input spatial resolution (paper: 224).
    pub input_hw: u32,
    /// Divisor applied to every channel/feature count (1 = paper size).
    pub channel_div: u32,
}

impl Default for DnnScale {
    fn default() -> Self {
        DnnScale {
            input_hw: 32,
            channel_div: 8,
        }
    }
}

impl DnnScale {
    fn ch(&self, full: u32) -> u32 {
        (full / self.channel_div).max(4)
    }
}

/// VGG variants evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VggVariant {
    /// VGG-16: conv blocks of 2,2,3,3,3.
    Vgg16,
    /// VGG-19: conv blocks of 2,2,4,4,4.
    Vgg19,
}

impl VggVariant {
    fn convs_per_block(self) -> [u32; 5] {
        match self {
            VggVariant::Vgg16 => [2, 2, 3, 3, 3],
            VggVariant::Vgg19 => [2, 2, 4, 4, 4],
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            VggVariant::Vgg16 => "VGG-16",
            VggVariant::Vgg19 => "VGG-19",
        }
    }
}

/// Builds a VGG inference (batch size 1).
///
/// # Panics
/// Panics if `scale.input_hw < 32` (five stride-2 pools need it).
pub fn vgg(gpu: &mut GpuSimulator, variant: VggVariant, scale: DnnScale, seed: u64) -> App {
    assert!(scale.input_hw >= 32, "VGG needs input_hw >= 32");
    let mut nb = NetBuilder::new(
        gpu,
        Shape {
            c: 3,
            h: scale.input_hw,
            w: scale.input_hw,
        },
        seed,
    );
    let widths = [64, 128, 256, 512, 512].map(|c| scale.ch(c));
    for (block, (&convs, &width)) in variant
        .convs_per_block()
        .iter()
        .zip(widths.iter())
        .enumerate()
    {
        for i in 0..convs {
            nb.conv(
                &format!("conv{}-{}", block + 1, i + 1),
                width,
                3,
                1,
                1,
                true,
            );
        }
        nb.maxpool(&format!("pool{}", block + 1), 2, 2, 0);
    }
    nb.dense("fc-6", scale.ch(4096), true);
    nb.dense("fc-7", scale.ch(4096), true);
    nb.dense("fc-8", scale.ch(1000), false);
    nb.finish(variant.name())
}

/// ResNet depths evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResNetDepth {
    /// ResNet-18 (basic blocks 2,2,2,2).
    R18,
    /// ResNet-34 (basic blocks 3,4,6,3).
    R34,
    /// ResNet-50 (bottlenecks 3,4,6,3).
    R50,
    /// ResNet-101 (bottlenecks 3,4,23,3).
    R101,
    /// ResNet-152 (bottlenecks 3,8,36,3).
    R152,
}

impl ResNetDepth {
    fn blocks(self) -> [u32; 4] {
        match self {
            ResNetDepth::R18 => [2, 2, 2, 2],
            ResNetDepth::R34 => [3, 4, 6, 3],
            ResNetDepth::R50 => [3, 4, 6, 3],
            ResNetDepth::R101 => [3, 4, 23, 3],
            ResNetDepth::R152 => [3, 8, 36, 3],
        }
    }

    fn bottleneck(self) -> bool {
        matches!(
            self,
            ResNetDepth::R50 | ResNetDepth::R101 | ResNetDepth::R152
        )
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ResNetDepth::R18 => "ResNet-18",
            ResNetDepth::R34 => "ResNet-34",
            ResNetDepth::R50 => "ResNet-50",
            ResNetDepth::R101 => "ResNet-101",
            ResNetDepth::R152 => "ResNet-152",
        }
    }
}

/// Builds a ResNet inference (batch size 1).
pub fn resnet(gpu: &mut GpuSimulator, depth: ResNetDepth, scale: DnnScale, seed: u64) -> App {
    let mut nb = NetBuilder::new(
        gpu,
        Shape {
            c: 3,
            h: scale.input_hw,
            w: scale.input_hw,
        },
        seed,
    );
    nb.conv("conv1", scale.ch(64), 7, 2, 3, true);
    nb.maxpool("pool1", 3, 2, 1);

    let stage_widths = [64u32, 128, 256, 512].map(|c| scale.ch(c));
    let expansion = if depth.bottleneck() { 4 } else { 1 };
    for (stage, (&blocks, &width)) in depth.blocks().iter().zip(stage_widths.iter()).enumerate() {
        for block in 0..blocks {
            let stride = if stage > 0 && block == 0 { 2 } else { 1 };
            let label = format!("stage{}-block{}", stage + 1, block + 1);
            let entry = nb.checkpoint();
            if depth.bottleneck() {
                nb.conv(&label, width, 1, 1, 0, true);
                nb.conv(&label, width, 3, stride, 1, true);
                nb.conv(&label, width * expansion, 1, 1, 0, false);
            } else {
                nb.conv(&label, width, 3, stride, 1, true);
                nb.conv(&label, width, 3, 1, 1, false);
            }
            let main = nb.checkpoint();
            let skip = if entry.shape != main.shape {
                // projection shortcut: 1×1 stride-s conv on the entry
                nb.rewind(entry);
                nb.conv(&label, width * expansion, 1, stride, 0, false);
                let s = nb.checkpoint();
                nb.rewind(main);
                s
            } else {
                entry
            };
            nb.add_from(&label, skip, true);
        }
    }
    nb.global_avg_pool("gap");
    nb.dense("fc", scale.ch(1000), false);
    nb.finish(depth.name())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::GpuConfig;

    fn tiny_scale() -> DnnScale {
        DnnScale {
            input_hw: 32,
            channel_div: 16,
        }
    }

    fn resnet_scale() -> DnnScale {
        DnnScale {
            input_hw: 16,
            channel_div: 16,
        }
    }

    #[test]
    fn vgg16_layer_structure() {
        let mut gpu = GpuSimulator::new(GpuConfig::tiny());
        let app = vgg(&mut gpu, VggVariant::Vgg16, tiny_scale(), 1);
        // 13 convs (each pad+conv) + 5 pools (each pad+pool) + 3 fc
        assert_eq!(app.launches().len(), 13 * 2 + 5 * 2 + 3);
        let labels: Vec<&str> = app.launches().iter().map(|l| l.layer.as_str()).collect();
        assert!(labels.contains(&"conv5-3"));
        assert!(labels.contains(&"pool3"));
        assert!(labels.contains(&"fc-8"));
    }

    #[test]
    fn vgg19_has_more_convs_than_vgg16() {
        let mut gpu = GpuSimulator::new(GpuConfig::tiny());
        let a16 = vgg(&mut gpu, VggVariant::Vgg16, tiny_scale(), 1);
        let a19 = vgg(&mut gpu, VggVariant::Vgg19, tiny_scale(), 1);
        assert!(a19.launches().len() > a16.launches().len());
    }

    #[test]
    fn resnet_kernel_counts_grow_with_depth() {
        let mut gpu = GpuSimulator::new(GpuConfig::tiny());
        let n18 = resnet(&mut gpu, ResNetDepth::R18, resnet_scale(), 1)
            .launches()
            .len();
        let n50 = resnet(&mut gpu, ResNetDepth::R50, resnet_scale(), 1)
            .launches()
            .len();
        let n152 = resnet(&mut gpu, ResNetDepth::R152, resnet_scale(), 1)
            .launches()
            .len();
        assert!(n18 < n50 && n50 < n152, "{n18} {n50} {n152}");
        // ResNet-152 has 50 bottleneck blocks: lots of kernels
        assert!(n152 > 300, "{n152}");
    }

    #[test]
    fn resnet18_runs_end_to_end() {
        let mut gpu = GpuSimulator::new(GpuConfig::tiny());
        let app = resnet(&mut gpu, ResNetDepth::R18, resnet_scale(), 7);
        app.run(&mut gpu, &mut gpu_sim::NullController).unwrap();
        let out = app.launches().last().unwrap().launch.args[2];
        let logits = gpu.mem().read_f32_vec(out, 4);
        assert!(logits.iter().all(|v| v.is_finite()));
    }
}

//! Multi-kernel applications.

use gpu_isa::KernelLaunch;
use gpu_sim::{AppResult, GpuSimulator, SamplingController, SimError};

/// One kernel launch tagged with the application "layer" it belongs to
/// (conv3-1, pool2, fc-6, …) for per-layer reporting (paper Fig. 17).
#[derive(Debug, Clone)]
pub struct LabeledLaunch {
    /// Grouping label.
    pub layer: String,
    /// The launch.
    pub launch: KernelLaunch,
}

/// A GPU application: a named sequence of kernel launches against a
/// prepared device memory image.
#[derive(Debug, Clone)]
pub struct App {
    name: String,
    launches: Vec<LabeledLaunch>,
}

impl App {
    /// Creates an application from labeled launches.
    pub fn new(name: impl Into<String>, launches: Vec<LabeledLaunch>) -> Self {
        App {
            name: name.into(),
            launches,
        }
    }

    /// Wraps a single launch as an application (single-kernel
    /// benchmarks).
    pub fn single(name: impl Into<String>, launch: KernelLaunch) -> Self {
        let name = name.into();
        App {
            launches: vec![LabeledLaunch {
                layer: name.clone(),
                launch,
            }],
            name,
        }
    }

    /// The application name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The labeled launches in order.
    pub fn launches(&self) -> &[LabeledLaunch] {
        &self.launches
    }

    /// Total warps across all launches.
    pub fn total_warps(&self) -> u64 {
        self.launches.iter().map(|l| l.launch.total_warps()).sum()
    }

    /// Runs every kernel in order under `ctrl`.
    ///
    /// # Errors
    /// Stops at and returns the first simulator error.
    pub fn run(
        &self,
        gpu: &mut GpuSimulator,
        ctrl: &mut dyn SamplingController,
    ) -> Result<AppResult, SimError> {
        let mut app = AppResult::default();
        for l in &self.launches {
            app.kernels.push(gpu.run_kernel_sampled(&l.launch, ctrl)?);
        }
        Ok(app)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_isa::{Kernel, KernelBuilder};

    fn launch(warps: u32) -> KernelLaunch {
        let mut kb = KernelBuilder::new("k");
        let s = kb.sreg();
        kb.smov(s, 0i64);
        KernelLaunch::new(Kernel::new(kb.finish().unwrap()), warps, 1, vec![])
    }

    #[test]
    fn single_wraps_one_launch() {
        let app = App::single("x", launch(4));
        assert_eq!(app.name(), "x");
        assert_eq!(app.launches().len(), 1);
        assert_eq!(app.total_warps(), 4);
    }

    #[test]
    fn labels_preserved() {
        let app = App::new(
            "net",
            vec![
                LabeledLaunch {
                    layer: "conv1".into(),
                    launch: launch(2),
                },
                LabeledLaunch {
                    layer: "conv1".into(),
                    launch: launch(2),
                },
                LabeledLaunch {
                    layer: "fc".into(),
                    launch: launch(1),
                },
            ],
        );
        assert_eq!(app.total_warps(), 5);
        assert_eq!(app.launches()[2].layer, "fc");
    }
}

//! Simple Convolution (AMD APP SDK): 2-D 3×3 convolution with clamped
//! borders.
//!
//! A *complex kernel* workload in the paper's taxonomy: many warps and
//! a meaningful per-thread loop nest, but regular (uniform trip counts,
//! clamp instead of divergence), so both BB- and warp-sampling apply.

use crate::app::App;
use crate::helpers::{alloc_f32, alloc_zeroed, guard_tid, rng, tid_and_offset, wg_count};
use gpu_isa::{Kernel, KernelBuilder, KernelLaunch, MemWidth, SAluOp, VAluOp, VectorSrc};
use gpu_sim::GpuSimulator;

/// Mask side length (3×3).
pub const MASK: i64 = 3;

fn sc_kernel() -> Kernel {
    let mut kb = KernelBuilder::new("simple_convolution");
    let s_in = kb.sreg();
    let s_mask = kb.sreg();
    let s_out = kb.sreg();
    let s_w = kb.sreg();
    let s_h = kb.sreg();
    let s_n = kb.sreg();
    kb.load_arg(s_in, 0);
    kb.load_arg(s_mask, 1);
    kb.load_arg(s_out, 2);
    kb.load_arg(s_w, 3);
    kb.load_arg(s_h, 4);
    kb.load_arg(s_n, 5);
    let (v_tid, v_off) = tid_and_offset(&mut kb);
    guard_tid(&mut kb, v_tid, s_n, |kb| {
        // y = tid / W, x = tid % W
        let v_y = kb.vreg();
        let v_x = kb.vreg();
        kb.valu(
            VAluOp::Div,
            v_y,
            VectorSrc::Reg(v_tid),
            VectorSrc::Sreg(s_w),
        );
        kb.valu(
            VAluOp::Rem,
            v_x,
            VectorSrc::Reg(v_tid),
            VectorSrc::Sreg(s_w),
        );
        // H-1, W-1 for clamping
        let s_h1 = kb.sreg();
        let s_w1 = kb.sreg();
        kb.salu(SAluOp::Sub, s_h1, s_h, 1i64);
        kb.salu(SAluOp::Sub, s_w1, s_w, 1i64);
        let v_acc = kb.vreg();
        kb.vmov(v_acc, VectorSrc::ImmF32(0.0));

        let s_ky = kb.sreg();
        let s_kx = kb.sreg();
        let s_moff = kb.sreg();
        let s_tmp = kb.sreg();
        let v_iy = kb.vreg();
        let v_ix = kb.vreg();
        let v_ioff = kb.vreg();
        let v_in = kb.vreg();
        let v_m = kb.vreg();
        let v_moff = kb.vreg();
        kb.for_uniform(s_ky, 0i64, MASK, |kb| {
            kb.for_uniform(s_kx, 0i64, MASK, |kb| {
                // iy = clamp(y + ky - 1, 0, H-1)
                kb.valu(
                    VAluOp::Add,
                    v_iy,
                    VectorSrc::Reg(v_y),
                    VectorSrc::Sreg(s_ky),
                );
                kb.valu(VAluOp::Sub, v_iy, VectorSrc::Reg(v_iy), VectorSrc::Imm(1));
                kb.valu(VAluOp::IMax, v_iy, VectorSrc::Reg(v_iy), VectorSrc::Imm(0));
                kb.valu(
                    VAluOp::IMin,
                    v_iy,
                    VectorSrc::Reg(v_iy),
                    VectorSrc::Sreg(s_h1),
                );
                // ix = clamp(x + kx - 1, 0, W-1)
                kb.valu(
                    VAluOp::Add,
                    v_ix,
                    VectorSrc::Reg(v_x),
                    VectorSrc::Sreg(s_kx),
                );
                kb.valu(VAluOp::Sub, v_ix, VectorSrc::Reg(v_ix), VectorSrc::Imm(1));
                kb.valu(VAluOp::IMax, v_ix, VectorSrc::Reg(v_ix), VectorSrc::Imm(0));
                kb.valu(
                    VAluOp::IMin,
                    v_ix,
                    VectorSrc::Reg(v_ix),
                    VectorSrc::Sreg(s_w1),
                );
                // in[(iy*W + ix)*4]
                kb.valu(
                    VAluOp::Mul,
                    v_ioff,
                    VectorSrc::Reg(v_iy),
                    VectorSrc::Sreg(s_w),
                );
                kb.valu(
                    VAluOp::Add,
                    v_ioff,
                    VectorSrc::Reg(v_ioff),
                    VectorSrc::Reg(v_ix),
                );
                kb.valu(
                    VAluOp::Shl,
                    v_ioff,
                    VectorSrc::Reg(v_ioff),
                    VectorSrc::Imm(2),
                );
                kb.global_load(v_in, s_in, v_ioff, 0, MemWidth::B32);
                // mask[(ky*3 + kx)*4] (broadcast)
                kb.salu(SAluOp::Mul, s_moff, s_ky, MASK);
                kb.salu(SAluOp::Add, s_tmp, s_moff, gpu_isa::ScalarSrc::Reg(s_kx));
                kb.salu(SAluOp::Shl, s_tmp, s_tmp, 2i64);
                kb.vmov(v_moff, VectorSrc::Sreg(s_tmp));
                kb.global_load(v_m, s_mask, v_moff, 0, MemWidth::B32);
                kb.vfma(
                    v_acc,
                    VectorSrc::Reg(v_in),
                    VectorSrc::Reg(v_m),
                    VectorSrc::Reg(v_acc),
                );
            });
        });
        kb.global_store(v_acc, s_out, v_off, 0, MemWidth::B32);
    });
    Kernel::new(kb.finish().expect("sc kernel is well-formed"))
}

/// Builds a Simple Convolution over a `width × height` image; the warp
/// count is `width·height / 64`.
pub fn build(gpu: &mut GpuSimulator, width: u64, height: u64, seed: u64) -> App {
    let n = width * height;
    let mut r = rng(seed);
    let input = alloc_f32(gpu, n, -1.0, 1.0, &mut r);
    let mask = alloc_f32(gpu, (MASK * MASK) as u64, -0.25, 0.25, &mut r);
    let out = alloc_zeroed(gpu, n * 4);
    let warps = n.div_ceil(64);
    let warps_per_wg = 4;
    let launch = KernelLaunch::new(
        sc_kernel(),
        wg_count(warps, warps_per_wg),
        warps_per_wg,
        vec![input, mask, out, width, height, n],
    );
    App::single("SC", launch)
}

/// Builds SC sized to approximately `num_warps` warps (square image).
pub fn build_warps(gpu: &mut GpuSimulator, num_warps: u64, seed: u64) -> App {
    let side = ((num_warps * 64) as f64).sqrt().round() as u64;
    let side = side.max(8);
    build(gpu, side, side, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{GpuConfig, NullController};

    #[test]
    fn sc_matches_host_reference() {
        let mut gpu = GpuSimulator::new(GpuConfig::tiny());
        let (w, h) = (32u64, 16u64);
        let app = build(&mut gpu, w, h, 3);
        app.run(&mut gpu, &mut NullController).unwrap();
        let launch = &app.launches()[0].launch;
        let (ib, mb, ob) = (launch.args[0], launch.args[1], launch.args[2]);
        let img = gpu.mem().read_f32_vec(ib, (w * h) as usize);
        let mask = gpu.mem().read_f32_vec(mb, 9);
        let clamp = |v: i64, hi: i64| v.clamp(0, hi) as usize;
        for &(x, y) in &[(0i64, 0i64), (5, 5), (31, 15), (0, 15)] {
            let mut expect = 0.0f32;
            for ky in 0..3i64 {
                for kx in 0..3i64 {
                    let iy = clamp(y + ky - 1, h as i64 - 1);
                    let ix = clamp(x + kx - 1, w as i64 - 1);
                    expect =
                        img[iy * w as usize + ix].mul_add(mask[(ky * 3 + kx) as usize], expect);
                }
            }
            let got = gpu.mem().read_f32(ob + 4 * (y as u64 * w + x as u64));
            assert!(
                (got - expect).abs() < 1e-3,
                "pixel ({x},{y}): {got} vs {expect}"
            );
        }
    }

    #[test]
    fn build_warps_hits_target() {
        let mut gpu = GpuSimulator::new(GpuConfig::tiny());
        let app = build_warps(&mut gpu, 64, 3);
        let w = app.total_warps();
        assert!((48..=80).contains(&w), "warps {w}");
    }
}

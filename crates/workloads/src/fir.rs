//! FIR filter (Hetero-Mark): `y[i] = Σ_k c[k] · x[i + k]`.
//!
//! A small-kernel workload with a short uniform tap loop; together with
//! ReLU it populates the paper's "small kernel GPU workloads" class.

use crate::app::App;
use crate::helpers::{alloc_f32, alloc_zeroed, guard_tid, rng, tid_and_offset, wg_count};
use gpu_isa::{Kernel, KernelBuilder, KernelLaunch, MemWidth, SAluOp, VAluOp, VectorSrc};
use gpu_sim::GpuSimulator;

/// Number of filter taps.
pub const TAPS: u64 = 16;

fn fir_kernel() -> Kernel {
    let mut kb = KernelBuilder::new("fir");
    let s_x = kb.sreg();
    let s_c = kb.sreg();
    let s_y = kb.sreg();
    let s_n = kb.sreg();
    kb.load_arg(s_x, 0);
    kb.load_arg(s_c, 1);
    kb.load_arg(s_y, 2);
    kb.load_arg(s_n, 3);
    let (v_tid, v_off) = tid_and_offset(&mut kb);
    guard_tid(&mut kb, v_tid, s_n, |kb| {
        let v_acc = kb.vreg();
        kb.vmov(v_acc, VectorSrc::ImmF32(0.0));
        let s_k = kb.sreg();
        let s_koff = kb.sreg();
        let v_xoff = kb.vreg();
        let v_coff = kb.vreg();
        let v_x = kb.vreg();
        let v_c = kb.vreg();
        kb.for_uniform(s_k, 0i64, TAPS as i64, |kb| {
            // byte offset of tap k
            kb.salu(SAluOp::Shl, s_koff, s_k, 2i64);
            // x[i + k]
            kb.valu(
                VAluOp::Add,
                v_xoff,
                VectorSrc::Reg(v_off),
                VectorSrc::Sreg(s_koff),
            );
            kb.global_load(v_x, s_x, v_xoff, 0, MemWidth::B32);
            // c[k] (same address in every lane)
            kb.vmov(v_coff, VectorSrc::Sreg(s_koff));
            kb.global_load(v_c, s_c, v_coff, 0, MemWidth::B32);
            kb.vfma(
                v_acc,
                VectorSrc::Reg(v_x),
                VectorSrc::Reg(v_c),
                VectorSrc::Reg(v_acc),
            );
        });
        kb.global_store(v_acc, s_y, v_off, 0, MemWidth::B32);
    });
    Kernel::new(kb.finish().expect("fir kernel is well-formed"))
}

/// Builds a FIR application over `num_warps` warps of output samples.
pub fn build(gpu: &mut GpuSimulator, num_warps: u64, seed: u64) -> App {
    let n = num_warps * 64;
    let mut r = rng(seed);
    let x = alloc_f32(gpu, n + TAPS, -1.0, 1.0, &mut r);
    let c = alloc_f32(gpu, TAPS, -0.5, 0.5, &mut r);
    let y = alloc_zeroed(gpu, n * 4);
    let warps_per_wg = 4;
    let launch = KernelLaunch::new(
        fir_kernel(),
        wg_count(num_warps, warps_per_wg),
        warps_per_wg,
        vec![x, c, y, n],
    );
    App::single("FIR", launch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{GpuConfig, NullController};

    #[test]
    fn fir_matches_host_reference() {
        let mut gpu = GpuSimulator::new(GpuConfig::tiny());
        let app = build(&mut gpu, 4, 7);
        app.run(&mut gpu, &mut NullController).unwrap();
        let launch = &app.launches()[0].launch;
        let (xb, cb, yb, n) = (
            launch.args[0],
            launch.args[1],
            launch.args[2],
            launch.args[3],
        );
        let x = gpu.mem().read_f32_vec(xb, (n + TAPS) as usize);
        let c = gpu.mem().read_f32_vec(cb, TAPS as usize);
        for i in [0usize, 63, 100, (n - 1) as usize] {
            let mut expect = 0.0f32;
            for k in 0..TAPS as usize {
                expect = x[i + k].mul_add(c[k], expect);
            }
            let got = gpu.mem().read_f32(yb + 4 * i as u64);
            assert!((got - expect).abs() < 1e-4, "elem {i}: {got} vs {expect}");
        }
    }

    #[test]
    fn fir_kernel_has_loop_structure() {
        let k = fir_kernel();
        // guard + loop header + body + exits: several blocks
        assert!(k.program().basic_blocks().len() >= 4);
    }
}

//! # gpu-workloads
//!
//! Every GPU workload of the Photon paper's Table 2, re-implemented
//! against the [`gpu_isa`] instruction set:
//!
//! * single-kernel benchmarks — [`aes`], [`fir`], [`sc`], [`mm`],
//!   [`relu`], [`spmv`] (regular and irregular, small and complex),
//! * real-world applications — [`pagerank`] (`PR-X`) and the [`dnn`]
//!   module's VGG-16/19 and ResNet-18/34/50/101/152 inference graphs,
//! * the [`registry`] enumerating benchmarks, suites, and the
//!   problem-size sweeps the evaluation figures run.
//!
//! # Example
//!
//! ```
//! use gpu_sim::{GpuConfig, GpuSimulator, NullController};
//! use gpu_workloads::registry::Benchmark;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut gpu = GpuSimulator::new(GpuConfig::tiny());
//! let app = Benchmark::Relu.build(&mut gpu, 64, 42);
//! let result = app.run(&mut gpu, &mut NullController)?;
//! assert!(result.total_cycles() > 0);
//! # Ok(())
//! # }
//! ```

pub mod aes;
mod app;
pub mod dnn;
pub mod fir;
mod helpers;
pub mod mm;
pub mod pagerank;
pub mod registry;
pub mod relu;
pub mod sc;
pub mod spmv;

pub use app::{App, LabeledLaunch};
pub use helpers::rng;

//! PageRank (Hetero-Mark): `PR-X` runs X nodes for a fixed number of
//! power iterations, two kernels per iteration.
//!
//! A real-world multi-kernel application: the same two kernels repeat
//! every iteration with identical shapes, which is exactly the
//! repetition kernel-sampling exploits (§4.3).

use crate::app::{App, LabeledLaunch};
use crate::helpers::{alloc_u32_slice, alloc_zeroed, guard_tid, rng, tid_and_offset, wg_count};
use gpu_isa::{CmpOp, Kernel, KernelBuilder, KernelLaunch, MemWidth, VAluOp, VectorSrc};
use gpu_sim::GpuSimulator;
use rand::Rng;

/// Damping factor.
pub const DAMPING: f32 = 0.85;

/// `contrib[i] = rank[i] / outdeg[i]`.
fn contrib_kernel() -> Kernel {
    let mut kb = KernelBuilder::new("pr_contrib");
    let s_rank = kb.sreg();
    let s_deg = kb.sreg();
    let s_contrib = kb.sreg();
    let s_n = kb.sreg();
    kb.load_arg(s_rank, 0);
    kb.load_arg(s_deg, 1);
    kb.load_arg(s_contrib, 2);
    kb.load_arg(s_n, 3);
    let (v_tid, v_off) = tid_and_offset(&mut kb);
    guard_tid(&mut kb, v_tid, s_n, |kb| {
        let v_r = kb.vreg();
        let v_d = kb.vreg();
        kb.global_load(v_r, s_rank, v_off, 0, MemWidth::B32);
        kb.global_load(v_d, s_deg, v_off, 0, MemWidth::B32);
        kb.valu(VAluOp::FDiv, v_r, VectorSrc::Reg(v_r), VectorSrc::Reg(v_d));
        kb.global_store(v_r, s_contrib, v_off, 0, MemWidth::B32);
    });
    Kernel::new(kb.finish().expect("contrib kernel is well-formed"))
}

/// `rank'[i] = (1-d)/N + d · Σ contrib[src]` over incoming edges (CSR).
fn gather_kernel() -> Kernel {
    let mut kb = KernelBuilder::new("pr_gather");
    let s_inptr = kb.sreg();
    let s_src = kb.sreg();
    let s_contrib = kb.sreg();
    let s_newrank = kb.sreg();
    let s_n = kb.sreg();
    let s_base = kb.sreg(); // (1-d)/N as f32 bits
    kb.load_arg(s_inptr, 0);
    kb.load_arg(s_src, 1);
    kb.load_arg(s_contrib, 2);
    kb.load_arg(s_newrank, 3);
    kb.load_arg(s_n, 4);
    kb.load_arg(s_base, 5);
    let (v_tid, v_off) = tid_and_offset(&mut kb);
    guard_tid(&mut kb, v_tid, s_n, |kb| {
        let v_j = kb.vreg();
        let v_end = kb.vreg();
        kb.global_load(v_j, s_inptr, v_off, 0, MemWidth::B32);
        kb.global_load(v_end, s_inptr, v_off, 4, MemWidth::B32);
        let v_acc = kb.vreg();
        kb.vmov(v_acc, VectorSrc::ImmF32(0.0));
        let v_joff = kb.vreg();
        let v_s = kb.vreg();
        let v_c = kb.vreg();
        kb.lane_while(
            |kb| {
                kb.vcmp(CmpOp::Lt, VectorSrc::Reg(v_j), VectorSrc::Reg(v_end), false);
            },
            |kb| {
                kb.valu(VAluOp::Shl, v_joff, VectorSrc::Reg(v_j), VectorSrc::Imm(2));
                kb.global_load(v_s, s_src, v_joff, 0, MemWidth::B32);
                kb.valu(VAluOp::Shl, v_s, VectorSrc::Reg(v_s), VectorSrc::Imm(2));
                kb.global_load(v_c, s_contrib, v_s, 0, MemWidth::B32);
                kb.valu(
                    VAluOp::FAdd,
                    v_acc,
                    VectorSrc::Reg(v_acc),
                    VectorSrc::Reg(v_c),
                );
                kb.valu(VAluOp::Add, v_j, VectorSrc::Reg(v_j), VectorSrc::Imm(1));
            },
        );
        // rank' = base + d * acc
        let v_base = kb.vreg();
        kb.vmov(v_base, VectorSrc::Sreg(s_base));
        kb.vfma(
            v_acc,
            VectorSrc::Reg(v_acc),
            VectorSrc::ImmF32(DAMPING),
            VectorSrc::Reg(v_base),
        );
        kb.global_store(v_acc, s_newrank, v_off, 0, MemWidth::B32);
    });
    Kernel::new(kb.finish().expect("gather kernel is well-formed"))
}

/// A random directed graph in incoming-edge CSR form.
#[derive(Debug, Clone)]
pub struct Graph {
    /// Incoming-edge row pointers (`n + 1`).
    pub in_ptr: Vec<u32>,
    /// Edge sources.
    pub src: Vec<u32>,
    /// Out-degree per node (≥ 1).
    pub out_deg: Vec<u32>,
    /// Node count.
    pub n: u32,
}

impl Graph {
    /// Generates a random graph with mean in-degree `avg_deg`.
    pub fn random(n: u32, avg_deg: u32, seed: u64) -> Self {
        let mut r = rng(seed);
        let mut in_ptr = vec![0u32];
        let mut src = Vec::new();
        let mut out_deg = vec![0u32; n as usize];
        for _ in 0..n {
            let u: f64 = r.gen();
            let deg = ((u * u) * (3.0 * avg_deg as f64)) as u32;
            for _ in 0..deg {
                let s = r.gen_range(0..n);
                src.push(s);
                out_deg[s as usize] += 1;
            }
            in_ptr.push(src.len() as u32);
        }
        for d in &mut out_deg {
            *d = (*d).max(1);
        }
        Graph {
            in_ptr,
            src,
            out_deg,
            n,
        }
    }
}

/// Builds `PR-<nodes>`: `iterations` power iterations over a random
/// graph with `nodes` nodes.
pub fn build(gpu: &mut GpuSimulator, nodes: u32, iterations: u32, seed: u64) -> App {
    let g = Graph::random(nodes, 12, seed);
    let n = nodes as u64;
    let in_ptr = alloc_u32_slice(gpu, &g.in_ptr);
    let src = alloc_u32_slice(gpu, &g.src);
    let deg = gpu.alloc_buffer(n * 4).expect("device allocation");
    for (i, d) in g.out_deg.iter().enumerate() {
        gpu.mem_mut().write_f32(deg + 4 * i as u64, *d as f32);
    }
    let rank_a = gpu.alloc_buffer(n * 4).expect("device allocation");
    let init = 1.0f32 / nodes as f32;
    for i in 0..n {
        gpu.mem_mut().write_f32(rank_a + 4 * i, init);
    }
    let rank_b = alloc_zeroed(gpu, n * 4);
    let contrib = alloc_zeroed(gpu, n * 4);

    let warps = n.div_ceil(64);
    let warps_per_wg = 4;
    let wgs = wg_count(warps, warps_per_wg);
    let base_bits = ((1.0 - DAMPING) / nodes as f32).to_bits() as u64;

    let ck = contrib_kernel();
    let gk = gather_kernel();
    let mut launches = Vec::new();
    let mut cur = rank_a;
    let mut nxt = rank_b;
    for it in 0..iterations {
        launches.push(LabeledLaunch {
            layer: format!("iter{it}"),
            launch: KernelLaunch::new(ck.clone(), wgs, warps_per_wg, vec![cur, deg, contrib, n]),
        });
        launches.push(LabeledLaunch {
            layer: format!("iter{it}"),
            launch: KernelLaunch::new(
                gk.clone(),
                wgs,
                warps_per_wg,
                vec![in_ptr, src, contrib, nxt, n, base_bits],
            ),
        });
        std::mem::swap(&mut cur, &mut nxt);
    }
    App::new(format!("PR-{nodes}"), launches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{GpuConfig, NullController};

    #[test]
    fn ranks_stay_normalized_roughly() {
        let mut gpu = GpuSimulator::new(GpuConfig::tiny());
        let nodes = 256u32;
        let app = build(&mut gpu, nodes, 4, 9);
        app.run(&mut gpu, &mut NullController).unwrap();
        // final ranks live in the gather output of the last iteration
        let last = app.launches().last().unwrap();
        let out = last.launch.args[3];
        let ranks = gpu.mem().read_f32_vec(out, nodes as usize);
        let sum: f32 = ranks.iter().sum();
        assert!(ranks.iter().all(|r| *r >= 0.0));
        // PageRank mass stays near 1 (graph has dangling mass, allow slack)
        assert!(sum > 0.2 && sum < 1.5, "sum {sum}");
    }

    #[test]
    fn kernel_count_is_two_per_iteration() {
        let mut gpu = GpuSimulator::new(GpuConfig::tiny());
        let app = build(&mut gpu, 128, 10, 1);
        assert_eq!(app.launches().len(), 20);
        assert_eq!(app.name(), "PR-128");
    }
}

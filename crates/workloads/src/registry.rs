//! The benchmark registry (paper Table 2) and the problem-size sweeps
//! the evaluation figures run.

use crate::app::App;
use crate::dnn::{resnet, vgg, DnnScale, ResNetDepth, VggVariant};
use crate::{aes, fir, mm, pagerank, relu, sc, spmv};
use gpu_sim::GpuSimulator;
use serde::{Deserialize, Serialize};

/// The single-kernel benchmarks of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Benchmark {
    /// AES-256 encryption (Hetero-Mark).
    Aes,
    /// FIR filter (Hetero-Mark).
    Fir,
    /// Simple Convolution (AMD APP SDK).
    Sc,
    /// Matrix Multiplication (AMD APP SDK).
    Mm,
    /// Rectified Linear Unit (DNNMark).
    Relu,
    /// Sparse Matrix-Vector multiplication (SHOC).
    Spmv,
}

impl Benchmark {
    /// All single-kernel benchmarks in Table 2 order.
    pub const ALL: [Benchmark; 6] = [
        Benchmark::Aes,
        Benchmark::Fir,
        Benchmark::Sc,
        Benchmark::Mm,
        Benchmark::Relu,
        Benchmark::Spmv,
    ];

    /// Paper abbreviation.
    pub fn abbr(self) -> &'static str {
        match self {
            Benchmark::Aes => "AES",
            Benchmark::Fir => "FIR",
            Benchmark::Sc => "SC",
            Benchmark::Mm => "MM",
            Benchmark::Relu => "ReLU",
            Benchmark::Spmv => "SPMV",
        }
    }

    /// Source suite per Table 2.
    pub fn suite(self) -> &'static str {
        match self {
            Benchmark::Aes | Benchmark::Fir => "Hetero-Mark",
            Benchmark::Sc | Benchmark::Mm => "AMD APP SDK",
            Benchmark::Relu => "DNNMark",
            Benchmark::Spmv => "SHOC",
        }
    }

    /// Workload description per Table 2.
    pub fn description(self) -> &'static str {
        match self {
            Benchmark::Aes => "AES-256 Encryption",
            Benchmark::Fir => "FIR filter",
            Benchmark::Sc => "Simple Convolution",
            Benchmark::Mm => "Matrix Multiplication",
            Benchmark::Relu => "Rectified Linear Unit",
            Benchmark::Spmv => "Sparse Matrix-Vector Multiplication",
        }
    }

    /// Whether the paper classifies the workload as irregular.
    pub fn is_irregular(self) -> bool {
        matches!(self, Benchmark::Spmv)
    }

    /// Builds the benchmark at a problem size of roughly `num_warps`
    /// warps (the paper's problem-size axis).
    pub fn build(self, gpu: &mut GpuSimulator, num_warps: u64, seed: u64) -> App {
        match self {
            Benchmark::Aes => aes::build(gpu, num_warps, seed),
            Benchmark::Fir => fir::build(gpu, num_warps, seed),
            Benchmark::Sc => sc::build_warps(gpu, num_warps, seed),
            Benchmark::Mm => mm::build_warps(gpu, num_warps, seed),
            Benchmark::Relu => relu::build(gpu, num_warps, seed),
            Benchmark::Spmv => spmv::build(gpu, num_warps, seed),
        }
    }

    /// The problem-size sweep (in warps) used by the evaluation
    /// figures; `scale` divides the paper-style sizes so the full
    /// detailed baseline stays tractable.
    pub fn sweep(self, scale: u64) -> Vec<u64> {
        let base: &[u64] = match self {
            // the paper sweeps 2K-64K warps depending on benchmark; the
            // largest sizes are where intra-kernel sampling engages
            Benchmark::Aes => &[2048, 4096, 8192, 16384],
            Benchmark::Fir => &[3072, 8192, 16384, 65536],
            Benchmark::Sc => &[2048, 8192, 16384, 32768],
            Benchmark::Mm => &[1024, 4096, 16384, 36864],
            Benchmark::Relu => &[4096, 16384, 32768, 65536],
            Benchmark::Spmv => &[384, 1024, 2048, 4096],
        };
        base.iter().map(|w| (w / scale).max(64)).collect()
    }
}

/// The real-world applications of Table 2 / Figure 16.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RealWorldApp {
    /// PageRank with the given node count.
    PageRank(u32),
    /// VGG-16 inference.
    Vgg16,
    /// VGG-19 inference.
    Vgg19,
    /// ResNet-18 inference.
    ResNet18,
    /// ResNet-34 inference.
    ResNet34,
    /// ResNet-50 inference.
    ResNet50,
    /// ResNet-101 inference.
    ResNet101,
    /// ResNet-152 inference.
    ResNet152,
}

impl RealWorldApp {
    /// The Figure 16 application list.
    pub fn figure16() -> Vec<RealWorldApp> {
        vec![
            RealWorldApp::PageRank(4096),
            RealWorldApp::PageRank(16384),
            RealWorldApp::Vgg16,
            RealWorldApp::Vgg19,
            RealWorldApp::ResNet18,
            RealWorldApp::ResNet34,
            RealWorldApp::ResNet50,
            RealWorldApp::ResNet101,
            RealWorldApp::ResNet152,
        ]
    }

    /// Display name.
    pub fn name(self) -> String {
        match self {
            RealWorldApp::PageRank(n) => format!("PR-{n}"),
            RealWorldApp::Vgg16 => "VGG-16".to_string(),
            RealWorldApp::Vgg19 => "VGG-19".to_string(),
            RealWorldApp::ResNet18 => "ResNet-18".to_string(),
            RealWorldApp::ResNet34 => "ResNet-34".to_string(),
            RealWorldApp::ResNet50 => "ResNet-50".to_string(),
            RealWorldApp::ResNet101 => "ResNet-101".to_string(),
            RealWorldApp::ResNet152 => "ResNet-152".to_string(),
        }
    }

    /// Builds the application.
    pub fn build(self, gpu: &mut GpuSimulator, scale: DnnScale, seed: u64) -> App {
        match self {
            RealWorldApp::PageRank(n) => pagerank::build(gpu, n, 10, seed),
            RealWorldApp::Vgg16 => vgg(gpu, VggVariant::Vgg16, scale, seed),
            RealWorldApp::Vgg19 => vgg(gpu, VggVariant::Vgg19, scale, seed),
            RealWorldApp::ResNet18 => resnet(gpu, ResNetDepth::R18, scale, seed),
            RealWorldApp::ResNet34 => resnet(gpu, ResNetDepth::R34, scale, seed),
            RealWorldApp::ResNet50 => resnet(gpu, ResNetDepth::R50, scale, seed),
            RealWorldApp::ResNet101 => resnet(gpu, ResNetDepth::R101, scale, seed),
            RealWorldApp::ResNet152 => resnet(gpu, ResNetDepth::R152, scale, seed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::GpuConfig;

    #[test]
    fn table2_registry_is_complete() {
        assert_eq!(Benchmark::ALL.len(), 6);
        for b in Benchmark::ALL {
            assert!(!b.abbr().is_empty());
            assert!(!b.suite().is_empty());
            assert!(!b.description().is_empty());
            assert!(!b.sweep(1).is_empty());
        }
        assert!(Benchmark::Spmv.is_irregular());
        assert!(!Benchmark::Mm.is_irregular());
    }

    #[test]
    fn sweeps_scale_down() {
        let full = Benchmark::Mm.sweep(1);
        let small = Benchmark::Mm.sweep(8);
        assert_eq!(full.len(), small.len());
        assert!(small[3] < full[3]);
        assert!(small.iter().all(|&w| w >= 64));
    }

    #[test]
    fn all_benchmarks_build_small() {
        let mut gpu = GpuSimulator::new(GpuConfig::tiny());
        for b in Benchmark::ALL {
            let app = b.build(&mut gpu, 64, 1);
            assert!(app.total_warps() > 0, "{}", b.abbr());
        }
    }

    #[test]
    fn figure16_list_matches_paper() {
        let apps = RealWorldApp::figure16();
        assert_eq!(apps.len(), 9);
        assert_eq!(apps.last().unwrap().name(), "ResNet-152");
    }
}

//! Sparse Matrix-Vector multiplication (SHOC): CSR, one row per thread.
//!
//! The paper's canonical *irregular* workload: row lengths are
//! data-dependent, so each lane runs a different number of loop
//! iterations (`lane_while` drops lanes out as their row ends), warps
//! have many distinct BBVs (no dominant type → no warp-sampling), and
//! the gather `x[col[j]]` produces irregular memory accesses.

use crate::app::App;
use crate::helpers::{
    alloc_f32, alloc_u32_slice, alloc_zeroed, guard_tid, rng, tid_and_offset, wg_count,
};
use gpu_isa::{CmpOp, Kernel, KernelBuilder, KernelLaunch, MemWidth, VAluOp, VectorSrc};
use gpu_sim::GpuSimulator;
use rand::Rng;

/// A host-side CSR matrix used to initialize device buffers.
#[derive(Debug, Clone)]
pub struct CsrMatrix {
    /// Row start offsets (`rows + 1` entries).
    pub row_ptr: Vec<u32>,
    /// Column indices.
    pub col_idx: Vec<u32>,
    /// Non-zero values.
    pub values: Vec<f32>,
    /// Number of rows/cols (square).
    pub n: u32,
}

impl CsrMatrix {
    /// Generates a random square CSR matrix with skewed row lengths
    /// (most rows short, a few long — the imbalance that makes SpMV
    /// irregular).
    pub fn random(n: u32, avg_nnz_per_row: u32, seed: u64) -> Self {
        let mut r = rng(seed);
        let mut row_ptr = Vec::with_capacity(n as usize + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0u32);
        for _ in 0..n {
            // skewed: length in [0, 4*avg) with quadratic skew
            let u: f64 = r.gen();
            let len = ((u * u) * (4.0 * avg_nnz_per_row as f64)) as u32;
            for _ in 0..len {
                col_idx.push(r.gen_range(0..n));
                values.push(r.gen_range(-1.0..1.0));
            }
            row_ptr.push(col_idx.len() as u32);
        }
        CsrMatrix {
            row_ptr,
            col_idx,
            values,
            n,
        }
    }

    /// Number of non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Host reference SpMV.
    pub fn multiply(&self, x: &[f32]) -> Vec<f32> {
        (0..self.n as usize)
            .map(|row| {
                let (a, b) = (self.row_ptr[row] as usize, self.row_ptr[row + 1] as usize);
                (a..b)
                    .map(|j| self.values[j] * x[self.col_idx[j] as usize])
                    .sum()
            })
            .collect()
    }
}

fn spmv_kernel() -> Kernel {
    let mut kb = KernelBuilder::new("spmv");
    let s_rowptr = kb.sreg();
    let s_col = kb.sreg();
    let s_val = kb.sreg();
    let s_x = kb.sreg();
    let s_y = kb.sreg();
    let s_n = kb.sreg();
    kb.load_arg(s_rowptr, 0);
    kb.load_arg(s_col, 1);
    kb.load_arg(s_val, 2);
    kb.load_arg(s_x, 3);
    kb.load_arg(s_y, 4);
    kb.load_arg(s_n, 5);
    let (v_tid, v_off) = tid_and_offset(&mut kb);
    guard_tid(&mut kb, v_tid, s_n, |kb| {
        // j = row_ptr[row], end = row_ptr[row + 1]
        let v_j = kb.vreg();
        let v_end = kb.vreg();
        kb.global_load(v_j, s_rowptr, v_off, 0, MemWidth::B32);
        kb.global_load(v_end, s_rowptr, v_off, 4, MemWidth::B32);
        let v_acc = kb.vreg();
        kb.vmov(v_acc, VectorSrc::ImmF32(0.0));
        let v_joff = kb.vreg();
        let v_c = kb.vreg();
        let v_v = kb.vreg();
        let v_xv = kb.vreg();
        kb.lane_while(
            |kb| {
                kb.vcmp(CmpOp::Lt, VectorSrc::Reg(v_j), VectorSrc::Reg(v_end), false);
            },
            |kb| {
                kb.valu(VAluOp::Shl, v_joff, VectorSrc::Reg(v_j), VectorSrc::Imm(2));
                kb.global_load(v_c, s_col, v_joff, 0, MemWidth::B32);
                kb.global_load(v_v, s_val, v_joff, 0, MemWidth::B32);
                // x[col]
                kb.valu(VAluOp::Shl, v_c, VectorSrc::Reg(v_c), VectorSrc::Imm(2));
                kb.global_load(v_xv, s_x, v_c, 0, MemWidth::B32);
                kb.vfma(
                    v_acc,
                    VectorSrc::Reg(v_v),
                    VectorSrc::Reg(v_xv),
                    VectorSrc::Reg(v_acc),
                );
                kb.valu(VAluOp::Add, v_j, VectorSrc::Reg(v_j), VectorSrc::Imm(1));
            },
        );
        kb.global_store(v_acc, s_y, v_off, 0, MemWidth::B32);
    });
    Kernel::new(kb.finish().expect("spmv kernel is well-formed"))
}

/// Builds SpMV over a random matrix with `num_warps × 64` rows.
pub fn build(gpu: &mut GpuSimulator, num_warps: u64, seed: u64) -> App {
    let n = (num_warps * 64) as u32;
    let m = CsrMatrix::random(n, 16, seed);
    build_with_matrix(gpu, &m, seed)
}

/// Builds SpMV over a caller-provided matrix.
pub fn build_with_matrix(gpu: &mut GpuSimulator, m: &CsrMatrix, seed: u64) -> App {
    let mut r = rng(seed ^ 0x5eed);
    let rowptr = alloc_u32_slice(gpu, &m.row_ptr);
    let col = alloc_u32_slice(gpu, &m.col_idx);
    let val = gpu
        .alloc_buffer(m.values.len().max(1) as u64 * 4)
        .expect("device allocation");
    gpu.mem_mut().write_f32_slice(val, &m.values);
    let x = alloc_f32(gpu, m.n as u64, -1.0, 1.0, &mut r);
    let y = alloc_zeroed(gpu, m.n as u64 * 4);
    let warps = (m.n as u64).div_ceil(64);
    let warps_per_wg = 4;
    let launch = KernelLaunch::new(
        spmv_kernel(),
        wg_count(warps, warps_per_wg),
        warps_per_wg,
        vec![rowptr, col, val, x, y, m.n as u64],
    );
    App::single("SPMV", launch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{GpuConfig, NullController};

    #[test]
    fn spmv_matches_host_reference() {
        let mut gpu = GpuSimulator::new(GpuConfig::tiny());
        let m = CsrMatrix::random(256, 8, 5);
        let app = build_with_matrix(&mut gpu, &m, 5);
        app.run(&mut gpu, &mut NullController).unwrap();
        let launch = &app.launches()[0].launch;
        let (xb, yb) = (launch.args[3], launch.args[4]);
        let x = gpu.mem().read_f32_vec(xb, m.n as usize);
        let expect = m.multiply(&x);
        for row in [0usize, 17, 128, 255] {
            let got = gpu.mem().read_f32(yb + 4 * row as u64);
            assert!(
                (got - expect[row]).abs() < 1e-3 * expect[row].abs().max(1.0),
                "row {row}: {got} vs {}",
                expect[row]
            );
        }
    }

    #[test]
    fn matrix_rows_are_skewed() {
        let m = CsrMatrix::random(1000, 16, 3);
        let lens: Vec<u32> = m.row_ptr.windows(2).map(|w| w[1] - w[0]).collect();
        let max = *lens.iter().max().unwrap();
        let mean = m.nnz() as f64 / 1000.0;
        assert!(max as f64 > 2.0 * mean, "max {max} mean {mean}");
        // plenty of short rows
        let short = lens.iter().filter(|&&l| (l as f64) < mean).count();
        assert!(short > 400);
    }

    #[test]
    fn empty_rows_are_handled() {
        // a matrix with all-empty rows must produce zeros without hanging
        let m = CsrMatrix {
            row_ptr: vec![0; 65],
            col_idx: vec![],
            values: vec![],
            n: 64,
        };
        let mut gpu = GpuSimulator::new(GpuConfig::tiny());
        let app = build_with_matrix(&mut gpu, &m, 1);
        app.run(&mut gpu, &mut NullController).unwrap();
        let yb = app.launches()[0].launch.args[4];
        assert_eq!(gpu.mem().read_f32(yb), 0.0);
    }
}

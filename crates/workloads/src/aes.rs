//! AES-256 encryption (Hetero-Mark).
//!
//! Each thread encrypts one 16-byte block held as four 32-bit words. We
//! implement the T-table formulation real GPU AES kernels use: every
//! round substitutes each state word through lane-scattered table
//! lookups and XOR-mixes in a round key. To keep the straight-line
//! sequence near the ~400 instructions the paper reports, each word
//! uses two table lookups per round (a documented simplification of the
//! four-lookup T-table form — the instruction mix, scattered memory
//! pattern, and fully unrolled straight-line structure are preserved;
//! the cipher is not interoperable with standard AES).

use crate::app::App;
use crate::helpers::{alloc_zeroed, guard_tid, rng, tid_and_offset, wg_count};
use gpu_isa::{Kernel, KernelBuilder, KernelLaunch, MemWidth, VAluOp, VectorSrc, Vreg};
use gpu_sim::GpuSimulator;
use rand::Rng;

/// AES-256 rounds.
pub const ROUNDS: usize = 14;

/// Entries per lookup table (one u32 per byte value).
const TABLE_WORDS: u64 = 256;

fn aes_kernel() -> Kernel {
    let mut kb = KernelBuilder::new("aes256");
    let s_in = kb.sreg();
    let s_out = kb.sreg();
    let s_t0 = kb.sreg();
    let s_t1 = kb.sreg();
    let s_rk = kb.sreg();
    let s_n = kb.sreg();
    kb.load_arg(s_in, 0);
    kb.load_arg(s_out, 1);
    kb.load_arg(s_t0, 2);
    kb.load_arg(s_t1, 3);
    kb.load_arg(s_rk, 4);
    kb.load_arg(s_n, 5);
    let (v_tid, _v_off) = tid_and_offset(&mut kb);
    guard_tid(&mut kb, v_tid, s_n, |kb| {
        // block byte offset = tid * 16
        let v_blk = kb.vreg();
        kb.valu(VAluOp::Shl, v_blk, VectorSrc::Reg(v_tid), VectorSrc::Imm(4));
        // load state words
        let w: Vec<Vreg> = (0..4).map(|_| kb.vreg()).collect();
        for (i, &wi) in w.iter().enumerate() {
            kb.global_load(wi, s_in, v_blk, 4 * i as i32, MemWidth::B32);
        }
        let v_rkoff = kb.vreg();
        let v_key = kb.vreg();
        // initial AddRoundKey
        for (i, &wi) in w.iter().enumerate() {
            kb.vmov(v_rkoff, VectorSrc::Imm(4 * i as u32));
            kb.global_load(v_key, s_rk, v_rkoff, 0, MemWidth::B32);
            kb.valu(VAluOp::Xor, wi, VectorSrc::Reg(wi), VectorSrc::Reg(v_key));
        }
        // rounds, fully unrolled (the paper's "long instruction
        // sequence, about 400 instructions")
        let v_b = kb.vreg();
        let v_t = kb.vreg();
        let v_u = kb.vreg();
        for round in 1..=ROUNDS {
            let prev = w.clone();
            for (i, &wi) in w.iter().enumerate() {
                // byte 0 of word i through T0
                kb.valu(
                    VAluOp::And,
                    v_b,
                    VectorSrc::Reg(prev[i]),
                    VectorSrc::Imm(0xff),
                );
                kb.valu(VAluOp::Shl, v_b, VectorSrc::Reg(v_b), VectorSrc::Imm(2));
                kb.global_load(v_t, s_t0, v_b, 0, MemWidth::B32);
                // byte 2 of the next word through T1 (ShiftRows flavor)
                let nxt = prev[(i + 1) % 4];
                kb.valu(VAluOp::Shr, v_b, VectorSrc::Reg(nxt), VectorSrc::Imm(16));
                kb.valu(VAluOp::And, v_b, VectorSrc::Reg(v_b), VectorSrc::Imm(0xff));
                kb.valu(VAluOp::Shl, v_b, VectorSrc::Reg(v_b), VectorSrc::Imm(2));
                kb.global_load(v_u, s_t1, v_b, 0, MemWidth::B32);
                // mix and add round key
                kb.valu(VAluOp::Xor, v_t, VectorSrc::Reg(v_t), VectorSrc::Reg(v_u));
                kb.vmov(v_rkoff, VectorSrc::Imm((16 * round + 4 * i) as u32));
                kb.global_load(v_key, s_rk, v_rkoff, 0, MemWidth::B32);
                kb.valu(VAluOp::Xor, wi, VectorSrc::Reg(v_t), VectorSrc::Reg(v_key));
            }
        }
        // store ciphertext
        for (i, &wi) in w.iter().enumerate() {
            kb.global_store(wi, s_out, v_blk, 4 * i as i32, MemWidth::B32);
        }
    });
    Kernel::new(kb.finish().expect("aes kernel is well-formed"))
}

/// Builds an AES-256 application encrypting one 16-byte block per
/// thread (`num_warps × 64` blocks).
pub fn build(gpu: &mut GpuSimulator, num_warps: u64, seed: u64) -> App {
    let n = num_warps * 64;
    let mut r = rng(seed);
    let input = gpu.alloc_buffer(n * 16).expect("device allocation");
    for i in 0..n * 4 {
        gpu.mem_mut().write_u32(input + 4 * i, r.gen());
    }
    let out = alloc_zeroed(gpu, n * 16);
    let t0 = gpu
        .alloc_buffer(TABLE_WORDS * 4)
        .expect("device allocation");
    let t1 = gpu
        .alloc_buffer(TABLE_WORDS * 4)
        .expect("device allocation");
    for i in 0..TABLE_WORDS {
        gpu.mem_mut().write_u32(t0 + 4 * i, r.gen());
        gpu.mem_mut().write_u32(t1 + 4 * i, r.gen());
    }
    let rk = gpu
        .alloc_buffer((ROUNDS as u64 + 1) * 16)
        .expect("device allocation");
    for i in 0..(ROUNDS as u64 + 1) * 4 {
        gpu.mem_mut().write_u32(rk + 4 * i, r.gen());
    }
    let warps_per_wg = 4;
    let launch = KernelLaunch::new(
        aes_kernel(),
        wg_count(num_warps, warps_per_wg),
        warps_per_wg,
        vec![input, out, t0, t1, rk, n],
    );
    App::single("AES", launch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{GpuConfig, NullController};

    #[test]
    fn kernel_is_long_straight_line() {
        let k = aes_kernel();
        let len = k.program().len();
        assert!(
            (300..900).contains(&len),
            "AES kernel should be a few hundred instructions, got {len}"
        );
        // few basic blocks despite its length (guard blocks only)
        assert!(k.program().basic_blocks().len() <= 4);
    }

    #[test]
    fn encryption_changes_and_is_deterministic() {
        let mut gpu = GpuSimulator::new(GpuConfig::tiny());
        let app = build(&mut gpu, 2, 99);
        app.run(&mut gpu, &mut NullController).unwrap();
        let launch = &app.launches()[0].launch;
        let (inp, out) = (launch.args[0], launch.args[1]);
        // ciphertext differs from plaintext and is non-zero
        let mut diff = 0;
        for i in 0..32 {
            if gpu.mem().read_u32(inp + 4 * i) != gpu.mem().read_u32(out + 4 * i) {
                diff += 1;
            }
        }
        assert!(diff > 28, "only {diff}/32 words changed");

        // same seed → same ciphertext
        let mut gpu2 = GpuSimulator::new(GpuConfig::tiny());
        let app2 = build(&mut gpu2, 2, 99);
        app2.run(&mut gpu2, &mut NullController).unwrap();
        let out2 = app2.launches()[0].launch.args[1];
        for i in 0..32 {
            assert_eq!(
                gpu.mem().read_u32(out + 4 * i),
                gpu2.mem().read_u32(out2 + 4 * i)
            );
        }
    }
}

//! Host-reference numerical checks for the DNN layer kernels: direct
//! convolution, max pooling, dense, and global average pooling computed
//! on the CPU must match the simulated GPU results element-wise.

use gpu_sim::{GpuConfig, GpuSimulator, NullController};
use gpu_workloads::dnn::{NetBuilder, Shape};

fn read_tensor(gpu: &GpuSimulator, buf: u64, len: usize) -> Vec<f32> {
    gpu.mem().read_f32_vec(buf, len)
}

#[test]
fn conv2d_matches_host_reference() {
    let mut gpu = GpuSimulator::new(GpuConfig::tiny());
    let in_shape = Shape { c: 3, h: 6, w: 6 };
    let mut nb = NetBuilder::new(&mut gpu, in_shape, 42);
    let input_cp = nb.checkpoint();
    nb.conv("c", 4, 3, 1, 1, false);
    let out_cp = nb.checkpoint();
    let app = nb.finish("conv_test");
    app.run(&mut gpu, &mut NullController).unwrap();

    // conv launch args: [padded, weights, out, in_c, ph, pw, ohw, ow, k, stride, relu, n]
    let conv_launch = &app.launches()[1].launch;
    let weights_buf = conv_launch.args[1];
    let (in_c, k, stride, pad) = (3u32, 3u32, 1u32, 1u32);
    let out_c = 4u32;
    let (oh, ow) = (6u32, 6u32);

    let input = read_tensor(&gpu, input_cp.buf, in_shape.len() as usize);
    let weights = read_tensor(&gpu, weights_buf, (out_c * in_c * k * k) as usize);
    let got = read_tensor(&gpu, out_cp.buf, (out_c * oh * ow) as usize);

    let at = |c: u32, y: i64, x: i64| -> f32 {
        if y < 0 || x < 0 || y >= in_shape.h as i64 || x >= in_shape.w as i64 {
            0.0
        } else {
            input
                [(c as usize * in_shape.h as usize + y as usize) * in_shape.w as usize + x as usize]
        }
    };
    for oc in 0..out_c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = 0.0f32;
                for ic in 0..in_c {
                    for ky in 0..k {
                        for kx in 0..k {
                            let iy = (oy * stride + ky) as i64 - pad as i64;
                            let ix = (ox * stride + kx) as i64 - pad as i64;
                            let w = weights[(((oc * in_c + ic) * k + ky) * k + kx) as usize];
                            acc = at(ic, iy, ix).mul_add(w, acc);
                        }
                    }
                }
                let g = got[((oc * oh + oy) * ow + ox) as usize];
                assert!(
                    (g - acc).abs() < 1e-3,
                    "out[{oc},{oy},{ox}] = {g}, expected {acc}"
                );
            }
        }
    }
}

#[test]
fn maxpool_matches_host_reference() {
    let mut gpu = GpuSimulator::new(GpuConfig::tiny());
    let in_shape = Shape { c: 2, h: 8, w: 8 };
    let mut nb = NetBuilder::new(&mut gpu, in_shape, 7);
    let input_cp = nb.checkpoint();
    nb.maxpool("p", 2, 2, 0);
    let out_cp = nb.checkpoint();
    let app = nb.finish("pool_test");
    app.run(&mut gpu, &mut NullController).unwrap();

    let input = read_tensor(&gpu, input_cp.buf, in_shape.len() as usize);
    let got = read_tensor(&gpu, out_cp.buf, (2 * 4 * 4) as usize);
    for c in 0..2usize {
        for oy in 0..4usize {
            for ox in 0..4usize {
                let mut m = f32::NEG_INFINITY;
                for ky in 0..2 {
                    for kx in 0..2 {
                        m = m.max(input[(c * 8 + oy * 2 + ky) * 8 + ox * 2 + kx]);
                    }
                }
                let g = got[(c * 4 + oy) * 4 + ox];
                assert_eq!(g, m, "pool[{c},{oy},{ox}]");
            }
        }
    }
}

#[test]
fn dense_matches_host_reference() {
    let mut gpu = GpuSimulator::new(GpuConfig::tiny());
    let in_shape = Shape { c: 8, h: 1, w: 1 };
    let mut nb = NetBuilder::new(&mut gpu, in_shape, 3);
    let input_cp = nb.checkpoint();
    nb.dense("fc", 5, false);
    let out_cp = nb.checkpoint();
    let app = nb.finish("dense_test");
    app.run(&mut gpu, &mut NullController).unwrap();

    let w_buf = app.launches()[0].launch.args[1];
    let x = read_tensor(&gpu, input_cp.buf, 8);
    let w = read_tensor(&gpu, w_buf, 5 * 8);
    let got = read_tensor(&gpu, out_cp.buf, 5);
    for of in 0..5usize {
        let mut acc = 0.0f32;
        for i in 0..8usize {
            acc = x[i].mul_add(w[of * 8 + i], acc);
        }
        assert!(
            (got[of] - acc).abs() < 1e-4,
            "fc[{of}] = {}, expected {acc}",
            got[of]
        );
    }
}

#[test]
fn global_avg_pool_matches_host_reference() {
    let mut gpu = GpuSimulator::new(GpuConfig::tiny());
    let in_shape = Shape { c: 3, h: 4, w: 4 };
    let mut nb = NetBuilder::new(&mut gpu, in_shape, 11);
    let input_cp = nb.checkpoint();
    nb.global_avg_pool("gap");
    let out_cp = nb.checkpoint();
    let app = nb.finish("gap_test");
    app.run(&mut gpu, &mut NullController).unwrap();

    let input = read_tensor(&gpu, input_cp.buf, in_shape.len() as usize);
    let got = read_tensor(&gpu, out_cp.buf, 3);
    for c in 0..3usize {
        let mean: f32 = input[c * 16..(c + 1) * 16].iter().sum::<f32>() / 16.0;
        assert!(
            (got[c] - mean).abs() < 1e-4,
            "gap[{c}] = {}, expected {mean}",
            got[c]
        );
    }
}

#[test]
fn strided_conv_downsamples_correctly() {
    let mut gpu = GpuSimulator::new(GpuConfig::tiny());
    let mut nb = NetBuilder::new(&mut gpu, Shape { c: 2, h: 8, w: 8 }, 5);
    nb.conv("c", 2, 3, 2, 1, false);
    assert_eq!(nb.shape(), Shape { c: 2, h: 4, w: 4 });
    let out_cp = nb.checkpoint();
    let app = nb.finish("stride_test");
    app.run(&mut gpu, &mut NullController).unwrap();
    let got = read_tensor(&gpu, out_cp.buf, 32);
    assert!(got.iter().all(|v| v.is_finite()));
    assert!(got.iter().any(|v| *v != 0.0));
}

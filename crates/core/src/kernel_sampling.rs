//! Kernel sampling (paper §4.3, Figure 12).
//!
//! Photon keeps a history of kernel signatures (GPU BBV + warp count +
//! online sample statistics). A new kernel whose GPU BBV is within the
//! distance threshold of a prior kernel is skipped: its instruction
//! count is predicted by scaling the prior kernel's count with the
//! ratio of online-sample instruction counts, and its IPC is carried
//! over from the prior kernel. Among matches, the kernel with the
//! closest warp count wins; kernels with fewer warps than the GPU has
//! compute units must match the warp count exactly (they are not yet
//! resource-saturated, so their IPC regime differs).

use crate::bbv::GpuBbv;
use gpu_sim::Cycle;
use serde::{Deserialize, Serialize};

/// One completed kernel's signature and timing summary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KernelRecord {
    /// Kernel name (diagnostics only; matching is purely by GPU BBV).
    pub name: String,
    /// The kernel's GPU BBV from online analysis.
    pub gpu_bbv: GpuBbv,
    /// Warps in the launch.
    pub total_warps: u64,
    /// Instructions executed by the online sample.
    pub sample_insts: u64,
    /// Estimated total dynamic instructions of the kernel.
    pub est_total_insts: f64,
    /// Measured (or predicted) kernel cycles.
    pub cycles: Cycle,
    /// Effective IPC (`est_total_insts / cycles`).
    pub ipc: f64,
}

/// Prediction produced by a kernel match.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelPrediction {
    /// Predicted kernel time in cycles.
    pub cycles: Cycle,
    /// Predicted total instructions.
    pub insts: f64,
    /// Index of the matched history record.
    pub matched: usize,
}

/// The kernel history used for matching.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct KernelHistory {
    records: Vec<KernelRecord>,
}

impl KernelHistory {
    /// Creates an empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// The stored records, in completion order.
    pub fn records(&self) -> &[KernelRecord] {
        &self.records
    }

    /// Appends a completed kernel.
    pub fn push(&mut self, record: KernelRecord) {
        self.records.push(record);
    }

    /// Finds the best prior kernel for a new launch, per §4.3: GPU BBV
    /// distance under `max_distance`, closest warp count, exact warp
    /// count when `total_warps < num_cus`.
    pub fn find_match(
        &self,
        gpu_bbv: &GpuBbv,
        total_warps: u64,
        num_cus: u64,
        max_distance: f64,
    ) -> Option<usize> {
        let small = total_warps < num_cus;
        self.records
            .iter()
            .enumerate()
            .filter(|(_, r)| {
                if small || r.total_warps < num_cus {
                    r.total_warps == total_warps
                } else {
                    true
                }
            })
            .map(|(i, r)| (i, r.gpu_bbv.distance(gpu_bbv), r))
            .filter(|(_, d, _)| *d <= max_distance)
            .min_by(|(_, da, ra), (_, db, rb)| {
                let wa = ra.total_warps.abs_diff(total_warps);
                let wb = rb.total_warps.abs_diff(total_warps);
                wa.cmp(&wb).then(da.total_cmp(db))
            })
            .map(|(i, _, _)| i)
    }

    /// Predicts the new kernel's time from a matched record:
    /// `#insts = #insts' · sample / sample'`, IPC carried over.
    ///
    /// # Panics
    /// Panics if `matched` is out of range.
    pub fn predict(&self, matched: usize, sample_insts: u64) -> KernelPrediction {
        let r = &self.records[matched];
        let scale = if r.sample_insts == 0 {
            1.0
        } else {
            sample_insts as f64 / r.sample_insts as f64
        };
        let insts = r.est_total_insts * scale;
        let cycles = if r.ipc > 0.0 {
            (insts / r.ipc).round().max(1.0) as Cycle
        } else {
            r.cycles
        };
        KernelPrediction {
            cycles,
            insts,
            matched,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bbv::Bbv;
    use gpu_isa::{BasicBlockId, BasicBlockMap, Inst};
    use gpu_sim::WarpTrace;

    fn map() -> BasicBlockMap {
        BasicBlockMap::from_program(&[
            Inst::SBarrier,
            Inst::SBarrier,
            Inst::SBarrier,
            Inst::SEndpgm,
        ])
    }

    fn bbv(counts: &[(u32, u32)]) -> Bbv {
        let insts = counts.iter().map(|(_, c)| *c as u64).sum();
        let t = WarpTrace::from_counts(
            counts.iter().map(|&(b, c)| (BasicBlockId(b), c)).collect(),
            insts,
        );
        Bbv::from_trace(&t, &map())
    }

    fn record(name: &str, counts: &[(u32, u32)], warps: u64, ipw: f64, ipc: f64) -> KernelRecord {
        let g = GpuBbv::new(vec![(bbv(counts), warps)], ipw);
        let est = ipw * warps as f64;
        KernelRecord {
            name: name.into(),
            gpu_bbv: g,
            total_warps: warps,
            sample_insts: (ipw * (warps as f64 * 0.01).max(1.0)) as u64,
            est_total_insts: est,
            cycles: (est / ipc) as Cycle,
            ipc,
        }
    }

    #[test]
    fn identical_kernel_matches() {
        let mut h = KernelHistory::new();
        h.push(record("k", &[(0, 10), (1, 5)], 1000, 15.0, 2.0));
        let g = GpuBbv::new(vec![(bbv(&[(0, 10), (1, 5)]), 1000)], 15.0);
        let m = h.find_match(&g, 1000, 64, 0.25);
        assert_eq!(m, Some(0));
    }

    #[test]
    fn different_kernel_does_not_match() {
        let mut h = KernelHistory::new();
        h.push(record("k", &[(0, 10)], 1000, 10.0, 2.0));
        let g = GpuBbv::new(vec![(bbv(&[(2, 10)]), 1000)], 10.0);
        assert_eq!(h.find_match(&g, 1000, 64, 0.25), None);
    }

    #[test]
    fn closest_warp_count_wins() {
        let mut h = KernelHistory::new();
        h.push(record("a", &[(0, 10)], 1000, 10.0, 2.0));
        h.push(record("b", &[(0, 10)], 4000, 10.0, 2.5));
        let g = GpuBbv::new(vec![(bbv(&[(0, 10)]), 3500)], 10.0);
        assert_eq!(h.find_match(&g, 3500, 64, 0.25), Some(1));
    }

    #[test]
    fn small_kernels_require_exact_warp_count() {
        let mut h = KernelHistory::new();
        h.push(record("a", &[(0, 10)], 32, 10.0, 2.0));
        let g = GpuBbv::new(vec![(bbv(&[(0, 10)]), 48)], 10.0);
        // 48 < 64 CUs and 48 != 32: no match
        assert_eq!(h.find_match(&g, 48, 64, 0.25), None);
        // exact count matches
        let g32 = GpuBbv::new(vec![(bbv(&[(0, 10)]), 32)], 10.0);
        assert_eq!(h.find_match(&g32, 32, 64, 0.25), Some(0));
    }

    #[test]
    fn small_history_record_requires_exact_count_too() {
        let mut h = KernelHistory::new();
        h.push(record("a", &[(0, 10)], 32, 10.0, 2.0));
        // new kernel is large (>= num_cus) but record is small: exact only
        let g = GpuBbv::new(vec![(bbv(&[(0, 10)]), 500)], 10.0);
        assert_eq!(h.find_match(&g, 500, 64, 0.25), None);
    }

    #[test]
    fn prediction_scales_with_sample() {
        let mut h = KernelHistory::new();
        let r = record("a", &[(0, 10)], 1000, 10.0, 2.0);
        let sample = r.sample_insts;
        let est = r.est_total_insts;
        h.push(r);
        // twice the sample instructions → twice the kernel instructions
        let p = h.predict(0, sample * 2);
        assert!((p.insts - 2.0 * est).abs() < 1e-6);
        assert_eq!(p.cycles, (2.0 * est / 2.0).round() as Cycle);
    }
}

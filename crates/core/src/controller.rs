//! The Photon controller (paper §4): the multi-tiered composition of
//! kernel-, warp-, and basic-block-sampling with purely online analysis.
//!
//! Per kernel:
//! 1. Trace a 1 % warp sample (copy-on-write, no side effects) and build
//!    the online analysis (warp types, block distribution, GPU BBV).
//! 2. If kernel-sampling is enabled and a prior kernel matches, skip the
//!    kernel with a predicted time.
//! 3. Otherwise start detailed simulation with the basic-block and warp
//!    detectors running concurrently. Basic-block-sampling switches in
//!    when the stable-block rate crosses its threshold; warp-sampling
//!    (which is faster, needing no functional execution) takes over
//!    whenever its criteria are met, even from basic-block-sampling.
//! 4. Photon falls back to full detailed simulation when nothing
//!    stabilizes.

use crate::analysis::{sample_warp_ids, OnlineAnalysis};
use crate::bb_sampling::BbSampler;
use crate::config::PhotonConfig;
use crate::interval::LatencyTable;
use crate::kernel_sampling::{KernelHistory, KernelRecord};
use crate::warp_sampling::WarpSampler;
use gpu_isa::{InstClass, Program};
use gpu_sim::{
    BbRecord, Cycle, KernelDirective, KernelResult, KernelStartAccess, SamplingController,
    WarpRecord, WarpTrace, WgMode,
};
use gpu_telemetry::faults::{self, FaultSite};
use gpu_telemetry::{Counter, EventKind, Telemetry, Trace, TraceEvent};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One diagnostic row per basic block: `(block index, records, slope,
/// stable, instruction share)`.
pub type BbDetectorRow = (usize, u64, Option<f64>, bool, f64);

/// Counters describing what Photon did across a run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhotonStats {
    /// Kernels launched.
    pub kernels: u64,
    /// Kernels skipped by kernel-sampling.
    pub kernels_skipped: u64,
    /// Kernels that switched to basic-block-sampling.
    pub bb_switches: u64,
    /// Kernels that switched to warp-sampling.
    pub warp_switches: u64,
    /// Kernels that ran fully detailed (no level triggered).
    pub full_detailed: u64,
}

/// Registry mirrors of [`PhotonStats`] plus the decision-event trace
/// handle. Starts against a private registry so a bare controller works
/// in tests; `attach_telemetry` swaps in the engine's shared handle
/// before every launch.
struct PhotonTelemetry {
    trace: Trace,
    kernels: Counter,
    kernels_skipped: Counter,
    bb_switches: Counter,
    warp_switches: Counter,
    full_detailed: Counter,
}

impl PhotonTelemetry {
    fn new(tel: &Telemetry) -> Self {
        PhotonTelemetry {
            trace: tel.trace().clone(),
            kernels: tel.counter("photon.kernels"),
            kernels_skipped: tel.counter("photon.kernels.skipped"),
            bb_switches: tel.counter("photon.bb_switches"),
            warp_switches: tel.counter("photon.warp_switches"),
            full_detailed: tel.counter("photon.full_detailed"),
        }
    }

    /// Emits a `ControllerDecision` event; `detail` is only rendered
    /// when tracing is compiled in and active.
    fn decision(&self, ts: Cycle, decision: &str, detail: impl FnOnce() -> String) {
        self.trace.emit_with(|| TraceEvent {
            ts,
            dur: 0,
            kind: EventKind::ControllerDecision {
                controller: "photon".to_string(),
                decision: decision.to_string(),
                detail: detail(),
            },
        });
    }
}

impl Default for PhotonTelemetry {
    fn default() -> Self {
        Self::new(&Telemetry::default())
    }
}

struct KernelState {
    program: Arc<Program>,
    analysis: OnlineAnalysis,
    bb_sampler: BbSampler,
    warp_sampler: WarpSampler,
    mode: WgMode,
    kernel_start: Option<Cycle>,
    switched_bb: bool,
    switched_warp: bool,
}

/// The Photon sampled-simulation controller.
///
/// # Example
/// ```no_run
/// use gpu_sim::{GpuConfig, GpuSimulator};
/// use photon::{PhotonConfig, PhotonController};
/// # let launch: gpu_isa::KernelLaunch = unimplemented!();
/// let mut gpu = GpuSimulator::new(GpuConfig::r9_nano());
/// let mut photon = PhotonController::new(PhotonConfig::default(), 64);
/// let result = gpu.run_kernel_sampled(&launch, &mut photon).unwrap();
/// println!("sampled fraction: {}", result.sampled_fraction());
/// ```
pub struct PhotonController {
    cfg: PhotonConfig,
    num_cus: u64,
    history: KernelHistory,
    table: LatencyTable,
    state: Option<KernelState>,
    stats: PhotonStats,
    tel: PhotonTelemetry,
    /// Analyses in launch order (exported for offline reuse).
    recorded_analyses: Vec<OnlineAnalysis>,
    /// Pre-recorded analyses consumed instead of tracing (offline mode).
    offline_analyses: Option<Vec<OnlineAnalysis>>,
    offline_cursor: usize,
    last_bb_stats: Option<Vec<BbDetectorRow>>,
    last_bb_means: Option<Vec<(usize, Option<f64>, u64)>>,
}

impl std::fmt::Debug for PhotonController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PhotonController")
            .field("stats", &self.stats)
            .field("history_len", &self.history.records().len())
            .finish_non_exhaustive()
    }
}

impl PhotonController {
    /// Creates a controller for a GPU with `num_cus` compute units.
    pub fn new(cfg: PhotonConfig, num_cus: u64) -> Self {
        PhotonController {
            cfg,
            num_cus,
            history: KernelHistory::new(),
            table: LatencyTable::new(),
            state: None,
            stats: PhotonStats::default(),
            tel: PhotonTelemetry::default(),
            recorded_analyses: Vec::new(),
            offline_analyses: None,
            offline_cursor: 0,
            last_bb_stats: None,
            last_bb_means: None,
        }
    }

    /// Creates a controller that reuses previously exported analyses
    /// (paper §6.3 "Online/Offline Tradeoff") instead of re-tracing.
    pub fn with_offline(cfg: PhotonConfig, num_cus: u64, analyses: Vec<OnlineAnalysis>) -> Self {
        let mut c = Self::new(cfg, num_cus);
        c.offline_analyses = Some(analyses);
        c
    }

    /// What Photon did so far.
    pub fn stats(&self) -> PhotonStats {
        self.stats
    }

    /// The kernel history accumulated so far.
    pub fn history(&self) -> &KernelHistory {
        &self.history
    }

    /// Exports the per-kernel analyses (micro-architecture agnostic)
    /// for offline reuse.
    pub fn export_analyses(&self) -> &[OnlineAnalysis] {
        &self.recorded_analyses
    }

    /// Diagnostic view of the current kernel's basic-block detectors
    /// (`(block, records, slope, stable, share)` rows), if a kernel is
    /// in flight.
    pub fn bb_detector_stats(&self) -> Option<Vec<BbDetectorRow>> {
        self.state.as_ref().map(|s| s.bb_sampler.detector_stats())
    }

    /// The current kernel's stable-block rate, if a kernel is in flight.
    pub fn bb_stable_rate(&self) -> Option<f64> {
        self.state.as_ref().map(|s| s.bb_sampler.stable_rate())
    }

    /// Detector stats snapshot taken when the last kernel finished.
    pub fn last_bb_detector_stats(&self) -> Option<&[BbDetectorRow]> {
        self.last_bb_stats.as_deref()
    }

    /// Mean-duration snapshot taken when the last kernel finished.
    pub fn last_bb_means(&self) -> Option<&[(usize, Option<f64>, u64)]> {
        self.last_bb_means.as_deref()
    }

    /// Traces the online sample, returning `None` (= fall back to
    /// detailed simulation) when a sample warp faults or the launch has
    /// nothing to sample.
    fn obtain_analysis(&mut self, ctx: &mut dyn KernelStartAccess) -> Option<OnlineAnalysis> {
        if let Some(pre) = &self.offline_analyses {
            if let Some(a) = pre.get(self.offline_cursor) {
                self.offline_cursor += 1;
                return Some(a.clone());
            }
        }
        let total = ctx.total_warps();
        let ids = sample_warp_ids(total, self.cfg.sample_fraction, self.cfg.min_sample_warps);
        let mut traces: Vec<WarpTrace> = Vec::with_capacity(ids.len());
        for &w in &ids {
            match ctx.trace_warp(w) {
                Ok(t) => traces.push(t),
                Err(e) => {
                    eprintln!(
                        "photon: online analysis of kernel `{}` failed tracing warp {w}: {e}; \
                         falling back to detailed simulation",
                        ctx.launch().kernel.name()
                    );
                    return None;
                }
            }
        }
        let bb_map = ctx.launch().kernel.program().basic_blocks();
        OnlineAnalysis::from_traces(&traces, bb_map)
    }
}

impl SamplingController for PhotonController {
    fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.tel = PhotonTelemetry::new(telemetry);
    }

    fn on_kernel_start(&mut self, ctx: &mut dyn KernelStartAccess) -> KernelDirective {
        self.stats.kernels += 1;
        self.tel.kernels.inc();
        let clock = ctx.clock();
        let Some(analysis) = self.obtain_analysis(ctx) else {
            // No usable sample: run fully detailed. With no KernelState,
            // dispatch_mode stays Detailed and on_kernel_end records
            // nothing, so a bad kernel cannot poison the history.
            self.state = None;
            self.stats.full_detailed += 1;
            self.tel.full_detailed.inc();
            self.tel.decision(clock, "fallback-detailed", || {
                "online analysis failed; simulating fully detailed".to_string()
            });
            return KernelDirective::Simulate;
        };
        self.recorded_analyses.push(analysis.clone());
        let total_warps = ctx.total_warps();
        let launch = ctx.launch();
        let program = Arc::clone(launch.kernel.program());

        if self.cfg.levels.kernel {
            if let Some(m) = self.history.find_match(
                &analysis.gpu_bbv,
                total_warps,
                self.num_cus,
                self.cfg.kernel_distance,
            ) {
                let scaled_sample =
                    (analysis.insts_per_warp * (analysis.sampled_warps as f64)).round() as u64;
                let mut p = self.history.predict(m, scaled_sample);
                // The controller.zero_cycle fault degenerates the
                // prediction right where the guardrail below must
                // catch it (no-op unless faults are configured).
                if faults::active()
                    && faults::should_inject(
                        FaultSite::ControllerZeroCycle,
                        gpu_isa::fnv1a(launch.kernel.name().as_bytes()),
                    )
                {
                    p.cycles = 0;
                }
                if p.cycles > 0 {
                    self.stats.kernels_skipped += 1;
                    self.tel.kernels_skipped.inc();
                    self.tel.decision(clock, "kernel-skip", || {
                        format!("matched history entry {m}; predicted {} cycles", p.cycles)
                    });
                    // Record this instance too, so later launches can
                    // match the closest warp count.
                    let ipc = self.history.records()[m].ipc;
                    self.history.push(KernelRecord {
                        name: launch.kernel.name().to_string(),
                        gpu_bbv: analysis.gpu_bbv.clone(),
                        total_warps,
                        sample_insts: analysis.sample_insts,
                        est_total_insts: analysis.insts_per_warp * total_warps as f64,
                        cycles: p.cycles,
                        ipc,
                    });
                    self.state = None;
                    return KernelDirective::Skip {
                        predicted_cycles: p.cycles,
                        functional_replay: self.cfg.functional_replay,
                    };
                }
                // A degenerate prediction (matched kernel had no
                // measurable cycles) would skip the kernel for free and
                // corrupt the clock; simulate in detail instead.
                eprintln!(
                    "photon: kernel `{}` matched history entry with zero predicted \
                     cycles; simulating in detail instead of skipping",
                    launch.kernel.name()
                );
                self.tel.decision(clock, "skip-refused", || {
                    "history match predicted zero cycles; simulating in detail".to_string()
                });
            }
        }

        let bb_count = program.basic_blocks().len();
        self.state = Some(KernelState {
            bb_sampler: BbSampler::new(bb_count, &analysis, &self.cfg),
            warp_sampler: WarpSampler::new(&analysis, &self.cfg),
            analysis,
            program,
            mode: WgMode::Detailed,
            kernel_start: None,
            switched_bb: false,
            switched_warp: false,
        });
        KernelDirective::Simulate
    }

    fn dispatch_mode(&mut self) -> WgMode {
        self.state.as_ref().map_or(WgMode::Detailed, |s| s.mode)
    }

    fn on_bb_record(&mut self, rec: &BbRecord) {
        let Some(st) = self.state.as_mut() else {
            return;
        };
        let base = *st.kernel_start.get_or_insert(rec.start);
        let rebased = BbRecord {
            start: rec.start.saturating_sub(base),
            end: rec.end.saturating_sub(base),
            ..*rec
        };
        st.bb_sampler.on_record(&rebased);
        if self.cfg.levels.bb && st.mode == WgMode::Detailed && st.bb_sampler.is_triggered() {
            st.mode = WgMode::BbSampled;
            if !st.switched_bb {
                st.switched_bb = true;
                self.stats.bb_switches += 1;
                self.tel.bb_switches.inc();
                let rate = st.bb_sampler.stable_rate();
                self.tel.decision(rec.end, "switch-bb", || {
                    format!("stable-block rate {rate:.2} crossed threshold")
                });
            }
        }
    }

    fn on_warp_retire(&mut self, rec: &WarpRecord) {
        let Some(st) = self.state.as_mut() else {
            return;
        };
        let base = *st.kernel_start.get_or_insert(rec.issue);
        let rebased = WarpRecord {
            issue: rec.issue.saturating_sub(base),
            retire: rec.retire.saturating_sub(base),
            ..*rec
        };
        st.warp_sampler.on_warp(&rebased);
        if self.cfg.levels.warp && st.mode != WgMode::WarpSampled && st.warp_sampler.is_triggered()
        {
            st.mode = WgMode::WarpSampled;
            if !st.switched_warp {
                st.switched_warp = true;
                self.stats.warp_switches += 1;
                self.tel.warp_switches.inc();
                self.tel.decision(rec.retire, "switch-warp", || {
                    "warp-sampling criteria met".to_string()
                });
            }
        }
    }

    fn on_inst_retire(&mut self, class: InstClass, latency: Cycle) {
        self.table.observe(class, latency);
    }

    fn predict_warp_bb(&mut self, trace: &WarpTrace) -> Cycle {
        let Some(st) = self.state.as_ref() else {
            return 1;
        };
        st.bb_sampler.predict_warp(trace, &st.program, &self.table)
    }

    fn predict_warp_avg(&mut self) -> Cycle {
        self.state.as_ref().map_or(1, |s| s.warp_sampler.predict())
    }

    fn on_kernel_end(&mut self, result: &KernelResult) {
        if result.skipped {
            return;
        }
        let Some(st) = self.state.take() else { return };
        self.last_bb_stats = Some(st.bb_sampler.detector_stats());
        self.last_bb_means = Some(st.bb_sampler.mean_durations());
        if !st.switched_bb && !st.switched_warp {
            self.stats.full_detailed += 1;
            self.tel.full_detailed.inc();
            self.tel.decision(
                result.start_cycle.saturating_add(result.cycles),
                "full-detailed",
                || "no sampling level triggered".to_string(),
            );
        }
        let est_total_insts = st.analysis.insts_per_warp * result.total_warps as f64;
        let ipc = if result.cycles > 0 {
            est_total_insts / result.cycles as f64
        } else {
            0.0
        };
        self.history.push(KernelRecord {
            name: result.name.clone(),
            gpu_bbv: st.analysis.gpu_bbv.clone(),
            total_warps: result.total_warps,
            sample_insts: st.analysis.sample_insts,
            est_total_insts,
            cycles: result.cycles,
            ipc,
        });
    }

    fn bb_predictions(&mut self) -> Vec<(u32, f64)> {
        // Published from the BB-sampler means captured at kernel end, so
        // the engine can pair the predictions against its measured
        // per-BB timing for the error decomposition in run reports.
        self.last_bb_means
            .as_deref()
            .unwrap_or(&[])
            .iter()
            .filter_map(|&(bb, mean, _count)| mean.map(|m| (bb as u32, m)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Levels;

    #[test]
    fn stats_start_zeroed() {
        let c = PhotonController::new(PhotonConfig::default(), 64);
        assert_eq!(c.stats(), PhotonStats::default());
        assert!(c.history().records().is_empty());
    }

    #[test]
    fn dispatch_mode_defaults_to_detailed() {
        let mut c = PhotonController::new(PhotonConfig::with_levels(Levels::none()), 64);
        assert_eq!(c.dispatch_mode(), WgMode::Detailed);
        assert_eq!(c.predict_warp_avg(), 1);
    }
}

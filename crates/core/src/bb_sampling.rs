//! Basic-block sampling (paper §4.1, Figure 7).
//!
//! During detailed simulation the sampler watches every basic-block
//! record through a per-block [`RollingStability`] detector. The share
//! of kernel instructions (from the online 1 % sample) attributed to
//! currently-stable blocks is the *stable rate*; once it exceeds the
//! threshold (95 %), remaining warps are functionally simulated and
//! their durations predicted as the sum of their blocks' mean stable
//! times — rare blocks fall back to the interval model of Figure 9.

use crate::analysis::OnlineAnalysis;
use crate::config::PhotonConfig;
use crate::interval::{predict_block_interval, LatencyTable};
use crate::ls::RollingStability;
use gpu_isa::Program;
use gpu_sim::{BbRecord, Cycle, WarpTrace};

/// Per-kernel basic-block sampling state.
#[derive(Debug)]
pub struct BbSampler {
    /// Per-block stability detector (index = block id).
    detectors: Vec<RollingStability>,
    /// Per-block instruction share from online analysis.
    shares: Vec<f64>,
    /// Cached stability flags.
    stable: Vec<bool>,
    /// Instruction-weighted share of currently stable blocks.
    stable_share: f64,
    /// Share threshold to trigger (e.g. 0.95).
    trigger_rate: f64,
    /// Blocks under this share don't need to stabilize (rare blocks).
    rare_share: f64,
    /// Total share of non-rare blocks (the denominator of the rate).
    significant_share: f64,
    records_seen: u64,
}

impl BbSampler {
    /// Creates the sampler for a kernel with `bb_count` blocks.
    pub fn new(bb_count: usize, analysis: &OnlineAnalysis, cfg: &PhotonConfig) -> Self {
        let mut shares = vec![0.0f64; bb_count];
        for (bb, share) in &analysis.bb_inst_share {
            if bb.index() < bb_count {
                shares[bb.index()] = *share;
            }
        }
        let significant_share: f64 = shares.iter().filter(|&&s| s >= cfg.rare_bb_share).sum();
        BbSampler {
            detectors: (0..bb_count)
                .map(|_| RollingStability::new(cfg.bb_window, cfg.delta))
                .collect(),
            stable: vec![false; bb_count],
            shares,
            stable_share: 0.0,
            trigger_rate: cfg.stable_bb_rate,
            rare_share: cfg.rare_bb_share,
            significant_share,
            records_seen: 0,
        }
    }

    /// Feeds one basic-block record (cycles should be rebased to the
    /// kernel start for numerical stability).
    pub fn on_record(&mut self, rec: &BbRecord) {
        let i = rec.bb.index();
        if i >= self.detectors.len() {
            return;
        }
        self.records_seen += 1;
        self.detectors[i].push(rec.start as f64, rec.end as f64);
        let now_stable = self.detectors[i].is_stable();
        if now_stable != self.stable[i] {
            let share = self.shares[i];
            if share >= self.rare_share {
                if now_stable {
                    self.stable_share += share;
                } else {
                    self.stable_share -= share;
                }
            }
            self.stable[i] = now_stable;
        }
    }

    /// The current stable rate: stable share over significant share.
    pub fn stable_rate(&self) -> f64 {
        if self.significant_share <= 0.0 {
            0.0
        } else {
            (self.stable_share / self.significant_share).clamp(0.0, 1.0)
        }
    }

    /// Whether basic-block sampling should take over.
    pub fn is_triggered(&self) -> bool {
        self.records_seen > 0 && self.stable_rate() >= self.trigger_rate
    }

    /// Records observed so far.
    pub fn records_seen(&self) -> u64 {
        self.records_seen
    }

    /// Per-block diagnostic row: `(block index, records, slope, stable,
    /// instruction share)` — used by the observation figures and for
    /// threshold tuning.
    pub fn detector_stats(&self) -> Vec<crate::controller::BbDetectorRow> {
        self.detectors
            .iter()
            .enumerate()
            .map(|(i, d)| (i, d.len(), d.slope(), self.stable[i], self.shares[i]))
            .collect()
    }

    /// The current per-block mean-duration estimates (diagnostics).
    pub fn mean_durations(&self) -> Vec<(usize, Option<f64>, u64)> {
        self.detectors
            .iter()
            .enumerate()
            .map(|(i, d)| (i, d.mean_duration(), d.len()))
            .collect()
    }

    /// Predicts a warp's duration from its functional trace: the sum of
    /// per-block mean times, with the interval model covering blocks
    /// that never produced online timings (rare blocks).
    pub fn predict_warp(
        &self,
        trace: &WarpTrace,
        program: &Program,
        table: &LatencyTable,
    ) -> Cycle {
        let bb_map = program.basic_blocks();
        let mut total = 0.0f64;
        for &(bb, count) in &trace.bb_counts {
            let i = bb.index();
            let per_exec = self
                .detectors
                .get(i)
                .and_then(|d| d.mean_duration())
                .unwrap_or_else(|| {
                    let block = bb_map.block(bb);
                    predict_block_interval(program, block.start_pc, block.len, table)
                });
            total += per_exec * count as f64;
        }
        total.round().max(1.0) as Cycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_isa::{BasicBlockId, BasicBlockMap, Inst};
    use gpu_sim::WarpTrace;

    fn analysis_with_shares(shares: &[(u32, f64)], map: &BasicBlockMap) -> OnlineAnalysis {
        // Build via a synthetic trace that reproduces the desired shares
        // (all blocks have len 1 in the barrier program).
        let counts: Vec<(BasicBlockId, u32)> = shares
            .iter()
            .map(|&(b, s)| (BasicBlockId(b), (s * 1000.0) as u32))
            .collect();
        let insts = counts.iter().map(|(_, c)| *c as u64).sum();
        let t = WarpTrace::from_counts(counts, insts);
        OnlineAnalysis::from_traces(&[t], map).unwrap()
    }

    fn barrier_map(n: usize) -> BasicBlockMap {
        let mut insts = Vec::new();
        for _ in 0..n - 1 {
            insts.push(Inst::SBarrier);
        }
        insts.push(Inst::SEndpgm);
        BasicBlockMap::from_program(&insts)
    }

    fn cfg(window: usize) -> PhotonConfig {
        PhotonConfig::default().small_windows(window, window)
    }

    fn rec(bb: u32, start: u64, end: u64) -> BbRecord {
        BbRecord {
            warp: 0,
            bb: BasicBlockId(bb),
            start,
            end,
            insts: 1,
        }
    }

    #[test]
    fn triggers_when_dominant_block_stabilizes() {
        let map = barrier_map(3);
        let oa = analysis_with_shares(&[(0, 0.990), (1, 0.009), (2, 0.001)], &map);
        let c = cfg(16);
        let mut s = BbSampler::new(3, &oa, &c);
        assert!(!s.is_triggered());
        for i in 0..64u64 {
            s.on_record(&rec(0, i * 100, i * 100 + 40));
        }
        assert!(s.is_triggered(), "rate = {}", s.stable_rate());
    }

    #[test]
    fn unstable_durations_do_not_trigger() {
        let map = barrier_map(2);
        let oa = analysis_with_shares(&[(0, 0.99), (1, 0.01)], &map);
        let c = cfg(16);
        let mut s = BbSampler::new(2, &oa, &c);
        for i in 0..64u64 {
            // duration grows with time: slope far from 1
            s.on_record(&rec(0, i * 100, i * 100 + 40 + i * 50));
        }
        assert!(!s.is_triggered(), "rate = {}", s.stable_rate());
    }

    #[test]
    fn rare_blocks_do_not_block_trigger() {
        // dominant block stable, a rare one never seen at all
        let map = barrier_map(3);
        let oa = analysis_with_shares(&[(0, 0.999), (2, 0.001)], &map);
        let c = cfg(8);
        let mut s = BbSampler::new(3, &oa, &c);
        for i in 0..32u64 {
            s.on_record(&rec(0, i * 10, i * 10 + 7));
        }
        assert!(s.is_triggered());
    }

    #[test]
    fn prediction_sums_block_times() {
        let map = barrier_map(2);
        let oa = analysis_with_shares(&[(0, 0.5), (1, 0.5)], &map);
        let c = cfg(8);
        let mut s = BbSampler::new(2, &oa, &c);
        for i in 0..32u64 {
            s.on_record(&rec(0, i * 100, i * 100 + 30));
            s.on_record(&rec(1, i * 100, i * 100 + 70));
        }
        // trace: bb0 x2, bb1 x1 → 2*30 + 70 = 130
        let program = {
            let insts = vec![Inst::SBarrier, Inst::SEndpgm];
            Program::from_insts("t", insts).unwrap()
        };
        let trace = WarpTrace::from_counts(vec![(BasicBlockId(0), 2), (BasicBlockId(1), 1)], 3);
        let p = s.predict_warp(&trace, &program, &LatencyTable::new());
        assert_eq!(p, 130);
    }

    #[test]
    fn unseen_block_uses_interval_model() {
        let program = Program::from_insts("t", vec![Inst::SBarrier, Inst::SEndpgm]).unwrap();
        let map = program.basic_blocks().clone();
        let oa = analysis_with_shares(&[(0, 1.0)], &map);
        let c = cfg(8);
        let s = BbSampler::new(2, &oa, &c);
        // no records at all: prediction must still be positive
        let trace = WarpTrace::from_counts(vec![(BasicBlockId(1), 1)], 1);
        let p = s.predict_warp(&trace, &program, &LatencyTable::new());
        assert!(p >= 1);
    }

    #[test]
    fn destabilization_lowers_rate() {
        let map = barrier_map(2);
        let oa = analysis_with_shares(&[(0, 1.0)], &map);
        let c = cfg(8);
        let mut s = BbSampler::new(2, &oa, &c);
        for i in 0..32u64 {
            s.on_record(&rec(0, i * 10, i * 10 + 5));
        }
        assert!(s.is_triggered());
        // level shift destabilizes the mean check: with window 8, the
        // recent window is now all at the new level while the previous
        // window still holds the old level
        for i in 32..40u64 {
            s.on_record(&rec(0, i * 10, i * 10 + 500));
        }
        assert!(!s.is_triggered());
    }
}

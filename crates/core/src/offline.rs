//! Offline reuse of online-analysis data (paper §6.3).
//!
//! Everything Photon's online analysis produces — warp types, block
//! distributions, GPU BBVs — is micro-architecture agnostic, so a run's
//! analyses can be saved and replayed on later simulations of the same
//! binary (e.g. while sweeping hardware configurations), skipping the
//! functional tracing pass.

use crate::analysis::OnlineAnalysis;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use std::path::Path;

/// Persisted per-kernel analyses, in launch order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OfflineData {
    /// Format version for forward compatibility.
    pub version: u32,
    /// One analysis per kernel launch.
    pub analyses: Vec<OnlineAnalysis>,
}

/// Errors loading or saving offline analysis data.
#[derive(Debug)]
pub enum OfflineError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Malformed JSON.
    Parse(serde_json::Error),
    /// The file's version is not supported.
    UnsupportedVersion {
        /// Version found in the file.
        found: u32,
    },
}

impl fmt::Display for OfflineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OfflineError::Io(e) => write!(f, "offline data io failure: {e}"),
            OfflineError::Parse(e) => write!(f, "offline data parse failure: {e}"),
            OfflineError::UnsupportedVersion { found } => {
                write!(f, "unsupported offline data version {found}")
            }
        }
    }
}

impl Error for OfflineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            OfflineError::Io(e) => Some(e),
            OfflineError::Parse(e) => Some(e),
            OfflineError::UnsupportedVersion { .. } => None,
        }
    }
}

const VERSION: u32 = 1;

impl OfflineData {
    /// Wraps analyses exported from a
    /// [`crate::PhotonController`].
    pub fn new(analyses: Vec<OnlineAnalysis>) -> Self {
        OfflineData {
            version: VERSION,
            analyses,
        }
    }

    /// Serializes to a JSON string.
    ///
    /// # Errors
    /// Returns [`OfflineError::Parse`] on serialization failure.
    pub fn to_json(&self) -> Result<String, OfflineError> {
        serde_json::to_string(self).map_err(OfflineError::Parse)
    }

    /// Parses from a JSON string.
    ///
    /// # Errors
    /// Returns [`OfflineError::Parse`] for malformed input and
    /// [`OfflineError::UnsupportedVersion`] for foreign versions.
    pub fn from_json(s: &str) -> Result<Self, OfflineError> {
        let data: OfflineData = serde_json::from_str(s).map_err(OfflineError::Parse)?;
        if data.version != VERSION {
            return Err(OfflineError::UnsupportedVersion {
                found: data.version,
            });
        }
        Ok(data)
    }

    /// Saves to a file.
    ///
    /// # Errors
    /// Returns [`OfflineError::Io`] or [`OfflineError::Parse`].
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), OfflineError> {
        std::fs::write(path, self.to_json()?).map_err(OfflineError::Io)
    }

    /// Loads from a file.
    ///
    /// # Errors
    /// Returns [`OfflineError::Io`], [`OfflineError::Parse`], or
    /// [`OfflineError::UnsupportedVersion`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, OfflineError> {
        let s = std::fs::read_to_string(path).map_err(OfflineError::Io)?;
        Self::from_json(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_isa::{BasicBlockId, BasicBlockMap, Inst};
    use gpu_sim::WarpTrace;

    fn sample_analysis() -> OnlineAnalysis {
        let map = BasicBlockMap::from_program(&[Inst::SBarrier, Inst::SEndpgm]);
        let t = WarpTrace::from_counts(vec![(BasicBlockId(0), 3), (BasicBlockId(1), 1)], 4);
        OnlineAnalysis::from_traces(&[t.clone(), t], &map).unwrap()
    }

    #[test]
    fn json_roundtrip() {
        let data = OfflineData::new(vec![sample_analysis()]);
        let json = data.to_json().unwrap();
        let back = OfflineData::from_json(&json).unwrap();
        assert_eq!(back.analyses.len(), 1);
        assert_eq!(back.analyses[0].sampled_warps, 2);
        assert_eq!(
            back.analyses[0].gpu_bbv.entries().len(),
            data.analyses[0].gpu_bbv.entries().len()
        );
    }

    #[test]
    fn version_checked() {
        let data = OfflineData::new(vec![]);
        let mut json = data.to_json().unwrap();
        json = json.replace("\"version\":1", "\"version\":99");
        assert!(matches!(
            OfflineData::from_json(&json),
            Err(OfflineError::UnsupportedVersion { found: 99 })
        ));
    }

    #[test]
    fn malformed_json_errors() {
        assert!(matches!(
            OfflineData::from_json("{nope"),
            Err(OfflineError::Parse(_))
        ));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("photon_offline_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("analysis.json");
        let data = OfflineData::new(vec![sample_analysis()]);
        data.save(&path).unwrap();
        let back = OfflineData::load(&path).unwrap();
        assert_eq!(back.analyses.len(), 1);
        std::fs::remove_file(&path).ok();
    }
}

//! Least-squares stability detection (paper §4.1, Equation 1).
//!
//! Photon decides that a stream of (issue time, retired time) points is
//! *stable* when the slope `a` of the least-squares line over the last
//! `n` points satisfies `|1 − a| < δ`: execution time no longer depends
//! on issue time once inter-warp competition has stabilized. A second
//! check guards against local optima (paper §4.1): the mean duration of
//! the last `n` points must also be within `δ` of the mean over the
//! previous `n` points.

use std::collections::VecDeque;

/// Plain least-squares fit `y = a·x + b` over a point set.
///
/// Returns `None` when fewer than two points or when x has no variance.
///
/// # Example
/// ```
/// use photon::least_squares;
/// let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 2.0 * i as f64 + 1.0)).collect();
/// let (a, b) = least_squares(&pts).unwrap();
/// assert!((a - 2.0).abs() < 1e-9);
/// assert!((b - 1.0).abs() < 1e-9);
/// ```
pub fn least_squares(points: &[(f64, f64)]) -> Option<(f64, f64)> {
    let n = points.len() as f64;
    if points.len() < 2 {
        return None;
    }
    let (mut sx, mut sy, mut sxy, mut sxx) = (0.0, 0.0, 0.0, 0.0);
    for &(x, y) in points {
        sx += x;
        sy += y;
        sxy += x * y;
        sxx += x * x;
    }
    let denom = sxx - sx * sx / n;
    if denom.abs() < 1e-9 {
        return None;
    }
    let a = (sxy - sx * sy / n) / denom;
    let b = sy / n - a * sx / n;
    Some((a, b))
}

/// A sliding-window least-squares slope detector with the paper's
/// local-optimum guard.
///
/// Feed `(issue, retired)` pairs with [`RollingStability::push`]; the
/// detector reports stability when
///
/// 1. at least `n` points have been observed,
/// 2. the least-squares slope over the last `n` points is within `δ`
///    of 1, and
/// 3. the mean duration of the last `n` points differs from the mean
///    over the preceding `n` points by less than `δ` (relative).
#[derive(Debug, Clone)]
pub struct RollingStability {
    window: usize,
    delta: f64,
    /// Last `2n` points as (x, y); the newest `n` form the fit window.
    points: VecDeque<(f64, f64)>,
    /// Running sums over the *fit* window (last n).
    sx: f64,
    sy: f64,
    sxy: f64,
    sxx: f64,
    /// Running duration sums over last n, previous n, and the n..3n
    /// window before that.
    dur_recent: f64,
    dur_prev: f64,
    dur_old: f64,
    /// Running sum of squared durations over the fit window.
    dur2_recent: f64,
    total: u64,
}

impl RollingStability {
    /// Creates a detector over windows of `window` points with relative
    /// threshold `delta` (the paper uses `window`=2048 for basic blocks,
    /// 1024 for warps, `delta`=0.03).
    ///
    /// # Panics
    /// Panics if `window == 0` or `delta <= 0`.
    pub fn new(window: usize, delta: f64) -> Self {
        assert!(window > 0, "window must be positive");
        assert!(delta > 0.0, "delta must be positive");
        RollingStability {
            window,
            delta,
            points: VecDeque::with_capacity(2 * window + 1),
            sx: 0.0,
            sy: 0.0,
            sxy: 0.0,
            sxx: 0.0,
            dur_recent: 0.0,
            dur_prev: 0.0,
            dur_old: 0.0,
            dur2_recent: 0.0,
            total: 0,
        }
    }

    /// Number of points observed so far.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// Whether no points have been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Adds one `(issue, retired)` observation.
    pub fn push(&mut self, issue: f64, retired: f64) {
        let dur = retired - issue;
        self.points.push_back((issue, retired));
        self.total += 1;
        // The new point enters the fit window.
        self.sx += issue;
        self.sy += retired;
        self.sxy += issue * retired;
        self.sxx += issue * issue;
        self.dur_recent += dur;
        self.dur2_recent += dur * dur;

        // A point leaving the fit window moves into the "previous" window.
        if self.points.len() > self.window {
            let (ox, oy) = self.points[self.points.len() - self.window - 1];
            self.sx -= ox;
            self.sy -= oy;
            self.sxy -= ox * oy;
            self.sxx -= ox * ox;
            self.dur_recent -= oy - ox;
            self.dur2_recent -= (oy - ox) * (oy - ox);
            self.dur_prev += oy - ox;
        }
        // A point leaving the previous window enters the old window.
        if self.points.len() > 2 * self.window {
            let i = self.points.len() - 2 * self.window - 1;
            let (ox, oy) = self.points[i];
            self.dur_prev -= oy - ox;
            self.dur_old += oy - ox;
        }
        // A point leaving the old window is dropped entirely.
        if self.points.len() > 4 * self.window {
            if let Some((ox, oy)) = self.points.pop_front() {
                self.dur_old -= oy - ox;
            }
        }
    }

    /// Least-squares slope over the current fit window, if computable.
    pub fn slope(&self) -> Option<f64> {
        let n = self.points.len().min(self.window);
        if n < 2 {
            return None;
        }
        let nf = n as f64;
        let denom = self.sxx - self.sx * self.sx / nf;
        if denom.abs() < 1e-9 {
            return None;
        }
        Some((self.sxy - self.sx * self.sy / nf) / denom)
    }

    /// Mean duration over the fit window.
    pub fn mean_duration(&self) -> Option<f64> {
        let n = self.points.len().min(self.window);
        if n == 0 {
            None
        } else {
            Some(self.dur_recent / n as f64)
        }
    }

    /// The slope the fit is expected to produce for a *stationary*
    /// stream observed through a retirement-ordered window.
    ///
    /// Records arrive in retirement order, so within a window
    /// `issue = retired − duration` with `retired` roughly uniform: the
    /// fit of retired-on-issue is biased below 1 by
    /// `var(duration) / var(issue)`. The paper's data has negligible
    /// duration variance relative to the window span, so its expected
    /// slope is simply 1; this model's in-order warps expose raw memory
    /// latencies and need the correction (see DESIGN.md).
    pub fn expected_slope(&self) -> Option<f64> {
        let n = self.points.len().min(self.window);
        if n < 2 {
            return None;
        }
        let nf = n as f64;
        let var_issue = (self.sxx - self.sx * self.sx / nf) / nf;
        if var_issue < 1e-9 {
            return None;
        }
        let mean_dur = self.dur_recent / nf;
        let var_dur = (self.dur2_recent / nf - mean_dur * mean_dur).max(0.0);
        Some((1.0 - var_dur / var_issue).max(0.0))
    }

    /// Whether the stream is currently stable (all three criteria).
    pub fn is_stable(&self) -> bool {
        if self.points.len() < 2 * self.window {
            return false;
        }
        let (Some(a), Some(expect)) = (self.slope(), self.expected_slope()) else {
            return false;
        };
        if (expect - a).abs() >= self.delta {
            return false;
        }
        let recent = self.dur_recent / self.window as f64;
        let prev = self.dur_prev / self.window as f64;
        let scale = recent.abs().max(prev.abs()).max(1e-9);
        if (recent - prev).abs() / scale >= self.delta {
            return false;
        }
        // Slow-drift guard: once enough history exists, the window two
        // back (points 2n..4n ago) must also agree — a slow monotone
        // contention ramp passes adjacent-window checks but not this one.
        let old_n = self
            .points
            .len()
            .saturating_sub(2 * self.window)
            .min(2 * self.window);
        if old_n >= self.window {
            let old = self.dur_old / old_n as f64;
            let scale = recent.abs().max(old.abs()).max(1e-9);
            if (recent - old).abs() / scale >= 2.0 * self.delta {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn least_squares_degenerate_cases() {
        assert_eq!(least_squares(&[]), None);
        assert_eq!(least_squares(&[(1.0, 2.0)]), None);
        // zero x-variance
        assert_eq!(least_squares(&[(3.0, 1.0), (3.0, 2.0)]), None);
    }

    #[test]
    fn stable_stream_detected() {
        // retired = issue + 100: slope exactly 1, constant duration
        let mut d = RollingStability::new(64, 0.03);
        for i in 0..200 {
            let x = i as f64 * 10.0;
            d.push(x, x + 100.0);
        }
        assert!(d.is_stable());
        assert!((d.slope().unwrap() - 1.0).abs() < 1e-9);
        assert!((d.mean_duration().unwrap() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn growing_durations_not_stable() {
        // retired = 2 * issue: slope 2, durations grow
        let mut d = RollingStability::new(64, 0.03);
        for i in 0..200 {
            let x = i as f64 * 10.0;
            d.push(x, 2.0 * x);
        }
        assert!(!d.is_stable());
        assert!((d.slope().unwrap() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn needs_two_full_windows() {
        let mut d = RollingStability::new(64, 0.03);
        for i in 0..127 {
            let x = i as f64;
            d.push(x, x + 5.0);
        }
        assert!(!d.is_stable(), "127 < 2*64 points must not be stable");
        d.push(127.0, 132.0);
        assert!(d.is_stable());
    }

    #[test]
    fn local_optimum_guard_rejects_mean_shift() {
        // Slope within window is 1, but the duration level shifted
        // between the previous and the recent window.
        let mut d = RollingStability::new(64, 0.03);
        for i in 0..64 {
            let x = i as f64 * 10.0;
            d.push(x, x + 100.0);
        }
        for i in 64..128 {
            let x = i as f64 * 10.0;
            d.push(x, x + 200.0);
        }
        // recent window duration=200, previous=100 → rejected
        assert!(!d.is_stable());
        // keep feeding the new level until every window (including the
        // slow-drift guard's 2n..4n window) holds the new level
        for i in 128..384 {
            let x = i as f64 * 10.0;
            d.push(x, x + 200.0);
        }
        assert!(d.is_stable());
    }

    #[test]
    fn noisy_but_flat_stream_is_stable() {
        // durations jitter ±1% around 1000
        let mut d = RollingStability::new(128, 0.03);
        for i in 0..512 {
            let x = i as f64 * 50.0;
            let noise = ((i * 2654435761u64) % 20) as f64 - 10.0;
            d.push(x, x + 1000.0 + noise);
        }
        assert!(d.is_stable());
    }

    #[test]
    fn sliding_sums_match_direct_fit() {
        let mut d = RollingStability::new(32, 0.03);
        let mut pts = Vec::new();
        for i in 0..100u64 {
            let x = (i * 7 % 91) as f64;
            let y = 3.0 * x + 2.0 + (i % 5) as f64;
            d.push(x, y);
            pts.push((x, y));
        }
        let tail: Vec<_> = pts[pts.len() - 32..].to_vec();
        let (a_direct, _) = least_squares(&tail).unwrap();
        let a_rolling = d.slope().unwrap();
        assert!(
            (a_direct - a_rolling).abs() < 1e-6,
            "{a_direct} vs {a_rolling}"
        );
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        let _ = RollingStability::new(0, 0.03);
    }
}

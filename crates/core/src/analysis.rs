//! Photon's online analysis (paper Figs 7/10/12, step 1).
//!
//! At kernel start, Photon functionally simulates a small sample of
//! warps (1 % by default) against a copy-on-write overlay and derives:
//!
//! * the **warp type distribution** — warps with identical BBVs form a
//!   type; warp-sampling requires a dominant type (≥ 95 %),
//! * the **basic-block distribution** — the share of kernel instructions
//!   each block accounts for; blocks below a rarity threshold are
//!   handled by the interval model rather than waited for,
//! * the kernel's **GPU BBV** for kernel-matching.

use crate::bbv::{Bbv, GpuBbv};
use gpu_isa::BasicBlockId;
use gpu_sim::WarpTrace;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Aggregated result of tracing a sample of warps.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OnlineAnalysis {
    /// Distinct warp types with their sampled counts, descending.
    pub types: Vec<(WarpTrace, u64)>,
    /// Fraction of sampled warps in the most frequent type.
    pub dominant_fraction: f64,
    /// Per-block share of sampled instructions, sorted by block id
    /// (a sorted vec rather than a map so it serializes to JSON).
    pub bb_inst_share: Vec<(BasicBlockId, f64)>,
    /// The kernel's GPU BBV.
    pub gpu_bbv: GpuBbv,
    /// Warps sampled.
    pub sampled_warps: u64,
    /// Instructions executed by the sample.
    pub sample_insts: u64,
    /// Mean instructions per sampled warp.
    pub insts_per_warp: f64,
}

impl OnlineAnalysis {
    /// Builds the analysis from sampled warp traces.
    ///
    /// `bb_map` must be the basic-block map of the traced kernel.
    ///
    /// Returns `None` if `traces` is empty (e.g. a zero-warp launch or a
    /// sample whose warps all faulted); callers fall back to detailed
    /// simulation in that case.
    pub fn from_traces(traces: &[WarpTrace], bb_map: &gpu_isa::BasicBlockMap) -> Option<Self> {
        if traces.is_empty() {
            return None;
        }
        let mut by_type: HashMap<&WarpTrace, u64> = HashMap::new();
        for t in traces {
            *by_type.entry(t).or_insert(0) += 1;
        }
        let mut types: Vec<(WarpTrace, u64)> =
            by_type.into_iter().map(|(t, n)| (t.clone(), n)).collect();
        types.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.insts.cmp(&b.0.insts)));
        let total = traces.len() as u64;
        let dominant_fraction = types.first().map_or(0.0, |(_, n)| *n as f64 / total as f64);

        let mut by_block: HashMap<BasicBlockId, f64> = HashMap::new();
        let mut sample_insts = 0u64;
        for t in traces {
            sample_insts += t.insts;
            for &(bb, count) in &t.bb_counts {
                let len = bb_map.block(bb).len as f64;
                *by_block.entry(bb).or_insert(0.0) += count as f64 * len;
            }
        }
        let total_weight: f64 = by_block.values().sum();
        let mut bb_insts: Vec<(BasicBlockId, f64)> = by_block
            .into_iter()
            .map(|(bb, w)| {
                (
                    bb,
                    if total_weight > 0.0 {
                        w / total_weight
                    } else {
                        0.0
                    },
                )
            })
            .collect();
        bb_insts.sort_unstable_by_key(|(bb, _)| *bb);

        let insts_per_warp = sample_insts as f64 / total as f64;
        let typed_bbvs: Vec<(Bbv, u64)> = types
            .iter()
            .map(|(t, n)| (Bbv::from_trace(t, bb_map), *n))
            .collect();
        let gpu_bbv = GpuBbv::new(typed_bbvs, insts_per_warp);

        Some(OnlineAnalysis {
            types,
            dominant_fraction,
            bb_inst_share: bb_insts,
            gpu_bbv,
            sampled_warps: total,
            sample_insts,
            insts_per_warp,
        })
    }

    /// The dominant warp type's trace, if any type exists.
    pub fn dominant_type(&self) -> Option<&WarpTrace> {
        self.types.first().map(|(t, _)| t)
    }

    /// Share of sampled instructions attributed to `bb` (0 if unseen).
    pub fn bb_share(&self, bb: BasicBlockId) -> f64 {
        self.bb_inst_share
            .binary_search_by_key(&bb, |(b, _)| *b)
            .map(|i| self.bb_inst_share[i].1)
            .unwrap_or(0.0)
    }
}

/// Picks `k` sample warp ids evenly spread over `total` warps (Photon's
/// 1 % online sample; always at least `min` and at most `total`).
///
/// # Example
/// ```
/// let ids = photon::sample_warp_ids(1000, 0.01, 4);
/// assert_eq!(ids.len(), 10);
/// assert!(ids.windows(2).all(|w| w[0] < w[1]));
/// ```
pub fn sample_warp_ids(total: u64, fraction: f64, min: u64) -> Vec<u64> {
    if total == 0 {
        return Vec::new();
    }
    let k = ((total as f64 * fraction).ceil() as u64)
        .max(min)
        .min(total);
    let stride = total as f64 / k as f64;
    (0..k)
        .map(|i| ((i as f64 + 0.5) * stride) as u64)
        .map(|w| w.min(total - 1))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_isa::{BasicBlockMap, Inst};

    fn bb_map(n_blocks: usize) -> BasicBlockMap {
        let mut insts = Vec::new();
        for _ in 0..n_blocks - 1 {
            insts.push(Inst::SBarrier);
        }
        insts.push(Inst::SEndpgm);
        BasicBlockMap::from_program(&insts)
    }

    fn trace(counts: &[(u32, u32)]) -> WarpTrace {
        let insts = counts.iter().map(|&(_, c)| c as u64).sum();
        WarpTrace::from_counts(
            counts.iter().map(|&(b, c)| (BasicBlockId(b), c)).collect(),
            insts,
        )
    }

    #[test]
    fn dominant_type_detected() {
        let map = bb_map(4);
        let a = trace(&[(0, 5)]);
        let b = trace(&[(1, 5)]);
        let traces = vec![a.clone(), a.clone(), a.clone(), b];
        let oa = OnlineAnalysis::from_traces(&traces, &map).unwrap();
        assert_eq!(oa.types.len(), 2);
        assert_eq!(oa.dominant_fraction, 0.75);
        assert_eq!(oa.dominant_type(), Some(&a));
    }

    #[test]
    fn bb_shares_sum_to_one() {
        let map = bb_map(4);
        let traces = vec![trace(&[(0, 3), (1, 1)]), trace(&[(0, 1), (2, 2)])];
        let oa = OnlineAnalysis::from_traces(&traces, &map).unwrap();
        let sum: f64 = oa.bb_inst_share.iter().map(|(_, w)| w).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(oa.bb_share(BasicBlockId(0)) > oa.bb_share(BasicBlockId(1)));
        assert_eq!(oa.bb_share(BasicBlockId(3)), 0.0);
    }

    #[test]
    fn sample_ids_properties() {
        // exact 1%
        assert_eq!(sample_warp_ids(10_000, 0.01, 4).len(), 100);
        // minimum enforced
        assert_eq!(sample_warp_ids(100, 0.01, 8).len(), 8);
        // capped at total
        assert_eq!(sample_warp_ids(3, 0.01, 8).len(), 3);
        // empty launch
        assert!(sample_warp_ids(0, 0.01, 8).is_empty());
        // ids strictly within range and unique
        let ids = sample_warp_ids(1_000_000, 0.01, 4);
        assert!(ids.iter().all(|&i| i < 1_000_000));
        let mut sorted = ids.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len());
    }

    #[test]
    fn empty_traces_yield_none() {
        let map = bb_map(2);
        assert!(OnlineAnalysis::from_traces(&[], &map).is_none());
    }
}

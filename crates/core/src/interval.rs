//! Rare-basic-block prediction via interval analysis (paper Figure 9).
//!
//! Basic-block sampling needs an execution-time estimate for *rare*
//! blocks (special-case epilogues, final result writes) that execute too
//! seldom to collect stable online timings. Photon predicts them with a
//! small interval model: instructions issue in order, one per cycle,
//! except that an instruction reading a register still being produced is
//! postponed until the producer retires. Per-class latencies come from
//! an online table filled during detailed simulation; classes never
//! observed fall back to configuration priors (cache/ALU latencies).

use gpu_isa::{Inst, InstClass, MaskReg, Program, ScalarSrc, VectorSrc};
use serde::{Deserialize, Serialize};

/// Online mean latency per instruction class, with priors for classes
/// not yet observed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyTable {
    sums: [f64; 10],
    counts: [u64; 10],
    priors: [f64; 10],
}

impl Default for LatencyTable {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyTable {
    /// Creates a table with priors reflecting typical pipeline and
    /// cache latencies (paper: "we set their initial value according to
    /// the latency of caches and ALUs").
    pub fn new() -> Self {
        let mut priors = [4.0f64; 10];
        priors[InstClass::VectorFloat.index()] = 4.0;
        priors[InstClass::MemLoad.index()] = 150.0;
        priors[InstClass::MemStore.index()] = 4.0;
        priors[InstClass::ScalarMem.index()] = 30.0;
        priors[InstClass::Lds.index()] = 8.0;
        priors[InstClass::Branch.index()] = 4.0;
        priors[InstClass::Barrier.index()] = 4.0;
        priors[InstClass::Other.index()] = 1.0;
        LatencyTable {
            sums: [0.0; 10],
            counts: [0; 10],
            priors,
        }
    }

    /// Records one observed latency (from detailed simulation).
    pub fn observe(&mut self, class: InstClass, latency: u64) {
        let i = class.index();
        self.sums[i] += latency as f64;
        self.counts[i] += 1;
    }

    /// The mean observed latency, or the prior if unobserved.
    pub fn latency(&self, class: InstClass) -> f64 {
        let i = class.index();
        if self.counts[i] == 0 {
            self.priors[i]
        } else {
            self.sums[i] / self.counts[i] as f64
        }
    }

    /// Total observations recorded.
    pub fn observations(&self) -> u64 {
        self.counts.iter().sum()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum RegRef {
    S(usize),
    V(usize),
    Vcc,
    Exec,
    Scc,
}

fn src_scalar(s: &ScalarSrc, out: &mut Vec<RegRef>) {
    if let ScalarSrc::Reg(r) = s {
        out.push(RegRef::S(r.index()));
    }
}

fn src_vector(s: &VectorSrc, out: &mut Vec<RegRef>) {
    match s {
        VectorSrc::Reg(r) => out.push(RegRef::V(r.index())),
        VectorSrc::Sreg(r) => out.push(RegRef::S(r.index())),
        _ => {}
    }
}

fn mask(m: MaskReg) -> RegRef {
    match m {
        MaskReg::Exec => RegRef::Exec,
        MaskReg::Vcc => RegRef::Vcc,
    }
}

/// Registers read and written by one instruction (for dependence
/// tracking in the interval model).
fn deps(inst: &Inst) -> (Vec<RegRef>, Vec<RegRef>) {
    let mut r = Vec::new();
    let mut w = Vec::new();
    match inst {
        Inst::SAlu { dst, a, b, .. } => {
            src_scalar(a, &mut r);
            src_scalar(b, &mut r);
            w.push(RegRef::S(dst.index()));
        }
        Inst::SCmp { a, b, .. } => {
            src_scalar(a, &mut r);
            src_scalar(b, &mut r);
            w.push(RegRef::Scc);
        }
        Inst::SLoadArg { dst, .. } | Inst::SGetSpecial { dst, .. } => {
            w.push(RegRef::S(dst.index()));
        }
        Inst::SReadMask { dst, src } => {
            r.push(mask(*src));
            w.push(RegRef::S(dst.index()));
        }
        Inst::SWriteMask { dst, src } => {
            src_scalar(src, &mut r);
            w.push(mask(*dst));
        }
        Inst::SAndSaveExec { dst } => {
            r.push(RegRef::Vcc);
            r.push(RegRef::Exec);
            w.push(RegRef::S(dst.index()));
            w.push(RegRef::Exec);
        }
        Inst::VAlu { dst, a, b, .. } => {
            src_vector(a, &mut r);
            src_vector(b, &mut r);
            r.push(RegRef::Exec);
            w.push(RegRef::V(dst.index()));
        }
        Inst::VFma { dst, a, b, c } => {
            src_vector(a, &mut r);
            src_vector(b, &mut r);
            src_vector(c, &mut r);
            r.push(RegRef::Exec);
            w.push(RegRef::V(dst.index()));
        }
        Inst::VCmp { a, b, .. } => {
            src_vector(a, &mut r);
            src_vector(b, &mut r);
            r.push(RegRef::Exec);
            w.push(RegRef::Vcc);
        }
        Inst::GlobalLoad {
            dst, base, offset, ..
        } => {
            r.push(RegRef::S(base.index()));
            r.push(RegRef::V(offset.index()));
            r.push(RegRef::Exec);
            w.push(RegRef::V(dst.index()));
        }
        Inst::GlobalStore {
            src, base, offset, ..
        } => {
            r.push(RegRef::V(src.index()));
            r.push(RegRef::S(base.index()));
            r.push(RegRef::V(offset.index()));
            r.push(RegRef::Exec);
        }
        Inst::LdsLoad { dst, addr, .. } => {
            r.push(RegRef::V(addr.index()));
            r.push(RegRef::Exec);
            w.push(RegRef::V(dst.index()));
        }
        Inst::LdsStore { src, addr, .. } => {
            r.push(RegRef::V(src.index()));
            r.push(RegRef::V(addr.index()));
            r.push(RegRef::Exec);
        }
        Inst::CBranch { .. } => {
            // condition registers; conservatively scc+vcc+exec
            r.push(RegRef::Scc);
            r.push(RegRef::Vcc);
            r.push(RegRef::Exec);
        }
        Inst::Branch { .. } | Inst::SBarrier | Inst::SWaitcnt | Inst::SEndpgm => {}
    }
    (r, w)
}

/// Predicts the execution time (cycles) of the basic block starting at
/// `start_pc` with `len` instructions, using the interval model over
/// `table`'s latencies.
///
/// # Example
/// ```
/// use gpu_isa::{Inst, Program, SAluOp, ScalarSrc, Sreg};
/// use photon::{predict_block_interval, LatencyTable};
/// // two dependent scalar adds: second waits for the first
/// let s = Sreg::new(0);
/// let p = Program::from_insts("t", vec![
///     Inst::SAlu { op: SAluOp::Add, dst: s, a: ScalarSrc::Imm(1), b: ScalarSrc::Imm(2) },
///     Inst::SAlu { op: SAluOp::Add, dst: s, a: ScalarSrc::Reg(s), b: ScalarSrc::Imm(3) },
///     Inst::SEndpgm,
/// ])?;
/// let t = predict_block_interval(&p, 0, 3, &LatencyTable::new());
/// assert!(t >= 8.0); // two chained 4-cycle ops
/// # Ok::<(), gpu_isa::IsaError>(())
/// ```
pub fn predict_block_interval(
    program: &Program,
    start_pc: u32,
    len: u32,
    table: &LatencyTable,
) -> f64 {
    let mut ready: std::collections::HashMap<RegRef, f64> = std::collections::HashMap::new();
    let mut issue = 0.0f64;
    let mut last_retire = 0.0f64;
    for pc in start_pc..start_pc + len {
        let inst = program.inst(pc);
        let (reads, writes) = deps(inst);
        let mut t = issue;
        for reg in reads {
            if let Some(&r) = ready.get(&reg) {
                t = t.max(r);
            }
        }
        let retire = t + table.latency(inst.class());
        for reg in writes {
            ready.insert(reg, retire);
        }
        last_retire = last_retire.max(retire);
        issue = t + 1.0;
    }
    last_retire
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_isa::{Program, SAluOp, Sreg, VAluOp, VectorSrc, Vreg};

    #[test]
    fn table_uses_priors_then_observations() {
        let mut t = LatencyTable::new();
        assert_eq!(t.latency(InstClass::MemLoad), 150.0);
        t.observe(InstClass::MemLoad, 300);
        t.observe(InstClass::MemLoad, 100);
        assert_eq!(t.latency(InstClass::MemLoad), 200.0);
        assert_eq!(t.observations(), 2);
    }

    #[test]
    fn independent_ops_pipeline() {
        // 4 independent vector ops: issue 1/cycle, retire at ~issue+4
        let insts: Vec<Inst> = (0..4)
            .map(|i| Inst::VAlu {
                op: VAluOp::Add,
                dst: Vreg::new(i),
                a: VectorSrc::Imm(1),
                b: VectorSrc::Imm(2),
            })
            .chain([Inst::SEndpgm])
            .collect();
        let p = Program::from_insts("t", insts).unwrap();
        let time = predict_block_interval(&p, 0, 4, &LatencyTable::new());
        // pipelined: 3 (issue) + 4 (latency) = 7, far less than 16 serial
        assert!(time <= 8.0, "time {time}");
    }

    #[test]
    fn dependent_chain_serializes() {
        let v = Vreg::new(0);
        let insts: Vec<Inst> = (0..4)
            .map(|_| Inst::VAlu {
                op: VAluOp::Add,
                dst: v,
                a: VectorSrc::Reg(v),
                b: VectorSrc::Imm(1),
            })
            .chain([Inst::SEndpgm])
            .collect();
        let p = Program::from_insts("t", insts).unwrap();
        let time = predict_block_interval(&p, 0, 4, &LatencyTable::new());
        assert!(time >= 16.0, "time {time}");
    }

    #[test]
    fn load_use_dependency_dominates() {
        let s = Sreg::new(0);
        let off = Vreg::new(0);
        let dst = Vreg::new(1);
        let insts = vec![
            Inst::GlobalLoad {
                dst,
                base: s,
                offset: off,
                imm: 0,
                width: gpu_isa::MemWidth::B32,
            },
            Inst::VAlu {
                op: VAluOp::Add,
                dst: Vreg::new(2),
                a: VectorSrc::Reg(dst),
                b: VectorSrc::Imm(1),
            },
            Inst::SEndpgm,
        ];
        let p = Program::from_insts("t", insts).unwrap();
        let table = LatencyTable::new();
        let time = predict_block_interval(&p, 0, 2, &table);
        assert!(time >= 150.0, "time {time}");
    }

    #[test]
    fn scalar_chain_through_scc() {
        let insts = vec![
            Inst::SCmp {
                op: gpu_isa::CmpOp::Lt,
                a: ScalarSrc::Imm(0),
                b: ScalarSrc::Imm(1),
            },
            Inst::CBranch {
                cond: gpu_isa::BranchCond::SccNonZero,
                target: 0,
            },
            Inst::SEndpgm,
        ];
        let p = Program::from_insts("t", insts).unwrap();
        let time = predict_block_interval(&p, 0, 2, &LatencyTable::new());
        // branch waits for scc: 4 + 4
        assert!(time >= 8.0, "time {time}");
    }

    #[test]
    fn empty_block_is_zero() {
        let p = Program::from_insts(
            "t",
            vec![
                Inst::SAlu {
                    op: SAluOp::Mov,
                    dst: Sreg::new(0),
                    a: ScalarSrc::Imm(0),
                    b: ScalarSrc::Imm(0),
                },
                Inst::SEndpgm,
            ],
        )
        .unwrap();
        assert_eq!(predict_block_interval(&p, 0, 0, &LatencyTable::new()), 0.0);
    }
}

//! # photon
//!
//! A Rust reproduction of **Photon: A Fine-grained Sampled Simulation
//! Methodology for GPU Workloads** (Liu, Sun, Carlson — MICRO 2023).
//!
//! Photon accelerates cycle-level GPU simulation with three cooperating
//! sampling levels, all driven by *online* analysis (no up-front
//! profiling):
//!
//! * **kernel-sampling** — kernels whose GPU BBV matches a previously
//!   simulated kernel are skipped and their time predicted from the
//!   prior kernel's IPC ([`KernelHistory`], §4.3),
//! * **warp-sampling** — kernels dominated by one warp type switch to
//!   scheduler-only simulation once warp execution times stabilize
//!   ([`WarpSampler`], §4.2),
//! * **basic-block-sampling** — remaining warps are functionally
//!   simulated and their time predicted from stable per-block timings,
//!   with an interval model covering rare blocks ([`BbSampler`], §4.1).
//!
//! The composition lives in [`PhotonController`], which plugs into
//! [`gpu_sim::GpuSimulator::run_kernel_sampled`].
//!
//! # Example
//!
//! ```
//! use gpu_isa::{Kernel, KernelBuilder, KernelLaunch, VAluOp, VectorSrc};
//! use gpu_sim::{GpuConfig, GpuSimulator};
//! use photon::{PhotonConfig, PhotonController};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut gpu = GpuSimulator::new(GpuConfig::tiny());
//! let mut kb = KernelBuilder::new("warmup");
//! let v = kb.vreg();
//! kb.valu(VAluOp::Add, v, VectorSrc::LaneId, VectorSrc::Imm(1));
//! let launch = KernelLaunch::new(Kernel::new(kb.finish()?), 16, 4, vec![]);
//!
//! let num_cus = gpu.config().num_cus as u64;
//! let mut photon = PhotonController::new(PhotonConfig::default(), num_cus);
//! let first = gpu.run_kernel_sampled(&launch, &mut photon)?;
//! let second = gpu.run_kernel_sampled(&launch, &mut photon)?;
//! assert!(!first.skipped);
//! assert!(second.skipped); // kernel-sampling matched the repeat launch
//! # Ok(())
//! # }
//! ```

// Production code must surface failures as typed errors, not panics;
// tests are free to unwrap.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

mod analysis;
mod bb_sampling;
mod bbv;
mod config;
mod controller;
mod interval;
mod kernel_sampling;
mod ls;
mod offline;
mod warp_sampling;

pub use analysis::{sample_warp_ids, OnlineAnalysis};
pub use bb_sampling::BbSampler;
pub use bbv::{Bbv, GpuBbv, WeightedBbv, BBV_DIM};
pub use config::{Levels, PhotonConfig};
pub use controller::{PhotonController, PhotonStats};
pub use interval::{predict_block_interval, LatencyTable};
pub use kernel_sampling::{KernelHistory, KernelPrediction, KernelRecord};
pub use ls::{least_squares, RollingStability};
pub use offline::{OfflineData, OfflineError};
pub use warp_sampling::WarpSampler;

// Compile-time guarantee that the Photon controller can move to a
// worker thread of the parallel experiment executor.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<PhotonController>();
    assert_send::<OnlineAnalysis>();
};

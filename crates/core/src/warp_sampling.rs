//! Warp sampling (paper §4.2, Figure 10).
//!
//! Warp-sampling is gated on the online analysis: it can only be
//! enabled when one warp type dominates (≥ 95 % of the sample). During
//! detailed simulation the sampler watches warp issue/retire pairs
//! through a [`RollingStability`] detector (window 1024); once stable,
//! remaining warps are not executed at all — the scheduler alone is
//! simulated and each warp's duration is predicted as the mean of the
//! last window of detailed warps.

use crate::analysis::OnlineAnalysis;
use crate::config::PhotonConfig;
use crate::ls::RollingStability;
use gpu_sim::{Cycle, WarpRecord};

/// Per-kernel warp-sampling state.
#[derive(Debug)]
pub struct WarpSampler {
    /// Whether the dominant-type gate passed.
    enabled: bool,
    detector: RollingStability,
}

impl WarpSampler {
    /// Creates the sampler; the online analysis decides whether the
    /// kernel qualifies at all.
    pub fn new(analysis: &OnlineAnalysis, cfg: &PhotonConfig) -> Self {
        WarpSampler {
            enabled: analysis.dominant_fraction >= cfg.dominant_threshold,
            detector: RollingStability::new(cfg.warp_window, cfg.delta),
        }
    }

    /// Whether the dominant-warp gate passed (irregular applications
    /// like SpMV fail it and never warp-sample).
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Feeds a retired detailed warp (cycles rebased to kernel start).
    pub fn on_warp(&mut self, rec: &WarpRecord) {
        if self.enabled {
            self.detector.push(rec.issue as f64, rec.retire as f64);
        }
    }

    /// Whether warp-sampling should take over.
    pub fn is_triggered(&self) -> bool {
        self.enabled && self.detector.is_stable()
    }

    /// Predicted duration: the mean of the last window of warps.
    pub fn predict(&self) -> Cycle {
        self.detector
            .mean_duration()
            .map(|d| d.round().max(1.0) as Cycle)
            .unwrap_or(1)
    }

    /// Warps observed.
    pub fn warps_seen(&self) -> u64 {
        self.detector.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_isa::{BasicBlockId, BasicBlockMap, Inst};
    use gpu_sim::WarpTrace;

    fn analysis(dominant: f64) -> OnlineAnalysis {
        let map = BasicBlockMap::from_program(&[Inst::SBarrier, Inst::SEndpgm]);
        let a = WarpTrace::from_counts(vec![(BasicBlockId(0), 1)], 1);
        let b = WarpTrace::from_counts(vec![(BasicBlockId(1), 1)], 1);
        let n = 100usize;
        let na = (dominant * n as f64) as usize;
        let mut traces = vec![a; na];
        traces.extend(vec![b; n - na]);
        OnlineAnalysis::from_traces(&traces, &map).unwrap()
    }

    fn cfg() -> PhotonConfig {
        PhotonConfig::default().small_windows(16, 16)
    }

    fn rec(i: u64, dur: u64) -> WarpRecord {
        WarpRecord {
            warp: i,
            issue: i * 50,
            retire: i * 50 + dur,
            insts: 10,
        }
    }

    #[test]
    fn gate_requires_dominant_type() {
        let c = cfg();
        assert!(WarpSampler::new(&analysis(0.99), &c).is_enabled());
        assert!(!WarpSampler::new(&analysis(0.50), &c).is_enabled());
    }

    #[test]
    fn stable_warps_trigger_and_predict_mean() {
        let c = cfg();
        let mut s = WarpSampler::new(&analysis(1.0), &c);
        for i in 0..64 {
            s.on_warp(&rec(i, 800));
        }
        assert!(s.is_triggered());
        assert_eq!(s.predict(), 800);
    }

    #[test]
    fn irregular_never_triggers_even_with_stable_times() {
        let c = cfg();
        let mut s = WarpSampler::new(&analysis(0.5), &c);
        for i in 0..64 {
            s.on_warp(&rec(i, 800));
        }
        assert!(!s.is_triggered());
    }

    #[test]
    fn variable_durations_do_not_trigger() {
        let c = cfg();
        let mut s = WarpSampler::new(&analysis(1.0), &c);
        for i in 0..64 {
            s.on_warp(&rec(i, 100 + i * 37));
        }
        assert!(!s.is_triggered());
    }

    #[test]
    fn prediction_without_data_is_minimal() {
        let c = cfg();
        let s = WarpSampler::new(&analysis(1.0), &c);
        assert_eq!(s.predict(), 1);
        assert_eq!(s.warps_seen(), 0);
    }
}

//! Basic block vectors and GPU BBVs (paper §3 Obs 4–5, Figure 5).
//!
//! A warp's BBV weights each basic block by the instructions executed in
//! it (execution count × block length), normalized to sum 1 — the
//! SimPoint convention. Warps with identical BBVs are of the same *warp
//! type*. A kernel's **GPU BBV** clusters warps by type, projects each
//! type's BBV into a fixed dimensionality (the paper uses 16), weights
//! it by the type's share of warps, sorts the weighted vectors by
//! descending weight, and concatenates them.

use gpu_isa::BasicBlockMap;
use gpu_sim::WarpTrace;
use serde::{Deserialize, Serialize};

/// Fixed projection dimensionality used by the paper.
pub const BBV_DIM: usize = 16;

/// A normalized, fixed-dimension basic block vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bbv {
    weights: Vec<f64>,
}

/// Deterministic hash spreading block indices over projection buckets.
fn bucket(bb_index: u32, dim: usize) -> usize {
    // Fibonacci hashing: well spread for consecutive indices.
    let h = (bb_index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    ((h >> 33) % dim as u64) as usize
}

impl Bbv {
    /// Builds the projected, normalized BBV of one warp trace.
    ///
    /// Each block contributes `count × block_len` instructions to its
    /// projection bucket; the vector is normalized to sum 1 (all-zero
    /// traces produce the zero vector).
    pub fn from_trace(trace: &WarpTrace, bb_map: &BasicBlockMap) -> Self {
        Self::from_trace_with_dim(trace, bb_map, BBV_DIM)
    }

    /// Same as [`Bbv::from_trace`] with an explicit dimensionality
    /// (exposed for the projection-dimension ablation).
    ///
    /// # Panics
    /// Panics if `dim == 0`.
    pub fn from_trace_with_dim(trace: &WarpTrace, bb_map: &BasicBlockMap, dim: usize) -> Self {
        assert!(dim > 0, "projection dimension must be positive");
        let mut weights = vec![0.0f64; dim];
        for &(bb, count) in &trace.bb_counts {
            let len = bb_map.block(bb).len as f64;
            weights[bucket(bb.0, dim)] += count as f64 * len;
        }
        let total: f64 = weights.iter().sum();
        if total > 0.0 {
            for w in &mut weights {
                *w /= total;
            }
        }
        Bbv { weights }
    }

    /// The projected weights (sum 1 for non-empty traces).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Manhattan distance to another BBV (0 ≤ d ≤ 2 for normalized
    /// vectors).
    ///
    /// # Panics
    /// Panics if dimensionalities differ.
    pub fn manhattan(&self, other: &Bbv) -> f64 {
        assert_eq!(
            self.weights.len(),
            other.weights.len(),
            "BBV dimensionality mismatch"
        );
        self.weights
            .iter()
            .zip(&other.weights)
            .map(|(a, b)| (a - b).abs())
            .sum()
    }
}

/// One warp-type entry of a GPU BBV: a projected BBV with its share of
/// the kernel's warps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightedBbv {
    /// Fraction of warps of this type.
    pub weight: f64,
    /// The type's projected BBV.
    pub bbv: Bbv,
}

/// The kernel-level feature vector of Figure 5.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuBbv {
    /// Weighted per-type BBVs, sorted by descending weight.
    entries: Vec<WeightedBbv>,
    /// Mean dynamic instructions per warp (used to separate kernels
    /// with similar shape but different trip counts).
    insts_per_warp: f64,
}

impl GpuBbv {
    /// Builds a GPU BBV from `(type BBV, warp count of that type)` pairs
    /// plus the mean instructions per warp over the sample.
    pub fn new(mut types: Vec<(Bbv, u64)>, insts_per_warp: f64) -> Self {
        let total: u64 = types.iter().map(|(_, n)| *n).sum();
        types.sort_by_key(|(_, n)| std::cmp::Reverse(*n));
        let entries = types
            .into_iter()
            .filter(|(_, n)| *n > 0)
            .map(|(bbv, n)| WeightedBbv {
                weight: if total == 0 {
                    0.0
                } else {
                    n as f64 / total as f64
                },
                bbv,
            })
            .collect();
        GpuBbv {
            entries,
            insts_per_warp,
        }
    }

    /// The weighted entries, descending by weight.
    pub fn entries(&self) -> &[WeightedBbv] {
        &self.entries
    }

    /// Mean dynamic instructions per warp of the sample this vector was
    /// built from.
    pub fn insts_per_warp(&self) -> f64 {
        self.insts_per_warp
    }

    /// The flattened weighted vector (weight × BBV, concatenated in
    /// weight order), as the paper defines the GPU BBV.
    pub fn flat(&self) -> Vec<f64> {
        let mut v = Vec::with_capacity(self.entries.len() * BBV_DIM);
        for e in &self.entries {
            v.extend(e.bbv.weights().iter().map(|w| w * e.weight));
        }
        v
    }

    /// Distance between two GPU BBVs: Manhattan distance over the
    /// flattened vectors (shorter vector zero-padded), plus a relative
    /// instructions-per-warp term that separates same-shape kernels with
    /// different trip counts (the count-difference failure mode of
    /// feature counting that §3 Obs 5 discusses).
    pub fn distance(&self, other: &GpuBbv) -> f64 {
        let a = self.flat();
        let b = other.flat();
        let n = a.len().max(b.len());
        let mut d = 0.0;
        for i in 0..n {
            let x = a.get(i).copied().unwrap_or(0.0);
            let y = b.get(i).copied().unwrap_or(0.0);
            d += (x - y).abs();
        }
        let ia = self.insts_per_warp.max(1.0);
        let ib = other.insts_per_warp.max(1.0);
        let ratio = (ia / ib).max(ib / ia);
        d + (ratio - 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_isa::{BasicBlockId, Inst};

    fn bb_map(n_blocks: usize) -> BasicBlockMap {
        // build a program with n_blocks single-instruction blocks by
        // alternating barriers
        let mut insts = Vec::new();
        for _ in 0..n_blocks - 1 {
            insts.push(Inst::SBarrier);
        }
        insts.push(Inst::SEndpgm);
        BasicBlockMap::from_program(&insts)
    }

    fn trace(counts: &[(u32, u32)], insts: u64) -> WarpTrace {
        WarpTrace::from_counts(
            counts.iter().map(|&(b, c)| (BasicBlockId(b), c)).collect(),
            insts,
        )
    }

    #[test]
    fn bbv_normalizes() {
        let map = bb_map(4);
        let t = trace(&[(0, 1), (1, 3)], 4);
        let bbv = Bbv::from_trace(&t, &map);
        let sum: f64 = bbv.weights().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn identical_traces_zero_distance() {
        let map = bb_map(4);
        let a = Bbv::from_trace(&trace(&[(0, 2), (2, 5)], 7), &map);
        let b = Bbv::from_trace(&trace(&[(0, 2), (2, 5)], 7), &map);
        assert_eq!(a.manhattan(&b), 0.0);
    }

    #[test]
    fn different_traces_nonzero_distance() {
        let map = bb_map(4);
        let a = Bbv::from_trace(&trace(&[(0, 10)], 10), &map);
        let b = Bbv::from_trace(&trace(&[(1, 10)], 10), &map);
        assert!(a.manhattan(&b) > 0.5);
    }

    #[test]
    fn empty_trace_is_zero_vector() {
        let map = bb_map(2);
        let t = trace(&[], 0);
        let bbv = Bbv::from_trace(&t, &map);
        assert!(bbv.weights().iter().all(|&w| w == 0.0));
    }

    #[test]
    fn gpu_bbv_sorts_by_weight() {
        let map = bb_map(4);
        let a = Bbv::from_trace(&trace(&[(0, 1)], 1), &map);
        let b = Bbv::from_trace(&trace(&[(1, 1)], 1), &map);
        let g = GpuBbv::new(vec![(a, 10), (b, 90)], 5.0);
        assert!(g.entries()[0].weight > g.entries()[1].weight);
        assert!((g.entries()[0].weight - 0.9).abs() < 1e-12);
    }

    #[test]
    fn same_kernels_cluster_different_kernels_do_not() {
        let map = bb_map(8);
        let t1 = Bbv::from_trace(&trace(&[(0, 1), (3, 20)], 21), &map);
        let t2 = Bbv::from_trace(&trace(&[(1, 5), (5, 5)], 10), &map);
        let k_a = GpuBbv::new(vec![(t1.clone(), 100)], 21.0);
        let k_a2 = GpuBbv::new(vec![(t1.clone(), 100)], 21.0);
        let k_b = GpuBbv::new(vec![(t2.clone(), 60), (t1, 40)], 14.0);
        assert!(k_a.distance(&k_a2) < 1e-9);
        assert!(k_a.distance(&k_b) > 0.1);
    }

    #[test]
    fn insts_per_warp_separates_same_shape() {
        let map = bb_map(4);
        let bbv = Bbv::from_trace(&trace(&[(0, 1), (1, 50)], 51), &map);
        // same normalized shape, 2x the instructions per warp
        let small = GpuBbv::new(vec![(bbv.clone(), 10)], 100.0);
        let big = GpuBbv::new(vec![(bbv, 10)], 200.0);
        assert!(small.distance(&big) >= 1.0);
    }

    #[test]
    fn flat_length_scales_with_types() {
        let map = bb_map(4);
        let a = Bbv::from_trace(&trace(&[(0, 1)], 1), &map);
        let b = Bbv::from_trace(&trace(&[(1, 1)], 1), &map);
        let g = GpuBbv::new(vec![(a, 1), (b, 1)], 1.0);
        assert_eq!(g.flat().len(), 2 * BBV_DIM);
    }
}

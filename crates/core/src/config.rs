//! Photon configuration (the paper's §4 parameters).

use serde::{Deserialize, Serialize};

/// Which sampling levels are active (for the Figure 15/17 ablations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Levels {
    /// Kernel-sampling (§4.3): skip kernels matching a prior GPU BBV.
    pub kernel: bool,
    /// Warp-sampling (§4.2): predict warps of a dominant stable type.
    pub warp: bool,
    /// Basic-block-sampling (§4.1): predict warps from stable block times.
    pub bb: bool,
}

impl Levels {
    /// Full Photon: all three levels.
    pub fn all() -> Self {
        Levels {
            kernel: true,
            warp: true,
            bb: true,
        }
    }

    /// Basic-block-sampling only (Figure 15 "BB-sampling").
    pub fn bb_only() -> Self {
        Levels {
            kernel: false,
            warp: false,
            bb: true,
        }
    }

    /// Warp-sampling only (Figure 15 "warp-sampling").
    pub fn warp_only() -> Self {
        Levels {
            kernel: false,
            warp: true,
            bb: false,
        }
    }

    /// Kernel-sampling only (Figure 17 "kernel-sampling").
    pub fn kernel_only() -> Self {
        Levels {
            kernel: true,
            warp: false,
            bb: false,
        }
    }

    /// Kernel + warp sampling (Figure 17 "kernel+warp").
    pub fn kernel_warp() -> Self {
        Levels {
            kernel: true,
            warp: true,
            bb: false,
        }
    }

    /// No sampling at all (full detailed via the Photon controller).
    pub fn none() -> Self {
        Levels {
            kernel: false,
            warp: false,
            bb: false,
        }
    }
}

/// All Photon thresholds, with the paper's defaults.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhotonConfig {
    /// Fraction of warps functionally traced for online analysis
    /// (paper: 1 %).
    pub sample_fraction: f64,
    /// Lower bound on sampled warps for tiny launches.
    pub min_sample_warps: u64,
    /// Minimum share of the most frequent warp type to enable
    /// warp-sampling (paper: 95 %).
    pub dominant_threshold: f64,
    /// Share of (instruction-weighted) basic blocks that must be stable
    /// before switching to basic-block-sampling (paper: 95 %).
    pub stable_bb_rate: f64,
    /// Stability threshold δ on `|1 − a|` and on the window-mean check
    /// (paper: 3 %).
    pub delta: f64,
    /// Least-squares window for basic blocks (paper: 2048).
    pub bb_window: usize,
    /// Least-squares window for warps (paper: 1024).
    pub warp_window: usize,
    /// Maximum GPU-BBV distance for two kernels to match (§4.3).
    pub kernel_distance: f64,
    /// Blocks whose instruction share falls below this are *rare* and
    /// predicted with the interval model instead of online timings.
    pub rare_bb_share: f64,
    /// Active sampling levels.
    pub levels: Levels,
    /// Replay skipped kernels functionally so later kernels observe
    /// their memory effects (trades speed for functional fidelity).
    pub functional_replay: bool,
}

impl Default for PhotonConfig {
    fn default() -> Self {
        PhotonConfig {
            sample_fraction: 0.01,
            min_sample_warps: 8,
            dominant_threshold: 0.95,
            stable_bb_rate: 0.95,
            delta: 0.03,
            bb_window: 2048,
            warp_window: 1024,
            kernel_distance: 0.25,
            rare_bb_share: 0.002,
            levels: Levels::all(),
            functional_replay: false,
        }
    }
}

impl PhotonConfig {
    /// Paper defaults with a chosen level mask.
    pub fn with_levels(levels: Levels) -> Self {
        PhotonConfig {
            levels,
            ..Default::default()
        }
    }

    /// Smaller windows suited to unit tests and small launches (the
    /// paper's windows assume million-warp workloads).
    pub fn small_windows(mut self, bb: usize, warp: usize) -> Self {
        self.bb_window = bb;
        self.warp_window = warp;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = PhotonConfig::default();
        assert_eq!(c.sample_fraction, 0.01);
        assert_eq!(c.dominant_threshold, 0.95);
        assert_eq!(c.stable_bb_rate, 0.95);
        assert_eq!(c.delta, 0.03);
        assert_eq!(c.bb_window, 2048);
        assert_eq!(c.warp_window, 1024);
        assert_eq!(c.levels, Levels::all());
    }

    #[test]
    fn level_masks() {
        assert!(Levels::bb_only().bb && !Levels::bb_only().warp);
        assert!(Levels::warp_only().warp && !Levels::warp_only().kernel);
        assert!(Levels::kernel_warp().kernel && Levels::kernel_warp().warp);
        assert!(!Levels::none().kernel && !Levels::none().bb);
    }
}

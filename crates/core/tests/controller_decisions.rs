//! Decision-level tests of the Photon controller through a mock
//! engine context: kernel-sampling matching, level gating, and mode
//! transitions, without running the timing simulator.

use gpu_isa::{BasicBlockId, Inst, Kernel, KernelBuilder, KernelLaunch, VAluOp, VectorSrc};
use gpu_sim::{
    BbRecord, KernelDirective, KernelResult, KernelStartAccess, SamplingController, SimError,
    WarpRecord, WarpTrace, WgMode,
};
use photon::{Levels, PhotonConfig, PhotonController};

/// A fake engine: hands out a fixed trace for every sampled warp
/// (or a tracing fault, when `fail` is set).
struct MockCtx {
    launch: KernelLaunch,
    trace: WarpTrace,
    traced: u64,
    fail: bool,
}

impl MockCtx {
    fn new(warps: u64, trace: WarpTrace) -> Self {
        let mut kb = KernelBuilder::new("mock");
        let v = kb.vreg();
        kb.valu(VAluOp::Add, v, VectorSrc::LaneId, VectorSrc::Imm(1));
        let kernel = Kernel::new(kb.finish().unwrap());
        MockCtx {
            launch: KernelLaunch::new(kernel, warps as u32, 1, vec![]),
            trace,
            traced: 0,
            fail: false,
        }
    }

    fn failing(warps: u64, trace: WarpTrace) -> Self {
        let mut ctx = Self::new(warps, trace);
        ctx.fail = true;
        ctx
    }
}

impl KernelStartAccess for MockCtx {
    fn launch(&self) -> &KernelLaunch {
        &self.launch
    }
    fn total_warps(&self) -> u64 {
        self.launch.total_warps()
    }
    fn trace_warp(&mut self, global_warp: u64) -> Result<WarpTrace, SimError> {
        if self.fail {
            return Err(SimError::InstLimitExceeded {
                warp: global_warp,
                limit: 1,
            });
        }
        self.traced += 1;
        Ok(self.trace.clone())
    }
}

fn uniform_trace(insts: u64) -> WarpTrace {
    WarpTrace::from_counts(vec![(BasicBlockId(0), 1)], insts)
}

fn finish_kernel(ctrl: &mut PhotonController, cycles: u64, warps: u64) {
    let result = KernelResult {
        name: "mock".into(),
        cycles,
        start_cycle: 0,
        detailed_insts: warps * 10,
        functional_insts: 0,
        total_warps: warps,
        detailed_warps: warps,
        predicted_warps: 0,
        ipc_timeline: vec![],
        ipc_window: 2048,
        skipped: false,
        mem: Default::default(),
        accounting: None,
        bb_stats: Vec::new(),
    };
    ctrl.on_kernel_end(&result);
}

#[test]
fn identical_kernel_matches_history_and_scales() {
    let mut ctrl = PhotonController::new(PhotonConfig::default(), 64);
    // kernel A: simulate and record
    let mut ctx = MockCtx::new(1000, uniform_trace(10));
    assert_eq!(ctrl.on_kernel_start(&mut ctx), KernelDirective::Simulate);
    finish_kernel(&mut ctrl, 5000, 1000);

    // kernel A again: must be skipped with roughly the same time
    let mut ctx2 = MockCtx::new(1000, uniform_trace(10));
    match ctrl.on_kernel_start(&mut ctx2) {
        KernelDirective::Skip {
            predicted_cycles, ..
        } => {
            assert!(
                (predicted_cycles as f64 - 5000.0).abs() / 5000.0 < 0.05,
                "predicted {predicted_cycles}"
            );
        }
        other => panic!("expected skip, got {other:?}"),
    }
    assert_eq!(ctrl.stats().kernels_skipped, 1);
}

#[test]
fn different_shape_does_not_match() {
    let mut ctrl = PhotonController::new(PhotonConfig::default(), 64);
    let mut ctx = MockCtx::new(1000, uniform_trace(10));
    ctrl.on_kernel_start(&mut ctx);
    finish_kernel(&mut ctrl, 5000, 1000);

    // a kernel with 50x the per-warp work (different trip counts):
    // the instructions-per-warp term of the GPU-BBV distance separates it
    let other = WarpTrace::from_counts(vec![(BasicBlockId(0), 50)], 500);
    let mut ctx2 = MockCtx::new(1000, other);
    assert_eq!(ctrl.on_kernel_start(&mut ctx2), KernelDirective::Simulate);
}

#[test]
fn kernel_level_disabled_never_skips() {
    let mut ctrl = PhotonController::new(PhotonConfig::with_levels(Levels::bb_only()), 64);
    for _ in 0..3 {
        let mut ctx = MockCtx::new(1000, uniform_trace(10));
        assert_eq!(ctrl.on_kernel_start(&mut ctx), KernelDirective::Simulate);
        finish_kernel(&mut ctrl, 5000, 1000);
    }
    assert_eq!(ctrl.stats().kernels_skipped, 0);
}

#[test]
fn small_kernels_need_exact_warp_count() {
    // fewer warps than the GPU has CUs: §4.3's exact-match rule
    let mut ctrl = PhotonController::new(PhotonConfig::default(), 64);
    let mut ctx = MockCtx::new(32, uniform_trace(10));
    ctrl.on_kernel_start(&mut ctx);
    finish_kernel(&mut ctrl, 700, 32);

    // same shape, different (still small) warp count: no match
    let mut ctx2 = MockCtx::new(48, uniform_trace(10));
    assert_eq!(ctrl.on_kernel_start(&mut ctx2), KernelDirective::Simulate);
    // exact warp count: match
    let mut ctx3 = MockCtx::new(32, uniform_trace(10));
    assert!(matches!(
        ctrl.on_kernel_start(&mut ctx3),
        KernelDirective::Skip { .. }
    ));
}

#[test]
fn warp_mode_transition_via_records() {
    // Feed stable warp records directly; the controller must switch its
    // dispatch mode to WarpSampled.
    let cfg = PhotonConfig::default().small_windows(16, 16);
    let mut ctrl = PhotonController::new(cfg, 64);
    let mut ctx = MockCtx::new(10_000, uniform_trace(10));
    ctrl.on_kernel_start(&mut ctx);
    assert_eq!(ctrl.dispatch_mode(), WgMode::Detailed);

    for i in 0..64u64 {
        ctrl.on_warp_retire(&WarpRecord {
            warp: i,
            issue: 1000 + i * 50,
            retire: 1000 + i * 50 + 800,
            insts: 10,
        });
    }
    assert_eq!(ctrl.dispatch_mode(), WgMode::WarpSampled);
    assert_eq!(ctrl.predict_warp_avg(), 800);
    assert_eq!(ctrl.stats().warp_switches, 1);
}

#[test]
fn bb_mode_transition_via_records() {
    let cfg = PhotonConfig::with_levels(Levels::bb_only()).small_windows(16, 16);
    let mut ctrl = PhotonController::new(cfg, 64);
    let mut ctx = MockCtx::new(10_000, uniform_trace(10));
    ctrl.on_kernel_start(&mut ctx);

    for i in 0..64u64 {
        ctrl.on_bb_record(&BbRecord {
            warp: i,
            bb: BasicBlockId(0),
            start: 500 + i * 40,
            end: 500 + i * 40 + 120,
            insts: 10,
        });
    }
    assert_eq!(ctrl.dispatch_mode(), WgMode::BbSampled);
    assert_eq!(ctrl.stats().bb_switches, 1);
    // the warp prediction for a trace of one bb0 execution = its mean
    let pred = ctrl.predict_warp_bb(&uniform_trace(10));
    assert_eq!(pred, 120);
}

#[test]
fn unstable_records_keep_detailed_mode() {
    let cfg = PhotonConfig::default().small_windows(16, 16);
    let mut ctrl = PhotonController::new(cfg, 64);
    let mut ctx = MockCtx::new(10_000, uniform_trace(10));
    ctrl.on_kernel_start(&mut ctx);
    for i in 0..64u64 {
        // durations exploding: never stable
        ctrl.on_warp_retire(&WarpRecord {
            warp: i,
            issue: 1000 + i * 50,
            retire: 1000 + i * 50 + 100 * (i + 1),
            insts: 10,
        });
    }
    assert_eq!(ctrl.dispatch_mode(), WgMode::Detailed);
    assert_eq!(ctrl.stats().warp_switches, 0);
}

#[test]
fn latency_table_feeds_from_inst_retires() {
    let mut ctrl = PhotonController::new(
        PhotonConfig::with_levels(Levels::bb_only()).small_windows(16, 16),
        64,
    );
    let mut ctx = MockCtx::new(10_000, uniform_trace(10));
    ctrl.on_kernel_start(&mut ctx);
    for _ in 0..100 {
        ctrl.on_inst_retire(gpu_isa::InstClass::MemLoad, 333);
    }
    // rare-bb prediction paths consume the table through predict_warp_bb;
    // a block never seen in records must still predict a positive time
    let unseen = WarpTrace::from_counts(vec![(BasicBlockId(0), 1)], 1);
    assert!(ctrl.predict_warp_bb(&unseen) >= 1);
}

#[test]
fn offline_analyses_are_consumed_in_order() {
    // Build analyses by running a controller once, then replay them.
    let mut first = PhotonController::new(PhotonConfig::default(), 64);
    let mut ctx = MockCtx::new(1000, uniform_trace(10));
    first.on_kernel_start(&mut ctx);
    let traced_online = ctx.traced;
    assert!(traced_online > 0);
    finish_kernel(&mut first, 5000, 1000);

    let analyses = first.export_analyses().to_vec();
    let mut replay = PhotonController::with_offline(PhotonConfig::default(), 64, analyses);
    let mut ctx2 = MockCtx::new(1000, uniform_trace(10));
    replay.on_kernel_start(&mut ctx2);
    assert_eq!(ctx2.traced, 0, "offline mode must not trace");
}

#[test]
fn failed_tracing_falls_back_to_detailed() {
    // A sample warp that faults during online analysis must not panic,
    // must run the kernel fully detailed, and must leave no history
    // entry behind that a later kernel could match.
    let mut ctrl = PhotonController::new(PhotonConfig::default(), 64);
    let mut bad = MockCtx::failing(1000, uniform_trace(10));
    assert_eq!(ctrl.on_kernel_start(&mut bad), KernelDirective::Simulate);
    assert_eq!(ctrl.dispatch_mode(), WgMode::Detailed);
    assert_eq!(ctrl.stats().full_detailed, 1);
    finish_kernel(&mut ctrl, 5000, 1000);
    assert!(ctrl.history().records().is_empty());

    // A healthy identical kernel afterwards still works normally.
    let mut good = MockCtx::new(1000, uniform_trace(10));
    assert_eq!(ctrl.on_kernel_start(&mut good), KernelDirective::Simulate);
    finish_kernel(&mut ctrl, 5000, 1000);
    assert_eq!(ctrl.history().records().len(), 1);
}

#[test]
fn registry_counters_mirror_stats() {
    let tel = gpu_telemetry::Telemetry::default();
    let mut ctrl = PhotonController::new(PhotonConfig::default(), 64);
    ctrl.attach_telemetry(&tel);

    // First launch simulates fully detailed; the identical second one
    // is skipped by kernel-sampling.
    let mut ctx = MockCtx::new(1000, uniform_trace(10));
    assert_eq!(ctrl.on_kernel_start(&mut ctx), KernelDirective::Simulate);
    finish_kernel(&mut ctrl, 5000, 1000);
    let mut ctx2 = MockCtx::new(1000, uniform_trace(10));
    assert!(matches!(
        ctrl.on_kernel_start(&mut ctx2),
        KernelDirective::Skip { .. }
    ));

    let snap = tel.snapshot();
    assert_eq!(snap.counter("photon.kernels"), Some(ctrl.stats().kernels));
    assert_eq!(
        snap.counter("photon.kernels.skipped"),
        Some(ctrl.stats().kernels_skipped)
    );
    assert_eq!(
        snap.counter("photon.full_detailed"),
        Some(ctrl.stats().full_detailed)
    );
    assert_eq!(snap.counter("photon.bb_switches"), Some(0));
}

#[test]
fn skip_decision_lands_in_the_trace_when_compiled() {
    let tel = gpu_telemetry::Telemetry::default();
    tel.enable_tracing(1024);
    let mut ctrl = PhotonController::new(PhotonConfig::default(), 64);
    ctrl.attach_telemetry(&tel);

    let mut ctx = MockCtx::new(1000, uniform_trace(10));
    ctrl.on_kernel_start(&mut ctx);
    finish_kernel(&mut ctrl, 5000, 1000);
    let mut ctx2 = MockCtx::new(1000, uniform_trace(10));
    ctrl.on_kernel_start(&mut ctx2);

    let log = tel.take_events();
    if gpu_telemetry::tracing_compiled() {
        assert!(
            log.events.iter().any(|e| matches!(
                &e.kind,
                gpu_telemetry::EventKind::ControllerDecision {
                    controller,
                    decision,
                    ..
                } if controller == "photon" && decision == "kernel-skip"
            )),
            "no kernel-skip decision in {} events",
            log.events.len()
        );
    } else {
        assert!(log.events.is_empty());
    }
}

#[test]
fn mock_program_has_expected_blocks() {
    // sanity on the mock itself
    let ctx = MockCtx::new(4, uniform_trace(10));
    let map = ctx.launch.kernel.program().basic_blocks();
    assert_eq!(map.len(), 1);
    assert!(matches!(ctx.launch.kernel.program().inst(1), Inst::SEndpgm));
}

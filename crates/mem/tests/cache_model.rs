//! Property tests validating the cache tag array against a reference
//! LRU model, and hierarchy-level conservation properties.

use gpu_mem::{AccessKind, Cache, CacheAccess, CacheConfig, MemHierarchyConfig, MemoryHierarchy};
use proptest::prelude::*;
use std::collections::VecDeque;

/// Straightforward reference LRU cache (list of lines per set).
struct RefLru {
    sets: Vec<VecDeque<u64>>,
    assoc: usize,
    line_bytes: u64,
}

impl RefLru {
    fn new(size: u64, assoc: u64, line: u64) -> Self {
        let sets = (size / line / assoc) as usize;
        RefLru {
            sets: vec![VecDeque::new(); sets],
            assoc: assoc as usize,
            line_bytes: line,
        }
    }

    fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.line_bytes;
        let set = (line % self.sets.len() as u64) as usize;
        let tag = line / self.sets.len() as u64;
        let q = &mut self.sets[set];
        if let Some(pos) = q.iter().position(|&t| t == tag) {
            q.remove(pos);
            q.push_back(tag);
            true
        } else {
            if q.len() == self.assoc {
                q.pop_front();
            }
            q.push_back(tag);
            false
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Our tag array agrees with the reference LRU on every access of a
    /// random address stream.
    #[test]
    fn cache_matches_reference_lru(addrs in prop::collection::vec(0u64..8192, 1..300)) {
        let cfg = CacheConfig::new(1024, 2, 64, 8, 1);
        let mut cache = Cache::new(&cfg);
        let mut reference = RefLru::new(1024, 2, 64);
        for (t, addr) in addrs.iter().enumerate() {
            let got = cache.access(*addr, AccessKind::Read, t as u64);
            let expect = reference.access(*addr);
            prop_assert_eq!(
                got == CacheAccess::Hit,
                expect,
                "access #{} to {:#x} disagrees",
                t,
                addr
            );
        }
    }

    /// Completion times are monotone for back-to-back requests on the
    /// same resource (queueing never reorders).
    #[test]
    fn hierarchy_completions_monotone_per_cu(lines in prop::collection::vec(0u64..10_000, 1..100)) {
        let mut cfg = MemHierarchyConfig::r9_nano();
        cfg.num_cus = 2;
        let mut h = MemoryHierarchy::new(cfg);
        let mut last = 0u64;
        for (t, line) in lines.iter().enumerate() {
            let done = h.access_line(0, *line, AccessKind::Read, t as u64);
            prop_assert!(done >= t as u64);
            prop_assert!(done + 500 >= last, "completion went far backwards");
            last = last.max(done);
        }
    }

    /// Hit/miss counters are conserved: hits + misses == accesses at
    /// every level, and a level's downstream traffic is its misses minus
    /// the misses that merged into an in-flight fill.
    #[test]
    fn stats_are_conserved(lines in prop::collection::vec(0u64..1000, 1..200)) {
        let mut cfg = MemHierarchyConfig::r9_nano();
        cfg.num_cus = 1;
        let mut h = MemoryHierarchy::new(cfg);
        for (t, line) in lines.iter().enumerate() {
            h.access_line(0, *line, AccessKind::Read, t as u64 * 10);
        }
        let s = h.stats();
        prop_assert_eq!(s.l1v_hits + s.l1v_misses, lines.len() as u64);
        prop_assert_eq!(s.l2_hits + s.l2_misses, s.l1v_misses - s.l1v_mshr_merges);
        prop_assert_eq!(s.dram_accesses, s.l2_misses - s.l2_mshr_merges);
    }

    /// The same conservation laws hold in detailed fidelity, where MSHR
    /// merging and fill-time tag install change the timing; completions
    /// also never precede the request.
    #[test]
    fn detailed_stats_are_conserved(lines in prop::collection::vec(0u64..1000, 1..200)) {
        let mut cfg = MemHierarchyConfig::r9_nano().with_detailed_fidelity();
        cfg.num_cus = 1;
        let mut h = MemoryHierarchy::new(cfg);
        for (t, line) in lines.iter().enumerate() {
            let now = t as u64 * 10;
            let done = h.access_line(0, *line, AccessKind::Read, now);
            prop_assert!(done > now, "completion {done} must follow request {now}");
        }
        let s = h.stats();
        prop_assert_eq!(s.l1v_hits + s.l1v_misses, lines.len() as u64);
        prop_assert_eq!(s.l2_hits + s.l2_misses, s.l1v_misses - s.l1v_mshr_merges);
        prop_assert_eq!(s.dram_accesses, s.l2_misses - s.l2_mshr_merges);
        prop_assert_eq!(
            s.dram_row_hits + s.dram_row_misses + s.dram_row_conflicts,
            s.dram_accesses
        );
    }

    /// Flushing restores the cold state: the same stream repeated after
    /// a flush produces the same hit/miss pattern.
    #[test]
    fn flush_restores_cold_state(addrs in prop::collection::vec(0u64..4096, 1..100)) {
        let cfg = CacheConfig::new(512, 2, 64, 8, 1);
        let mut cache = Cache::new(&cfg);
        let first: Vec<CacheAccess> =
            addrs.iter().enumerate().map(|(t, a)| cache.access(*a, AccessKind::Read, t as u64)).collect();
        cache.flush();
        let second: Vec<CacheAccess> =
            addrs.iter().enumerate().map(|(t, a)| cache.access(*a, AccessKind::Read, 1000 + t as u64)).collect();
        prop_assert_eq!(first, second);
    }
}

//! Sparse functional address space.

use std::collections::HashMap;
use std::hash::Hasher;

const PAGE_SHIFT: u64 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
const PAGE_MASK: u64 = (PAGE_SIZE as u64) - 1;

/// Hasher specialized for `u64` keys (page numbers, byte addresses):
/// one multiply plus a xor-fold instead of SipHash. The functional
/// interpreter does one page-table lookup per active lane of every
/// memory instruction, so the hash is squarely on the simulator's hot
/// path; there is no untrusted-key DoS concern inside a simulation.
#[derive(Debug, Default, Clone)]
pub struct U64Hasher(u64);

impl Hasher for U64Hasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // FNV-style fallback for non-u64 keys (unused by the page maps).
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x0100_0000_01b3);
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        // Fibonacci multiply, then fold the well-mixed high bits down so
        // both the bucket index (low bits) and control byte (high bits)
        // of the hashbrown table see avalanche.
        let h = (self.0 ^ n).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 = h ^ (h >> 32);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

/// `BuildHasher` for [`U64Hasher`]-keyed maps.
pub type U64HashBuilder = std::hash::BuildHasherDefault<U64Hasher>;

/// A sparse, paged, byte-addressable memory.
///
/// Pages are allocated on first touch and zero-initialized, so simulated
/// GPUs can use multi-gigabyte address spaces without host cost.
///
/// # Example
/// ```
/// use gpu_mem::AddressSpace;
/// let mut m = AddressSpace::new();
/// m.write_f32(0x8000_0000, 1.5);
/// assert_eq!(m.read_f32(0x8000_0000), 1.5);
/// assert_eq!(m.read_u32(0xdead_0000), 0); // untouched memory reads zero
/// ```
#[derive(Debug, Default, Clone)]
pub struct AddressSpace {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>, U64HashBuilder>,
}

impl AddressSpace {
    /// Creates an empty address space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of resident (touched) pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    fn page_mut(&mut self, addr: u64) -> &mut [u8; PAGE_SIZE] {
        self.pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]))
    }

    /// Reads one byte; untouched memory reads as zero.
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr >> PAGE_SHIFT)) {
            Some(p) => p[(addr & PAGE_MASK) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        self.page_mut(addr)[(addr & PAGE_MASK) as usize] = value;
    }

    /// Reads a little-endian `u32` (may straddle a page boundary).
    pub fn read_u32(&self, addr: u64) -> u32 {
        if (addr & PAGE_MASK) as usize <= PAGE_SIZE - 4 {
            match self.pages.get(&(addr >> PAGE_SHIFT)) {
                Some(p) => {
                    let o = (addr & PAGE_MASK) as usize;
                    u32::from_le_bytes([p[o], p[o + 1], p[o + 2], p[o + 3]])
                }
                None => 0,
            }
        } else {
            let mut b = [0u8; 4];
            for (i, byte) in b.iter_mut().enumerate() {
                *byte = self.read_u8(addr + i as u64);
            }
            u32::from_le_bytes(b)
        }
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, addr: u64, value: u32) {
        let bytes = value.to_le_bytes();
        if (addr & PAGE_MASK) as usize <= PAGE_SIZE - 4 {
            let page = self.page_mut(addr);
            let o = (addr & PAGE_MASK) as usize;
            page[o..o + 4].copy_from_slice(&bytes);
        } else {
            for (i, byte) in bytes.iter().enumerate() {
                self.write_u8(addr + i as u64, *byte);
            }
        }
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&self, addr: u64) -> u64 {
        (self.read_u32(addr) as u64) | ((self.read_u32(addr + 4) as u64) << 32)
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        self.write_u32(addr, value as u32);
        self.write_u32(addr + 4, (value >> 32) as u32);
    }

    /// Reads an `f32` (bit pattern of the `u32` at `addr`).
    pub fn read_f32(&self, addr: u64) -> f32 {
        f32::from_bits(self.read_u32(addr))
    }

    /// Writes an `f32`.
    pub fn write_f32(&mut self, addr: u64, value: f32) {
        self.write_u32(addr, value.to_bits());
    }

    /// Writes a slice of `f32` starting at `addr`.
    pub fn write_f32_slice(&mut self, addr: u64, values: &[f32]) {
        for (i, v) in values.iter().enumerate() {
            self.write_f32(addr + 4 * i as u64, *v);
        }
    }

    /// Reads `len` `f32`s starting at `addr`.
    pub fn read_f32_vec(&self, addr: u64, len: usize) -> Vec<f32> {
        (0..len)
            .map(|i| self.read_f32(addr + 4 * i as u64))
            .collect()
    }

    /// Writes a slice of `u32` starting at `addr`.
    pub fn write_u32_slice(&mut self, addr: u64, values: &[u32]) {
        for (i, v) in values.iter().enumerate() {
            self.write_u32(addr + 4 * i as u64, *v);
        }
    }

    /// Reads `len` `u32`s starting at `addr`.
    pub fn read_u32_vec(&self, addr: u64, len: usize) -> Vec<u32> {
        (0..len)
            .map(|i| self.read_u32(addr + 4 * i as u64))
            .collect()
    }

    /// Writes raw bytes starting at `addr`.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        for (i, b) in bytes.iter().enumerate() {
            self.write_u8(addr + i as u64, *b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialized() {
        let m = AddressSpace::new();
        assert_eq!(m.read_u8(12345), 0);
        assert_eq!(m.read_u32(12345), 0);
        assert_eq!(m.read_u64(12345), 0);
    }

    #[test]
    fn u32_roundtrip() {
        let mut m = AddressSpace::new();
        m.write_u32(100, 0xdeadbeef);
        assert_eq!(m.read_u32(100), 0xdeadbeef);
    }

    #[test]
    fn u64_roundtrip() {
        let mut m = AddressSpace::new();
        m.write_u64(0x4008, u64::MAX - 7);
        assert_eq!(m.read_u64(0x4008), u64::MAX - 7);
    }

    #[test]
    fn straddles_page_boundary() {
        let mut m = AddressSpace::new();
        let addr = (1 << 12) - 2; // 2 bytes in page 0, 2 in page 1
        m.write_u32(addr, 0x11223344);
        assert_eq!(m.read_u32(addr), 0x11223344);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn f32_roundtrip_including_nan_payload() {
        let mut m = AddressSpace::new();
        m.write_f32(0, -0.0);
        assert_eq!(m.read_f32(0).to_bits(), (-0.0f32).to_bits());
        m.write_f32(4, f32::INFINITY);
        assert_eq!(m.read_f32(4), f32::INFINITY);
    }

    #[test]
    fn slices_roundtrip() {
        let mut m = AddressSpace::new();
        let vals = [1.0f32, 2.5, -3.25, 0.0];
        m.write_f32_slice(0x100, &vals);
        assert_eq!(m.read_f32_vec(0x100, 4), vals);
        let ints = [7u32, 8, 9];
        m.write_u32_slice(0x200, &ints);
        assert_eq!(m.read_u32_vec(0x200, 3), ints);
    }

    #[test]
    fn sparse_pages_only_touched() {
        let mut m = AddressSpace::new();
        m.write_u8(0, 1);
        m.write_u8(1 << 30, 1);
        assert_eq!(m.resident_pages(), 2);
    }
}

//! Queueing timing model of the cache/DRAM hierarchy.

use crate::cache::{AccessKind, Cache, CacheAccess};
use crate::config::MemHierarchyConfig;
use crate::stats::{MemStats, QueueDelayHist, QueueDelays};
use crate::Cycle;
use gpu_telemetry::{CacheLevel, Counter, EventKind, Histogram, Telemetry, Trace, TraceEvent};

/// Cache line size used throughout the hierarchy.
pub const LINE_BYTES: u64 = 64;

/// How many CUs share one scalar cache (Table 1: 16 scalar caches for 64
/// CUs on the R9 Nano).
const CUS_PER_SCALAR_CACHE: usize = 4;

/// Coalesces per-lane byte addresses into unique cache-line addresses,
/// the transaction unit of the hierarchy.
///
/// # Example
/// ```
/// use gpu_mem::coalesce_lines;
/// // 16 consecutive words live on one 64-byte line
/// let lines = coalesce_lines((0..16).map(|i| i * 4), 4);
/// assert_eq!(lines, vec![0]);
/// // strided accesses touch many lines
/// let lines = coalesce_lines((0..4).map(|i| i * 256), 4);
/// assert_eq!(lines.len(), 4);
/// ```
pub fn coalesce_lines(addrs: impl IntoIterator<Item = u64>, width_bytes: u64) -> Vec<u64> {
    let mut lines = Vec::new();
    for a in addrs {
        push_lines(&mut lines, a, width_bytes);
    }
    coalesce_lines_into(&mut lines);
    lines
}

/// Appends the line addresses touched by one `width_bytes` access at
/// `a` to `out` — the allocation-free per-lane half of
/// [`coalesce_lines`]. Callers accumulate lanes into a reusable scratch
/// buffer and finish with [`coalesce_lines_into`].
#[inline]
pub fn push_lines(out: &mut Vec<u64>, a: u64, width_bytes: u64) {
    let first = a / LINE_BYTES;
    let last = (a + width_bytes - 1) / LINE_BYTES;
    out.extend(first..=last);
}

/// Sorts and dedups a line buffer in place, completing the coalesce.
/// `coalesce_lines(addrs, w)` is exactly `push_lines` per address
/// followed by this.
#[inline]
pub fn coalesce_lines_into(out: &mut Vec<u64>) {
    out.sort_unstable();
    out.dedup();
}

/// Registry handles for one cache level (`mem.<level>.{hits,misses,
/// evictions}`).
#[derive(Debug, Clone)]
struct LevelCounters {
    hits: Counter,
    misses: Counter,
    evictions: Counter,
}

impl LevelCounters {
    fn new(tel: &Telemetry, level: &str) -> Self {
        LevelCounters {
            hits: tel.counter(&format!("mem.{level}.hits")),
            misses: tel.counter(&format!("mem.{level}.misses")),
            evictions: tel.counter(&format!("mem.{level}.evictions")),
        }
    }

    /// Records an access outcome and returns `(hit, evicted)` for the
    /// trace event.
    fn record(&self, access: CacheAccess) -> (bool, bool) {
        match access {
            CacheAccess::Hit => {
                self.hits.inc();
                (true, false)
            }
            CacheAccess::Miss { evicted } => {
                self.misses.inc();
                if evicted {
                    self.evictions.inc();
                }
                (false, evicted)
            }
        }
    }
}

/// The timing model of one GPU's memory system.
///
/// Every resource (per-CU L1V, shared scalar caches, L2 banks, DRAM
/// channels) has a `next_free` cycle; transactions serialize on busy
/// resources, so latency grows with load. Tag arrays give true
/// hit/miss behavior, which is what makes irregular workloads (SpMV)
/// behave irregularly.
///
/// All statistics live in the [`Telemetry`] registry the hierarchy was
/// built with (`mem.*` counters); [`MemoryHierarchy::stats`] assembles
/// a [`MemStats`] snapshot from them.
#[derive(Debug)]
pub struct MemoryHierarchy {
    config: MemHierarchyConfig,
    l1v: Vec<Cache>,
    l1v_free: Vec<Cycle>,
    l1s: Vec<Cache>,
    l1s_free: Vec<Cycle>,
    l2: Vec<Cache>,
    l2_free: Vec<Cycle>,
    dram_free: Vec<Cycle>,
    l1v_ctr: LevelCounters,
    l1s_ctr: LevelCounters,
    l2_ctr: LevelCounters,
    dram_ctr: Counter,
    // Queueing-delay accounting: flat per-level histograms updated on
    // the hot path (no locks, no allocation), plus the state last
    // published into the registry histograms so `publish_queue_delays`
    // only records deltas.
    delays: QueueDelays,
    published: QueueDelays,
    qdelay_hists: [Histogram; 4],
    trace: Trace,
}

impl MemoryHierarchy {
    /// Builds the hierarchy for a configuration with its own private
    /// telemetry (convenient for tests and standalone use).
    pub fn new(config: MemHierarchyConfig) -> Self {
        Self::with_telemetry(config, &Telemetry::default())
    }

    /// Builds the hierarchy wired to a shared [`Telemetry`] handle, so
    /// its counters and trace events land in the simulator's registry.
    pub fn with_telemetry(config: MemHierarchyConfig, tel: &Telemetry) -> Self {
        let n_cu = config.num_cus as usize;
        let n_scalar = n_cu.div_ceil(CUS_PER_SCALAR_CACHE);
        let n_l2 = config.l2_banks as usize;
        let n_ch = config.dram.channels as usize;
        MemoryHierarchy {
            l1v: (0..n_cu).map(|_| Cache::new(&config.l1v)).collect(),
            l1v_free: vec![0; n_cu],
            l1s: (0..n_scalar).map(|_| Cache::new(&config.l1s)).collect(),
            l1s_free: vec![0; n_scalar],
            l2: (0..n_l2).map(|_| Cache::new(&config.l2)).collect(),
            l2_free: vec![0; n_l2],
            dram_free: vec![0; n_ch],
            l1v_ctr: LevelCounters::new(tel, "l1v"),
            l1s_ctr: LevelCounters::new(tel, "l1s"),
            l2_ctr: LevelCounters::new(tel, "l2"),
            dram_ctr: tel.counter("mem.dram.accesses"),
            delays: QueueDelays::default(),
            published: QueueDelays::default(),
            qdelay_hists: [
                tel.histogram("mem.l1v.queue_delay"),
                tel.histogram("mem.l1s.queue_delay"),
                tel.histogram("mem.l2.queue_delay"),
                tel.histogram("mem.dram.queue_delay"),
            ],
            trace: tel.trace().clone(),
            config,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &MemHierarchyConfig {
        &self.config
    }

    fn trace_access(&self, level: CacheLevel, hit: bool, evicted: bool, ts: Cycle) {
        self.trace.emit_with(|| TraceEvent {
            ts,
            dur: 0,
            kind: EventKind::CacheAccess {
                level,
                hit,
                evicted,
            },
        });
    }

    fn l2_and_beyond(&mut self, line_addr: u64, kind: AccessKind, ready: Cycle) -> Cycle {
        let bank = (line_addr % self.config.l2_banks) as usize;
        let t = ready.max(self.l2_free[bank]);
        self.delays.l2.record(t - ready);
        self.l2_free[bank] = t + self.config.l2.service_interval;
        let access = self.l2[bank].access(line_addr * LINE_BYTES, kind, t);
        let (hit, evicted) = self.l2_ctr.record(access);
        self.trace_access(CacheLevel::L2, hit, evicted, t);
        if hit {
            t + self.config.l2.hit_latency
        } else {
            let ch = ((line_addr / self.config.l2_banks) % self.config.dram.channels) as usize;
            let td = (t + self.config.l2.hit_latency).max(self.dram_free[ch]);
            self.delays
                .dram
                .record(td - (t + self.config.l2.hit_latency));
            self.dram_free[ch] = td + self.config.dram.service_interval;
            self.dram_ctr.inc();
            self.trace.emit_with(|| TraceEvent {
                ts: td,
                dur: 0,
                kind: EventKind::DramAccess { channel: ch as u32 },
            });
            td + self.config.dram.latency
        }
    }

    /// Issues one line transaction from CU `cu`'s vector path at cycle
    /// `now`; returns the completion cycle.
    ///
    /// # Panics
    /// Panics if `cu` is out of range for the configuration.
    pub fn access_line(
        &mut self,
        cu: usize,
        line_addr: u64,
        kind: AccessKind,
        now: Cycle,
    ) -> Cycle {
        let t = now.max(self.l1v_free[cu]);
        self.delays.l1v.record(t - now);
        self.l1v_free[cu] = t + self.config.l1v.service_interval;
        let access = self.l1v[cu].access(line_addr * LINE_BYTES, kind, t);
        let (hit, evicted) = self.l1v_ctr.record(access);
        self.trace_access(CacheLevel::L1V, hit, evicted, t);
        if hit {
            t + self.config.l1v.hit_latency
        } else {
            self.l2_and_beyond(line_addr, kind, t + self.config.l1v.hit_latency)
        }
    }

    /// Issues a scalar (constant/argument) load from CU `cu` at `now`;
    /// returns the completion cycle.
    pub fn scalar_access(&mut self, cu: usize, addr: u64, now: Cycle) -> Cycle {
        let group = cu / CUS_PER_SCALAR_CACHE;
        let t = now.max(self.l1s_free[group]);
        self.delays.l1s.record(t - now);
        self.l1s_free[group] = t + self.config.l1s.service_interval;
        let access = self.l1s[group].access(addr, AccessKind::Read, t);
        let (hit, evicted) = self.l1s_ctr.record(access);
        self.trace_access(CacheLevel::L1S, hit, evicted, t);
        if hit {
            t + self.config.l1s.hit_latency
        } else {
            self.l2_and_beyond(
                addr / LINE_BYTES,
                AccessKind::Read,
                t + self.config.l1s.hit_latency,
            )
        }
    }

    /// Invalidates all cache tags (kernel boundary), keeping the clock
    /// monotonic.
    pub fn flush_caches(&mut self) {
        for c in self
            .l1v
            .iter_mut()
            .chain(self.l1s.iter_mut())
            .chain(self.l2.iter_mut())
        {
            c.flush();
        }
    }

    /// Snapshot of the per-level queueing-delay histograms (grow-only;
    /// diff two snapshots with [`QueueDelays::since`] for per-kernel
    /// deltas).
    pub fn queue_delays(&self) -> QueueDelays {
        self.delays
    }

    /// Total queue cycles accumulated across all levels — cheap enough
    /// to read around a single access, which is how the timing engine
    /// splits a memory wait into its queued and in-flight portions.
    #[inline]
    pub fn queue_cycles(&self) -> u64 {
        self.delays.queue_cycles()
    }

    /// Publishes queue delays accumulated since the last publish into
    /// the registry histograms (`mem.<level>.queue_delay`), using each
    /// bucket's floor as the representative value. Called at kernel end
    /// (cold path) so the hot path never touches a locked histogram.
    pub fn publish_queue_delays(&mut self) {
        let delta = self.delays.since(&self.published);
        for ((_, hist), handle) in delta.levels().iter().zip(self.qdelay_hists.iter()) {
            for (i, n) in hist.buckets.iter().enumerate() {
                if *n > 0 {
                    handle.record_n(QueueDelayHist::bucket_floor(i), *n);
                }
            }
        }
        self.published = self.delays;
    }

    /// Services one vector transaction — the line set of a coalesced
    /// warp access — entering the hierarchy at `issue_at`. Returns the
    /// completion cycle (max over lines) and the queue cycles the
    /// transaction accumulated across all levels.
    ///
    /// This is the typed front door the timing engine uses; it is the
    /// single-request form of [`MemoryHierarchy::service`].
    pub fn service_vector(
        &mut self,
        cu: usize,
        lines: &[u64],
        write: bool,
        issue_at: Cycle,
    ) -> MemResponse {
        let kind = if write {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        let q0 = self.queue_cycles();
        let mut done = issue_at;
        for &line in lines {
            done = done.max(self.access_line(cu, line, kind, issue_at));
        }
        MemResponse {
            warp: 0,
            req_cycle: issue_at,
            done,
            queued: self.queue_cycles() - q0,
        }
    }

    /// Services one scalar (constant/argument) load issued at `now`.
    pub fn service_scalar(&mut self, cu: usize, addr: u64, now: Cycle) -> MemResponse {
        let q0 = self.queue_cycles();
        let done = self.scalar_access(cu, addr, now);
        MemResponse {
            warp: 0,
            req_cycle: now,
            done,
            queued: self.queue_cycles() - q0,
        }
    }

    /// Services one queued [`MemRequest`]. `lines` must be the slice the
    /// owning [`MemPort`] stored for the request (empty for scalars).
    pub fn service(&mut self, req: &MemRequest, lines: &[u64]) -> MemResponse {
        let mut resp = if req.scalar {
            self.service_scalar(req.cu as usize, req.addr, req.issue_at)
        } else {
            self.service_vector(req.cu as usize, lines, req.write, req.issue_at)
        };
        resp.warp = req.warp;
        resp.req_cycle = req.req_cycle;
        resp
    }

    /// Drains one port in submission order: every queued request is
    /// serviced and its response appended to the port's response queue.
    /// This is the serial-engine path; the epoch coordinator instead
    /// interleaves requests from many ports in canonical cycle order via
    /// [`MemoryHierarchy::service`].
    pub fn service_port(&mut self, port: &mut MemPort) {
        for i in 0..port.requests.len() {
            let resp = {
                let req = &port.requests[i];
                let (a, b) = req.lines;
                let lines = &port.lines[a as usize..b as usize];
                self.service(req, lines)
            };
            port.responses.push(resp);
        }
        port.requests.clear();
        port.lines.clear();
    }

    /// Snapshot of the accumulated statistics (registry counters).
    pub fn stats(&self) -> MemStats {
        MemStats {
            l1v_hits: self.l1v_ctr.hits.get(),
            l1v_misses: self.l1v_ctr.misses.get(),
            l1v_evictions: self.l1v_ctr.evictions.get(),
            l1s_hits: self.l1s_ctr.hits.get(),
            l1s_misses: self.l1s_ctr.misses.get(),
            l1s_evictions: self.l1s_ctr.evictions.get(),
            l2_hits: self.l2_ctr.hits.get(),
            l2_misses: self.l2_ctr.misses.get(),
            l2_evictions: self.l2_ctr.evictions.get(),
            dram_accesses: self.dram_ctr.get(),
        }
    }
}

/// One typed request crossing the engine↔memory boundary.
///
/// `req_cycle` is the engine cycle of the handler that produced the
/// request (the canonical service-order key); `issue_at` is when the
/// transaction actually enters the hierarchy (after the engine's issue
/// latency). `warp` is an engine-defined tag echoed back on the
/// response so the producer can route completions without keeping its
/// own map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    pub cu: u32,
    pub warp: u32,
    pub req_cycle: Cycle,
    pub issue_at: Cycle,
    pub write: bool,
    pub scalar: bool,
    /// Scalar address (scalar requests only).
    pub addr: u64,
    /// Range into the owning port's line arena (vector requests only).
    lines: (u32, u32),
}

/// Completion of one [`MemRequest`]: the cycle the data is back plus
/// the queue cycles the transaction spent waiting on busy resources
/// (the engine charges those to `MemQueueFull`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemResponse {
    pub warp: u32,
    pub req_cycle: Cycle,
    pub done: Cycle,
    pub queued: u64,
}

/// A typed request/response queue pair between one event domain (CU
/// shard) and the shared L2/DRAM model.
///
/// Producers `submit_*` requests during an epoch; the hierarchy owner
/// drains them (in submission order via
/// [`MemoryHierarchy::service_port`], or interleaved across ports in
/// canonical `(req_cycle, warp)` order by the epoch coordinator) and
/// pushes [`MemResponse`]s back. Line addresses live in a per-port
/// arena so a request is `Copy` and submission never allocates per
/// lane. The queue is deliberately dumb — MSHR merging and NoC
/// contention (ROADMAP item 4) slot in behind this interface without
/// touching the engine.
#[derive(Debug, Default)]
pub struct MemPort {
    lines: Vec<u64>,
    requests: Vec<MemRequest>,
    responses: Vec<MemResponse>,
}

impl MemPort {
    pub fn new() -> Self {
        MemPort::default()
    }

    /// Queues a coalesced vector access. Returns the request index
    /// (responses produced by in-order draining preserve indices).
    pub fn submit_vector(
        &mut self,
        cu: u32,
        warp: u32,
        req_cycle: Cycle,
        issue_at: Cycle,
        write: bool,
        lines: &[u64],
    ) -> usize {
        let a = self.lines.len() as u32;
        self.lines.extend_from_slice(lines);
        let b = self.lines.len() as u32;
        self.requests.push(MemRequest {
            cu,
            warp,
            req_cycle,
            issue_at,
            write,
            scalar: false,
            addr: 0,
            lines: (a, b),
        });
        self.requests.len() - 1
    }

    /// Queues a scalar load issued at `req_cycle`.
    pub fn submit_scalar(&mut self, cu: u32, warp: u32, req_cycle: Cycle, addr: u64) -> usize {
        self.requests.push(MemRequest {
            cu,
            warp,
            req_cycle,
            issue_at: req_cycle,
            write: false,
            scalar: true,
            addr,
            lines: (0, 0),
        });
        self.requests.len() - 1
    }

    /// Pending (unserviced) requests, in submission order.
    pub fn requests(&self) -> &[MemRequest] {
        &self.requests
    }

    /// The line slice backing a vector request.
    pub fn request_lines(&self, req: &MemRequest) -> &[u64] {
        let (a, b) = req.lines;
        &self.lines[a as usize..b as usize]
    }

    /// Appends a response produced by an out-of-band drain (the epoch
    /// coordinator services requests across many ports in canonical
    /// order, then pushes each response back to its origin port).
    pub fn push_response(&mut self, resp: MemResponse) {
        self.responses.push(resp);
    }

    /// Marks all pending requests as consumed (the coordinator has
    /// serviced them via [`MemoryHierarchy::service`]).
    pub fn clear_requests(&mut self) {
        self.requests.clear();
        self.lines.clear();
    }

    /// Drains accumulated responses, in the order they were pushed.
    pub fn take_responses(&mut self, out: &mut Vec<MemResponse>) {
        out.append(&mut self.responses);
    }

    pub fn is_empty(&self) -> bool {
        self.requests.is_empty() && self.responses.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> MemHierarchyConfig {
        let mut c = MemHierarchyConfig::r9_nano();
        c.num_cus = 4;
        c
    }

    #[test]
    fn hit_is_faster_than_miss() {
        let mut h = MemoryHierarchy::new(small_config());
        let miss_done = h.access_line(0, 100, AccessKind::Read, 0);
        let hit_done = h.access_line(0, 100, AccessKind::Read, miss_done) - miss_done;
        assert!(hit_done < miss_done, "{hit_done} !< {miss_done}");
    }

    #[test]
    fn l2_shared_across_cus() {
        let mut h = MemoryHierarchy::new(small_config());
        let t1 = h.access_line(0, 7, AccessKind::Read, 0);
        // Different CU: misses its own L1 but hits shared L2.
        let t2 = h.access_line(1, 7, AccessKind::Read, t1) - t1;
        let cold = h.access_line(2, 9999, AccessKind::Read, 0);
        assert!(t2 < cold, "L2 hit {t2} should beat DRAM {cold}");
    }

    #[test]
    fn contention_delays_bursts() {
        let mut h = MemoryHierarchy::new(small_config());
        // Warm one line, then fire a burst of hits at the same cycle: the
        // L1 service interval must serialize them.
        let warm = h.access_line(0, 5, AccessKind::Read, 0);
        let a = h.access_line(0, 5, AccessKind::Read, warm);
        let b = h.access_line(0, 5, AccessKind::Read, warm);
        assert!(b > a);
    }

    #[test]
    fn flush_restores_cold_misses() {
        let mut h = MemoryHierarchy::new(small_config());
        let cold = h.access_line(0, 1, AccessKind::Read, 0);
        let now = cold;
        h.flush_caches();
        let again = h.access_line(0, 1, AccessKind::Read, now) - now;
        assert!(again >= cold, "flush should make it a miss again");
        assert_eq!(h.stats().l1v_hits, 0);
        assert_eq!(h.stats().l1v_misses, 2);
    }

    #[test]
    fn scalar_path_counts_separately() {
        let mut h = MemoryHierarchy::new(small_config());
        h.scalar_access(0, 0x40, 0);
        h.scalar_access(1, 0x40, 100_000); // same group (cu 0..4) -> hit
        assert_eq!(h.stats().l1s_misses, 1);
        assert_eq!(h.stats().l1s_hits, 1);
    }

    #[test]
    fn counters_land_in_the_shared_registry() {
        let tel = Telemetry::default();
        let mut h = MemoryHierarchy::with_telemetry(small_config(), &tel);
        h.access_line(0, 1, AccessKind::Read, 0);
        h.access_line(0, 1, AccessKind::Read, 1000);
        let snap = tel.snapshot();
        assert_eq!(snap.counter("mem.l1v.hits"), Some(1));
        assert_eq!(snap.counter("mem.l1v.misses"), Some(1));
        assert_eq!(snap.counter("mem.dram.accesses"), Some(1));
        // The MemStats snapshot is assembled from the same counters.
        assert_eq!(h.stats().l1v_hits, 1);
        assert_eq!(h.stats().dram_accesses, 1);
    }

    #[test]
    fn evictions_are_counted_per_level() {
        let mut cfg = small_config();
        // Shrink L1V to 2 lines so a 3-line stream must evict.
        cfg.l1v.size_bytes = 128;
        cfg.l1v.assoc = 2;
        let mut h = MemoryHierarchy::new(cfg);
        for (t, line) in [0u64, 1, 2, 0].iter().enumerate() {
            h.access_line(0, *line, AccessKind::Read, t as u64 * 1000);
        }
        let s = h.stats();
        assert_eq!(s.l1v_misses, 4);
        assert!(s.l1v_evictions >= 2, "evictions {}", s.l1v_evictions);
        assert_eq!(s.l2_evictions, 0);
    }

    #[test]
    fn queue_delays_capture_contention_and_publish_deltas() {
        let tel = Telemetry::default();
        let mut h = MemoryHierarchy::with_telemetry(small_config(), &tel);
        // Warm a line, then fire same-cycle hits: the second must queue
        // on the L1V service interval.
        let warm = h.access_line(0, 5, AccessKind::Read, 0);
        h.access_line(0, 5, AccessKind::Read, warm);
        h.access_line(0, 5, AccessKind::Read, warm);
        let q = h.queue_delays();
        assert!(q.l1v.sum > 0, "same-cycle burst must queue: {q:?}");
        assert_eq!(q.l1v.count, 3);
        assert_eq!(h.queue_cycles(), q.queue_cycles());

        // Publishing lands the delta in the registry histograms, and a
        // second publish with no new traffic records nothing.
        h.publish_queue_delays();
        let snap = tel.snapshot();
        let hist = snap
            .histograms
            .iter()
            .find(|s| s.name == "mem.l1v.queue_delay")
            .expect("published histogram");
        assert_eq!(hist.count, q.l1v.count);
        assert!(hist.sum > 0);
        h.publish_queue_delays();
        let again = tel.snapshot();
        let hist2 = again
            .histograms
            .iter()
            .find(|s| s.name == "mem.l1v.queue_delay")
            .expect("published histogram");
        assert_eq!(hist2.count, q.l1v.count);
    }

    #[test]
    fn port_drain_matches_direct_access() {
        // The same request stream through a MemPort must produce the
        // same completion cycles and bank state as direct calls.
        let mut direct = MemoryHierarchy::new(small_config());
        let mut ported = MemoryHierarchy::new(small_config());
        let mut port = MemPort::new();

        let d1 = direct.service_vector(0, &[1, 2], false, 10);
        let d2 = direct.service_vector(1, &[2], true, 12);
        let d3 = direct.service_scalar(0, 0x80, 14);

        port.submit_vector(0, 7, 10, 10, false, &[1, 2]);
        port.submit_vector(1, 8, 12, 12, true, &[2]);
        port.submit_scalar(0, 9, 14, 0x80);
        ported.service_port(&mut port);

        let mut resps = Vec::new();
        port.take_responses(&mut resps);
        assert_eq!(resps.len(), 3);
        assert_eq!(resps[0].done, d1.done);
        assert_eq!(resps[0].queued, d1.queued);
        assert_eq!(resps[0].warp, 7);
        assert_eq!(resps[1].done, d2.done);
        assert_eq!(resps[2].done, d3.done);
        assert_eq!(resps[2].warp, 9);
        assert!(port.is_empty());
        assert_eq!(direct.stats().l1v_misses, ported.stats().l1v_misses);
        assert_eq!(direct.stats().dram_accesses, ported.stats().dram_accesses);
    }

    #[test]
    fn out_of_band_service_preserves_request_tags() {
        let mut h = MemoryHierarchy::new(small_config());
        let mut port = MemPort::new();
        port.submit_vector(2, 41, 5, 9, false, &[100, 101]);
        let reqs: Vec<MemRequest> = port.requests().to_vec();
        assert_eq!(reqs.len(), 1);
        assert_eq!(port.request_lines(&reqs[0]), &[100, 101]);
        let resp = {
            let lines: Vec<u64> = port.request_lines(&reqs[0]).to_vec();
            h.service(&reqs[0], &lines)
        };
        assert_eq!(resp.warp, 41);
        assert_eq!(resp.req_cycle, 5);
        assert!(resp.done > 9);
        port.clear_requests();
        port.push_response(resp);
        assert!(!port.is_empty());
    }

    #[test]
    fn coalesce_merges_and_splits() {
        assert_eq!(coalesce_lines([0u64, 4, 8, 60], 4), vec![0]);
        assert_eq!(coalesce_lines([62u64], 4), vec![0, 1]); // straddles into line 1
        assert_eq!(coalesce_lines([60u64], 4), vec![0]); // last byte is 63
        assert_eq!(coalesce_lines([60u64], 8), vec![0, 1]);
        assert_eq!(coalesce_lines([0u64, 64, 128], 4), vec![0, 1, 2]);
    }
}

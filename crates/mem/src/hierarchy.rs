//! Queueing timing model of the cache/DRAM hierarchy.

use crate::cache::{AccessKind, Cache, CacheAccess};
use crate::config::MemHierarchyConfig;
use crate::stats::MemStats;
use crate::Cycle;

/// Cache line size used throughout the hierarchy.
pub const LINE_BYTES: u64 = 64;

/// How many CUs share one scalar cache (Table 1: 16 scalar caches for 64
/// CUs on the R9 Nano).
const CUS_PER_SCALAR_CACHE: usize = 4;

/// Coalesces per-lane byte addresses into unique cache-line addresses,
/// the transaction unit of the hierarchy.
///
/// # Example
/// ```
/// use gpu_mem::coalesce_lines;
/// // 16 consecutive words live on one 64-byte line
/// let lines = coalesce_lines((0..16).map(|i| i * 4), 4);
/// assert_eq!(lines, vec![0]);
/// // strided accesses touch many lines
/// let lines = coalesce_lines((0..4).map(|i| i * 256), 4);
/// assert_eq!(lines.len(), 4);
/// ```
pub fn coalesce_lines(addrs: impl IntoIterator<Item = u64>, width_bytes: u64) -> Vec<u64> {
    let mut lines: Vec<u64> = addrs
        .into_iter()
        .flat_map(|a| {
            let first = a / LINE_BYTES;
            let last = (a + width_bytes - 1) / LINE_BYTES;
            first..=last
        })
        .collect();
    lines.sort_unstable();
    lines.dedup();
    lines
}

/// The timing model of one GPU's memory system.
///
/// Every resource (per-CU L1V, shared scalar caches, L2 banks, DRAM
/// channels) has a `next_free` cycle; transactions serialize on busy
/// resources, so latency grows with load. Tag arrays give true
/// hit/miss behavior, which is what makes irregular workloads (SpMV)
/// behave irregularly.
#[derive(Debug)]
pub struct MemoryHierarchy {
    config: MemHierarchyConfig,
    l1v: Vec<Cache>,
    l1v_free: Vec<Cycle>,
    l1s: Vec<Cache>,
    l1s_free: Vec<Cycle>,
    l2: Vec<Cache>,
    l2_free: Vec<Cycle>,
    dram_free: Vec<Cycle>,
    stats: MemStats,
}

impl MemoryHierarchy {
    /// Builds the hierarchy for a configuration.
    pub fn new(config: MemHierarchyConfig) -> Self {
        let n_cu = config.num_cus as usize;
        let n_scalar = n_cu.div_ceil(CUS_PER_SCALAR_CACHE);
        let n_l2 = config.l2_banks as usize;
        let n_ch = config.dram.channels as usize;
        MemoryHierarchy {
            l1v: (0..n_cu).map(|_| Cache::new(&config.l1v)).collect(),
            l1v_free: vec![0; n_cu],
            l1s: (0..n_scalar).map(|_| Cache::new(&config.l1s)).collect(),
            l1s_free: vec![0; n_scalar],
            l2: (0..n_l2).map(|_| Cache::new(&config.l2)).collect(),
            l2_free: vec![0; n_l2],
            dram_free: vec![0; n_ch],
            stats: MemStats::default(),
            config,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &MemHierarchyConfig {
        &self.config
    }

    fn l2_and_beyond(&mut self, line_addr: u64, kind: AccessKind, ready: Cycle) -> Cycle {
        let bank = (line_addr % self.config.l2_banks) as usize;
        let t = ready.max(self.l2_free[bank]);
        self.l2_free[bank] = t + self.config.l2.service_interval;
        match self.l2[bank].access(line_addr * LINE_BYTES, kind, t) {
            CacheAccess::Hit => {
                self.stats.l2_hits += 1;
                t + self.config.l2.hit_latency
            }
            CacheAccess::Miss => {
                self.stats.l2_misses += 1;
                let ch = ((line_addr / self.config.l2_banks) % self.config.dram.channels) as usize;
                let td = (t + self.config.l2.hit_latency).max(self.dram_free[ch]);
                self.dram_free[ch] = td + self.config.dram.service_interval;
                self.stats.dram_accesses += 1;
                td + self.config.dram.latency
            }
        }
    }

    /// Issues one line transaction from CU `cu`'s vector path at cycle
    /// `now`; returns the completion cycle.
    ///
    /// # Panics
    /// Panics if `cu` is out of range for the configuration.
    pub fn access_line(&mut self, cu: usize, line_addr: u64, kind: AccessKind, now: Cycle) -> Cycle {
        let t = now.max(self.l1v_free[cu]);
        self.l1v_free[cu] = t + self.config.l1v.service_interval;
        match self.l1v[cu].access(line_addr * LINE_BYTES, kind, t) {
            CacheAccess::Hit => {
                self.stats.l1v_hits += 1;
                t + self.config.l1v.hit_latency
            }
            CacheAccess::Miss => {
                self.stats.l1v_misses += 1;
                self.l2_and_beyond(line_addr, kind, t + self.config.l1v.hit_latency)
            }
        }
    }

    /// Issues a scalar (constant/argument) load from CU `cu` at `now`;
    /// returns the completion cycle.
    pub fn scalar_access(&mut self, cu: usize, addr: u64, now: Cycle) -> Cycle {
        let group = cu / CUS_PER_SCALAR_CACHE;
        let t = now.max(self.l1s_free[group]);
        self.l1s_free[group] = t + self.config.l1s.service_interval;
        match self.l1s[group].access(addr, AccessKind::Read, t) {
            CacheAccess::Hit => {
                self.stats.l1s_hits += 1;
                t + self.config.l1s.hit_latency
            }
            CacheAccess::Miss => {
                self.stats.l1s_misses += 1;
                self.l2_and_beyond(addr / LINE_BYTES, AccessKind::Read, t + self.config.l1s.hit_latency)
            }
        }
    }

    /// Invalidates all cache tags (kernel boundary), keeping the clock
    /// monotonic.
    pub fn flush_caches(&mut self) {
        for c in self
            .l1v
            .iter_mut()
            .chain(self.l1s.iter_mut())
            .chain(self.l2.iter_mut())
        {
            c.flush();
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> MemHierarchyConfig {
        let mut c = MemHierarchyConfig::r9_nano();
        c.num_cus = 4;
        c
    }

    #[test]
    fn hit_is_faster_than_miss() {
        let mut h = MemoryHierarchy::new(small_config());
        let miss_done = h.access_line(0, 100, AccessKind::Read, 0);
        let hit_done = h.access_line(0, 100, AccessKind::Read, miss_done) - miss_done;
        assert!(hit_done < miss_done, "{hit_done} !< {miss_done}");
    }

    #[test]
    fn l2_shared_across_cus() {
        let mut h = MemoryHierarchy::new(small_config());
        let t1 = h.access_line(0, 7, AccessKind::Read, 0);
        // Different CU: misses its own L1 but hits shared L2.
        let t2 = h.access_line(1, 7, AccessKind::Read, t1) - t1;
        let cold = h.access_line(2, 9999, AccessKind::Read, 0);
        assert!(t2 < cold, "L2 hit {t2} should beat DRAM {cold}");
    }

    #[test]
    fn contention_delays_bursts() {
        let mut h = MemoryHierarchy::new(small_config());
        // Warm one line, then fire a burst of hits at the same cycle: the
        // L1 service interval must serialize them.
        let warm = h.access_line(0, 5, AccessKind::Read, 0);
        let a = h.access_line(0, 5, AccessKind::Read, warm);
        let b = h.access_line(0, 5, AccessKind::Read, warm);
        assert!(b > a);
    }

    #[test]
    fn flush_restores_cold_misses() {
        let mut h = MemoryHierarchy::new(small_config());
        let cold = h.access_line(0, 1, AccessKind::Read, 0);
        let now = cold;
        h.flush_caches();
        let again = h.access_line(0, 1, AccessKind::Read, now) - now;
        assert!(again >= cold, "flush should make it a miss again");
        assert_eq!(h.stats().l1v_hits, 0);
        assert_eq!(h.stats().l1v_misses, 2);
    }

    #[test]
    fn scalar_path_counts_separately() {
        let mut h = MemoryHierarchy::new(small_config());
        h.scalar_access(0, 0x40, 0);
        h.scalar_access(1, 0x40, 100_000); // same group (cu 0..4) -> hit
        assert_eq!(h.stats().l1s_misses, 1);
        assert_eq!(h.stats().l1s_hits, 1);
    }

    #[test]
    fn coalesce_merges_and_splits() {
        assert_eq!(coalesce_lines([0u64, 4, 8, 60], 4), vec![0]);
        assert_eq!(coalesce_lines([62u64], 4), vec![0, 1]); // straddles into line 1
        assert_eq!(coalesce_lines([60u64], 4), vec![0]); // last byte is 63
        assert_eq!(coalesce_lines([60u64], 8), vec![0, 1]);
        assert_eq!(coalesce_lines([0u64, 64, 128], 4), vec![0, 1, 2]);
    }
}

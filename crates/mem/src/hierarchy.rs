//! Queueing timing model of the cache/DRAM hierarchy.

use crate::cache::{AccessKind, Cache, CacheAccess};
use crate::config::{MemHierarchyConfig, MshrConfig};
use crate::stats::{MemStats, QueueDelayHist, QueueDelays};
use crate::Cycle;
use gpu_telemetry::{
    CacheLevel, Counter, EventKind, Gauge, Histogram, Telemetry, Trace, TraceEvent,
};
use std::collections::VecDeque;

/// Cache line size used throughout the hierarchy.
pub const LINE_BYTES: u64 = 64;

/// How many CUs share one scalar cache (Table 1: 16 scalar caches for 64
/// CUs on the R9 Nano).
const CUS_PER_SCALAR_CACHE: usize = 4;

/// Coalesces per-lane byte addresses into unique cache-line addresses,
/// the transaction unit of the hierarchy.
///
/// # Example
/// ```
/// use gpu_mem::coalesce_lines;
/// // 16 consecutive words live on one 64-byte line
/// let lines = coalesce_lines((0..16).map(|i| i * 4), 4);
/// assert_eq!(lines, vec![0]);
/// // strided accesses touch many lines
/// let lines = coalesce_lines((0..4).map(|i| i * 256), 4);
/// assert_eq!(lines.len(), 4);
/// ```
pub fn coalesce_lines(addrs: impl IntoIterator<Item = u64>, width_bytes: u64) -> Vec<u64> {
    let mut lines = Vec::new();
    for a in addrs {
        push_lines(&mut lines, a, width_bytes);
    }
    coalesce_lines_into(&mut lines);
    lines
}

/// Appends the line addresses touched by one `width_bytes` access at
/// `a` to `out` — the allocation-free per-lane half of
/// [`coalesce_lines`]. Callers accumulate lanes into a reusable scratch
/// buffer and finish with [`coalesce_lines_into`].
#[inline]
pub fn push_lines(out: &mut Vec<u64>, a: u64, width_bytes: u64) {
    let first = a / LINE_BYTES;
    // Saturate instead of wrapping: an access whose last byte would
    // pass the top of the address space clamps to the final line rather
    // than spanning the whole 2^64 range (or underflowing on width 0).
    let last = a.saturating_add(width_bytes.saturating_sub(1)) / LINE_BYTES;
    out.extend(first..=last);
}

/// Sorts and dedups a line buffer in place, completing the coalesce.
/// `coalesce_lines(addrs, w)` is exactly `push_lines` per address
/// followed by this.
#[inline]
pub fn coalesce_lines_into(out: &mut Vec<u64>) {
    out.sort_unstable();
    out.dedup();
}

/// Registry handles for one cache level (`mem.<level>.{hits,misses,
/// evictions,mshr_merges}`).
#[derive(Debug, Clone)]
struct LevelCounters {
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    /// Misses coalesced into an outstanding same-line fill; the level's
    /// downstream traffic is `misses - mshr_merges`.
    merges: Counter,
}

impl LevelCounters {
    fn new(tel: &Telemetry, level: &str) -> Self {
        LevelCounters {
            hits: tel.counter(&format!("mem.{level}.hits")),
            misses: tel.counter(&format!("mem.{level}.misses")),
            evictions: tel.counter(&format!("mem.{level}.evictions")),
            merges: tel.counter(&format!("mem.{level}.mshr_merges")),
        }
    }

    /// Records an access outcome and returns `(hit, evicted)` for the
    /// trace event.
    fn record(&self, access: CacheAccess) -> (bool, bool) {
        match access {
            CacheAccess::Hit => {
                self.hits.inc();
                (true, false)
            }
            CacheAccess::Miss { evicted } => {
                self.misses.inc();
                if evicted {
                    self.evictions.inc();
                }
                (false, evicted)
            }
        }
    }

    /// Records a miss that coalesced into an in-flight fill: a miss in
    /// the hit/miss accounting, but no downstream transaction.
    fn record_merge(&self) {
        self.misses.inc();
        self.merges.inc();
    }
}

/// Fibonacci multiplicative mix for bank/channel selection: power-of-two
/// strides (the common GPU access pattern) would alias onto a single
/// bank or channel under plain modulo. Multiplying by the golden-ratio
/// constant spreads every stride class into the *high* bits of the
/// product (an odd multiplier preserves trailing zeros, so the low bits
/// of the product alone would still alias); the final fold xors them
/// back down so every bit window of the result is usable with `%`.
#[inline]
fn fib_mix(x: u64) -> u64 {
    let m = (x ^ (x >> 31)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    m ^ (m >> 32)
}

/// One outstanding miss: the line in flight, when its fill returns, and
/// how many extra same-line misses merged into it.
#[derive(Debug, Clone, Copy)]
struct MshrEntry {
    line: u64,
    fill_at: Cycle,
    merges: u64,
}

/// A miss-status-holding-register file for one cache: tracks lines with
/// fills in flight so same-line misses merge instead of re-fetching, and
/// so tags are installed when the data arrives, not when the miss is
/// discovered.
///
/// Entries are expired lazily at access time. Expiry tolerates the
/// slightly non-monotone `now` the epoch coordinator produces (vector
/// and scalar requests with equal `req_cycle` differ by the engine's
/// issue latency): a not-yet-expired entry simply stays in flight a few
/// cycles longer, and all arithmetic saturates.
#[derive(Debug)]
struct MshrFile {
    entries: Vec<MshrEntry>,
    capacity: usize,
    merge_slots: u64,
}

impl MshrFile {
    fn new(cfg: &MshrConfig) -> Self {
        MshrFile {
            entries: Vec::new(),
            capacity: (cfg.entries as usize).max(1),
            merge_slots: cfg.merge_slots,
        }
    }

    /// A file that never back-pressures — the legacy model's
    /// counting-only shadow of outstanding fills (tags are still filled
    /// at lookup time there, so the file has no timing effect).
    fn unbounded() -> Self {
        MshrFile {
            entries: Vec::new(),
            capacity: usize::MAX,
            merge_slots: u64::MAX,
        }
    }

    /// Removes every entry whose fill has completed by `now`, handing
    /// each `(line, fill_at)` to `install` (the detailed path installs
    /// the tag at fill time; the legacy shadow discards it).
    fn expire(&mut self, now: Cycle, mut install: impl FnMut(u64, Cycle)) {
        let mut i = 0;
        while i < self.entries.len() {
            if self.entries[i].fill_at <= now {
                let e = self.entries.swap_remove(i);
                install(e.line, e.fill_at);
            } else {
                i += 1;
            }
        }
    }

    fn find_mut(&mut self, line: u64) -> Option<&mut MshrEntry> {
        self.entries.iter_mut().find(|e| e.line == line)
    }

    fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// The earliest cycle at which an entry frees (MSHR-full
    /// back-pressure waits for this).
    fn earliest_fill(&self) -> Option<Cycle> {
        self.entries.iter().map(|e| e.fill_at).min()
    }

    /// Allocates an entry (or refreshes the fill time of an existing
    /// one — the legacy shadow can re-miss a line it already tracks when
    /// the tag was evicted under the in-flight window).
    fn alloc(&mut self, line: u64, fill_at: Cycle) {
        if let Some(e) = self.find_mut(line) {
            e.fill_at = e.fill_at.max(fill_at);
        } else {
            self.entries.push(MshrEntry {
                line,
                fill_at,
                merges: 0,
            });
        }
    }

    fn clear(&mut self) {
        self.entries.clear();
    }
}

/// Bounded request queue in front of one L2 bank. A request occupies a
/// slot from admission until the bank *starts* servicing it; service
/// starts are monotone (the bank's `next_free` only grows), so the
/// queue drains FIFO and admission is O(1) amortized.
#[derive(Debug, Default)]
struct BankQueue {
    /// Service-start cycles of admitted requests, oldest first.
    starts: VecDeque<Cycle>,
    /// Highest occupancy observed (per-bank telemetry).
    peak: u64,
}

impl BankQueue {
    /// Admits a request arriving at `arrive` into a queue bounded at
    /// `depth`: returns the cycle the request actually gets a slot
    /// (later than `arrive` when the queue is full).
    fn admit(&mut self, arrive: Cycle, depth: usize) -> Cycle {
        while self.starts.front().is_some_and(|&s| s <= arrive) {
            self.starts.pop_front();
        }
        if self.starts.len() >= depth {
            // The slot frees when the oldest of the last `depth`
            // occupants reaches the bank.
            self.starts[self.starts.len() - depth].max(arrive)
        } else {
            arrive
        }
    }

    /// Records an admitted request's service start and tracks peak
    /// occupancy.
    fn push(&mut self, start: Cycle) {
        self.starts.push_back(start);
        self.peak = self.peak.max(self.starts.len() as u64);
    }
}

/// One DRAM bank: its open row (if any) and when it can accept the next
/// command.
#[derive(Debug, Clone, Copy, Default)]
struct DramBank {
    open_row: Option<u64>,
    free: Cycle,
}

/// What the tag/MSHR stage of one cache level decided.
enum StageOut {
    /// The access completes at this cycle with no downstream traffic.
    Done(Cycle),
    /// Fresh miss: the caller sends it downstream entering at this cycle
    /// and allocates an MSHR entry with the eventual completion.
    Downstream(Cycle),
}

/// Runs the tag + outstanding-miss stage of one cache level for an
/// access the level accepted at `t`.
///
/// Legacy mode preserves the original fill-at-lookup timing bit-for-bit
/// and only fixes the counting: an access that "hits" a line whose fill
/// is still in flight is recorded as a merged miss, not a hit. Detailed
/// mode separates lookup from fill — tags install when the fill returns,
/// same-line misses merge into the outstanding entry (completing at fill
/// time, never earlier than a hit), and exhausted merge slots or MSHR
/// entries back-pressure, recording the wait as a queue delay the engine
/// charges to `mem_queue_full`.
#[allow(clippy::too_many_arguments)]
fn tag_stage(
    cache: &mut Cache,
    mshr: &mut MshrFile,
    delays: &mut QueueDelayHist,
    ctr: &LevelCounters,
    trace: &Trace,
    level: CacheLevel,
    detailed: bool,
    addr: u64,
    kind: AccessKind,
    hit_latency: u64,
    t: Cycle,
) -> StageOut {
    let line = addr / LINE_BYTES;
    let emit = |hit: bool, evicted: bool| {
        trace.emit_with(|| TraceEvent {
            ts: t,
            dur: 0,
            kind: EventKind::CacheAccess {
                level,
                hit,
                evicted,
            },
        });
    };
    if !detailed {
        mshr.expire(t, |_, _| {});
        return match cache.access(addr, kind, t) {
            CacheAccess::Hit => {
                if mshr.find_mut(line).is_some() {
                    // The line's fill is still in flight: the legacy tag
                    // array made this look like a hit, but it is a
                    // coalesced miss. Timing is unchanged (that is what
                    // keeps golden_cycles bit-identical); only the
                    // accounting flips.
                    ctr.record_merge();
                    emit(false, false);
                } else {
                    ctr.hits.inc();
                    emit(true, false);
                }
                StageOut::Done(t + hit_latency)
            }
            CacheAccess::Miss { evicted } => {
                ctr.record(CacheAccess::Miss { evicted });
                emit(false, evicted);
                StageOut::Downstream(t + hit_latency)
            }
        };
    }
    mshr.expire(t, |l, at| {
        if cache.fill(l * LINE_BYTES, at) {
            ctr.evictions.inc();
        }
    });
    if cache.lookup(addr, t) {
        ctr.hits.inc();
        emit(true, false);
        return StageOut::Done(t + hit_latency);
    }
    let merge_slots = mshr.merge_slots;
    if let Some(e) = mshr.find_mut(line) {
        ctr.record_merge();
        emit(false, false);
        // Completing no earlier than a hit keeps responses out of their
        // own engine epoch (the deterministic-mode quantum bound).
        let done = e.fill_at.max(t + hit_latency);
        if e.merges < merge_slots {
            e.merges += 1;
        } else {
            // Merge slots exhausted: the access stalls at the level until
            // the fill drains the entry.
            delays.record(e.fill_at.saturating_sub(t));
        }
        return StageOut::Done(done);
    }
    let mut enter = t;
    if mshr.is_full() {
        // No free entry: back-pressure until the earliest fill returns,
        // then retire it so the allocation below has a slot.
        let free_at = mshr.earliest_fill().unwrap_or(t).max(t);
        delays.record(free_at - t);
        enter = free_at;
        mshr.expire(enter, |l, at| {
            if cache.fill(l * LINE_BYTES, at) {
                ctr.evictions.inc();
            }
        });
    }
    // Evictions happen at fill time in detailed mode, so the miss itself
    // never displaces a line.
    ctr.misses.inc();
    emit(false, false);
    StageOut::Downstream(enter + hit_latency)
}

/// The timing model of one GPU's memory system.
///
/// Every resource (per-CU L1V, shared scalar caches, L2 banks, DRAM
/// channels) has a `next_free` cycle; transactions serialize on busy
/// resources, so latency grows with load. Tag arrays give true
/// hit/miss behavior, which is what makes irregular workloads (SpMV)
/// behave irregularly.
///
/// All statistics live in the [`Telemetry`] registry the hierarchy was
/// built with (`mem.*` counters); [`MemoryHierarchy::stats`] assembles
/// a [`MemStats`] snapshot from them.
#[derive(Debug)]
pub struct MemoryHierarchy {
    config: MemHierarchyConfig,
    /// Cached `config.is_detailed()` for the hot path.
    detailed: bool,
    l1v: Vec<Cache>,
    l1v_free: Vec<Cycle>,
    l1s: Vec<Cache>,
    l1s_free: Vec<Cycle>,
    l2: Vec<Cache>,
    l2_free: Vec<Cycle>,
    dram_free: Vec<Cycle>,
    // Outstanding-miss state. In detailed mode these are real MSHR
    // files (merging, fill-time tag install, exhaustion back-pressure);
    // in legacy mode they are unbounded counting shadows that only fix
    // the double-hit accounting of fill-at-lookup tags.
    l1v_mshr: Vec<MshrFile>,
    l1s_mshr: Vec<MshrFile>,
    l2_mshr: Vec<MshrFile>,
    /// Bounded per-bank L2 request queues (detailed mode).
    l2_queues: Vec<BankQueue>,
    /// Per-(channel, bank) DRAM state (detailed mode), indexed
    /// `channel * banks_per_channel + bank`.
    dram_banks: Vec<DramBank>,
    l1v_ctr: LevelCounters,
    l1s_ctr: LevelCounters,
    l2_ctr: LevelCounters,
    dram_ctr: Counter,
    row_hits: Counter,
    row_misses: Counter,
    row_conflicts: Counter,
    /// `mem.dram.row_hit_rate`, refreshed on publish (registered in
    /// detailed mode only so legacy health tables stay noise-free).
    row_hit_rate: Option<Gauge>,
    /// `mem.l2.bank.<i>.peak_queue`, refreshed on publish (detailed
    /// mode; empty in legacy so health tables stay noise-free).
    bank_peak_gauges: Vec<Gauge>,
    // Queueing-delay accounting: flat per-level histograms updated on
    // the hot path (no locks, no allocation), plus the state last
    // published into the registry histograms so `publish_queue_delays`
    // only records deltas.
    delays: QueueDelays,
    published: QueueDelays,
    qdelay_hists: [Histogram; 4],
    trace: Trace,
}

impl MemoryHierarchy {
    /// Builds the hierarchy for a configuration with its own private
    /// telemetry (convenient for tests and standalone use).
    pub fn new(config: MemHierarchyConfig) -> Self {
        Self::with_telemetry(config, &Telemetry::default())
    }

    /// Builds the hierarchy wired to a shared [`Telemetry`] handle, so
    /// its counters and trace events land in the simulator's registry.
    pub fn with_telemetry(config: MemHierarchyConfig, tel: &Telemetry) -> Self {
        let n_cu = config.num_cus as usize;
        let n_scalar = n_cu.div_ceil(CUS_PER_SCALAR_CACHE);
        let n_l2 = config.l2_banks as usize;
        let n_ch = config.dram.channels as usize;
        let detailed = config.is_detailed();
        let mshr = |cfg: &MshrConfig, n: usize| -> Vec<MshrFile> {
            (0..n)
                .map(|_| {
                    if detailed {
                        MshrFile::new(cfg)
                    } else {
                        MshrFile::unbounded()
                    }
                })
                .collect()
        };
        let n_dram_banks = if detailed {
            n_ch * config.fidelity.dram_banks.banks_per_channel.max(1) as usize
        } else {
            0
        };
        MemoryHierarchy {
            detailed,
            l1v: (0..n_cu).map(|_| Cache::new(&config.l1v)).collect(),
            l1v_free: vec![0; n_cu],
            l1s: (0..n_scalar).map(|_| Cache::new(&config.l1s)).collect(),
            l1s_free: vec![0; n_scalar],
            l2: (0..n_l2).map(|_| Cache::new(&config.l2)).collect(),
            l2_free: vec![0; n_l2],
            dram_free: vec![0; n_ch],
            l1v_mshr: mshr(&config.fidelity.l1v_mshr, n_cu),
            l1s_mshr: mshr(&config.fidelity.l1s_mshr, n_scalar),
            l2_mshr: mshr(&config.fidelity.l2_mshr, n_l2),
            l2_queues: (0..if detailed { n_l2 } else { 0 })
                .map(|_| BankQueue::default())
                .collect(),
            dram_banks: vec![DramBank::default(); n_dram_banks],
            l1v_ctr: LevelCounters::new(tel, "l1v"),
            l1s_ctr: LevelCounters::new(tel, "l1s"),
            l2_ctr: LevelCounters::new(tel, "l2"),
            dram_ctr: tel.counter("mem.dram.accesses"),
            row_hits: tel.counter("mem.dram.row_hits"),
            row_misses: tel.counter("mem.dram.row_misses"),
            row_conflicts: tel.counter("mem.dram.row_conflicts"),
            row_hit_rate: detailed.then(|| tel.gauge("mem.dram.row_hit_rate")),
            bank_peak_gauges: (0..if detailed { n_l2 } else { 0 })
                .map(|i| tel.gauge(&format!("mem.l2.bank.{i}.peak_queue")))
                .collect(),
            delays: QueueDelays::default(),
            published: QueueDelays::default(),
            qdelay_hists: [
                tel.histogram("mem.l1v.queue_delay"),
                tel.histogram("mem.l1s.queue_delay"),
                tel.histogram("mem.l2.queue_delay"),
                tel.histogram("mem.dram.queue_delay"),
            ],
            trace: tel.trace().clone(),
            config,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &MemHierarchyConfig {
        &self.config
    }

    /// The L2-and-below stage. Legacy mode keeps the original scalar
    /// per-bank reservation and flat DRAM channel timing bit-for-bit;
    /// detailed mode routes through the NoC/bank queues and the DRAM
    /// bank model.
    fn l2_and_beyond(&mut self, line_addr: u64, kind: AccessKind, ready: Cycle) -> Cycle {
        if self.detailed {
            return self.l2_and_beyond_detailed(line_addr, kind, ready);
        }
        let bank = (line_addr % self.config.l2_banks) as usize;
        let t = ready.max(self.l2_free[bank]);
        self.delays.l2.record(t - ready);
        self.l2_free[bank] = t + self.config.l2.service_interval;
        let hit_latency = self.config.l2.hit_latency;
        match tag_stage(
            &mut self.l2[bank],
            &mut self.l2_mshr[bank],
            &mut self.delays.l2,
            &self.l2_ctr,
            &self.trace,
            CacheLevel::L2,
            false,
            line_addr * LINE_BYTES,
            kind,
            hit_latency,
            t,
        ) {
            StageOut::Done(done) => done,
            StageOut::Downstream(enter) => {
                let ch = ((line_addr / self.config.l2_banks) % self.config.dram.channels) as usize;
                let td = enter.max(self.dram_free[ch]);
                self.delays.dram.record(td - enter);
                self.dram_free[ch] = td + self.config.dram.service_interval;
                self.dram_ctr.inc();
                self.trace.emit_with(|| TraceEvent {
                    ts: td,
                    dur: 0,
                    kind: EventKind::DramAccess { channel: ch as u32 },
                });
                let done = td + self.config.dram.latency;
                self.l2_mshr[bank].alloc(line_addr, done);
                done
            }
        }
    }

    /// Detailed L2 stage: Fibonacci-mixed bank selection, crossbar
    /// latency, a bounded per-bank queue, then the tag/MSHR stage and
    /// (on a fresh miss) the DRAM bank model.
    fn l2_and_beyond_detailed(&mut self, line_addr: u64, kind: AccessKind, ready: Cycle) -> Cycle {
        let bank = (fib_mix(line_addr) % self.config.l2_banks.max(1)) as usize;
        let arrive = ready + self.config.fidelity.noc.latency;
        let depth = self.config.fidelity.noc.queue_depth.max(1) as usize;
        let admit = self.l2_queues[bank].admit(arrive, depth);
        let start = admit.max(self.l2_free[bank]);
        // Queue-full wait plus bank busy wait, in one delay the engine
        // charges to `mem_queue_full`.
        self.delays.l2.record(start - arrive);
        self.l2_free[bank] = start + self.config.l2.service_interval;
        self.l2_queues[bank].push(start);
        let hit_latency = self.config.l2.hit_latency;
        match tag_stage(
            &mut self.l2[bank],
            &mut self.l2_mshr[bank],
            &mut self.delays.l2,
            &self.l2_ctr,
            &self.trace,
            CacheLevel::L2,
            true,
            line_addr * LINE_BYTES,
            kind,
            hit_latency,
            start,
        ) {
            StageOut::Done(done) => done,
            StageOut::Downstream(enter) => {
                let done = self.dram_detailed(line_addr, enter);
                self.l2_mshr[bank].alloc(line_addr, done);
                done
            }
        }
    }

    /// Detailed DRAM stage: channel and bank picked from disjoint
    /// windows of the Fibonacci mix of the 256 B *chunk* (so
    /// power-of-two strides spread across channels, while consecutive
    /// lines in a chunk still share a bank and keep its row open),
    /// per-bank open-row tracking with hit/empty/conflict latencies,
    /// and a per-channel data bus serializing one line per service
    /// interval.
    fn dram_detailed(&mut self, line_addr: u64, ready: Cycle) -> Cycle {
        let channels = self.config.dram.channels.max(1);
        let banks = self.config.fidelity.dram_banks.banks_per_channel.max(1);
        // HBM-style pseudo-channel interleave granularity: 4 lines.
        let m = fib_mix(line_addr >> 2);
        let ch = ((m >> 20) % channels) as usize;
        let bank = ((m >> 40) % banks) as usize;
        let lines_per_row = (self.config.fidelity.dram_banks.row_bytes / LINE_BYTES).max(1);
        let row = line_addr / lines_per_row;
        let idx = ch * banks as usize + bank;
        let DramBank { open_row, free } = self.dram_banks[idx];
        let t = ready.max(free);
        let lat = match open_row {
            Some(r) if r == row => {
                self.row_hits.inc();
                self.config.fidelity.dram_banks.row_hit_latency
            }
            Some(_) => {
                self.row_conflicts.inc();
                self.config.fidelity.dram_banks.row_conflict_latency
            }
            None => {
                self.row_misses.inc();
                self.config.fidelity.dram_banks.row_empty_latency
            }
        };
        // Banks overlap; the channel's data bus serializes transfers.
        let done = (t + lat).max(self.dram_free[ch]);
        self.delays.dram.record(done - ready - lat);
        self.dram_free[ch] = done + self.config.dram.service_interval;
        self.dram_banks[idx] = DramBank {
            open_row: Some(row),
            free: done,
        };
        self.dram_ctr.inc();
        self.trace.emit_with(|| TraceEvent {
            ts: done,
            dur: 0,
            kind: EventKind::DramAccess { channel: ch as u32 },
        });
        done
    }

    /// Issues one line transaction from CU `cu`'s vector path at cycle
    /// `now`; returns the completion cycle.
    ///
    /// # Panics
    /// Panics if `cu` is out of range for the configuration.
    pub fn access_line(
        &mut self,
        cu: usize,
        line_addr: u64,
        kind: AccessKind,
        now: Cycle,
    ) -> Cycle {
        let t = now.max(self.l1v_free[cu]);
        self.delays.l1v.record(t - now);
        self.l1v_free[cu] = t + self.config.l1v.service_interval;
        let hit_latency = self.config.l1v.hit_latency;
        let detailed = self.detailed;
        match tag_stage(
            &mut self.l1v[cu],
            &mut self.l1v_mshr[cu],
            &mut self.delays.l1v,
            &self.l1v_ctr,
            &self.trace,
            CacheLevel::L1V,
            detailed,
            line_addr * LINE_BYTES,
            kind,
            hit_latency,
            t,
        ) {
            StageOut::Done(done) => done,
            StageOut::Downstream(enter) => {
                let done = self.l2_and_beyond(line_addr, kind, enter);
                self.l1v_mshr[cu].alloc(line_addr, done);
                done
            }
        }
    }

    /// Issues a scalar (constant/argument) load from CU `cu` at `now`;
    /// returns the completion cycle.
    pub fn scalar_access(&mut self, cu: usize, addr: u64, now: Cycle) -> Cycle {
        let group = cu / CUS_PER_SCALAR_CACHE;
        let t = now.max(self.l1s_free[group]);
        self.delays.l1s.record(t - now);
        self.l1s_free[group] = t + self.config.l1s.service_interval;
        let hit_latency = self.config.l1s.hit_latency;
        let detailed = self.detailed;
        match tag_stage(
            &mut self.l1s[group],
            &mut self.l1s_mshr[group],
            &mut self.delays.l1s,
            &self.l1s_ctr,
            &self.trace,
            CacheLevel::L1S,
            detailed,
            addr,
            AccessKind::Read,
            hit_latency,
            t,
        ) {
            StageOut::Done(done) => done,
            StageOut::Downstream(enter) => {
                let line = addr / LINE_BYTES;
                let done = self.l2_and_beyond(line, AccessKind::Read, enter);
                self.l1s_mshr[group].alloc(line, done);
                done
            }
        }
    }

    /// Invalidates all cache tags (kernel boundary), keeping the clock
    /// monotonic. Outstanding-miss state is dropped with the tags (a
    /// drained kernel has no warp waiting on those fills); DRAM row
    /// buffers keep their open rows — row state is physical, not
    /// per-kernel.
    pub fn flush_caches(&mut self) {
        for c in self
            .l1v
            .iter_mut()
            .chain(self.l1s.iter_mut())
            .chain(self.l2.iter_mut())
        {
            c.flush();
        }
        for m in self
            .l1v_mshr
            .iter_mut()
            .chain(self.l1s_mshr.iter_mut())
            .chain(self.l2_mshr.iter_mut())
        {
            m.clear();
        }
    }

    /// Snapshot of the per-level queueing-delay histograms (grow-only;
    /// diff two snapshots with [`QueueDelays::since`] for per-kernel
    /// deltas).
    pub fn queue_delays(&self) -> QueueDelays {
        self.delays
    }

    /// Total queue cycles accumulated across all levels — cheap enough
    /// to read around a single access, which is how the timing engine
    /// splits a memory wait into its queued and in-flight portions.
    #[inline]
    pub fn queue_cycles(&self) -> u64 {
        self.delays.queue_cycles()
    }

    /// Publishes queue delays accumulated since the last publish into
    /// the registry histograms (`mem.<level>.queue_delay`), using each
    /// bucket's midpoint as the representative value (the floor would
    /// systematically underestimate percentiles). Called at kernel end
    /// (cold path) so the hot path never touches a locked histogram;
    /// detailed-fidelity health gauges (per-bank peak queue occupancy,
    /// DRAM row-buffer hit rate) refresh here too.
    pub fn publish_queue_delays(&mut self) {
        let delta = self.delays.since(&self.published);
        for ((_, hist), handle) in delta.levels().iter().zip(self.qdelay_hists.iter()) {
            for (i, n) in hist.buckets.iter().enumerate() {
                if *n > 0 {
                    handle.record_n(QueueDelayHist::bucket_mid(i), *n);
                }
            }
        }
        self.published = self.delays;
        for (q, g) in self.l2_queues.iter().zip(self.bank_peak_gauges.iter()) {
            g.set(q.peak as f64);
        }
        if let Some(g) = &self.row_hit_rate {
            g.set(self.stats().dram_row_hit_rate());
        }
    }

    /// Services one vector transaction — the line set of a coalesced
    /// warp access — entering the hierarchy at `issue_at`. Returns the
    /// completion cycle (max over lines) and the queue cycles the
    /// transaction accumulated across all levels.
    ///
    /// This is the typed front door the timing engine uses; it is the
    /// single-request form of [`MemoryHierarchy::service`].
    pub fn service_vector(
        &mut self,
        cu: usize,
        lines: &[u64],
        write: bool,
        issue_at: Cycle,
    ) -> MemResponse {
        let kind = if write {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        let q0 = self.queue_cycles();
        let mut done = issue_at;
        for &line in lines {
            done = done.max(self.access_line(cu, line, kind, issue_at));
        }
        MemResponse {
            warp: 0,
            req_cycle: issue_at,
            done,
            queued: self.queue_cycles() - q0,
        }
    }

    /// Services one scalar (constant/argument) load issued at `now`.
    pub fn service_scalar(&mut self, cu: usize, addr: u64, now: Cycle) -> MemResponse {
        let q0 = self.queue_cycles();
        let done = self.scalar_access(cu, addr, now);
        MemResponse {
            warp: 0,
            req_cycle: now,
            done,
            queued: self.queue_cycles() - q0,
        }
    }

    /// Services one queued [`MemRequest`]. `lines` must be the slice the
    /// owning [`MemPort`] stored for the request (empty for scalars).
    pub fn service(&mut self, req: &MemRequest, lines: &[u64]) -> MemResponse {
        let mut resp = if req.scalar {
            self.service_scalar(req.cu as usize, req.addr, req.issue_at)
        } else {
            self.service_vector(req.cu as usize, lines, req.write, req.issue_at)
        };
        resp.warp = req.warp;
        resp.req_cycle = req.req_cycle;
        resp
    }

    /// Drains one port in submission order: every queued request is
    /// serviced and its response appended to the port's response queue.
    /// This is the serial-engine path; the epoch coordinator instead
    /// interleaves requests from many ports in canonical cycle order via
    /// [`MemoryHierarchy::service`].
    pub fn service_port(&mut self, port: &mut MemPort) {
        for i in 0..port.requests.len() {
            let resp = {
                let req = &port.requests[i];
                let (a, b) = req.lines;
                let lines = &port.lines[a as usize..b as usize];
                self.service(req, lines)
            };
            port.responses.push(resp);
        }
        port.requests.clear();
        port.lines.clear();
    }

    /// Snapshot of the accumulated statistics (registry counters).
    pub fn stats(&self) -> MemStats {
        MemStats {
            l1v_hits: self.l1v_ctr.hits.get(),
            l1v_misses: self.l1v_ctr.misses.get(),
            l1v_evictions: self.l1v_ctr.evictions.get(),
            l1s_hits: self.l1s_ctr.hits.get(),
            l1s_misses: self.l1s_ctr.misses.get(),
            l1s_evictions: self.l1s_ctr.evictions.get(),
            l2_hits: self.l2_ctr.hits.get(),
            l2_misses: self.l2_ctr.misses.get(),
            l2_evictions: self.l2_ctr.evictions.get(),
            dram_accesses: self.dram_ctr.get(),
            l1v_mshr_merges: self.l1v_ctr.merges.get(),
            l1s_mshr_merges: self.l1s_ctr.merges.get(),
            l2_mshr_merges: self.l2_ctr.merges.get(),
            dram_row_hits: self.row_hits.get(),
            dram_row_misses: self.row_misses.get(),
            dram_row_conflicts: self.row_conflicts.get(),
        }
    }
}

/// One typed request crossing the engine↔memory boundary.
///
/// `req_cycle` is the engine cycle of the handler that produced the
/// request (the canonical service-order key); `issue_at` is when the
/// transaction actually enters the hierarchy (after the engine's issue
/// latency). `warp` is an engine-defined tag echoed back on the
/// response so the producer can route completions without keeping its
/// own map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    pub cu: u32,
    pub warp: u32,
    pub req_cycle: Cycle,
    pub issue_at: Cycle,
    pub write: bool,
    pub scalar: bool,
    /// Scalar address (scalar requests only).
    pub addr: u64,
    /// Range into the owning port's line arena (vector requests only).
    lines: (u32, u32),
}

/// Completion of one [`MemRequest`]: the cycle the data is back plus
/// the queue cycles the transaction spent waiting on busy resources
/// (the engine charges those to `MemQueueFull`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemResponse {
    pub warp: u32,
    pub req_cycle: Cycle,
    pub done: Cycle,
    pub queued: u64,
}

/// A typed request/response queue pair between one event domain (CU
/// shard) and the shared L2/DRAM model.
///
/// Producers `submit_*` requests during an epoch; the hierarchy owner
/// drains them (in submission order via
/// [`MemoryHierarchy::service_port`], or interleaved across ports in
/// canonical `(req_cycle, warp)` order by the epoch coordinator) and
/// pushes [`MemResponse`]s back. Line addresses live in a per-port
/// arena so a request is `Copy` and submission never allocates per
/// lane. The queue is deliberately dumb — MSHR merging and NoC
/// contention (ROADMAP item 4) slot in behind this interface without
/// touching the engine.
#[derive(Debug, Default)]
pub struct MemPort {
    lines: Vec<u64>,
    requests: Vec<MemRequest>,
    responses: Vec<MemResponse>,
}

impl MemPort {
    pub fn new() -> Self {
        MemPort::default()
    }

    /// Queues a coalesced vector access. Returns the request index
    /// (responses produced by in-order draining preserve indices).
    pub fn submit_vector(
        &mut self,
        cu: u32,
        warp: u32,
        req_cycle: Cycle,
        issue_at: Cycle,
        write: bool,
        lines: &[u64],
    ) -> usize {
        let a = self.lines.len() as u32;
        self.lines.extend_from_slice(lines);
        let b = self.lines.len() as u32;
        self.requests.push(MemRequest {
            cu,
            warp,
            req_cycle,
            issue_at,
            write,
            scalar: false,
            addr: 0,
            lines: (a, b),
        });
        self.requests.len() - 1
    }

    /// Queues a scalar load issued at `req_cycle`.
    pub fn submit_scalar(&mut self, cu: u32, warp: u32, req_cycle: Cycle, addr: u64) -> usize {
        self.requests.push(MemRequest {
            cu,
            warp,
            req_cycle,
            issue_at: req_cycle,
            write: false,
            scalar: true,
            addr,
            lines: (0, 0),
        });
        self.requests.len() - 1
    }

    /// Pending (unserviced) requests, in submission order.
    pub fn requests(&self) -> &[MemRequest] {
        &self.requests
    }

    /// The line slice backing a vector request.
    pub fn request_lines(&self, req: &MemRequest) -> &[u64] {
        let (a, b) = req.lines;
        &self.lines[a as usize..b as usize]
    }

    /// Appends a response produced by an out-of-band drain (the epoch
    /// coordinator services requests across many ports in canonical
    /// order, then pushes each response back to its origin port).
    pub fn push_response(&mut self, resp: MemResponse) {
        self.responses.push(resp);
    }

    /// Marks all pending requests as consumed (the coordinator has
    /// serviced them via [`MemoryHierarchy::service`]).
    pub fn clear_requests(&mut self) {
        self.requests.clear();
        self.lines.clear();
    }

    /// Drains accumulated responses, in the order they were pushed.
    pub fn take_responses(&mut self, out: &mut Vec<MemResponse>) {
        out.append(&mut self.responses);
    }

    pub fn is_empty(&self) -> bool {
        self.requests.is_empty() && self.responses.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> MemHierarchyConfig {
        let mut c = MemHierarchyConfig::r9_nano();
        c.num_cus = 4;
        c
    }

    #[test]
    fn hit_is_faster_than_miss() {
        let mut h = MemoryHierarchy::new(small_config());
        let miss_done = h.access_line(0, 100, AccessKind::Read, 0);
        let hit_done = h.access_line(0, 100, AccessKind::Read, miss_done) - miss_done;
        assert!(hit_done < miss_done, "{hit_done} !< {miss_done}");
    }

    #[test]
    fn l2_shared_across_cus() {
        let mut h = MemoryHierarchy::new(small_config());
        let t1 = h.access_line(0, 7, AccessKind::Read, 0);
        // Different CU: misses its own L1 but hits shared L2.
        let t2 = h.access_line(1, 7, AccessKind::Read, t1) - t1;
        let cold = h.access_line(2, 9999, AccessKind::Read, 0);
        assert!(t2 < cold, "L2 hit {t2} should beat DRAM {cold}");
    }

    #[test]
    fn contention_delays_bursts() {
        let mut h = MemoryHierarchy::new(small_config());
        // Warm one line, then fire a burst of hits at the same cycle: the
        // L1 service interval must serialize them.
        let warm = h.access_line(0, 5, AccessKind::Read, 0);
        let a = h.access_line(0, 5, AccessKind::Read, warm);
        let b = h.access_line(0, 5, AccessKind::Read, warm);
        assert!(b > a);
    }

    #[test]
    fn flush_restores_cold_misses() {
        let mut h = MemoryHierarchy::new(small_config());
        let cold = h.access_line(0, 1, AccessKind::Read, 0);
        let now = cold;
        h.flush_caches();
        let again = h.access_line(0, 1, AccessKind::Read, now) - now;
        assert!(again >= cold, "flush should make it a miss again");
        assert_eq!(h.stats().l1v_hits, 0);
        assert_eq!(h.stats().l1v_misses, 2);
    }

    #[test]
    fn scalar_path_counts_separately() {
        let mut h = MemoryHierarchy::new(small_config());
        h.scalar_access(0, 0x40, 0);
        h.scalar_access(1, 0x40, 100_000); // same group (cu 0..4) -> hit
        assert_eq!(h.stats().l1s_misses, 1);
        assert_eq!(h.stats().l1s_hits, 1);
    }

    #[test]
    fn counters_land_in_the_shared_registry() {
        let tel = Telemetry::default();
        let mut h = MemoryHierarchy::with_telemetry(small_config(), &tel);
        h.access_line(0, 1, AccessKind::Read, 0);
        h.access_line(0, 1, AccessKind::Read, 1000);
        let snap = tel.snapshot();
        assert_eq!(snap.counter("mem.l1v.hits"), Some(1));
        assert_eq!(snap.counter("mem.l1v.misses"), Some(1));
        assert_eq!(snap.counter("mem.dram.accesses"), Some(1));
        // The MemStats snapshot is assembled from the same counters.
        assert_eq!(h.stats().l1v_hits, 1);
        assert_eq!(h.stats().dram_accesses, 1);
    }

    #[test]
    fn evictions_are_counted_per_level() {
        let mut cfg = small_config();
        // Shrink L1V to 2 lines so a 3-line stream must evict.
        cfg.l1v.size_bytes = 128;
        cfg.l1v.assoc = 2;
        let mut h = MemoryHierarchy::new(cfg);
        for (t, line) in [0u64, 1, 2, 0].iter().enumerate() {
            h.access_line(0, *line, AccessKind::Read, t as u64 * 1000);
        }
        let s = h.stats();
        assert_eq!(s.l1v_misses, 4);
        assert!(s.l1v_evictions >= 2, "evictions {}", s.l1v_evictions);
        assert_eq!(s.l2_evictions, 0);
    }

    #[test]
    fn queue_delays_capture_contention_and_publish_deltas() {
        let tel = Telemetry::default();
        let mut h = MemoryHierarchy::with_telemetry(small_config(), &tel);
        // Warm a line, then fire same-cycle hits: the second must queue
        // on the L1V service interval.
        let warm = h.access_line(0, 5, AccessKind::Read, 0);
        h.access_line(0, 5, AccessKind::Read, warm);
        h.access_line(0, 5, AccessKind::Read, warm);
        let q = h.queue_delays();
        assert!(q.l1v.sum > 0, "same-cycle burst must queue: {q:?}");
        assert_eq!(q.l1v.count, 3);
        assert_eq!(h.queue_cycles(), q.queue_cycles());

        // Publishing lands the delta in the registry histograms, and a
        // second publish with no new traffic records nothing.
        h.publish_queue_delays();
        let snap = tel.snapshot();
        let hist = snap
            .histograms
            .iter()
            .find(|s| s.name == "mem.l1v.queue_delay")
            .expect("published histogram");
        assert_eq!(hist.count, q.l1v.count);
        assert!(hist.sum > 0);
        h.publish_queue_delays();
        let again = tel.snapshot();
        let hist2 = again
            .histograms
            .iter()
            .find(|s| s.name == "mem.l1v.queue_delay")
            .expect("published histogram");
        assert_eq!(hist2.count, q.l1v.count);
    }

    #[test]
    fn port_drain_matches_direct_access() {
        // The same request stream through a MemPort must produce the
        // same completion cycles and bank state as direct calls.
        let mut direct = MemoryHierarchy::new(small_config());
        let mut ported = MemoryHierarchy::new(small_config());
        let mut port = MemPort::new();

        let d1 = direct.service_vector(0, &[1, 2], false, 10);
        let d2 = direct.service_vector(1, &[2], true, 12);
        let d3 = direct.service_scalar(0, 0x80, 14);

        port.submit_vector(0, 7, 10, 10, false, &[1, 2]);
        port.submit_vector(1, 8, 12, 12, true, &[2]);
        port.submit_scalar(0, 9, 14, 0x80);
        ported.service_port(&mut port);

        let mut resps = Vec::new();
        port.take_responses(&mut resps);
        assert_eq!(resps.len(), 3);
        assert_eq!(resps[0].done, d1.done);
        assert_eq!(resps[0].queued, d1.queued);
        assert_eq!(resps[0].warp, 7);
        assert_eq!(resps[1].done, d2.done);
        assert_eq!(resps[2].done, d3.done);
        assert_eq!(resps[2].warp, 9);
        assert!(port.is_empty());
        assert_eq!(direct.stats().l1v_misses, ported.stats().l1v_misses);
        assert_eq!(direct.stats().dram_accesses, ported.stats().dram_accesses);
    }

    #[test]
    fn out_of_band_service_preserves_request_tags() {
        let mut h = MemoryHierarchy::new(small_config());
        let mut port = MemPort::new();
        port.submit_vector(2, 41, 5, 9, false, &[100, 101]);
        let reqs: Vec<MemRequest> = port.requests().to_vec();
        assert_eq!(reqs.len(), 1);
        assert_eq!(port.request_lines(&reqs[0]), &[100, 101]);
        let resp = {
            let lines: Vec<u64> = port.request_lines(&reqs[0]).to_vec();
            h.service(&reqs[0], &lines)
        };
        assert_eq!(resp.warp, 41);
        assert_eq!(resp.req_cycle, 5);
        assert!(resp.done > 9);
        port.clear_requests();
        port.push_response(resp);
        assert!(!port.is_empty());
    }

    #[test]
    fn coalesce_merges_and_splits() {
        assert_eq!(coalesce_lines([0u64, 4, 8, 60], 4), vec![0]);
        assert_eq!(coalesce_lines([62u64], 4), vec![0, 1]); // straddles into line 1
        assert_eq!(coalesce_lines([60u64], 4), vec![0]); // last byte is 63
        assert_eq!(coalesce_lines([60u64], 8), vec![0, 1]);
        assert_eq!(coalesce_lines([0u64, 64, 128], 4), vec![0, 1, 2]);
    }

    #[test]
    fn push_lines_handles_straddle_wrap_and_width_edge_cases() {
        // Straddling a line boundary touches both lines.
        let mut v = Vec::new();
        push_lines(&mut v, 62, 4);
        assert_eq!(v, vec![0, 1]);
        // An access whose last byte would pass the top of the address
        // space saturates to the final line instead of wrapping to 0
        // (which would enumerate the entire 2^64 range).
        let top_line = u64::MAX / LINE_BYTES;
        v.clear();
        push_lines(&mut v, u64::MAX - 10, 100);
        assert_eq!(v, vec![top_line]);
        v.clear();
        push_lines(&mut v, u64::MAX, 8);
        assert_eq!(v, vec![top_line]);
        // Width 0 must not underflow; it touches the line of `a`.
        v.clear();
        push_lines(&mut v, 130, 0);
        assert_eq!(v, vec![2]);
        // Dedup is order-insensitive: unsorted duplicates coalesce to a
        // sorted unique set.
        assert_eq!(coalesce_lines([128u64, 0, 64, 0, 128], 4), vec![0, 1, 2]);
    }

    #[test]
    fn legacy_same_line_burst_counts_merged_misses_not_hits() {
        // Two warps miss the same line in one burst. The legacy tag array
        // fills at lookup, so the second access used to be *counted* as a
        // hit while the fill was still in flight. Timing is unchanged
        // (second completes at hit latency — the known legacy skew) but
        // the accounting must say: 2 misses, 0 hits, 1 merge, 1 DRAM
        // access.
        let mut h = MemoryHierarchy::new(small_config());
        let d1 = h.access_line(0, 42, AccessKind::Read, 0);
        let d2 = h.access_line(0, 42, AccessKind::Read, 0);
        let s = h.stats();
        assert_eq!(s.l1v_misses, 2);
        assert_eq!(s.l1v_hits, 0);
        assert_eq!(s.l1v_mshr_merges, 1);
        assert_eq!(s.dram_accesses, 1);
        // Legacy timing skew preserved: the merged access completes at
        // hit latency, long before the real fill.
        assert!(d2 < d1, "legacy merged access keeps fill-at-lookup timing");
        // Once the fill lands, the next access is a true hit.
        let d3 = h.access_line(0, 42, AccessKind::Read, d1);
        assert_eq!(h.stats().l1v_hits, 1);
        assert_eq!(d3, d1 + h.config().l1v.hit_latency);
    }

    fn detailed_config() -> MemHierarchyConfig {
        small_config().with_detailed_fidelity()
    }

    #[test]
    fn detailed_same_line_misses_issue_one_dram_access() {
        // N same-line misses from one CU: the first allocates an L1V MSHR
        // entry, the rest merge and complete at fill time. Exactly one
        // DRAM access.
        let mut h = MemoryHierarchy::new(detailed_config());
        let hit_lat = h.config().l1v.hit_latency;
        let first = h.access_line(0, 42, AccessKind::Read, 0);
        let mut merged = Vec::new();
        for _ in 0..4 {
            merged.push(h.access_line(0, 42, AccessKind::Read, 0));
        }
        let s = h.stats();
        assert_eq!(s.l1v_misses, 5);
        assert_eq!(s.l1v_mshr_merges, 4);
        assert_eq!(s.dram_accesses, 1, "merged misses must not re-fetch");
        for (i, d) in merged.iter().enumerate() {
            assert!(
                *d >= first,
                "merged miss {i} completed at {d}, before the fill at {first}"
            );
            assert!(*d >= hit_lat, "never faster than a hit");
        }
    }

    #[test]
    fn detailed_cross_cu_same_line_misses_merge_at_l2() {
        // Same line from two CUs in one burst: both miss their private
        // L1V, but the second merges into the L2 MSHR entry — one DRAM
        // access total.
        let mut h = MemoryHierarchy::new(detailed_config());
        let d0 = h.access_line(0, 42, AccessKind::Read, 0);
        let d1 = h.access_line(1, 42, AccessKind::Read, 0);
        let s = h.stats();
        assert_eq!(s.l1v_misses, 2);
        assert_eq!(s.l1v_mshr_merges, 0, "different CUs, different L1 MSHRs");
        assert_eq!(s.l2_misses, 2);
        assert_eq!(s.l2_mshr_merges, 1);
        assert_eq!(s.dram_accesses, 1);
        assert!(d1 >= d0.min(d1), "{d0} {d1}");
    }

    #[test]
    fn detailed_fill_lands_tag_at_fill_time() {
        // Between miss and fill the line is NOT in the tag array: a
        // same-line access merges (miss) rather than hitting. After the
        // fill it is a genuine hit.
        let mut h = MemoryHierarchy::new(detailed_config());
        let fill = h.access_line(0, 7, AccessKind::Read, 0);
        h.access_line(0, 7, AccessKind::Read, fill / 2);
        assert_eq!(h.stats().l1v_hits, 0);
        assert_eq!(h.stats().l1v_mshr_merges, 1);
        let d = h.access_line(0, 7, AccessKind::Read, fill);
        assert_eq!(h.stats().l1v_hits, 1);
        assert_eq!(d, fill + h.config().l1v.hit_latency);
    }

    #[test]
    fn detailed_mshr_exhaustion_back_pressures() {
        let mut cfg = detailed_config();
        cfg.fidelity.l1v_mshr = MshrConfig::new(1, 0);
        let mut h = MemoryHierarchy::new(cfg);
        let q0 = h.queue_cycles();
        // Two distinct-line misses in one cycle: the single MSHR entry
        // forces the second to wait for the first fill.
        let d1 = h.access_line(0, 10, AccessKind::Read, 0);
        let d2 = h.access_line(0, 2_000_000, AccessKind::Read, 0);
        assert!(
            d2 > d1,
            "second miss must stall behind the lone MSHR entry: {d2} !> {d1}"
        );
        assert!(
            h.queue_cycles() > q0,
            "MSHR-full wait must be visible as queue delay"
        );
        // Zero merge slots: a same-line miss still merges for counting
        // but records the stall as queue delay.
        let q1 = h.queue_cycles();
        h.access_line(0, 2_000_000, AccessKind::Read, d1);
        assert!(h.queue_cycles() > q1);
        assert_eq!(h.stats().l1v_mshr_merges, 1);
    }

    #[test]
    fn detailed_spreads_strided_traffic_over_all_channels() {
        // Stride-`l2_banks` lines alias onto one channel under the old
        // `(line / l2_banks) % channels` mapping; the Fibonacci mix must
        // spread them across every DRAM channel.
        let mut h = MemoryHierarchy::new(detailed_config());
        let banks = h.config().l2_banks;
        let channels = h.config().dram.channels as usize;
        for i in 0..256u64 {
            h.access_line(0, i * banks, AccessKind::Read, i * 4000);
        }
        let busy = h.dram_free.iter().filter(|&&f| f > 0).count();
        assert_eq!(
            busy, channels,
            "stride-{banks} traffic reached {busy}/{channels} channels"
        );
        // L2 banks spread too.
        let l2_busy = h.l2_free.iter().filter(|&&f| f > 0).count();
        assert!(
            l2_busy > 1,
            "stride-{banks} traffic stuck on {l2_busy} L2 bank(s)"
        );
    }

    #[test]
    fn detailed_row_buffer_hits_are_cheaper_and_counted() {
        let mut h = MemoryHierarchy::new(detailed_config());
        // Line 0 opens its row; line 1 lives on the same 2 KB row but
        // must reach DRAM (flush L1/L2 tags in between, keeping the open
        // row — row state is physical).
        let d0 = h.access_line(0, 0, AccessKind::Read, 0);
        h.flush_caches();
        let t1 = d0 + 1000;
        let d1 = h.access_line(0, 0, AccessKind::Read, t1) - t1;
        let s = h.stats();
        assert_eq!(s.dram_accesses, 2);
        assert_eq!(s.dram_row_misses, 1, "first access finds the bank idle");
        assert_eq!(s.dram_row_hits, 1, "re-access finds the row open");
        assert!(
            d1 < d0,
            "open-row access ({d1}) must beat the cold one ({d0})"
        );
    }

    #[test]
    fn detailed_never_degrades_counters_registered_in_legacy() {
        // Legacy mode must not register detailed-only gauges (health
        // tables stay noise-free); detailed mode must.
        let tel = Telemetry::default();
        let mut h = MemoryHierarchy::with_telemetry(small_config(), &tel);
        h.access_line(0, 1, AccessKind::Read, 0);
        h.publish_queue_delays();
        let snap = tel.snapshot();
        assert!(!snap
            .gauges
            .iter()
            .any(|g| g.name == "mem.dram.row_hit_rate"));
        assert!(!snap
            .gauges
            .iter()
            .any(|g| g.name.starts_with("mem.l2.bank.")));

        let tel2 = Telemetry::default();
        let mut hd = MemoryHierarchy::with_telemetry(detailed_config(), &tel2);
        for i in 0..64u64 {
            hd.access_line(0, i * 7, AccessKind::Read, i);
        }
        hd.publish_queue_delays();
        let snap2 = tel2.snapshot();
        assert!(snap2
            .gauges
            .iter()
            .any(|g| g.name == "mem.dram.row_hit_rate"));
        assert!(snap2
            .gauges
            .iter()
            .any(|g| g.name.starts_with("mem.l2.bank.") && g.value > 0.0));
    }

    #[test]
    fn bank_queue_bounds_admission_depth() {
        let mut q = BankQueue::default();
        // Fill a depth-2 queue with service starts in the future.
        assert_eq!(q.admit(0, 2), 0);
        q.push(10);
        assert_eq!(q.admit(0, 2), 0);
        q.push(20);
        // Queue full: the next arrival waits until the oldest of the
        // last 2 occupants starts service (cycle 10).
        assert_eq!(q.admit(0, 2), 10);
        q.push(30);
        assert_eq!(q.peak, 3);
        // Arrivals after starts drain see a free queue again.
        assert_eq!(q.admit(35, 2), 35);
    }
}

//! # gpu-mem
//!
//! The GPU memory substrate: a sparse functional address space with a
//! bump allocator, set-associative cache tag arrays, and a queueing
//! timing model for the cache/DRAM hierarchy (per-CU vector L1, shared
//! scalar/instruction L1s, banked L2, DRAM channels).
//!
//! Timing follows a service-queue model: every bank at every level has a
//! `next_free` cycle and a service interval, so bursts of transactions
//! queue up and memory latency becomes load-dependent. This contention
//! is what produces the workload phenomena the Photon paper's
//! observations build on (fluctuating IPC under warp interaction,
//! stabilizing basic-block latencies once competition stabilizes).
//!
//! # Example
//!
//! ```
//! use gpu_mem::{AddressSpace, BumpAllocator};
//!
//! let mut mem = AddressSpace::new();
//! let mut alloc = BumpAllocator::new(0x1000, 1 << 30);
//! let buf = alloc.alloc(1024, 64).unwrap();
//! mem.write_u32(buf, 42);
//! assert_eq!(mem.read_u32(buf), 42);
//! ```

// Production code must surface failures as typed errors, not panics;
// tests are free to unwrap.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

mod addr;
mod alloc;
mod cache;
mod config;
mod hierarchy;
mod stats;

pub use addr::{AddressSpace, U64HashBuilder, U64Hasher};
pub use alloc::{AllocError, BumpAllocator};
pub use cache::{AccessKind, Cache, CacheAccess};
pub use config::{
    CacheConfig, DramBankConfig, DramConfig, MemFidelityConfig, MemFidelityMode,
    MemHierarchyConfig, MshrConfig, NocConfig,
};
pub use hierarchy::{
    coalesce_lines, coalesce_lines_into, push_lines, MemPort, MemRequest, MemResponse,
    MemoryHierarchy, LINE_BYTES,
};
pub use stats::{MemStats, QueueDelayHist, QueueDelays, QDELAY_BUCKETS};

/// A simulation cycle count.
pub type Cycle = u64;

// Compile-time guarantee that the memory stack can move to a worker
// thread of the parallel experiment executor.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<AddressSpace>();
    assert_send::<BumpAllocator>();
    assert_send::<MemoryHierarchy>();
};

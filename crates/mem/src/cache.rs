//! Set-associative cache tag array with true LRU replacement.
//!
//! The tag array only decides hits, misses, and evictions; counting
//! lives in the telemetry registry owned by
//! [`crate::MemoryHierarchy`], so there is one source of truth for
//! memory statistics.

use crate::config::CacheConfig;
use crate::Cycle;

/// Whether an access read or wrote the line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Read access.
    Read,
    /// Write access (write-allocate).
    Write,
}

/// Result of a tag-array lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheAccess {
    /// The line was present.
    Hit,
    /// The line was absent and has been filled.
    Miss {
        /// Whether a valid line was displaced by the fill.
        evicted: bool,
    },
}

impl CacheAccess {
    /// Whether the lookup hit.
    pub fn is_hit(&self) -> bool {
        matches!(self, CacheAccess::Hit)
    }

    /// Whether the lookup displaced a valid line.
    pub fn evicted(&self) -> bool {
        matches!(self, CacheAccess::Miss { evicted: true })
    }
}

#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    valid: bool,
    last_use: Cycle,
}

/// A set-associative cache tag array with LRU replacement.
///
/// Only tags are tracked (data correctness lives in
/// [`crate::AddressSpace`]); the tag array decides hits and misses for
/// the timing model.
///
/// # Example
/// ```
/// use gpu_mem::{AccessKind, Cache, CacheConfig};
/// let mut c = Cache::new(&CacheConfig::new(1024, 4, 64, 8, 1));
/// assert!(!c.access(0, AccessKind::Read, 0).is_hit());
/// assert!(c.access(0, AccessKind::Read, 1).is_hit());
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    sets: Vec<Vec<Way>>,
    line_shift: u32,
    set_mask: u64,
}

impl Cache {
    /// Builds a cache from a configuration.
    ///
    /// # Panics
    /// Panics if the configuration does not describe at least one set of
    /// at least one way, or if sizes are not powers of two.
    pub fn new(config: &CacheConfig) -> Self {
        let num_lines = config.size_bytes / config.line_bytes;
        assert!(config.assoc > 0, "cache must have at least one way");
        assert!(
            num_lines >= config.assoc,
            "cache must have at least one set"
        );
        let num_sets = num_lines / config.assoc;
        assert!(
            num_sets.is_power_of_two() && config.line_bytes.is_power_of_two(),
            "cache geometry must be a power of two"
        );
        Cache {
            sets: vec![
                vec![
                    Way {
                        tag: 0,
                        valid: false,
                        last_use: 0
                    };
                    config.assoc as usize
                ];
                num_sets as usize
            ],
            line_shift: config.line_bytes.trailing_zeros(),
            set_mask: num_sets - 1,
        }
    }

    /// Looks up (and on miss, fills) the line containing `addr`.
    ///
    /// This is the legacy-fidelity composition of [`Cache::lookup`] and
    /// [`Cache::fill`]: the line is installed at lookup time even though
    /// the real fill is still in flight. The detailed miss path keeps
    /// the two halves apart and fills when the data actually arrives.
    pub fn access(&mut self, addr: u64, _kind: AccessKind, now: Cycle) -> CacheAccess {
        if self.lookup(addr, now) {
            CacheAccess::Hit
        } else {
            CacheAccess::Miss {
                evicted: self.fill(addr, now),
            }
        }
    }

    /// Probes the tag array for the line containing `addr` without
    /// modifying it on a miss. A hit refreshes the line's LRU stamp.
    pub fn lookup(&mut self, addr: u64, now: Cycle) -> bool {
        let line = addr >> self.line_shift;
        let set_idx = (line & self.set_mask) as usize;
        let tag = line >> self.set_mask.count_ones();
        if let Some(way) = self.sets[set_idx]
            .iter_mut()
            .find(|w| w.valid && w.tag == tag)
        {
            way.last_use = now;
            return true;
        }
        false
    }

    /// Installs the line containing `addr` (a fill completing at `now`),
    /// returning whether a valid line was displaced. Refreshes the LRU
    /// stamp instead if the line is already present.
    pub fn fill(&mut self, addr: u64, now: Cycle) -> bool {
        let line = addr >> self.line_shift;
        let set_idx = (line & self.set_mask) as usize;
        let tag = line >> self.set_mask.count_ones();
        let set = &mut self.sets[set_idx];
        if let Some(way) = set.iter_mut().find(|w| w.valid && w.tag == tag) {
            way.last_use = now;
            return false;
        }
        // LRU victim: prefer an invalid way, else the least recently
        // used (first on ties, matching min_by_key). Written as a fold
        // over &mut ways so an (impossible) empty set is a no-op fill
        // rather than a panic.
        let mut victim: Option<&mut Way> = None;
        let mut victim_key = u64::MAX;
        for w in set.iter_mut() {
            let key = if w.valid { w.last_use + 1 } else { 0 };
            if key < victim_key {
                victim_key = key;
                victim = Some(w);
            }
        }
        let mut evicted = false;
        if let Some(victim) = victim {
            evicted = victim.valid;
            victim.tag = tag;
            victim.valid = true;
            victim.last_use = now;
        }
        evicted
    }

    /// Invalidates every line (e.g. at kernel boundaries, matching the
    /// MGPUSim behavior of flushing caches between kernels).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            for way in set {
                way.valid = false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets x 2 ways x 64B lines = 512B
        Cache::new(&CacheConfig::new(512, 2, 64, 8, 1))
    }

    #[test]
    fn first_touch_misses_second_hits() {
        let mut c = small();
        assert!(!c.access(0x100, AccessKind::Read, 0).is_hit());
        assert!(c.access(0x100, AccessKind::Read, 1).is_hit());
        assert!(c.access(0x13f, AccessKind::Read, 2).is_hit()); // same line
        assert!(!c.access(0x140, AccessKind::Read, 3).is_hit()); // next line
    }

    #[test]
    fn lru_evicts_oldest_and_reports_eviction() {
        let mut c = small();
        // Three lines mapping to the same set (set stride = 4 sets * 64B = 256B)
        let a = 0u64;
        let b = 256u64;
        let d = 512u64;
        // Cold fills land in invalid ways: no eviction.
        assert!(!c.access(a, AccessKind::Read, 0).evicted());
        assert!(!c.access(b, AccessKind::Read, 1).evicted());
        c.access(a, AccessKind::Read, 2); // a is now MRU
        assert!(c.access(d, AccessKind::Read, 3).evicted()); // displaces b
        assert!(c.access(a, AccessKind::Read, 4).is_hit());
        assert!(!c.access(b, AccessKind::Read, 5).is_hit());
    }

    #[test]
    fn flush_invalidates_without_later_evictions() {
        let mut c = small();
        c.access(0, AccessKind::Write, 0);
        c.flush();
        // Refill after flush lands in an invalidated way: a miss, but
        // not an eviction.
        assert_eq!(
            c.access(0, AccessKind::Read, 1),
            CacheAccess::Miss { evicted: false }
        );
    }

    #[test]
    #[should_panic(expected = "at least one set")]
    fn degenerate_geometry_panics() {
        let _ = Cache::new(&CacheConfig::new(64, 2, 64, 8, 1));
    }

    #[test]
    fn lookup_does_not_fill() {
        let mut c = small();
        assert!(!c.lookup(0x100, 0));
        // A second probe still misses: lookup never installed the line.
        assert!(!c.lookup(0x100, 1));
        assert!(!c.fill(0x100, 2));
        assert!(c.lookup(0x100, 3));
    }

    #[test]
    fn fill_refreshes_lru_for_present_lines() {
        let mut c = small();
        // Two lines in one set (stride 256), then a racing re-fill of
        // the older one: it must refresh, so the third line evicts b.
        c.fill(0, 0);
        c.fill(256, 1);
        assert!(!c.fill(0, 2), "re-fill of a present line displaces nothing");
        assert!(c.fill(512, 3), "third line must evict");
        assert!(c.lookup(0, 4), "refreshed line survived");
        assert!(!c.lookup(256, 5), "stale line was the victim");
    }
}

//! Device-memory bump allocator.

use std::error::Error;
use std::fmt;

/// Error returned when an allocation exceeds the device memory limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocError {
    /// Bytes requested.
    pub requested: u64,
    /// Bytes remaining in the arena.
    pub remaining: u64,
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "allocation of {} bytes exceeds remaining device memory ({} bytes)",
            self.requested, self.remaining
        )
    }
}

impl Error for AllocError {}

/// A simple bump allocator over a `[base, base + capacity)` arena,
/// mirroring how the simulator carves device buffers out of DRAM.
///
/// # Example
/// ```
/// use gpu_mem::BumpAllocator;
/// let mut a = BumpAllocator::new(4096, 1 << 20);
/// let x = a.alloc(100, 64)?;
/// let y = a.alloc(100, 64)?;
/// assert!(y >= x + 100);
/// assert_eq!(x % 64, 0);
/// # Ok::<(), gpu_mem::AllocError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BumpAllocator {
    base: u64,
    capacity: u64,
    next: u64,
}

impl BumpAllocator {
    /// Creates an allocator over `[base, base + capacity)`.
    pub fn new(base: u64, capacity: u64) -> Self {
        BumpAllocator {
            base,
            capacity,
            next: base,
        }
    }

    /// Allocates `size` bytes aligned to `align` (a power of two).
    ///
    /// # Errors
    /// Returns [`AllocError`] if the arena is exhausted.
    ///
    /// # Panics
    /// Panics if `align` is not a power of two.
    pub fn alloc(&mut self, size: u64, align: u64) -> Result<u64, AllocError> {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let aligned = (self.next + align - 1) & !(align - 1);
        let end = self.base + self.capacity;
        if aligned + size > end {
            return Err(AllocError {
                requested: size,
                remaining: end.saturating_sub(self.next),
            });
        }
        self.next = aligned + size;
        Ok(aligned)
    }

    /// Bytes allocated so far (including alignment padding).
    pub fn used(&self) -> u64 {
        self.next - self.base
    }

    /// Resets the allocator, invalidating prior allocations.
    pub fn reset(&mut self) {
        self.next = self.base;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_aligned_non_overlapping() {
        let mut a = BumpAllocator::new(0x1000, 0x10000);
        let x = a.alloc(10, 64).unwrap();
        let y = a.alloc(10, 64).unwrap();
        assert_eq!(x % 64, 0);
        assert_eq!(y % 64, 0);
        assert!(y >= x + 10);
    }

    #[test]
    fn exhaustion_errors() {
        let mut a = BumpAllocator::new(0, 128);
        a.alloc(100, 1).unwrap();
        let err = a.alloc(100, 1).unwrap_err();
        assert_eq!(err.requested, 100);
        assert!(err.remaining < 100);
    }

    #[test]
    fn reset_reclaims() {
        let mut a = BumpAllocator::new(0, 128);
        a.alloc(100, 1).unwrap();
        a.reset();
        assert_eq!(a.used(), 0);
        a.alloc(100, 1).unwrap();
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_alignment_panics() {
        let mut a = BumpAllocator::new(0, 128);
        let _ = a.alloc(8, 3);
    }
}

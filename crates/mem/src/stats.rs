//! Memory system statistics.
//!
//! [`MemStats`] is a point-in-time *snapshot* assembled from the
//! telemetry registry counters owned by [`crate::MemoryHierarchy`] —
//! the registry is the single source of truth; this struct exists so
//! results can carry a serializable, diffable copy.

use serde::{Deserialize, Serialize};

/// Snapshot of the counters accumulated by [`crate::MemoryHierarchy`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemStats {
    /// Vector L1 hits across all CUs.
    pub l1v_hits: u64,
    /// Vector L1 misses across all CUs.
    pub l1v_misses: u64,
    /// Valid lines displaced from vector L1s.
    pub l1v_evictions: u64,
    /// Scalar cache hits.
    pub l1s_hits: u64,
    /// Scalar cache misses.
    pub l1s_misses: u64,
    /// Valid lines displaced from scalar caches.
    pub l1s_evictions: u64,
    /// L2 hits across all banks.
    pub l2_hits: u64,
    /// L2 misses across all banks.
    pub l2_misses: u64,
    /// Valid lines displaced from L2 banks.
    pub l2_evictions: u64,
    /// Lines fetched from DRAM.
    pub dram_accesses: u64,
    /// L1V misses coalesced into an outstanding same-line fill (no
    /// downstream traffic): `l1v_misses - l1v_mshr_merges` transactions
    /// reached L2.
    pub l1v_mshr_merges: u64,
    /// L1S misses coalesced into an outstanding same-line fill.
    pub l1s_mshr_merges: u64,
    /// L2 misses coalesced into an outstanding same-line fill:
    /// `l2_misses - l2_mshr_merges` transactions reached DRAM.
    pub l2_mshr_merges: u64,
    /// DRAM accesses that hit an open row buffer (detailed fidelity).
    pub dram_row_hits: u64,
    /// DRAM accesses that activated an idle bank (detailed fidelity).
    pub dram_row_misses: u64,
    /// DRAM accesses that closed a conflicting open row first (detailed
    /// fidelity).
    pub dram_row_conflicts: u64,
}

impl MemStats {
    /// Vector L1 hit rate in `[0, 1]`; zero when no accesses occurred.
    pub fn l1v_hit_rate(&self) -> f64 {
        let total = self.l1v_hits + self.l1v_misses;
        if total == 0 {
            0.0
        } else {
            self.l1v_hits as f64 / total as f64
        }
    }

    /// L2 hit rate in `[0, 1]`; zero when no accesses occurred.
    pub fn l2_hit_rate(&self) -> f64 {
        let total = self.l2_hits + self.l2_misses;
        if total == 0 {
            0.0
        } else {
            self.l2_hits as f64 / total as f64
        }
    }

    /// DRAM row-buffer hit rate in `[0, 1]`; zero when no accesses
    /// occurred (always zero under legacy fidelity).
    pub fn dram_row_hit_rate(&self) -> f64 {
        let total = self.dram_row_hits + self.dram_row_misses + self.dram_row_conflicts;
        if total == 0 {
            0.0
        } else {
            self.dram_row_hits as f64 / total as f64
        }
    }

    /// Field-wise difference `self - earlier` (for per-kernel deltas).
    ///
    /// # Panics
    /// Panics in debug builds if `earlier` is not a prefix state of
    /// `self` (counters only grow).
    pub fn since(&self, earlier: &MemStats) -> MemStats {
        MemStats {
            l1v_hits: self.l1v_hits - earlier.l1v_hits,
            l1v_misses: self.l1v_misses - earlier.l1v_misses,
            l1v_evictions: self.l1v_evictions - earlier.l1v_evictions,
            l1s_hits: self.l1s_hits - earlier.l1s_hits,
            l1s_misses: self.l1s_misses - earlier.l1s_misses,
            l1s_evictions: self.l1s_evictions - earlier.l1s_evictions,
            l2_hits: self.l2_hits - earlier.l2_hits,
            l2_misses: self.l2_misses - earlier.l2_misses,
            l2_evictions: self.l2_evictions - earlier.l2_evictions,
            dram_accesses: self.dram_accesses - earlier.dram_accesses,
            l1v_mshr_merges: self.l1v_mshr_merges - earlier.l1v_mshr_merges,
            l1s_mshr_merges: self.l1s_mshr_merges - earlier.l1s_mshr_merges,
            l2_mshr_merges: self.l2_mshr_merges - earlier.l2_mshr_merges,
            dram_row_hits: self.dram_row_hits - earlier.dram_row_hits,
            dram_row_misses: self.dram_row_misses - earlier.dram_row_misses,
            dram_row_conflicts: self.dram_row_conflicts - earlier.dram_row_conflicts,
        }
    }
}

/// Log2 buckets in a [`QueueDelayHist`]: bucket 0 holds delay 0,
/// bucket `i` in `1..16` holds `[2^(i-1), 2^i)`, and the last bucket
/// holds everything at or above `2^15` cycles.
pub const QDELAY_BUCKETS: usize = 17;

/// A flat log2 histogram of per-transaction queueing delay at one
/// cache/DRAM level: how long transactions waited for a busy resource
/// before being serviced, separate from the access latency itself.
///
/// Kept `Copy` and allocation-free so the hierarchy can record on the
/// hot path with one branch and two adds; snapshots diff with
/// [`QueueDelayHist::since`] exactly like [`MemStats`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueDelayHist {
    /// Bucket counts (see [`QDELAY_BUCKETS`]).
    pub buckets: [u64; QDELAY_BUCKETS],
    /// Transactions recorded.
    pub count: u64,
    /// Total queue cycles (saturating).
    pub sum: u64,
}

impl QueueDelayHist {
    /// Bucket a delay lands in.
    #[inline]
    pub fn bucket_index(delay: u64) -> usize {
        if delay == 0 {
            0
        } else {
            (64 - delay.leading_zeros() as usize).min(QDELAY_BUCKETS - 1)
        }
    }

    /// Lower bound of bucket `i`.
    pub fn bucket_floor(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// Midpoint of bucket `i` — the unbiased representative value for
    /// publishing bucket counts into registry histograms. The floor
    /// systematically underestimates (every delay in `[2^(i-1), 2^i)`
    /// would be reported as `2^(i-1)`); the midpoint is off by at most
    /// half the bucket width in either direction. The open-ended cap
    /// bucket keeps its floor, the only defensible point estimate.
    pub fn bucket_mid(i: usize) -> u64 {
        let lo = Self::bucket_floor(i);
        if i == 0 || i == QDELAY_BUCKETS - 1 {
            lo
        } else {
            // Bucket spans [lo, 2*lo - 1].
            lo + (lo - 1) / 2
        }
    }

    /// Records one transaction's queueing delay.
    #[inline]
    pub fn record(&mut self, delay: u64) {
        self.buckets[Self::bucket_index(delay)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(delay);
    }

    /// Field-wise difference `self - earlier` (per-kernel deltas; the
    /// hierarchy's histograms only grow).
    pub fn since(&self, earlier: &QueueDelayHist) -> QueueDelayHist {
        let mut buckets = [0u64; QDELAY_BUCKETS];
        for (o, (a, b)) in buckets
            .iter_mut()
            .zip(self.buckets.iter().zip(earlier.buckets.iter()))
        {
            *o = a - b;
        }
        QueueDelayHist {
            buckets,
            count: self.count - earlier.count,
            sum: self.sum - earlier.sum,
        }
    }
}

/// Queue-delay histograms for every level of the hierarchy, snapshotted
/// together so per-kernel deltas stay consistent.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueDelays {
    /// Per-CU vector L1 path.
    pub l1v: QueueDelayHist,
    /// Shared scalar cache path.
    pub l1s: QueueDelayHist,
    /// L2 bank contention.
    pub l2: QueueDelayHist,
    /// DRAM channel contention.
    pub dram: QueueDelayHist,
}

impl QueueDelays {
    /// `(name, histogram)` pairs for iteration (export, publishing).
    pub fn levels(&self) -> [(&'static str, &QueueDelayHist); 4] {
        [
            ("l1v", &self.l1v),
            ("l1s", &self.l1s),
            ("l2", &self.l2),
            ("dram", &self.dram),
        ]
    }

    /// Total queue cycles across all levels — the running accumulator
    /// the timing engine diffs around a memory access to split the
    /// queued portion of a wait from the in-flight portion.
    pub fn queue_cycles(&self) -> u64 {
        self.l1v.sum + self.l1s.sum + self.l2.sum + self.dram.sum
    }

    /// Field-wise difference `self - earlier`.
    pub fn since(&self, earlier: &QueueDelays) -> QueueDelays {
        QueueDelays {
            l1v: self.l1v.since(&earlier.l1v),
            l1s: self.l1s.since(&earlier.l1s),
            l2: self.l2.since(&earlier.l2),
            dram: self.dram.since(&earlier.dram),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_diffs_fieldwise() {
        let a = MemStats {
            l1v_hits: 10,
            l1v_misses: 5,
            l2_hits: 3,
            l2_misses: 2,
            l2_evictions: 1,
            dram_accesses: 2,
            ..Default::default()
        };
        let b = MemStats {
            l1v_hits: 25,
            l1v_misses: 9,
            l2_hits: 7,
            l2_misses: 2,
            l2_evictions: 1,
            dram_accesses: 2,
            ..Default::default()
        };
        let d = b.since(&a);
        assert_eq!(d.l1v_hits, 15);
        assert_eq!(d.l1v_misses, 4);
        assert_eq!(d.l2_hits, 4);
        assert_eq!(d.l2_misses, 0);
        assert_eq!(d.l2_evictions, 0);
    }

    #[test]
    fn hit_rate_handles_zero() {
        assert_eq!(MemStats::default().l1v_hit_rate(), 0.0);
        let s = MemStats {
            l1v_hits: 3,
            l1v_misses: 1,
            ..Default::default()
        };
        assert!((s.l1v_hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn qdelay_buckets_and_floors() {
        assert_eq!(QueueDelayHist::bucket_index(0), 0);
        assert_eq!(QueueDelayHist::bucket_index(1), 1);
        assert_eq!(QueueDelayHist::bucket_index(2), 2);
        assert_eq!(QueueDelayHist::bucket_index(3), 2);
        assert_eq!(QueueDelayHist::bucket_index(1 << 14), 15);
        // Everything at/above 2^15 lands in the cap bucket.
        assert_eq!(QueueDelayHist::bucket_index(1 << 15), 16);
        assert_eq!(QueueDelayHist::bucket_index(u64::MAX), 16);
        assert_eq!(QueueDelayHist::bucket_floor(0), 0);
        assert_eq!(QueueDelayHist::bucket_floor(2), 2);
        assert_eq!(QueueDelayHist::bucket_floor(16), 1 << 15);
    }

    #[test]
    fn bucket_mid_centers_bounded_buckets() {
        assert_eq!(QueueDelayHist::bucket_mid(0), 0);
        assert_eq!(QueueDelayHist::bucket_mid(1), 1); // [1, 1]
        assert_eq!(QueueDelayHist::bucket_mid(2), 2); // [2, 3]
        assert_eq!(QueueDelayHist::bucket_mid(3), 5); // [4, 7]
        assert_eq!(QueueDelayHist::bucket_mid(4), 11); // [8, 15]
                                                       // A bucket's midpoint stays inside the bucket, so re-bucketing
                                                       // the published value never shifts it into a neighbor.
        for i in 0..QDELAY_BUCKETS {
            assert_eq!(
                QueueDelayHist::bucket_index(QueueDelayHist::bucket_mid(i)),
                i,
                "bucket {i}"
            );
        }
        // The open-ended cap bucket keeps its floor.
        assert_eq!(QueueDelayHist::bucket_mid(16), 1 << 15);
    }

    #[test]
    fn qdelay_record_and_since() {
        let mut h = QueueDelayHist::default();
        h.record(0);
        h.record(5);
        h.record(70_000);
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 70_005);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[3], 1); // 5 in [4, 8)
        assert_eq!(h.buckets[16], 1);

        let earlier = {
            let mut e = QueueDelayHist::default();
            e.record(0);
            e
        };
        let d = h.since(&earlier);
        assert_eq!(d.count, 2);
        assert_eq!(d.buckets[0], 0);
        assert_eq!(d.sum, 70_005);
    }

    #[test]
    fn queue_delays_aggregate_across_levels() {
        let mut q = QueueDelays::default();
        q.l1v.record(4);
        q.l2.record(10);
        q.dram.record(100);
        assert_eq!(q.queue_cycles(), 114);
        let names: Vec<_> = q.levels().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["l1v", "l1s", "l2", "dram"]);
        let d = q.since(&QueueDelays::default());
        assert_eq!(d, q);
    }
}

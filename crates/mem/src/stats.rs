//! Memory system statistics.
//!
//! [`MemStats`] is a point-in-time *snapshot* assembled from the
//! telemetry registry counters owned by [`crate::MemoryHierarchy`] —
//! the registry is the single source of truth; this struct exists so
//! results can carry a serializable, diffable copy.

use serde::{Deserialize, Serialize};

/// Snapshot of the counters accumulated by [`crate::MemoryHierarchy`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemStats {
    /// Vector L1 hits across all CUs.
    pub l1v_hits: u64,
    /// Vector L1 misses across all CUs.
    pub l1v_misses: u64,
    /// Valid lines displaced from vector L1s.
    pub l1v_evictions: u64,
    /// Scalar cache hits.
    pub l1s_hits: u64,
    /// Scalar cache misses.
    pub l1s_misses: u64,
    /// Valid lines displaced from scalar caches.
    pub l1s_evictions: u64,
    /// L2 hits across all banks.
    pub l2_hits: u64,
    /// L2 misses across all banks.
    pub l2_misses: u64,
    /// Valid lines displaced from L2 banks.
    pub l2_evictions: u64,
    /// Lines fetched from DRAM.
    pub dram_accesses: u64,
}

impl MemStats {
    /// Vector L1 hit rate in `[0, 1]`; zero when no accesses occurred.
    pub fn l1v_hit_rate(&self) -> f64 {
        let total = self.l1v_hits + self.l1v_misses;
        if total == 0 {
            0.0
        } else {
            self.l1v_hits as f64 / total as f64
        }
    }

    /// L2 hit rate in `[0, 1]`; zero when no accesses occurred.
    pub fn l2_hit_rate(&self) -> f64 {
        let total = self.l2_hits + self.l2_misses;
        if total == 0 {
            0.0
        } else {
            self.l2_hits as f64 / total as f64
        }
    }

    /// Field-wise difference `self - earlier` (for per-kernel deltas).
    ///
    /// # Panics
    /// Panics in debug builds if `earlier` is not a prefix state of
    /// `self` (counters only grow).
    pub fn since(&self, earlier: &MemStats) -> MemStats {
        MemStats {
            l1v_hits: self.l1v_hits - earlier.l1v_hits,
            l1v_misses: self.l1v_misses - earlier.l1v_misses,
            l1v_evictions: self.l1v_evictions - earlier.l1v_evictions,
            l1s_hits: self.l1s_hits - earlier.l1s_hits,
            l1s_misses: self.l1s_misses - earlier.l1s_misses,
            l1s_evictions: self.l1s_evictions - earlier.l1s_evictions,
            l2_hits: self.l2_hits - earlier.l2_hits,
            l2_misses: self.l2_misses - earlier.l2_misses,
            l2_evictions: self.l2_evictions - earlier.l2_evictions,
            dram_accesses: self.dram_accesses - earlier.dram_accesses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_diffs_fieldwise() {
        let a = MemStats {
            l1v_hits: 10,
            l1v_misses: 5,
            l2_hits: 3,
            l2_misses: 2,
            l2_evictions: 1,
            dram_accesses: 2,
            ..Default::default()
        };
        let b = MemStats {
            l1v_hits: 25,
            l1v_misses: 9,
            l2_hits: 7,
            l2_misses: 2,
            l2_evictions: 1,
            dram_accesses: 2,
            ..Default::default()
        };
        let d = b.since(&a);
        assert_eq!(d.l1v_hits, 15);
        assert_eq!(d.l1v_misses, 4);
        assert_eq!(d.l2_hits, 4);
        assert_eq!(d.l2_misses, 0);
        assert_eq!(d.l2_evictions, 0);
    }

    #[test]
    fn hit_rate_handles_zero() {
        assert_eq!(MemStats::default().l1v_hit_rate(), 0.0);
        let s = MemStats {
            l1v_hits: 3,
            l1v_misses: 1,
            ..Default::default()
        };
        assert!((s.l1v_hit_rate() - 0.75).abs() < 1e-12);
    }
}

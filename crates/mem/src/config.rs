//! Memory hierarchy configuration (Table 1 of the paper).

use serde::{Deserialize, Serialize};

/// Geometry and timing of one cache level.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways).
    pub assoc: u64,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Hit latency in cycles.
    pub hit_latency: u64,
    /// Minimum cycles between accepting two transactions on one bank
    /// (1 = one transaction per cycle).
    pub service_interval: u64,
}

impl CacheConfig {
    /// Creates a cache configuration.
    pub fn new(
        size_bytes: u64,
        assoc: u64,
        line_bytes: u64,
        hit_latency: u64,
        service_interval: u64,
    ) -> Self {
        CacheConfig {
            size_bytes,
            assoc,
            line_bytes,
            hit_latency,
            service_interval,
        }
    }
}

/// DRAM channel configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Number of independent channels.
    pub channels: u64,
    /// Access latency in cycles (row activation + transfer start).
    pub latency: u64,
    /// Cycles per 64-byte line per channel (bandwidth model).
    pub service_interval: u64,
    /// Device memory capacity in bytes.
    pub capacity_bytes: u64,
}

/// Outstanding-miss (MSHR) file geometry for one cache level: how many
/// distinct lines may be in flight, and how many same-line misses each
/// entry can absorb before the level back-pressures.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MshrConfig {
    /// MSHR entries (distinct outstanding miss lines).
    pub entries: u64,
    /// Additional same-line misses one entry can merge; a further miss
    /// stalls until the fill returns (a `mem_queue_full`-class delay).
    pub merge_slots: u64,
}

impl MshrConfig {
    /// Creates an MSHR file configuration.
    pub fn new(entries: u64, merge_slots: u64) -> Self {
        MshrConfig {
            entries,
            merge_slots,
        }
    }
}

/// CU→L2-bank crossbar (NoC) contention model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NocConfig {
    /// Crossbar traversal latency charged on every L2 request.
    pub latency: u64,
    /// Bounded per-bank request queue depth; arrivals at a full queue
    /// wait for a slot (a `mem_queue_full`-class delay).
    pub queue_depth: u64,
}

/// DRAM bank-level parallelism and row-buffer timing (detailed fidelity
/// only; the legacy model keeps one flat `DramConfig::latency`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramBankConfig {
    /// Independent banks per channel (HBM: 16).
    pub banks_per_channel: u64,
    /// Row-buffer (page) size in bytes.
    pub row_bytes: u64,
    /// Column access when the row is already open.
    pub row_hit_latency: u64,
    /// Activate + column access when the bank is idle.
    pub row_empty_latency: u64,
    /// Precharge + activate + column access on an open-row conflict.
    pub row_conflict_latency: u64,
}

/// Which timing model the hierarchy runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemFidelityMode {
    /// The original model: fill-at-lookup tag arrays, scalar per-bank
    /// `next_free` reservations, flat DRAM latency. Bit-identical to the
    /// pre-MSHR engine — the `golden_cycles` reference.
    Legacy,
    /// Explicit outstanding-miss state: per-level MSHR files with
    /// fill-time tag installation and miss merging, banked L2 behind a
    /// bounded NoC queue, DRAM bank-level parallelism with row-buffer
    /// timing, and Fibonacci-mixed bank/channel selection.
    Detailed,
}

/// Fidelity toggle plus the knobs the detailed model adds. The knobs are
/// carried (and serialized) in both modes so switching modes never
/// changes the config schema; legacy mode simply ignores them.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemFidelityConfig {
    /// Active timing model.
    pub mode: MemFidelityMode,
    /// Per-CU vector L1 MSHR file.
    pub l1v_mshr: MshrConfig,
    /// Per-group scalar cache MSHR file.
    pub l1s_mshr: MshrConfig,
    /// Per-bank L2 MSHR file.
    pub l2_mshr: MshrConfig,
    /// CU→L2-bank crossbar.
    pub noc: NocConfig,
    /// DRAM bank-level parallelism.
    pub dram_banks: DramBankConfig,
}

impl MemFidelityConfig {
    /// The legacy model with the detailed knobs at their defaults
    /// (ignored while `mode` is [`MemFidelityMode::Legacy`]).
    pub fn legacy() -> Self {
        MemFidelityConfig {
            mode: MemFidelityMode::Legacy,
            ..Self::detailed()
        }
    }

    /// The detailed model with GCN/HBM-shaped defaults: 64×8 MSHRs per
    /// L1 and per L2 bank (streaming kernels keep ~50 fills in flight
    /// per CU across the ~400-cycle L2/DRAM round trip; smaller files
    /// throttle well below the legacy model's implicit infinity), an
    /// 8-cycle crossbar with 16-deep bank queues, and 16 banks/channel
    /// of 2 KB rows (hit 40 / empty 220 / conflict 300 cycles — the
    /// empty-row case matches the legacy flat latency).
    pub fn detailed() -> Self {
        MemFidelityConfig {
            mode: MemFidelityMode::Detailed,
            l1v_mshr: MshrConfig::new(64, 8),
            l1s_mshr: MshrConfig::new(64, 8),
            l2_mshr: MshrConfig::new(64, 8),
            noc: NocConfig {
                latency: 8,
                queue_depth: 16,
            },
            dram_banks: DramBankConfig {
                banks_per_channel: 16,
                row_bytes: 2048,
                row_hit_latency: 40,
                row_empty_latency: 220,
                row_conflict_latency: 300,
            },
        }
    }
}

/// Configuration of the full memory hierarchy of one GPU.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemHierarchyConfig {
    /// Per-CU vector L1 data cache.
    pub l1v: CacheConfig,
    /// Scalar (constant) cache shared by a CU group.
    pub l1s: CacheConfig,
    /// Banked, shared L2.
    pub l2: CacheConfig,
    /// Number of L2 banks.
    pub l2_banks: u64,
    /// DRAM.
    pub dram: DramConfig,
    /// Number of CUs (one L1V each).
    pub num_cus: u64,
    /// Timing-model fidelity (legacy vs detailed miss path).
    pub fidelity: MemFidelityConfig,
}

impl MemHierarchyConfig {
    /// The R9 Nano hierarchy from Table 1: 16 KB 4-way L1V per CU (64
    /// CUs), 16 KB 4-way scalar caches, 256 KB 16-way L2 × 8 banks, 4 GB
    /// DRAM.
    pub fn r9_nano() -> Self {
        MemHierarchyConfig {
            l1v: CacheConfig::new(16 * 1024, 4, 64, 28, 1),
            l1s: CacheConfig::new(16 * 1024, 4, 64, 24, 1),
            l2: CacheConfig::new(256 * 1024, 16, 64, 120, 1),
            l2_banks: 8,
            dram: DramConfig {
                // 8 channels x one 64B line/cycle @ 1 GHz = 512 GB/s (HBM)
                channels: 8,
                latency: 220,
                service_interval: 1,
                capacity_bytes: 4 << 30,
            },
            num_cus: 64,
            fidelity: MemFidelityConfig::legacy(),
        }
    }

    /// The MI100 hierarchy from Table 1: 120 CUs, 8 MB L2 in 32 banks,
    /// 32 GB DRAM.
    pub fn mi100() -> Self {
        MemHierarchyConfig {
            l1v: CacheConfig::new(16 * 1024, 4, 64, 28, 1),
            l1s: CacheConfig::new(16 * 1024, 4, 64, 24, 1),
            l2: CacheConfig::new(8 * 1024 * 1024 / 32, 16, 64, 120, 1),
            l2_banks: 32,
            dram: DramConfig {
                // 18 channels x one 64B line/cycle = ~1.2 TB/s (HBM2)
                channels: 18,
                latency: 220,
                service_interval: 1,
                capacity_bytes: 32u64 << 30,
            },
            num_cus: 120,
            fidelity: MemFidelityConfig::legacy(),
        }
    }

    /// Whether the detailed miss path (MSHRs, NoC queues, DRAM banks)
    /// is active.
    pub fn is_detailed(&self) -> bool {
        self.fidelity.mode == MemFidelityMode::Detailed
    }

    /// Returns the configuration with the detailed fidelity model and
    /// its default knobs enabled.
    pub fn with_detailed_fidelity(mut self) -> Self {
        self.fidelity = MemFidelityConfig::detailed();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table1() {
        let r9 = MemHierarchyConfig::r9_nano();
        assert_eq!(r9.num_cus, 64);
        assert_eq!(r9.l1v.size_bytes, 16 * 1024);
        assert_eq!(r9.l1v.assoc, 4);
        assert_eq!(r9.l2.assoc, 16);
        assert_eq!(r9.l2_banks, 8);
        assert_eq!(r9.dram.capacity_bytes, 4 << 30);

        let mi = MemHierarchyConfig::mi100();
        assert_eq!(mi.num_cus, 120);
        assert_eq!(mi.l2_banks, 32);
        assert_eq!(mi.l2.size_bytes * mi.l2_banks, 8 * 1024 * 1024);
        assert_eq!(mi.dram.capacity_bytes, 32u64 << 30);
    }

    #[test]
    fn fidelity_defaults_to_legacy_and_toggle_flips_it() {
        let cfg = MemHierarchyConfig::r9_nano();
        assert_eq!(cfg.fidelity.mode, MemFidelityMode::Legacy);
        assert!(!cfg.is_detailed());
        let det = cfg.with_detailed_fidelity();
        assert!(det.is_detailed());
        assert!(det.fidelity.l1v_mshr.entries > 0);
        assert!(det.fidelity.noc.queue_depth > 0);
        assert!(det.fidelity.dram_banks.banks_per_channel > 0);
        // Conflict > empty > hit: the row buffer must matter.
        let d = &det.fidelity.dram_banks;
        assert!(d.row_hit_latency < d.row_empty_latency);
        assert!(d.row_empty_latency < d.row_conflict_latency);
        // Legacy carries the same knobs, so the schema never changes.
        assert_eq!(
            MemFidelityConfig::legacy().noc,
            MemFidelityConfig::detailed().noc
        );
    }
}

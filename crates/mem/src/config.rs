//! Memory hierarchy configuration (Table 1 of the paper).

use serde::{Deserialize, Serialize};

/// Geometry and timing of one cache level.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways).
    pub assoc: u64,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Hit latency in cycles.
    pub hit_latency: u64,
    /// Minimum cycles between accepting two transactions on one bank
    /// (1 = one transaction per cycle).
    pub service_interval: u64,
}

impl CacheConfig {
    /// Creates a cache configuration.
    pub fn new(
        size_bytes: u64,
        assoc: u64,
        line_bytes: u64,
        hit_latency: u64,
        service_interval: u64,
    ) -> Self {
        CacheConfig {
            size_bytes,
            assoc,
            line_bytes,
            hit_latency,
            service_interval,
        }
    }
}

/// DRAM channel configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Number of independent channels.
    pub channels: u64,
    /// Access latency in cycles (row activation + transfer start).
    pub latency: u64,
    /// Cycles per 64-byte line per channel (bandwidth model).
    pub service_interval: u64,
    /// Device memory capacity in bytes.
    pub capacity_bytes: u64,
}

/// Configuration of the full memory hierarchy of one GPU.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemHierarchyConfig {
    /// Per-CU vector L1 data cache.
    pub l1v: CacheConfig,
    /// Scalar (constant) cache shared by a CU group.
    pub l1s: CacheConfig,
    /// Banked, shared L2.
    pub l2: CacheConfig,
    /// Number of L2 banks.
    pub l2_banks: u64,
    /// DRAM.
    pub dram: DramConfig,
    /// Number of CUs (one L1V each).
    pub num_cus: u64,
}

impl MemHierarchyConfig {
    /// The R9 Nano hierarchy from Table 1: 16 KB 4-way L1V per CU (64
    /// CUs), 16 KB 4-way scalar caches, 256 KB 16-way L2 × 8 banks, 4 GB
    /// DRAM.
    pub fn r9_nano() -> Self {
        MemHierarchyConfig {
            l1v: CacheConfig::new(16 * 1024, 4, 64, 28, 1),
            l1s: CacheConfig::new(16 * 1024, 4, 64, 24, 1),
            l2: CacheConfig::new(256 * 1024, 16, 64, 120, 1),
            l2_banks: 8,
            dram: DramConfig {
                // 8 channels x one 64B line/cycle @ 1 GHz = 512 GB/s (HBM)
                channels: 8,
                latency: 220,
                service_interval: 1,
                capacity_bytes: 4 << 30,
            },
            num_cus: 64,
        }
    }

    /// The MI100 hierarchy from Table 1: 120 CUs, 8 MB L2 in 32 banks,
    /// 32 GB DRAM.
    pub fn mi100() -> Self {
        MemHierarchyConfig {
            l1v: CacheConfig::new(16 * 1024, 4, 64, 28, 1),
            l1s: CacheConfig::new(16 * 1024, 4, 64, 24, 1),
            l2: CacheConfig::new(8 * 1024 * 1024 / 32, 16, 64, 120, 1),
            l2_banks: 32,
            dram: DramConfig {
                // 18 channels x one 64B line/cycle = ~1.2 TB/s (HBM2)
                channels: 18,
                latency: 220,
                service_interval: 1,
                capacity_bytes: 32u64 << 30,
            },
            num_cus: 120,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table1() {
        let r9 = MemHierarchyConfig::r9_nano();
        assert_eq!(r9.num_cus, 64);
        assert_eq!(r9.l1v.size_bytes, 16 * 1024);
        assert_eq!(r9.l1v.assoc, 4);
        assert_eq!(r9.l2.assoc, 16);
        assert_eq!(r9.l2_banks, 8);
        assert_eq!(r9.dram.capacity_bytes, 4 << 30);

        let mi = MemHierarchyConfig::mi100();
        assert_eq!(mi.num_cus, 120);
        assert_eq!(mi.l2_banks, 32);
        assert_eq!(mi.l2.size_bytes * mi.l2_banks, 8 * 1024 * 1024);
        assert_eq!(mi.dram.capacity_bytes, 32u64 << 30);
    }
}

//! # photon-serve
//!
//! Simulation-as-a-service: a long-running job server over the
//! photon-bench parallel executor, so a thundering herd of identical
//! submissions costs one simulation.
//!
//! The server ([`server::Server`]) listens on a `std::net::TcpListener`
//! and speaks the line-delimited JSON protocol of [`protocol`]:
//! `submit` / `status` / `wait` / `fetch` / `cancel` / `stats` /
//! `trace` / `metrics` / `shutdown`. Behind it, the
//! [`scheduler::Scheduler`] runs a bounded
//! two-lane admission queue (interactive sampled methods dequeue before
//! batch `Full` runs) over a pool of worker threads, deduplicates
//! identical jobs at submit time, single-flights result computation
//! through the sharded [`photon_bench::RefCache`] / result store, and
//! drains gracefully on SIGTERM/ctrl-c — in-flight jobs finish, queued
//! jobs are journaled so a restarted server resumes them.
//!
//! Every job carries a trace context minted at submit
//! ([`protocol::mint_trace`]): typed spans (queued, coalesced,
//! cache-probe, sim, epoch-barrier, mem-service, persist) land in
//! `gpu_telemetry::span`'s always-on rings, the `trace` op returns the
//! reassembled span tree, the `metrics` op exports the registry in
//! Prometheus text format, and a job that fails, absorbs a failed span,
//! or lands past the live p99 dumps a flight record
//! ([`photon_bench::flightrec`]) for post-hoc diagnosis.
//!
//! [`client::Client`] is the blocking client used by `photon-loadgen`,
//! `photon-top` (the live operational view), the integration tests, and
//! the CI serve gate.
//!
//! See DESIGN.md § "photon-serve" for the protocol grammar, the
//! lane/admission semantics, the single-flight state machine, and the
//! drain/resume contract.

pub mod client;
pub mod protocol;
pub mod scheduler;
pub mod server;

pub use client::Client;
pub use protocol::{job_id, parse_job_id, Request};
pub use scheduler::{Scheduler, ServeOptions};
pub use server::Server;

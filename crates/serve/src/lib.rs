//! # photon-serve
//!
//! Simulation-as-a-service: a long-running job server over the
//! photon-bench parallel executor, so a thundering herd of identical
//! submissions costs one simulation.
//!
//! The server ([`server::Server`]) listens on a `std::net::TcpListener`
//! and speaks the line-delimited JSON protocol of [`protocol`]:
//! `submit` / `status` / `wait` / `fetch` / `cancel` / `stats` /
//! `shutdown`. Behind it, the [`scheduler::Scheduler`] runs a bounded
//! two-lane admission queue (interactive sampled methods dequeue before
//! batch `Full` runs) over a pool of worker threads, deduplicates
//! identical jobs at submit time, single-flights result computation
//! through the sharded [`photon_bench::RefCache`] / result store, and
//! drains gracefully on SIGTERM/ctrl-c — in-flight jobs finish, queued
//! jobs are journaled so a restarted server resumes them.
//!
//! [`client::Client`] is the blocking client used by `photon-loadgen`,
//! the integration tests, and the CI serve gate.
//!
//! See DESIGN.md § "photon-serve" for the protocol grammar, the
//! lane/admission semantics, the single-flight state machine, and the
//! drain/resume contract.

pub mod client;
pub mod protocol;
pub mod scheduler;
pub mod server;

pub use client::Client;
pub use protocol::{job_id, parse_job_id, Request};
pub use scheduler::{Scheduler, ServeOptions};
pub use server::Server;

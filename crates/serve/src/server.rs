//! The TCP front end: a nonblocking acceptor loop, one lightweight
//! thread per connection, worker threads running
//! [`Scheduler::worker_loop`], and graceful drain on SIGTERM / ctrl-c
//! (or the `shutdown` op).
//!
//! There is deliberately no async runtime: the build environment has no
//! network access for dependencies, and a hand-rolled acceptor over
//! `std::net::TcpListener` with short poll intervals is entirely
//! adequate for a job server whose unit of work is a simulation taking
//! milliseconds to minutes.

use crate::protocol::{self, error_response, job_id, Request};
use crate::scheduler::{Phase, Scheduler, ServeOptions, Submitted};
use photon_bench::harness::RunOutcome;
use serde_json::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How often `wait` handlers emit a progress event while a job runs.
const WAIT_POLL: Duration = Duration::from_millis(100);

/// How often the acceptor re-checks the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(50);

#[cfg(unix)]
mod sig {
    //! SIGTERM / SIGINT handling without a `libc` dependency: `signal`
    //! is declared directly (std already links libc on unix) and the
    //! handler only stores to an atomic — the only async-signal-safe
    //! thing it could do anyway.

    use std::sync::atomic::{AtomicBool, Ordering};

    /// Set by the signal handler; polled by the acceptor loop.
    pub static SHUTDOWN: AtomicBool = AtomicBool::new(false);

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    /// Installs the handler for SIGINT (2) and SIGTERM (15).
    pub fn install() {
        unsafe {
            signal(2, on_signal as *const () as usize);
            signal(15, on_signal as *const () as usize);
        }
    }
}

/// A running server: listener + scheduler + shutdown plumbing.
pub struct Server {
    listener: TcpListener,
    scheduler: Arc<Scheduler>,
    shutdown: Arc<AtomicBool>,
    workers: usize,
    /// Pending-jobs journal path (drain writes it, startup resumes it).
    pending: Option<PathBuf>,
}

/// A handle that trips a running server's shutdown flag from another
/// thread (tests and the `shutdown` op use it; signals use the same
/// flag).
#[derive(Clone)]
pub struct ShutdownHandle(Arc<AtomicBool>);

impl ShutdownHandle {
    /// Requests graceful drain.
    pub fn shutdown(&self) {
        self.0.store(true, Ordering::SeqCst);
    }
}

impl Server {
    /// Binds `addr` (port 0 picks an ephemeral port) and prepares a
    /// scheduler with `opts`. If `pending` names a journal written by a
    /// previous drain, its jobs are re-enqueued before any connection
    /// is accepted.
    ///
    /// # Errors
    /// Returns the bind error.
    pub fn bind(
        addr: &str,
        opts: ServeOptions,
        pending: Option<PathBuf>,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let workers = opts.workers.max(1);
        let scheduler = Arc::new(Scheduler::new(opts));
        if let Some(p) = &pending {
            let (resumed, corrupt) = scheduler.resume_pending_from(p);
            if resumed + corrupt > 0 {
                eprintln!(
                    "photon-serve: resumed {resumed} drained job(s) from {} ({corrupt} corrupt line(s) skipped)",
                    p.display()
                );
            }
        }
        Ok(Server {
            listener,
            scheduler,
            shutdown: Arc::new(AtomicBool::new(false)),
            workers,
            pending,
        })
    }

    /// The bound address (read the ephemeral port from here).
    ///
    /// # Errors
    /// Returns the underlying socket error.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The scheduler (tests inspect its telemetry directly).
    pub fn scheduler(&self) -> &Arc<Scheduler> {
        &self.scheduler
    }

    /// A handle that makes [`run`](Self::run) return gracefully.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle(Arc::clone(&self.shutdown))
    }

    /// Installs SIGTERM/SIGINT handlers that trigger graceful drain of
    /// this (and any) server whose `run` loop is active. Call once from
    /// the binary, not from tests.
    pub fn install_signal_handlers(&self) {
        #[cfg(unix)]
        {
            sig::install();
        }
    }

    /// Serves until shutdown is requested (signal, handle, or
    /// `shutdown` op), then drains: stop accepting, finish in-flight
    /// jobs, journal still-queued ones. Returns the number of jobs
    /// drained to the pending journal.
    ///
    /// # Errors
    /// Returns acceptor I/O errors other than `WouldBlock`.
    pub fn run(&self) -> std::io::Result<usize> {
        let mut conn_threads = Vec::new();
        loop {
            let stop = self.shutdown.load(Ordering::SeqCst) || {
                #[cfg(unix)]
                {
                    sig::SHUTDOWN.load(Ordering::SeqCst)
                }
                #[cfg(not(unix))]
                {
                    false
                }
            };
            if stop {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let _ = stream.set_nodelay(true);
                    let scheduler = Arc::clone(&self.scheduler);
                    let shutdown = Arc::clone(&self.shutdown);
                    conn_threads.push(
                        std::thread::Builder::new()
                            .name("serve-conn".to_string())
                            .spawn(move || handle_connection(stream, &scheduler, &shutdown))?,
                    );
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) => return Err(e),
            }
        }

        // The accept loop may have stopped on the process-wide signal
        // flag; mirror it into this server's own flag so connection
        // handlers (which poll only the Arc) and `wait`ers on queued
        // jobs observe the drain instead of spinning forever.
        self.shutdown.store(true, Ordering::SeqCst);

        // Graceful drain: no new work, finish in-flight, journal the
        // rest so a restarted server resumes them.
        self.scheduler.begin_drain();
        self.scheduler.await_idle();
        let drained = match &self.pending {
            Some(p) => self.scheduler.drain_pending_to(p)?,
            None => 0,
        };
        for t in conn_threads {
            let _ = t.join();
        }
        Ok(drained)
    }

    /// Spawns the scheduler's worker threads (call once, before or
    /// after `run` — submissions queue either way). The threads exit
    /// when drain begins; the returned handles join them.
    pub fn spawn_workers(&self) -> Vec<std::thread::JoinHandle<()>> {
        (0..self.workers)
            .map(|i| {
                let scheduler = Arc::clone(&self.scheduler);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || scheduler.worker_loop())
                    .expect("spawning a worker thread")
            })
            .collect()
    }
}

fn write_line(stream: &mut TcpStream, v: &Value) -> std::io::Result<()> {
    let mut text = serde_json::to_string(v).map_err(|e| std::io::Error::other(e.to_string()))?;
    text.push('\n');
    stream.write_all(text.as_bytes())
}

fn submit_response(submitted: &Submitted) -> Value {
    match submitted {
        Submitted::Queued { id, lane } => serde_json::json!({
            "ok": true,
            "job": job_id(*id),
            "state": "queued",
            "lane": *lane,
        }),
        Submitted::Coalesced { id, phase } => serde_json::json!({
            "ok": true,
            "job": job_id(*id),
            "state": phase.name(),
            "coalesced": true,
        }),
        Submitted::Cached { id } => serde_json::json!({
            "ok": true,
            "job": job_id(*id),
            "state": "done",
            "cached": true,
        }),
        Submitted::Rejected { retry_after_ms } => serde_json::json!({
            "ok": false,
            "code": 429u32,
            "error": "queue full",
            "retry_after_ms": *retry_after_ms,
        }),
        Submitted::Draining => error_response(503, "server is draining"),
    }
}

fn outcome_response(id: u64, result: &crate::scheduler::JobResult) -> Value {
    let report = match &result.outcome {
        RunOutcome::Completed(m) => serde_json::json!({
            "completed": true,
            "measurement": m,
        }),
        RunOutcome::Skipped {
            workload,
            method,
            reason,
            ..
        } => serde_json::json!({
            "completed": false,
            "workload": workload,
            "method": method,
            "reason": reason,
        }),
    };
    serde_json::json!({
        "ok": true,
        "job": job_id(id),
        "origin": result.origin,
        "wall_secs": result.wall_secs,
        "report": report,
        "metrics": result.metrics,
    })
}

fn progress_object(progress: &[(String, u64)]) -> Value {
    Value::Object(
        progress
            .iter()
            .map(|(k, v)| (k.clone(), Value::U64(*v)))
            .collect(),
    )
}

/// Serves one connection: read request lines, write response lines,
/// until the peer hangs up or shutdown is requested. `wait` streams
/// progress events; everything else is one line in, one line out.
fn handle_connection(stream: TcpStream, scheduler: &Scheduler, shutdown: &AtomicBool) {
    // A read timeout lets idle connections notice shutdown.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut writer = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        match reader.read_line(&mut line) {
            Ok(0) => return, // peer closed
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // A timed-out read may have appended a request prefix to
                // `line` (read_line keeps bytes read so far); leave it
                // in place so the next read resumes the same line.
                continue;
            }
            Err(_) => return,
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            line.clear();
            continue;
        }
        let response = match protocol::parse_request(trimmed) {
            Err(why) => error_response(400, &why),
            Ok(Request::Submit { spec, tenant }) => {
                submit_response(&scheduler.submit(*spec, &tenant))
            }
            Ok(Request::Status { job }) => match scheduler.status(job) {
                Some(view) => serde_json::json!({
                    "ok": true,
                    "job": job_id(job),
                    "state": view.phase.name(),
                    "label": view.label,
                    "progress": progress_object(&view.progress),
                }),
                None => error_response(404, "unknown job"),
            },
            Ok(Request::Wait { job }) => {
                let mut response = None;
                loop {
                    match scheduler.wait_step(job, WAIT_POLL) {
                        None => {
                            response = Some(error_response(404, "unknown job"));
                            break;
                        }
                        Some(phase) if phase.terminal() => {
                            let v = match scheduler.fetch(job) {
                                Some(r) => outcome_response(job, &r),
                                None => serde_json::json!({
                                    "ok": true,
                                    "job": job_id(job),
                                    "state": phase.name(),
                                }),
                            };
                            response = Some(v);
                            break;
                        }
                        Some(phase)
                            if phase == Phase::Queued && shutdown.load(Ordering::SeqCst) =>
                        {
                            // The server is draining: this job will not
                            // run now; it is journaled for the next
                            // server. Unblock the waiter.
                            response = Some(serde_json::json!({
                                "ok": false,
                                "code": 503u32,
                                "error": "server draining; job journaled for resume",
                                "job": job_id(job),
                                "state": phase.name(),
                            }));
                            break;
                        }
                        Some(phase) => {
                            let progress = scheduler
                                .status(job)
                                .map(|v| v.progress)
                                .unwrap_or_default();
                            let event = serde_json::json!({
                                "event": "progress",
                                "job": job_id(job),
                                "state": phase.name(),
                                "progress": progress_object(&progress),
                            });
                            if write_line(&mut writer, &event).is_err() {
                                break;
                            }
                        }
                    }
                }
                match response {
                    Some(v) => v,
                    None => return, // peer went away mid-wait
                }
            }
            Ok(Request::Fetch { job }) => match scheduler.fetch(job) {
                Some(result) => outcome_response(job, &result),
                None => match scheduler.status(job) {
                    Some(view) => error_response(
                        409,
                        &format!("job is {} — not fetchable yet", view.phase.name()),
                    ),
                    None => error_response(404, "unknown job"),
                },
            },
            Ok(Request::Cancel { job }) => match scheduler.cancel(job) {
                Some(removed) => serde_json::json!({
                    "ok": true,
                    "job": job_id(job),
                    "cancelled": removed,
                }),
                None => error_response(404, "unknown job"),
            },
            Ok(Request::Stats) => {
                let mut v = scheduler.stats();
                if let Value::Object(fields) = &mut v {
                    fields.insert(0, ("ok".to_string(), Value::Bool(true)));
                }
                v
            }
            Ok(Request::Trace { job }) => match scheduler.trace(job) {
                Some(mut v) => {
                    if let Value::Object(fields) = &mut v {
                        fields.insert(0, ("ok".to_string(), Value::Bool(true)));
                    }
                    v
                }
                None => error_response(404, "unknown job (no spans recorded)"),
            },
            Ok(Request::Metrics) => serde_json::json!({
                "ok": true,
                "content_type": "text/plain; version=0.0.4",
                "body": scheduler.metrics_text(),
            }),
            Ok(Request::Shutdown) => {
                shutdown.store(true, Ordering::SeqCst);
                serde_json::json!({ "ok": true, "draining": true })
            }
        };
        line.clear();
        if write_line(&mut writer, &response).is_err() {
            return;
        }
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::sync::mpsc;

    /// Regression: a SIGTERM-style shutdown (the process-global signal
    /// flag, not this server's handle) must propagate to connection
    /// handlers — `run` must return even with a client still connected,
    /// instead of blocking forever on its join.
    #[test]
    fn signal_flag_shutdown_drains_with_connected_client() {
        let server =
            Arc::new(Server::bind("127.0.0.1:0", ServeOptions::default(), None).expect("bind"));
        let addr = server.local_addr().expect("addr");
        let srv = Arc::clone(&server);
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            let _ = tx.send(srv.run());
        });
        // An idle connected client whose handler polls only the Arc flag.
        let _client = TcpStream::connect(addr).expect("connect");
        std::thread::sleep(Duration::from_millis(100));
        sig::SHUTDOWN.store(true, Ordering::SeqCst);
        let drained = rx
            .recv_timeout(Duration::from_secs(10))
            .expect("run() must return after the signal flag trips")
            .expect("run");
        assert_eq!(drained, 0);
        sig::SHUTDOWN.store(false, Ordering::SeqCst);
    }
}

//! A small blocking client for the photon-serve protocol — what
//! `photon-loadgen`, the integration tests, and the CI gate drive the
//! server with.

use photon_bench::RunSpec;
use serde_json::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

/// One connection to a photon-serve server.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

fn bool_field(v: &Value, name: &str) -> bool {
    matches!(v.get(name), Some(Value::Bool(true)))
}

fn str_of(v: &Value, name: &str) -> Option<String> {
    match v.get(name) {
        Some(Value::String(s)) => Some(s.clone()),
        _ => None,
    }
}

impl Client {
    /// Connects to `addr` (`host:port`).
    ///
    /// # Errors
    /// Returns the connect error.
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // Requests and responses are single short lines; Nagle only
        // adds latency here.
        let _ = stream.set_nodelay(true);
        let writer = stream.try_clone()?;
        Ok(Client {
            writer,
            reader: BufReader::new(stream),
        })
    }

    /// Sends one request object and reads one response line.
    ///
    /// # Errors
    /// Returns I/O errors or a rendered parse error.
    pub fn request(&mut self, req: &Value) -> std::io::Result<Value> {
        let mut text =
            serde_json::to_string(req).map_err(|e| std::io::Error::other(e.to_string()))?;
        text.push('\n');
        self.writer.write_all(text.as_bytes())?;
        self.read_line()
    }

    fn read_line(&mut self) -> std::io::Result<Value> {
        let mut line = String::new();
        loop {
            line.clear();
            let n = self.reader.read_line(&mut line)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            if !line.trim().is_empty() {
                break;
            }
        }
        serde_json::from_str(line.trim())
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Submits a spec; returns the raw response (`job`, `state`, and
    /// possibly `coalesced`/`cached` or a 429/503 rejection).
    ///
    /// # Errors
    /// Returns I/O errors.
    pub fn submit(&mut self, spec: &RunSpec, tenant: &str) -> std::io::Result<Value> {
        self.request(&serde_json::json!({
            "op": "submit",
            "spec": spec,
            "tenant": tenant,
        }))
    }

    /// Blocks until `job` finishes, discarding streamed progress
    /// events; returns the final response (the fetched report on
    /// success).
    ///
    /// # Errors
    /// Returns I/O errors.
    pub fn wait(&mut self, job: &str) -> std::io::Result<Value> {
        let mut text = format!("{{\"op\":\"wait\",\"job\":\"{job}\"}}");
        text.push('\n');
        self.writer.write_all(text.as_bytes())?;
        loop {
            let v = self.read_line()?;
            // Progress events carry "event":"progress"; the final line
            // carries "ok".
            if str_of(&v, "event").as_deref() == Some("progress") {
                continue;
            }
            return Ok(v);
        }
    }

    /// Fetches a finished job's report.
    ///
    /// # Errors
    /// Returns I/O errors.
    pub fn fetch(&mut self, job: &str) -> std::io::Result<Value> {
        self.request(&serde_json::json!({ "op": "fetch", "job": job }))
    }

    /// Cancels (or detaches from) a job.
    ///
    /// # Errors
    /// Returns I/O errors.
    pub fn cancel(&mut self, job: &str) -> std::io::Result<Value> {
        self.request(&serde_json::json!({ "op": "cancel", "job": job }))
    }

    /// Server-wide stats.
    ///
    /// # Errors
    /// Returns I/O errors.
    pub fn stats(&mut self) -> std::io::Result<Value> {
        self.request(&serde_json::json!({ "op": "stats" }))
    }

    /// A job's correlated span tree (protocol v2 `trace` op).
    ///
    /// # Errors
    /// Returns I/O errors.
    pub fn trace(&mut self, job: &str) -> std::io::Result<Value> {
        self.request(&serde_json::json!({ "op": "trace", "job": job }))
    }

    /// The server's metrics in Prometheus text exposition format
    /// (protocol v2 `metrics` op): the multi-line exposition text is
    /// unwrapped from the response's `"body"` field.
    ///
    /// # Errors
    /// Returns I/O errors, or `InvalidData` when the response carries
    /// no body.
    pub fn metrics(&mut self) -> std::io::Result<String> {
        let v = self.request(&serde_json::json!({ "op": "metrics" }))?;
        match v.get("body") {
            Some(Value::String(s)) => Ok(s.clone()),
            _ => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "metrics response has no body",
            )),
        }
    }

    /// Requests graceful drain.
    ///
    /// # Errors
    /// Returns I/O errors.
    pub fn shutdown(&mut self) -> std::io::Result<Value> {
        self.request(&serde_json::json!({ "op": "shutdown" }))
    }
}

/// Whether a response is a success (`"ok": true`).
pub fn response_ok(v: &Value) -> bool {
    bool_field(v, "ok")
}

/// The `job` field of a response, if present.
pub fn response_job(v: &Value) -> Option<String> {
    str_of(v, "job")
}

/// A named counter out of a `stats` response's metrics snapshot.
pub fn stats_counter(stats: &Value, name: &str) -> u64 {
    let Some(Value::Array(counters)) = stats.get("metrics").and_then(|m| m.get("counters")) else {
        return 0;
    };
    for c in counters {
        if let (Some(Value::String(n)), Some(v)) = (c.get("name"), c.get("value")) {
            if n.as_str() == name {
                return match v {
                    Value::U64(x) => *x,
                    Value::I64(x) => *x as u64,
                    Value::F64(x) => *x as u64,
                    _ => 0,
                };
            }
        }
    }
    0
}

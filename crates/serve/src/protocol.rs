//! The wire protocol: line-delimited JSON, one request object per line,
//! one response object per line (except `wait`, which streams progress
//! event lines before its final response).
//!
//! ## Grammar
//!
//! ```text
//! request  = submit | status | wait | fetch | cancel | stats
//!          | trace | metrics | shutdown
//! submit   = {"op":"submit", "spec": <RunSpec JSON>, "tenant": <string>?}
//! status   = {"op":"status", "job": <job id>}
//! wait     = {"op":"wait",   "job": <job id>}
//! fetch    = {"op":"fetch",  "job": <job id>}
//! cancel   = {"op":"cancel", "job": <job id>}
//! stats    = {"op":"stats"}
//! trace    = {"op":"trace",  "job": <job id>}
//! metrics  = {"op":"metrics"}
//! shutdown = {"op":"shutdown"}
//! ```
//!
//! `trace` (protocol v2) returns the job's span tree — the correlated
//! trace minted at submit ([`mint_trace`]) and threaded through the
//! scheduler, executor, and engine — with per-phase duration rollups.
//! `metrics` (protocol v2) returns the server's registry rendered in
//! Prometheus text exposition format 0.0.4; because the protocol is
//! line-delimited JSON, the multi-line exposition text rides in the
//! response's `"body"` field with `"content_type"` alongside.
//!
//! A job id is the spec's [`photon_bench::journal_key`] rendered as 16
//! hex digits — identical submissions share one id by construction,
//! which is what makes coalescing visible to clients.
//!
//! Responses carry `"ok": true` plus op-specific fields, or
//! `"ok": false` with `"code"` (HTTP-flavored: 400 bad request, 404
//! unknown job, 409 not cancellable, 429 queue full, 503 draining) and
//! `"error"`. A 429 includes `"retry_after_ms"`, the server's estimate
//! of when the queue will have room.
//!
//! `spec` accepts a [`RunSpec`]'s serde JSON rendering verbatim — the
//! same text `serde_json::to_string(&spec)` produces.

use gpu_telemetry::span::{self, TraceCtx};
use photon_bench::RunSpec;
use serde::Deserialize;
use serde_json::Value;

/// Version stamped into `stats` responses and the pending-jobs journal;
/// bumped when the wire format changes incompatibly. v2 added the
/// `trace` and `metrics` ops.
pub const PROTOCOL_VERSION: u32 = 2;

/// One parsed request line.
#[derive(Debug, Clone)]
pub enum Request {
    /// Enqueue (or join) a job.
    Submit {
        /// What to simulate (boxed: specs dwarf every other variant).
        spec: Box<RunSpec>,
        /// Accounting bucket for per-tenant counters (default `"anon"`).
        tenant: String,
    },
    /// One-shot state + progress-counter snapshot.
    Status {
        /// Job id from a `submit` response.
        job: u64,
    },
    /// Stream progress events until the job reaches a terminal state.
    Wait {
        /// Job id from a `submit` response.
        job: u64,
    },
    /// The completed job's report.
    Fetch {
        /// Job id from a `submit` response.
        job: u64,
    },
    /// Remove a queued job (or detach one subscriber from it).
    Cancel {
        /// Job id from a `submit` response.
        job: u64,
    },
    /// Server-wide counters, gauges, and queue depths.
    Stats,
    /// The job's correlated span tree with per-phase durations.
    Trace {
        /// Job id from a `submit` response.
        job: u64,
    },
    /// The metrics registry in Prometheus text exposition format.
    Metrics,
    /// Graceful drain: finish in-flight jobs, journal queued ones, exit.
    Shutdown,
}

/// Mints the trace context for a job at submit time: the root `job`
/// span, keyed by the wire job id (= journal key), so every span the
/// scheduler, executor, and engine emit downstream correlates back to
/// the id the client holds.
pub fn mint_trace(key: u64, label: &str) -> TraceCtx {
    span::start_job(key, label)
}

/// Renders a job key as the wire job id (16 hex digits).
pub fn job_id(key: u64) -> String {
    format!("{key:016x}")
}

/// Parses a wire job id back into its key.
pub fn parse_job_id(s: &str) -> Option<u64> {
    u64::from_str_radix(s, 16).ok()
}

fn str_field(v: &Value, name: &str) -> Option<String> {
    match v.get(name) {
        Some(Value::String(s)) => Some(s.clone()),
        _ => None,
    }
}

fn job_field(v: &Value) -> Result<u64, String> {
    let s = str_field(v, "job").ok_or("missing string field \"job\"")?;
    parse_job_id(&s).ok_or_else(|| format!("bad job id {s:?} (expected 16 hex digits)"))
}

/// Parses one request line.
///
/// # Errors
/// Returns a human-readable description of what is malformed — the
/// server sends it back as a 400 response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v: Value = serde_json::from_str(line).map_err(|e| format!("bad JSON: {e}"))?;
    let op = str_field(&v, "op").ok_or("missing string field \"op\"")?;
    match op.as_str() {
        "submit" => {
            let spec_value = v.get("spec").ok_or("submit: missing field \"spec\"")?;
            let spec =
                RunSpec::deserialize(spec_value).map_err(|e| format!("submit: bad spec: {e}"))?;
            let tenant = str_field(&v, "tenant").unwrap_or_else(|| "anon".to_string());
            Ok(Request::Submit {
                spec: Box::new(spec),
                tenant,
            })
        }
        "status" => Ok(Request::Status {
            job: job_field(&v)?,
        }),
        "wait" => Ok(Request::Wait {
            job: job_field(&v)?,
        }),
        "fetch" => Ok(Request::Fetch {
            job: job_field(&v)?,
        }),
        "cancel" => Ok(Request::Cancel {
            job: job_field(&v)?,
        }),
        "stats" => Ok(Request::Stats),
        "trace" => Ok(Request::Trace {
            job: job_field(&v)?,
        }),
        "metrics" => Ok(Request::Metrics),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown op {other:?}")),
    }
}

/// Builds an error response value.
pub fn error_response(code: u32, error: &str) -> Value {
    serde_json::json!({
        "ok": false,
        "code": code,
        "error": error,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::GpuConfig;
    use gpu_workloads::registry::Benchmark;
    use photon_bench::Method;

    #[test]
    fn submit_round_trips_a_spec() {
        let spec = RunSpec::bench(GpuConfig::tiny(), Benchmark::Fir, 64, Method::Full);
        let line = format!(
            "{{\"op\":\"submit\",\"spec\":{},\"tenant\":\"t1\"}}",
            serde_json::to_string(&spec).unwrap()
        );
        match parse_request(&line).unwrap() {
            Request::Submit {
                spec: parsed,
                tenant,
            } => {
                assert_eq!(*parsed, spec);
                assert_eq!(tenant, "t1");
            }
            other => panic!("parsed {other:?}"),
        }
    }

    #[test]
    fn job_ops_parse_hex_ids() {
        let line = format!("{{\"op\":\"fetch\",\"job\":\"{}\"}}", job_id(0xabcdef));
        match parse_request(&line).unwrap() {
            Request::Fetch { job } => assert_eq!(job, 0xabcdef),
            other => panic!("parsed {other:?}"),
        }
        assert_eq!(parse_job_id(&job_id(u64::MAX)), Some(u64::MAX));
    }

    #[test]
    fn v2_ops_parse() {
        let line = format!("{{\"op\":\"trace\",\"job\":\"{}\"}}", job_id(0x1234));
        match parse_request(&line).unwrap() {
            Request::Trace { job } => assert_eq!(job, 0x1234),
            other => panic!("parsed {other:?}"),
        }
        assert!(matches!(
            parse_request("{\"op\":\"metrics\"}").unwrap(),
            Request::Metrics
        ));
        assert!(parse_request("{\"op\":\"trace\"}").is_err());
    }

    #[test]
    fn malformed_requests_are_rejected_with_reasons() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request("{\"op\":\"teleport\"}").is_err());
        assert!(parse_request("{\"op\":\"fetch\"}").is_err());
        assert!(parse_request("{\"op\":\"fetch\",\"job\":\"zz\"}").is_err());
        assert!(parse_request("{\"op\":\"submit\"}").is_err());
        assert!(parse_request("{\"op\":\"submit\",\"spec\":{\"bogus\":1}}").is_err());
    }
}

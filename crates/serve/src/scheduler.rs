//! The job scheduler behind `photon-serve`: a bounded two-lane
//! admission queue over a pool of simulation worker threads, with
//! submit-time coalescing, an LRU-bounded result store, cancellation,
//! and graceful drain/resume.
//!
//! ## Single-flight state machine
//!
//! A job is keyed by its spec's [`photon_bench::journal_key`], so every
//! identical submission resolves to the *same* job id:
//!
//! ```text
//!             submit(spec)
//!                  │
//!        ┌─────────┴──────────────────────────────┐
//!        │ id already live?                       │ id unknown?
//!        ▼                                        ▼
//!   Queued/Running ──► join (subscribers+1,   result store hit ──► Done
//!        │              "coalesced")          else admission check:
//!        │                                    queue full ──► 429
//!        │                                    draining   ──► 503
//!        │                                    else enqueue ──► Queued
//!        ▼
//!   worker dequeues (interactive lane first) ──► Running
//!        │   result-store single-flight: Full methods additionally
//!        │   go through RefCache::get_or_compute_full, so the
//!        │   reference is computed once even across restarts
//!        ▼
//!      Done (result cached iff replayable) / Cancelled
//! ```
//!
//! Cancelling a queued job removes it from its lane before any worker
//! dequeues it (`exec.cancelled`); with several subscribers, a cancel
//! detaches one and the job keeps running for the rest.
//!
//! ## Drain / resume
//!
//! [`Scheduler::begin_drain`] stops dequeueing; workers finish their
//! in-flight jobs and exit. [`Scheduler::drain_pending_to`] writes every
//! still-queued spec to a crc-framed pending-jobs journal (the same
//! line format as the run journal, via [`photon_bench::frame_line`]);
//! [`Scheduler::resume_pending_from`] re-enqueues them on the next
//! start, so a SIGTERM'd server loses no accepted work.

use crate::protocol::{job_id, mint_trace, PROTOCOL_VERSION};
use gpu_telemetry::span::{self, SpanKind, TraceCtx};
use gpu_telemetry::{MetricsSnapshot, Telemetry};
use photon_bench::flightrec::{self, Trigger};
use photon_bench::harness::RunOutcome;
use photon_bench::journal::journalable;
use photon_bench::refcache::measurement_bytes;
use photon_bench::{
    frame_line, journal_key, parse_framed_line, reference_key, run_spec_observed, ExecOptions,
    Method, RefCache, RunSpec, ShardedStore,
};
use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::collections::{HashMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// How a scheduler runs: worker count, admission bound, executor
/// options for the simulations themselves, and store budgets.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Simulation worker threads.
    pub workers: usize,
    /// Admission bound: queued jobs (both lanes combined) beyond this
    /// are rejected with a 429 + `retry_after_ms` hint.
    pub queue_capacity: usize,
    /// Per-simulation options (timeout, retries, reference-cache
    /// policy). The run journal is unused here — the server has its own
    /// pending-jobs journal.
    pub exec: ExecOptions,
    /// In-memory result-store byte budget (all methods, keyed by job
    /// id; LRU-bounded like the reference cache).
    pub result_budget: u64,
    /// Flight-recorder dump directory. When set, a job that fails,
    /// absorbs a failed span (e.g. a retried fault), or lands past the
    /// live p99 latency dumps its span trail and metrics to
    /// `<dir>/<job_id>.json` (checksum-framed). `None` disables dumps;
    /// the span rings stay on regardless.
    pub flightrec: Option<PathBuf>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: 2,
            queue_capacity: 64,
            exec: ExecOptions {
                journal: None,
                resume: false,
                ..ExecOptions::default()
            },
            result_budget: 64 * 1024 * 1024,
            flightrec: None,
        }
    }
}

/// Minimum completed-latency observations before the p99 trigger arms:
/// with fewer samples the "p99" is noise and every other job would dump.
const P99_MIN_SAMPLES: u64 = 20;

/// Where a job stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Accepted, waiting in a lane.
    Queued,
    /// A worker is simulating it.
    Running,
    /// Finished (result available via `fetch`).
    Done,
    /// Removed from the queue before any worker picked it up.
    Cancelled,
}

impl Phase {
    /// Wire rendering.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Queued => "queued",
            Phase::Running => "running",
            Phase::Done => "done",
            Phase::Cancelled => "cancelled",
        }
    }

    /// Whether the job will make no further transitions.
    pub fn terminal(self) -> bool {
        matches!(self, Phase::Done | Phase::Cancelled)
    }
}

/// A completed job's answer, shared by every subscriber.
#[derive(Debug)]
pub struct JobResult {
    /// Measurement or structured skip.
    pub outcome: RunOutcome,
    /// The run's metrics snapshot (empty for cache-served results).
    pub metrics: MetricsSnapshot,
    /// `"executed"`, `"refcache"`, or `"store"` — where the answer came
    /// from.
    pub origin: &'static str,
    /// Wall-clock seconds the job spent from dequeue to completion.
    pub wall_secs: f64,
}

struct Job {
    spec: RunSpec,
    tenant: String,
    phase: Phase,
    /// Live submissions attached to this job; a cancel detaches one.
    subscribers: usize,
    /// Per-job live registry: the running simulation writes `sim.*`
    /// counters here and `status`/`wait` read them concurrently.
    progress: Telemetry,
    result: Option<Arc<JobResult>>,
    /// Trace context minted at submit: the root `job` span every
    /// downstream span (queued, sim, epoch-barrier, ...) hangs off.
    ctx: TraceCtx,
    /// The open `queued` span's id (0 once closed at dequeue).
    queued_span: u64,
    /// When the job entered its lane — `serve.queued_ms` and the
    /// `stats` jobs view measure from here.
    queued_at: Instant,
}

/// How many terminal (Done/Cancelled) jobs the `jobs` map retains.
/// Beyond this the oldest are dropped: their cacheable results stay
/// fetchable from the LRU-budgeted results store, so the map stays
/// bounded on a long-running server instead of accumulating one entry
/// per unique spec forever.
const MAX_TERMINAL_JOBS: usize = 256;

struct State {
    jobs: HashMap<u64, Job>,
    interactive: VecDeque<u64>,
    batch: VecDeque<u64>,
    running: usize,
    /// Terminal job ids in completion order; the pruning ring for
    /// [`MAX_TERMINAL_JOBS`].
    terminal: VecDeque<u64>,
}

impl State {
    fn queued(&self) -> usize {
        self.interactive.len() + self.batch.len()
    }

    /// Records that `id` reached a terminal phase and evicts the oldest
    /// terminal entries past the retention bound. An evicted id that
    /// has since been resubmitted (and so is live again) is left alone.
    fn note_terminal(&mut self, id: u64) {
        self.terminal.push_back(id);
        while self.terminal.len() > MAX_TERMINAL_JOBS {
            let Some(old) = self.terminal.pop_front() else {
                break;
            };
            if self.jobs.get(&old).is_some_and(|job| job.phase.terminal()) {
                self.jobs.remove(&old);
            }
        }
    }
}

/// What `submit` decided.
#[derive(Debug, Clone)]
pub enum Submitted {
    /// Newly enqueued (`lane` is `"interactive"` or `"batch"`).
    Queued {
        /// The job's id (= journal key).
        id: u64,
        /// Which lane it waits in.
        lane: &'static str,
    },
    /// Joined a live identical job.
    Coalesced {
        /// The shared job's id.
        id: u64,
        /// That job's current phase.
        phase: Phase,
    },
    /// Answered instantly from the result store / finished job table.
    Cached {
        /// The finished job's id.
        id: u64,
    },
    /// Admission control refused it (queue full): retry later.
    Rejected {
        /// Suggested client back-off in milliseconds.
        retry_after_ms: u64,
    },
    /// The server is draining and accepts no new work.
    Draining,
}

/// One `status` snapshot.
#[derive(Debug, Clone)]
pub struct StatusView {
    /// The job's phase at snapshot time.
    pub phase: Phase,
    /// `workload/method` label.
    pub label: String,
    /// Live `sim.*` progress counters (empty before the run starts).
    pub progress: Vec<(String, u64)>,
}

/// A pending-jobs journal line: everything needed to re-enqueue a
/// drained job on restart.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct PendingEntry {
    /// Must equal [`PROTOCOL_VERSION`] to be resumed.
    schema_version: u32,
    /// The drained spec.
    spec: RunSpec,
    /// Its accounting tenant.
    tenant: String,
}

/// The scheduler. Connection handlers call `submit`/`status`/`fetch`/
/// `cancel`/`stats` concurrently; worker threads loop in
/// [`Scheduler::worker_loop`].
pub struct Scheduler {
    state: Mutex<State>,
    /// Signals workers that a job was enqueued (or drain began).
    work_cv: Condvar,
    /// Signals waiters that some job changed phase.
    done_cv: Condvar,
    /// Completed results by job id, LRU-bounded; what makes a warm
    /// resubmission of *any* method instant.
    results: ShardedStore<Arc<JobResult>>,
    /// The full-detailed reference cache (shared semantics with the
    /// batch executor, including disk persistence when enabled).
    cache: RefCache,
    telemetry: Telemetry,
    opts: ServeOptions,
    draining: AtomicBool,
}

impl Scheduler {
    /// A scheduler with `opts`; spawn its workers with
    /// [`Scheduler::worker_loop`] (the server does this).
    pub fn new(opts: ServeOptions) -> Scheduler {
        let cache = if opts.exec.cache {
            RefCache::persistent(
                opts.exec
                    .cache_dir
                    .clone()
                    .unwrap_or_else(RefCache::default_dir),
            )
        } else {
            RefCache::memory_only()
        };
        Scheduler {
            state: Mutex::new(State {
                jobs: HashMap::new(),
                interactive: VecDeque::new(),
                batch: VecDeque::new(),
                running: 0,
                terminal: VecDeque::new(),
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            results: ShardedStore::new(16, opts.result_budget),
            cache,
            telemetry: Telemetry::default(),
            opts,
            draining: AtomicBool::new(false),
        }
    }

    /// The server-wide metrics registry (`serve.*`, `exec.cancelled`,
    /// per-tenant counters).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    fn lock_state(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn lane_of(method: &Method) -> &'static str {
        if *method == Method::Full {
            "batch"
        } else {
            "interactive"
        }
    }

    /// Submits a spec on behalf of `tenant`. See the module docs for
    /// the full decision diagram.
    pub fn submit(&self, spec: RunSpec, tenant: &str) -> Submitted {
        let id = journal_key(&spec);
        if self.draining.load(Ordering::SeqCst) {
            self.telemetry.counter("serve.rejected").add(1);
            self.tenant_counter(tenant, "rejected");
            return Submitted::Draining;
        }
        let mut state = self.lock_state();
        if let Some(job) = state.jobs.get_mut(&id) {
            match job.phase {
                Phase::Done => {
                    self.telemetry.counter("serve.cache_hits").add(1);
                    self.tenant_counter(tenant, "submitted");
                    return Submitted::Cached { id };
                }
                Phase::Queued | Phase::Running => {
                    job.subscribers += 1;
                    let phase = job.phase;
                    span::emit(job.ctx, SpanKind::Coalesced, tenant, true, phase.name());
                    self.telemetry.counter("serve.coalesced").add(1);
                    self.tenant_counter(tenant, "submitted");
                    return Submitted::Coalesced { id, phase };
                }
                Phase::Cancelled => {
                    // A cancelled job can be resubmitted: fall through to
                    // re-enqueue it below.
                }
            }
        }
        if let Some(result) = self.results.get(id) {
            // Known answer from an earlier (possibly evicted-from-jobs)
            // submission: materialize a Done job so fetch/status work.
            let ctx = mint_trace(id, &spec.label());
            span::emit(
                ctx,
                SpanKind::CacheProbe,
                &spec.workload.name(),
                true,
                "store-hit",
            );
            span::close(ctx.span, true, "cache-hit");
            state.jobs.insert(
                id,
                Job {
                    spec,
                    tenant: tenant.to_string(),
                    phase: Phase::Done,
                    subscribers: 1,
                    progress: Telemetry::default(),
                    result: Some(result),
                    ctx,
                    queued_span: 0,
                    queued_at: Instant::now(),
                },
            );
            state.note_terminal(id);
            self.telemetry.counter("serve.cache_hits").add(1);
            self.tenant_counter(tenant, "submitted");
            return Submitted::Cached { id };
        }
        if state.queued() >= self.opts.queue_capacity {
            self.telemetry.counter("serve.rejected").add(1);
            self.tenant_counter(tenant, "rejected");
            return Submitted::Rejected {
                retry_after_ms: self.retry_after_ms(&state),
            };
        }
        let lane = Self::lane_of(&spec.method);
        if lane == "interactive" {
            state.interactive.push_back(id);
        } else {
            state.batch.push_back(id);
        }
        let ctx = mint_trace(id, &spec.label());
        let queued = span::open(ctx, SpanKind::Queued, lane);
        state.jobs.insert(
            id,
            Job {
                spec,
                tenant: tenant.to_string(),
                phase: Phase::Queued,
                subscribers: 1,
                progress: Telemetry::default(),
                result: None,
                ctx,
                queued_span: queued.span,
                queued_at: Instant::now(),
            },
        );
        self.telemetry.counter("serve.submitted").add(1);
        self.tenant_counter(tenant, "submitted");
        drop(state);
        self.work_cv.notify_one();
        Submitted::Queued { id, lane }
    }

    /// The 429 `Retry-After` hint: the queue drains at roughly
    /// (workers / per-job wall time); estimate per-job time from the
    /// completed average (floor 10 ms so an idle estimate never says
    /// "now" while the queue is provably full).
    fn retry_after_ms(&self, state: &State) -> u64 {
        let snapshot = self.telemetry.snapshot();
        let completed = snapshot.counter("serve.completed").unwrap_or(0);
        let busy_ms = snapshot.counter("serve.busy_ms").unwrap_or(0);
        let per_job_ms = busy_ms
            .checked_div(completed)
            .map_or(100, |avg| avg.max(10));
        let ahead = (state.queued() + state.running) as u64;
        (ahead * per_job_ms / self.opts.workers.max(1) as u64).max(10)
    }

    fn tenant_counter(&self, tenant: &str, what: &str) {
        self.telemetry
            .counter(&format!("serve.tenant.{tenant}.{what}"))
            .add(1);
    }

    /// One job's phase + live progress counters.
    pub fn status(&self, id: u64) -> Option<StatusView> {
        let state = self.lock_state();
        let job = state.jobs.get(&id)?;
        Some(StatusView {
            phase: job.phase,
            label: job.spec.label(),
            progress: job.progress.snapshot().counters_with_prefix("sim."),
        })
    }

    /// Blocks until `id` reaches a terminal phase or `step` elapses;
    /// returns the phase either way (`None`: unknown job). `wait`
    /// handlers call this in a loop, emitting a progress event per
    /// wake-up.
    pub fn wait_step(&self, id: u64, step: Duration) -> Option<Phase> {
        let deadline = Instant::now() + step;
        let mut state = self.lock_state();
        loop {
            let phase = state.jobs.get(&id)?.phase;
            if phase.terminal() {
                return Some(phase);
            }
            let now = Instant::now();
            if now >= deadline {
                return Some(phase);
            }
            let (s, _timeout) = self
                .done_cv
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            state = s;
        }
    }

    /// The completed result of `id`, if it is done.
    pub fn fetch(&self, id: u64) -> Option<Arc<JobResult>> {
        let state = self.lock_state();
        match state.jobs.get(&id) {
            Some(job) => job.result.clone(),
            None => self.results.get(id),
        }
    }

    /// Cancels one subscription to `id`. Only a queued job with no
    /// remaining subscribers is removed from its lane (counted in
    /// `exec.cancelled` — before any worker can dequeue it); a running
    /// or finished job reports `false`.
    pub fn cancel(&self, id: u64) -> Option<bool> {
        let mut state = self.lock_state();
        let job = state.jobs.get_mut(&id)?;
        if job.phase != Phase::Queued {
            return Some(false);
        }
        job.subscribers = job.subscribers.saturating_sub(1);
        if job.subscribers > 0 {
            return Some(false);
        }
        job.phase = Phase::Cancelled;
        span::close(job.queued_span, false, "cancelled");
        span::close(job.ctx.span, false, "cancelled");
        state.interactive.retain(|&q| q != id);
        state.batch.retain(|&q| q != id);
        state.note_terminal(id);
        self.telemetry.counter("exec.cancelled").add(1);
        self.telemetry.counter("serve.cancelled").add(1);
        drop(state);
        self.done_cv.notify_all();
        Some(true)
    }

    /// The worker thread body: dequeue (interactive lane first), run,
    /// publish, repeat — until drain begins and the queues stop feeding.
    pub fn worker_loop(&self) {
        loop {
            let (id, spec, progress, ctx) = {
                let mut state = self.lock_state();
                let id = loop {
                    if self.draining.load(Ordering::SeqCst) {
                        return;
                    }
                    // Interactive sampled methods preempt queued batch
                    // Full runs at dequeue time.
                    if let Some(id) = state
                        .interactive
                        .pop_front()
                        .or_else(|| state.batch.pop_front())
                    {
                        break id;
                    }
                    let (s, _t) = self
                        .work_cv
                        .wait_timeout(state, Duration::from_millis(100))
                        .unwrap_or_else(|e| e.into_inner());
                    state = s;
                };
                let Some(job) = state.jobs.get_mut(&id) else {
                    continue;
                };
                job.phase = Phase::Running;
                let queued_ms = job.queued_at.elapsed().as_millis() as u64;
                span::close(job.queued_span, true, "");
                job.queued_span = 0;
                self.telemetry
                    .histogram("serve.queued_ms")
                    .record(queued_ms);
                let claimed = (id, job.spec.clone(), job.progress.clone(), job.ctx);
                state.running += 1;
                claimed
            };
            self.done_cv.notify_all();

            let started = Instant::now();
            // Enter the job's trace context on this worker thread so
            // every span the executor and engine emit (sim, persist,
            // epoch-barrier, mem-service) attaches to this job.
            let result = {
                let _scope = span::enter(ctx);
                self.run_job(id, &spec, &progress, ctx)
            };

            let mut state = self.lock_state();
            state.running -= 1;
            if let Some(job) = state.jobs.get_mut(&id) {
                job.phase = Phase::Done;
                job.result = Some(Arc::clone(&result));
                let tenant = job.tenant.clone();
                let ok = result.outcome.measurement().is_some();
                state.note_terminal(id);
                drop(state);
                self.telemetry
                    .counter(if ok {
                        "serve.completed"
                    } else {
                        "serve.failed"
                    })
                    .add(1);
                self.telemetry
                    .counter("serve.busy_ms")
                    .add(started.elapsed().as_millis() as u64);
                self.tenant_counter(&tenant, "completed");
                self.finish_trace(id, &spec, ctx, &result, started);
            }
            self.done_cv.notify_all();
        }
    }

    /// Terminal trace bookkeeping for one finished job: closes the root
    /// span, records the latency histogram, mirrors the run's engine
    /// shard/imbalance telemetry into the server registry (so
    /// `photon-top` can show the most recent run's shard balance), and
    /// evaluates the flight-recorder triggers.
    fn finish_trace(
        &self,
        id: u64,
        spec: &RunSpec,
        ctx: TraceCtx,
        result: &JobResult,
        started: Instant,
    ) {
        let ok = result.outcome.measurement().is_some();
        let fail_reason = match &result.outcome {
            RunOutcome::Skipped { reason, .. } => reason.clone(),
            RunOutcome::Completed(_) => String::new(),
        };
        span::close(ctx.span, ok, &fail_reason);

        // The p99 the trigger compares against is the distribution
        // *before* this observation — a job cannot dodge the trigger by
        // dragging its own tail bucket up.
        let wall_ms = started.elapsed().as_millis() as u64;
        let snap = self.telemetry.snapshot();
        let (p99_ms, samples) = snap
            .histograms
            .iter()
            .find(|h| h.name == "serve.latency_ms")
            .map(|h| (h.p99, h.count))
            .unwrap_or((0, 0));
        self.telemetry.histogram("serve.latency_ms").record(wall_ms);

        for (name, v) in result.metrics.counters_with_prefix("engine.shard.") {
            self.telemetry.gauge(&name).set(v as f64);
        }
        if let Some(g) = result
            .metrics
            .gauges
            .iter()
            .find(|g| g.name == "engine.epoch.imbalance")
        {
            self.telemetry.gauge("engine.epoch.imbalance").set(g.value);
        }

        let Some(dir) = &self.opts.flightrec else {
            return;
        };
        let spans = span::job_records(id);
        let trigger = if !ok {
            Some((Trigger::JobFailed, fail_reason))
        } else if let Some(bad) = spans.iter().find(|s| !s.open && !s.ok) {
            Some((Trigger::SpanFailed, bad.detail.clone()))
        } else if samples >= P99_MIN_SAMPLES && wall_ms > p99_ms {
            Some((
                Trigger::P99Latency,
                format!("wall {wall_ms} ms > p99 {p99_ms} ms over {samples} jobs"),
            ))
        } else {
            None
        };
        let Some((trigger, detail)) = trigger else {
            return;
        };
        let rec = flightrec::assemble(
            id,
            &spec.label(),
            trigger,
            &detail,
            result.wall_secs,
            &spans,
            result.metrics.clone(),
        );
        match flightrec::dump(dir, &rec) {
            Ok(path) => {
                self.telemetry.counter("serve.flightrec_dumps").add(1);
                eprintln!(
                    "photon-serve: flight record ({}) {}",
                    rec.trigger,
                    path.display()
                );
            }
            Err(e) => {
                self.telemetry.counter("serve.flightrec_errors").add(1);
                eprintln!("photon-serve: flight-record dump failed: {e}");
            }
        }
    }

    /// Resolves one job: result-store single-flight, with `Full`
    /// methods additionally memoized through the reference cache.
    /// Results are cached only when replaying them would be
    /// indistinguishable from re-running (same rule as the run
    /// journal); a transient failure answers its subscribers but the
    /// next submission re-simulates.
    /// Runs one simulation for `spec`, counting it in `serve.sim_runs`
    /// and mirroring any transient-failure retries into the server-wide
    /// `exec.retried` counter (the per-job `progress` registry records
    /// them too, but jobs are transient and `stats` is not).
    fn simulate(&self, spec: &RunSpec, progress: &Telemetry) -> (RunOutcome, MetricsSnapshot) {
        self.telemetry.counter("serve.sim_runs").add(1);
        let (outcome, metrics, _trace) = run_spec_observed(spec, &self.opts.exec, Some(progress));
        if let Some(retries) = metrics.counter("exec.retried") {
            self.telemetry.counter("exec.retried").add(retries);
        }
        (outcome, metrics)
    }

    fn run_job(
        &self,
        id: u64,
        spec: &RunSpec,
        progress: &Telemetry,
        ctx: TraceCtx,
    ) -> Arc<JobResult> {
        let started = Instant::now();
        // The result-store probe: closed "miss" the moment the compute
        // closure is entered, "store-hit" if single-flight answered
        // without computing (this thread coalesced onto a stored value).
        let probe = span::open(ctx, SpanKind::CacheProbe, &spec.workload.name());
        let mut probed_miss = false;
        let (result, _origin) = self.results.get_or_compute(id, || {
            probed_miss = true;
            span::close(probe.span, true, "miss");
            let jr = if spec.method == Method::Full {
                let key = reference_key(spec);
                let mut led: Option<(RunOutcome, MetricsSnapshot)> = None;
                let (m, _o) = self
                    .cache
                    .get_or_compute_full(key, &spec.workload.name(), || {
                        let (outcome, metrics) = self.simulate(spec, progress);
                        let meas = outcome.measurement().cloned();
                        led = Some((outcome, metrics));
                        meas
                    });
                match (led, m) {
                    (Some((outcome, metrics)), _) => JobResult {
                        outcome,
                        metrics,
                        origin: "executed",
                        wall_secs: started.elapsed().as_secs_f64(),
                    },
                    (None, Some(m)) => {
                        span::emit(
                            ctx,
                            SpanKind::CacheProbe,
                            &spec.workload.name(),
                            true,
                            "refcache-hit",
                        );
                        JobResult {
                            outcome: RunOutcome::Completed(m),
                            metrics: MetricsSnapshot::default(),
                            origin: "refcache",
                            wall_secs: started.elapsed().as_secs_f64(),
                        }
                    }
                    (None, None) => {
                        // Coalesced onto a failing leader elsewhere:
                        // run it first-hand.
                        let (outcome, metrics) = self.simulate(spec, progress);
                        JobResult {
                            outcome,
                            metrics,
                            origin: "executed",
                            wall_secs: started.elapsed().as_secs_f64(),
                        }
                    }
                }
            } else {
                let (outcome, metrics) = self.simulate(spec, progress);
                JobResult {
                    outcome,
                    metrics,
                    origin: "executed",
                    wall_secs: started.elapsed().as_secs_f64(),
                }
            };
            let cacheable = journalable(&jr.outcome);
            let bytes = jr
                .outcome
                .measurement()
                .map(measurement_bytes)
                .unwrap_or(256);
            (Some(Arc::new(jr)), bytes, cacheable)
        });
        if !probed_miss {
            span::close(probe.span, true, "store-hit");
        }
        result.unwrap_or_else(|| {
            // Unreachable in practice: the compute above always returns
            // Some. Degrade to a structured failure rather than panic.
            Arc::new(JobResult {
                outcome: RunOutcome::Skipped {
                    workload: spec.workload.name(),
                    method: spec.method.name(),
                    reason: "internal: result store returned no value".to_string(),
                    error: None,
                    failure: photon_bench::FailureKind::Transient,
                },
                metrics: MetricsSnapshot::default(),
                origin: "executed",
                wall_secs: started.elapsed().as_secs_f64(),
            })
        })
    }

    /// Stops dequeueing: workers finish their in-flight jobs and their
    /// loops return. New submissions are answered with 503.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        // Wake every parked worker so it observes the flag.
        let _state = self.lock_state();
        self.work_cv.notify_all();
    }

    /// Whether [`begin_drain`](Self::begin_drain) has been called.
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Blocks until no job is running (drain must have begun, or this
    /// can wait forever).
    pub fn await_idle(&self) {
        let mut state = self.lock_state();
        while state.running > 0 {
            let (s, _t) = self
                .done_cv
                .wait_timeout(state, Duration::from_millis(100))
                .unwrap_or_else(|e| e.into_inner());
            state = s;
        }
    }

    /// Journals every still-queued job to `path` (crc-framed lines,
    /// written atomically) and returns how many were drained. Call
    /// after [`await_idle`](Self::await_idle).
    pub fn drain_pending_to(&self, path: &Path) -> std::io::Result<usize> {
        let state = self.lock_state();
        let mut lines = String::new();
        let mut n = 0;
        for id in state.interactive.iter().chain(state.batch.iter()) {
            let Some(job) = state.jobs.get(id) else {
                continue;
            };
            let entry = PendingEntry {
                schema_version: PROTOCOL_VERSION,
                spec: job.spec.clone(),
                tenant: job.tenant.clone(),
            };
            let json =
                serde_json::to_string(&entry).map_err(|e| std::io::Error::other(e.to_string()))?;
            lines.push_str(&frame_line(&json));
            n += 1;
        }
        drop(state);
        if n == 0 {
            // Nothing pending: remove any stale journal so the next
            // start does not resume ghosts.
            let _ = std::fs::remove_file(path);
            return Ok(0);
        }
        photon_bench::atomic_write(path, &lines)?;
        self.telemetry.counter("serve.drained_jobs").add(n as u64);
        Ok(n)
    }

    /// Re-enqueues jobs journaled by a previous server's drain, then
    /// removes the journal. Torn or corrupt lines are skipped (counted
    /// in the return). Call before accepting connections.
    pub fn resume_pending_from(&self, path: &Path) -> (usize, usize) {
        let Ok(text) = std::fs::read_to_string(path) else {
            return (0, 0);
        };
        let mut resumed = 0;
        let mut corrupt = 0;
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let entry = parse_framed_line(line)
                .and_then(|v: Value| PendingEntry::deserialize(&v).ok())
                .filter(|e| e.schema_version == PROTOCOL_VERSION);
            match entry {
                Some(e) => {
                    self.submit(e.spec, &e.tenant);
                    resumed += 1;
                }
                None => corrupt += 1,
            }
        }
        let _ = std::fs::remove_file(path);
        self.telemetry
            .counter("serve.resumed_jobs")
            .add(resumed as u64);
        (resumed, corrupt)
    }

    /// The ids currently queued (interactive lane first) — drain
    /// reporting and tests.
    pub fn queued_ids(&self) -> Vec<u64> {
        let state = self.lock_state();
        state
            .interactive
            .iter()
            .chain(state.batch.iter())
            .copied()
            .collect()
    }

    /// The correlated span trail of one job, as `(spans, tree)`, or
    /// `None` when the job is unknown and no spans were ever recorded
    /// for its id.
    pub fn trace(&self, id: u64) -> Option<Value> {
        let records = span::job_records(id);
        let (label, state_name) = {
            let state = self.lock_state();
            match state.jobs.get(&id) {
                Some(job) => (Some(job.spec.label()), Some(job.phase.name())),
                None => (None, None),
            }
        };
        if records.is_empty() && label.is_none() {
            return None;
        }
        let tree = span::build_tree(id, &records);
        Some(serde_json::json!({
            "job": job_id(id),
            "label": label,
            "state": state_name,
            "phase": tree.current_phase().map(|s| s.kind.name()),
            "phases": tree.phases,
            "failed": tree.failed_spans().iter().map(|s| serde_json::json!({
                "kind": s.kind.name(),
                "label": s.label,
                "detail": s.detail,
            })).collect::<Vec<Value>>(),
            "spans": records,
            "tree": tree.roots,
        }))
    }

    /// Refreshes the live queue/worker gauges from scheduler state (the
    /// `stats` and `metrics` ops both call this before snapshotting).
    fn refresh_gauges(&self) -> (usize, usize, usize) {
        let (queued_i, queued_b, running) = {
            let state = self.lock_state();
            (state.interactive.len(), state.batch.len(), state.running)
        };
        self.telemetry
            .gauge("serve.queue.interactive")
            .set(queued_i as f64);
        self.telemetry
            .gauge("serve.queue.batch")
            .set(queued_b as f64);
        self.telemetry.gauge("serve.running").set(running as f64);
        (queued_i, queued_b, running)
    }

    /// The server registry rendered in Prometheus text exposition
    /// format 0.0.4 — the `metrics` op's body.
    pub fn metrics_text(&self) -> String {
        self.refresh_gauges();
        gpu_telemetry::export::prometheus_text(&self.telemetry.snapshot())
    }

    /// Server-wide stats: the metrics registry (counters incl.
    /// per-tenant, `serve.*`, `exec.cancelled`), live queue/worker
    /// gauges, the in-flight jobs with their current trace phase, and
    /// the result/reference store counters.
    pub fn stats(&self) -> Value {
        self.refresh_gauges();
        let jobs: Vec<Value> = {
            let state = self.lock_state();
            state
                .jobs
                .iter()
                .filter(|(_, j)| !j.phase.terminal())
                .map(|(id, j)| {
                    let recs = span::job_records(*id);
                    let tree = span::build_tree(*id, &recs);
                    serde_json::json!({
                        "job": job_id(*id),
                        "label": j.spec.label(),
                        "tenant": j.tenant,
                        "state": j.phase.name(),
                        "phase": tree
                            .current_phase()
                            .map(|s| s.kind.name())
                            .unwrap_or_else(|| j.phase.name()),
                        "age_ms": j.queued_at.elapsed().as_millis() as u64,
                    })
                })
                .collect()
        };
        let cache_stats = self.cache.stats();
        // Mirror the disk-eviction count into the registry (counters
        // are monotonic: add the delta since the last stats call).
        let evicted = self.telemetry.counter("refcache.evicted");
        let seen = evicted.get();
        if cache_stats.disk_evicted > seen {
            evicted.add(cache_stats.disk_evicted - seen);
        }
        // When fault injection is armed, surface per-site injection
        // counts so the chaos CI gate can prove panics actually fired.
        let faults_injected = Value::Object(
            gpu_telemetry::faults::FaultSite::ALL
                .iter()
                .filter(|site| gpu_telemetry::faults::injected(**site) > 0)
                .map(|site| {
                    (
                        site.name().to_string(),
                        Value::U64(gpu_telemetry::faults::injected(*site)),
                    )
                })
                .collect(),
        );
        serde_json::json!({
            "protocol_version": PROTOCOL_VERSION,
            "workers": self.opts.workers,
            "queue_capacity": self.opts.queue_capacity,
            "draining": self.draining(),
            "faults_active": gpu_telemetry::faults::active(),
            "faults_injected": faults_injected,
            "jobs": jobs,
            "metrics": self.telemetry.snapshot(),
            "results_store": self.results.stats(),
            "refcache": cache_stats,
        })
    }
}

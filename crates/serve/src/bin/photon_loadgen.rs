//! `photon-loadgen` — closed-loop load generator for photon-serve.
//!
//! Drives N clients against a running server with a duplicate-heavy
//! spec mix (every client cycles the same three FIR specs, so identical
//! submissions collide constantly), in two phases per client count:
//! **cold** (empty caches: submissions lead or coalesce onto real
//! simulations) then **warm** (identical resubmissions: served from the
//! result store). Writes `results/BENCH_serve.json` with p50/p99
//! latency, jobs/sec, and cache-hit / coalesce rates per client count —
//! the scaling claim as a checkable artifact.
//!
//! ```console
//! $ photon-loadgen --addr 127.0.0.1:41723 --clients 4 --jobs-per-client 3 --check
//! ```
//!
//! `--check` exits nonzero unless every fetch succeeded, the coalesce
//! rate is positive, and the warm p50 is at least 10x below the cold
//! p50 — the CI serve gate runs exactly this.

use gpu_sim::GpuConfig;
use gpu_workloads::registry::Benchmark;
use photon::Levels;
use photon_bench::harness::write_json;
use photon_bench::{Method, RunSpec};
use photon_serve::client::{response_job, response_ok, stats_counter, Client};
use serde::Serialize;
use serde_json::Value;
use std::time::Instant;

/// The duplicate-heavy mix: three small FIR specs (one per lane
/// flavor). Small on purpose — cold latency is simulation-bound
/// (tens of ms), warm latency is store-bound (sub-ms), which is the
/// contrast the benchmark exists to measure. The warp count scales
/// with `clients` (more clients -> more cold work, keeping the cold
/// phase simulation-bound under contention) and is perturbed by `salt`
/// so each series point gets distinct specs — a later point's cold
/// phase must not hit caches warmed by an earlier one.
fn mix(clients: usize, salt: usize) -> Vec<RunSpec> {
    let gpu = GpuConfig::tiny();
    let w = (2048 * clients + 128 * salt) as u64;
    vec![
        RunSpec::bench(
            gpu.clone(),
            Benchmark::Fir,
            w,
            Method::Photon(Levels::all()),
        ),
        RunSpec::bench(gpu.clone(), Benchmark::Fir, w, Method::Full),
        RunSpec::bench(gpu, Benchmark::Fir, 2 * w, Method::Pka),
    ]
}

/// One phase's aggregate numbers.
#[derive(Debug, Clone, Default, Serialize)]
struct PhaseStats {
    /// Jobs completed in the phase.
    jobs: u64,
    /// Fetches that did not return a completed report.
    failed_fetches: u64,
    /// Median end-to-end latency (submit to final report), ms.
    p50_ms: f64,
    /// 99th-percentile latency, ms.
    p99_ms: f64,
    /// Phase throughput across all clients.
    jobs_per_sec: f64,
    /// Fraction of submissions answered instantly from a cache/store.
    cache_hit_rate: f64,
    /// Fraction of submissions that coalesced onto a live job.
    coalesce_rate: f64,
}

/// One client-count's cold + warm measurements.
#[derive(Debug, Clone, Serialize)]
struct SeriesPoint {
    /// Concurrent closed-loop clients.
    clients: usize,
    /// Jobs each client submitted per phase.
    jobs_per_client: usize,
    /// First pass: empty caches.
    cold: PhaseStats,
    /// Second pass: identical resubmissions.
    warm: PhaseStats,
}

/// The whole `results/BENCH_serve.json` artifact.
#[derive(Debug, Clone, Serialize)]
struct ServeBench {
    /// Artifact schema version.
    schema_version: u32,
    /// Server address driven.
    addr: String,
    /// One point per requested client count.
    series: Vec<SeriesPoint>,
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * q).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

struct PhaseCounters {
    submitted: u64,
    coalesced: u64,
    cache_hits: u64,
}

fn phase_counters(stats: &Value) -> PhaseCounters {
    PhaseCounters {
        submitted: stats_counter(stats, "serve.submitted")
            + stats_counter(stats, "serve.coalesced")
            + stats_counter(stats, "serve.cache_hits"),
        coalesced: stats_counter(stats, "serve.coalesced"),
        cache_hits: stats_counter(stats, "serve.cache_hits"),
    }
}

/// Runs one phase: `clients` threads, each submitting and awaiting
/// `jobs_per_client` jobs from the shared mix.
fn run_phase(
    addr: &str,
    clients: usize,
    jobs_per_client: usize,
    salt: usize,
) -> (PhaseStats, Vec<f64>) {
    let before = {
        let mut c = Client::connect(addr).expect("connecting for stats");
        c.stats().expect("stats request")
    };
    let started = Instant::now();
    let barrier = std::sync::Barrier::new(clients);
    let results: Vec<(Vec<f64>, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|ci| {
                let barrier = &barrier;
                scope.spawn(move || {
                    let mut latencies = Vec::new();
                    let mut failed = 0u64;
                    // Connect before the barrier: every thread must
                    // reach wait() or the others block forever, so a
                    // failed connect records its failures only after
                    // releasing the rendezvous.
                    let client = Client::connect(addr);
                    let specs = mix(clients, salt);
                    barrier.wait();
                    let mut client = match client {
                        Ok(c) => c,
                        Err(_) => return (latencies, jobs_per_client as u64),
                    };
                    for j in 0..jobs_per_client {
                        // Same cycle for every client: maximally
                        // duplicate-heavy.
                        let spec = &specs[j % specs.len()];
                        let t0 = Instant::now();
                        let ok = (|| -> std::io::Result<bool> {
                            let sub = client.submit(spec, &format!("client-{ci}"))?;
                            if !response_ok(&sub) {
                                return Ok(false);
                            }
                            let job = match response_job(&sub) {
                                Some(j) => j,
                                None => return Ok(false),
                            };
                            // A submit answered from cache is already
                            // done — waiting would only round-trip.
                            let done = matches!(
                                sub.get("state"),
                                Some(Value::String(s)) if s == "done"
                            );
                            if !done {
                                let fin = client.wait(&job)?;
                                if !response_ok(&fin) {
                                    return Ok(false);
                                }
                            }
                            let fetched = client.fetch(&job)?;
                            if std::env::var_os("PHOTON_LOADGEN_DEBUG").is_some() {
                                eprintln!(
                                    "debug: fetch response ~{} bytes",
                                    serde_json::to_string(&fetched)
                                        .map(|s| s.len())
                                        .unwrap_or(0)
                                );
                            }
                            Ok(response_ok(&fetched)
                                && matches!(
                                    fetched.get("report").and_then(|r| r.get("completed")),
                                    Some(Value::Bool(true))
                                ))
                        })()
                        .unwrap_or(false);
                        if !ok {
                            failed += 1;
                        }
                        latencies.push(t0.elapsed().as_secs_f64() * 1e3);
                    }
                    (latencies, failed)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = started.elapsed().as_secs_f64();
    let after = {
        let mut c = Client::connect(addr).expect("connecting for stats");
        c.stats().expect("stats request")
    };

    let mut latencies: Vec<f64> = Vec::new();
    let mut failed = 0u64;
    for (l, f) in results {
        latencies.extend(l);
        failed += f;
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let jobs = latencies.len() as u64;
    let (b, a) = (phase_counters(&before), phase_counters(&after));
    let submitted = a.submitted.saturating_sub(b.submitted).max(1);
    let stats = PhaseStats {
        jobs,
        failed_fetches: failed,
        p50_ms: percentile(&latencies, 0.50),
        p99_ms: percentile(&latencies, 0.99),
        jobs_per_sec: if wall > 0.0 { jobs as f64 / wall } else { 0.0 },
        cache_hit_rate: a.cache_hits.saturating_sub(b.cache_hits) as f64 / submitted as f64,
        coalesce_rate: a.coalesced.saturating_sub(b.coalesced) as f64 / submitted as f64,
    };
    (stats, latencies)
}

fn usage() -> &'static str {
    "usage: photon-loadgen --addr HOST:PORT [--clients N[,N...]] [--jobs-per-client N]\n\
     \x20                     [--out NAME] [--check]\n\
     \x20 --addr HOST:PORT     server to drive (required)\n\
     \x20 --clients LIST       comma-separated client counts (default 4)\n\
     \x20 --jobs-per-client N  closed-loop jobs per client per phase (default 3)\n\
     \x20 --out NAME           artifact name (default BENCH_serve -> results/BENCH_serve.json)\n\
     \x20 --check              exit nonzero unless: zero failed fetches, coalesce rate > 0,\n\
     \x20                      and warm p50 at least 10x below cold p50"
}

fn main() {
    let mut addr = String::new();
    let mut clients_list: Vec<usize> = vec![4];
    let mut jobs_per_client = 3usize;
    let mut out = "BENCH_serve".to_string();
    let mut check = false;

    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => addr = it.next().unwrap_or_default(),
            "--clients" => {
                let v = it.next().unwrap_or_default();
                clients_list = v
                    .split(',')
                    .filter_map(|s| s.trim().parse::<usize>().ok())
                    .filter(|&n| n > 0)
                    .collect();
                if clients_list.is_empty() {
                    eprintln!("--clients: bad value {v:?}\n{}", usage());
                    std::process::exit(2);
                }
            }
            "--jobs-per-client" => {
                let v = it.next().unwrap_or_default();
                jobs_per_client = match v.parse::<usize>() {
                    Ok(n) if n > 0 => n,
                    _ => {
                        eprintln!("--jobs-per-client: bad value {v:?}\n{}", usage());
                        std::process::exit(2);
                    }
                };
            }
            "--out" => out = it.next().unwrap_or_default(),
            "--check" => check = true,
            "--help" | "-h" => {
                println!("{}", usage());
                return;
            }
            other => {
                eprintln!("unknown argument {other:?}\n{}", usage());
                std::process::exit(2);
            }
        }
    }
    if addr.is_empty() {
        eprintln!("--addr is required\n{}", usage());
        std::process::exit(2);
    }

    let mut series = Vec::new();
    for (salt, &clients) in clients_list.iter().enumerate() {
        eprintln!("loadgen: {clients} client(s) x {jobs_per_client} job(s), cold phase...");
        let (cold, _) = run_phase(&addr, clients, jobs_per_client, salt);
        eprintln!(
            "loadgen:   cold p50 {:.1} ms, p99 {:.1} ms, {:.1} jobs/s, coalesce {:.0}%",
            cold.p50_ms,
            cold.p99_ms,
            cold.jobs_per_sec,
            cold.coalesce_rate * 100.0
        );
        eprintln!("loadgen: {clients} client(s), warm phase (identical resubmissions)...");
        let (warm, _) = run_phase(&addr, clients, jobs_per_client, salt);
        eprintln!(
            "loadgen:   warm p50 {:.2} ms, p99 {:.2} ms, {:.1} jobs/s, cache-hit {:.0}%",
            warm.p50_ms,
            warm.p99_ms,
            warm.jobs_per_sec,
            warm.cache_hit_rate * 100.0
        );
        series.push(SeriesPoint {
            clients,
            jobs_per_client,
            cold,
            warm,
        });
    }

    let bench = ServeBench {
        schema_version: 1,
        addr: addr.clone(),
        series,
    };
    write_json(&out, &bench);

    if check {
        let mut failures = Vec::new();
        for p in &bench.series {
            if p.cold.failed_fetches + p.warm.failed_fetches > 0 {
                failures.push(format!(
                    "{} clients: {} failed fetches",
                    p.clients,
                    p.cold.failed_fetches + p.warm.failed_fetches
                ));
            }
            if p.clients > 1 && p.cold.coalesce_rate <= 0.0 && p.warm.coalesce_rate <= 0.0 {
                failures.push(format!("{} clients: coalesce rate is zero", p.clients));
            }
            if p.warm.p50_ms * 10.0 > p.cold.p50_ms {
                failures.push(format!(
                    "{} clients: warm p50 {:.2} ms not 10x below cold p50 {:.2} ms",
                    p.clients, p.warm.p50_ms, p.cold.p50_ms
                ));
            }
        }
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("loadgen check FAILED: {f}");
            }
            std::process::exit(1);
        }
        println!("loadgen check passed");
    }
}

//! `photon-top` — a live operational view of a photon-serve server.
//!
//! ```console
//! $ photon-top --addr 127.0.0.1:7847
//! ```
//!
//! Redraws a terminal frame every `--interval` milliseconds showing
//! lane depths, in-flight jobs with their current trace phase, cache
//! hit / coalesce rates, per-shard busy-cycle balance of the most
//! recent run, and the tail of the latency distributions — all from
//! the `stats` op, so attaching photon-top costs the server one
//! snapshot per frame and nothing when detached.
//!
//! `--once` prints a single frame without ANSI clearing and exits (the
//! CI smoke mode); `--scrape` fetches the `metrics` op instead, parses
//! the Prometheus exposition text back through
//! [`gpu_telemetry::export::parse_prometheus_text`] (a malformed body
//! is a hard failure), and prints it verbatim.

use gpu_telemetry::export::parse_prometheus_text;
use photon_serve::Client;
use serde_json::Value;
use std::time::Duration;

fn usage() -> String {
    "usage: photon-top [--addr HOST:PORT] [--interval MS] [--once] [--scrape]\n\
     \x20 --addr HOST:PORT  server address (default 127.0.0.1:7847)\n\
     \x20 --interval MS     refresh period in milliseconds (default 1000)\n\
     \x20 --once            print one frame and exit (no ANSI clearing)\n\
     \x20 --scrape          fetch the `metrics` op, verify it parses as\n\
     \x20                   Prometheus text exposition format, print it"
        .to_string()
}

struct Args {
    addr: String,
    interval: Duration,
    once: bool,
    scrape: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:7847".to_string(),
        interval: Duration::from_millis(1000),
        once: false,
        scrape: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => {
                args.addr = it.next().unwrap_or_default();
            }
            "--interval" => {
                let v = it.next().unwrap_or_default();
                match v.parse::<u64>() {
                    Ok(ms) => args.interval = Duration::from_millis(ms.max(50)),
                    Err(_) => {
                        eprintln!("--interval: bad value {v:?}\n{}", usage());
                        std::process::exit(2);
                    }
                }
            }
            "--once" => args.once = true,
            "--scrape" => args.scrape = true,
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument {other:?}\n{}", usage());
                std::process::exit(2);
            }
        }
    }
    if args.addr.is_empty() {
        eprintln!("--addr: missing value\n{}", usage());
        std::process::exit(2);
    }
    args
}

fn as_str(v: &Value) -> Option<&str> {
    match v {
        Value::String(s) => Some(s.as_str()),
        _ => None,
    }
}

fn num(v: &Value) -> f64 {
    match v {
        Value::U64(x) => *x as f64,
        Value::I64(x) => *x as f64,
        Value::F64(x) => *x,
        _ => 0.0,
    }
}

/// A named entry out of one of the snapshot's metric arrays.
fn metric<'a>(stats: &'a Value, family: &str, name: &str) -> Option<&'a Value> {
    let Some(Value::Array(entries)) = stats.get("metrics").and_then(|m| m.get(family)) else {
        return None;
    };
    entries
        .iter()
        .find(|e| e.get("name").and_then(as_str) == Some(name))
}

fn counter(stats: &Value, name: &str) -> u64 {
    metric(stats, "counters", name)
        .and_then(|e| e.get("value"))
        .map(num)
        .unwrap_or(0.0) as u64
}

fn gauge(stats: &Value, name: &str) -> f64 {
    metric(stats, "gauges", name)
        .and_then(|e| e.get("value"))
        .map(num)
        .unwrap_or(0.0)
}

fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

fn bar(frac: f64, width: usize) -> String {
    let filled = (frac.clamp(0.0, 1.0) * width as f64).round() as usize;
    let mut s = String::with_capacity(width);
    for i in 0..width {
        s.push(if i < filled { '#' } else { '.' });
    }
    s
}

fn histogram_row(stats: &Value, name: &str) -> String {
    match metric(stats, "histograms", name) {
        Some(h) => {
            let f = |k: &str| h.get(k).map(num).unwrap_or(0.0);
            format!(
                "{name:<18} n={:<7} p50={:<7} p95={:<7} p99={:<7} max={}",
                f("count"),
                f("p50"),
                f("p95"),
                f("p99"),
                f("max"),
            )
        }
        None => format!("{name:<18} (no observations yet)"),
    }
}

fn render_frame(stats: &Value) -> String {
    let mut out = String::new();
    let queued_i = gauge(stats, "serve.queue.interactive") as u64;
    let queued_b = gauge(stats, "serve.queue.batch") as u64;
    let running = gauge(stats, "serve.running") as u64;
    let workers = stats.get("workers").map(num).unwrap_or(0.0) as u64;
    let draining = matches!(stats.get("draining"), Some(Value::Bool(true)));
    let faults = matches!(stats.get("faults_active"), Some(Value::Bool(true)));
    out.push_str(&format!(
        "photon-top  protocol v{}  workers {running}/{workers}{}{}\n",
        stats.get("protocol_version").map(num).unwrap_or(0.0),
        if draining { "  DRAINING" } else { "" },
        if faults { "  FAULTS ARMED" } else { "" },
    ));
    out.push_str(&format!(
        "lanes       interactive {queued_i:>4}  batch {queued_b:>4}  running {running:>4}\n"
    ));

    let submitted = counter(stats, "serve.submitted");
    let coalesced = counter(stats, "serve.coalesced");
    let cache_hits = counter(stats, "serve.cache_hits");
    let completed = counter(stats, "serve.completed");
    let failed = counter(stats, "serve.failed");
    let dumps = counter(stats, "serve.flightrec_dumps");
    out.push_str(&format!(
        "jobs        submitted {submitted}  completed {completed}  failed {failed}  flightrec {dumps}\n"
    ));
    out.push_str(&format!(
        "reuse       cache-hit {:.1}%  coalesced {:.1}%\n",
        pct(cache_hits, submitted + cache_hits),
        pct(coalesced, submitted + coalesced),
    ));

    out.push_str(&histogram_row(stats, "serve.latency_ms"));
    out.push('\n');
    out.push_str(&histogram_row(stats, "serve.queued_ms"));
    out.push('\n');

    // Per-shard busy cycles of the most recent completed run, as
    // fill bars normalized to the busiest shard.
    if let Some(Value::Array(gauges)) = stats.get("metrics").and_then(|m| m.get("gauges")) {
        let shards: Vec<(&str, f64)> = gauges
            .iter()
            .filter_map(|g| {
                let name = g.get("name").and_then(as_str)?;
                name.starts_with("engine.shard.")
                    .then(|| (name, g.get("value").map(num).unwrap_or(0.0)))
            })
            .collect();
        if !shards.is_empty() {
            let max = shards.iter().map(|&(_, v)| v).fold(0.0_f64, f64::max);
            out.push_str(&format!(
                "shards      imbalance {:.2}x mean (last run)\n",
                gauge(stats, "engine.epoch.imbalance")
            ));
            for (name, v) in &shards {
                let frac = if max > 0.0 { v / max } else { 0.0 };
                out.push_str(&format!(
                    "  {:<28} {} {:>12}\n",
                    name,
                    bar(frac, 30),
                    *v as u64
                ));
            }
        }
    }

    out.push_str("in-flight   job              state    phase          age\n");
    match stats.get("jobs") {
        Some(Value::Array(jobs)) if !jobs.is_empty() => {
            for j in jobs {
                let s = |k: &str| j.get(k).and_then(as_str).unwrap_or("-").to_string();
                let age = j.get("age_ms").map(num).unwrap_or(0.0) / 1000.0;
                out.push_str(&format!(
                    "  {:<16} {:<8} {:<14} {:>6.1}s  {}\n",
                    s("job"),
                    s("state"),
                    s("phase"),
                    age,
                    s("label"),
                ));
            }
        }
        _ => out.push_str("  (idle)\n"),
    }
    out
}

fn main() {
    let args = parse_args();
    let mut client = match Client::connect(&args.addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("photon-top: cannot connect to {}: {e}", args.addr);
            std::process::exit(1);
        }
    };

    if args.scrape {
        let text = match client.metrics() {
            Ok(t) => t,
            Err(e) => {
                eprintln!("photon-top: metrics op failed: {e}");
                std::process::exit(1);
            }
        };
        if let Err(e) = parse_prometheus_text(&text) {
            eprintln!("photon-top: exposition text does not parse: {e}");
            std::process::exit(1);
        }
        print!("{text}");
        return;
    }

    loop {
        let stats = match client.stats() {
            Ok(v) => v,
            Err(e) => {
                eprintln!("photon-top: stats op failed: {e}");
                std::process::exit(1);
            }
        };
        let frame = render_frame(&stats);
        if args.once {
            print!("{frame}");
            return;
        }
        // Clear + home, then the frame; plain ANSI keeps this free of
        // any terminal library.
        print!("\x1b[2J\x1b[H{frame}");
        use std::io::Write;
        let _ = std::io::stdout().flush();
        std::thread::sleep(args.interval);
    }
}

//! `photon-serve` — the simulation job server.
//!
//! ```console
//! $ photon-serve --port 0 --workers 4
//! photon-serve listening on 127.0.0.1:41723
//! ```
//!
//! Speaks the line-delimited JSON protocol of `photon_serve::protocol`.
//! SIGTERM / ctrl-c drains gracefully: in-flight simulations finish,
//! queued jobs are journaled to the pending file and resumed by the
//! next server started with the same `--pending` path.

use photon_bench::cli;
use photon_serve::{ServeOptions, Server};
use std::io::Write;
use std::path::PathBuf;

fn usage() -> String {
    format!(
        "usage: photon-serve [--port N] [--workers N] [--queue N] [--pending PATH]\n\
         \x20                    [--flightrec DIR | --no-flightrec]\n\
         \x20 --port N       TCP port on 127.0.0.1 (default 7847; 0 = ephemeral)\n\
         \x20 --workers N    simulation worker threads (default 2)\n\
         \x20 --queue N      admission bound on queued jobs (default 64)\n\
         \x20 --pending PATH drain/resume journal (default results/serve_pending.jsonl)\n\
         \x20 --flightrec DIR   flight-recorder dump directory (default results/flightrec)\n\
         \x20 --no-flightrec    disable flight-recorder dumps\n\
         {}",
        cli::usage("photon-serve", "")
    )
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let exec = match cli::parse_exec_options(&mut args) {
        Ok(mut opts) => {
            // The server has its own pending-jobs journal; the per-spec
            // run journal is an executor concern.
            opts.journal = None;
            opts.resume = false;
            opts
        }
        Err(e) => {
            eprintln!("{e}\n{}", usage());
            std::process::exit(2);
        }
    };

    let mut port: u16 = 7847;
    let mut opts = ServeOptions {
        exec,
        flightrec: Some(photon_bench::flightrec::default_dir()),
        ..ServeOptions::default()
    };
    let mut pending = photon_bench::results_dir().join("serve_pending.jsonl");
    let mut it = args.into_iter();
    let parse_fail = |flag: &str, v: &str| -> ! {
        eprintln!("{flag}: bad value {v:?}\n{}", usage());
        std::process::exit(2);
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--port" => {
                let v = it.next().unwrap_or_default();
                port = v.parse().unwrap_or_else(|_| parse_fail("--port", &v));
            }
            "--workers" => {
                let v = it.next().unwrap_or_default();
                opts.workers = v
                    .parse::<usize>()
                    .unwrap_or_else(|_| parse_fail("--workers", &v))
                    .max(1);
            }
            "--queue" => {
                let v = it.next().unwrap_or_default();
                opts.queue_capacity = v
                    .parse::<usize>()
                    .unwrap_or_else(|_| parse_fail("--queue", &v))
                    .max(1);
            }
            "--pending" => {
                let v = it.next().unwrap_or_default();
                if v.is_empty() {
                    parse_fail("--pending", &v);
                }
                pending = PathBuf::from(v);
            }
            "--flightrec" => {
                let v = it.next().unwrap_or_default();
                if v.is_empty() {
                    parse_fail("--flightrec", &v);
                }
                opts.flightrec = Some(PathBuf::from(v));
            }
            "--no-flightrec" => {
                opts.flightrec = None;
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return;
            }
            other => {
                eprintln!("unknown argument {other:?}\n{}", usage());
                std::process::exit(2);
            }
        }
    }

    let server = match Server::bind(&format!("127.0.0.1:{port}"), opts, Some(pending.clone())) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("photon-serve: could not bind 127.0.0.1:{port}: {e}");
            std::process::exit(1);
        }
    };
    let addr = match server.local_addr() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("photon-serve: no local address: {e}");
            std::process::exit(1);
        }
    };
    server.install_signal_handlers();
    let workers = server.spawn_workers();
    // Scripts scrape this exact line for the ephemeral port.
    println!("photon-serve listening on {addr}");
    let _ = std::io::stdout().flush();

    match server.run() {
        Ok(drained) => {
            for w in workers {
                let _ = w.join();
            }
            if drained > 0 {
                eprintln!(
                    "photon-serve: drained {drained} queued job(s) to {}",
                    pending.display()
                );
            }
            eprintln!("photon-serve: clean exit");
        }
        Err(e) => {
            eprintln!("photon-serve: acceptor failed: {e}");
            std::process::exit(1);
        }
    }
}

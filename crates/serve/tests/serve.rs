//! End-to-end tests for photon-serve: a real server on an ephemeral
//! port, driven over TCP by the library client — submit/wait/fetch,
//! single-flight coalescing, cancellation, admission control, lane
//! priority, and drain/resume.

use photon_bench::{journal_key, ExecOptions, Method, RunSpec};
use photon_serve::client::{response_job, response_ok, Client};
use photon_serve::server::ShutdownHandle;
use photon_serve::{job_id, ServeOptions, Server};
use serde_json::{json, Value};
use std::path::PathBuf;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use gpu_sim::GpuConfig;
use gpu_workloads::registry::Benchmark;

/// A server running in-process: acceptor + workers on threads, stopped
/// via the shutdown handle.
struct TestServer {
    addr: String,
    server: Arc<Server>,
    handle: ShutdownHandle,
    acceptor: Option<JoinHandle<usize>>,
    workers: Vec<JoinHandle<()>>,
}

impl TestServer {
    fn start(workers: usize, queue_capacity: usize, pending: Option<PathBuf>) -> TestServer {
        let exec = ExecOptions {
            cache: false,
            journal: None,
            ..ExecOptions::default()
        };
        let opts = ServeOptions {
            workers,
            queue_capacity,
            exec,
            ..ServeOptions::default()
        };
        let server = Arc::new(Server::bind("127.0.0.1:0", opts, pending).expect("bind"));
        let addr = server.local_addr().expect("local addr").to_string();
        let handle = server.shutdown_handle();
        let workers = server.spawn_workers();
        let srv = Arc::clone(&server);
        let acceptor = std::thread::spawn(move || srv.run().expect("acceptor"));
        TestServer {
            addr,
            server,
            handle,
            acceptor: Some(acceptor),
            workers,
        }
    }

    fn client(&self) -> Client {
        Client::connect(&self.addr).expect("connect")
    }

    fn counter(&self, name: &str) -> u64 {
        self.server.scheduler().telemetry().counter(name).get()
    }

    /// Drains and joins everything; returns the number of jobs
    /// journaled to the pending file.
    fn stop(mut self) -> usize {
        self.handle.shutdown();
        let drained = self
            .acceptor
            .take()
            .expect("acceptor")
            .join()
            .expect("join");
        for w in self.workers.drain(..) {
            w.join().expect("worker join");
        }
        drained
    }
}

fn fir(warps: u64, method: Method) -> RunSpec {
    RunSpec::bench(GpuConfig::tiny(), Benchmark::Fir, warps, method)
}

fn state_of(client: &mut Client, job: &str) -> String {
    let v = client
        .request(&json!({ "op": "status", "job": job }))
        .expect("status");
    match v.get("state") {
        Some(Value::String(s)) => s.clone(),
        _ => String::new(),
    }
}

/// Polls until `job` reports `want`, for up to ~5 s.
fn await_state(client: &mut Client, job: &str, want: &str) {
    for _ in 0..500 {
        if state_of(client, job) == want {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("job {job} never reached state {want:?}");
}

#[test]
fn submit_wait_fetch_round_trip() {
    let srv = TestServer::start(1, 16, None);
    let mut c = srv.client();

    let sub = c.submit(&fir(256, Method::Pka), "t0").expect("submit");
    assert!(response_ok(&sub), "submit failed: {sub:?}");
    let job = response_job(&sub).expect("job id");

    let fin = c.wait(&job).expect("wait");
    assert!(response_ok(&fin), "wait failed: {fin:?}");
    let fetched = c.fetch(&job).expect("fetch");
    assert!(response_ok(&fetched), "fetch failed: {fetched:?}");
    assert!(
        matches!(
            fetched.get("report").and_then(|r| r.get("completed")),
            Some(Value::Bool(true))
        ),
        "report not completed: {fetched:?}"
    );

    // Protocol errors surface as coded responses, not hangups.
    let missing = c.fetch("00000000000000ff").expect("fetch missing");
    assert!(!response_ok(&missing));
    assert_eq!(missing.get("code"), Some(&Value::U64(404)));
    let bad = c
        .request(&json!({ "op": "frobnicate" }))
        .expect("bad request");
    assert_eq!(bad.get("code"), Some(&Value::U64(400)));

    assert!(srv.counter("serve.completed") >= 1);
    srv.stop();
}

#[test]
fn identical_concurrent_submissions_run_one_simulation() {
    const CLIENTS: usize = 8;
    let srv = TestServer::start(2, 32, None);
    let spec = fir(512, Method::Full);
    let expected_job = job_id(journal_key(&spec));

    let barrier = std::sync::Barrier::new(CLIENTS);
    let reports: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let (addr, spec, barrier) = (&srv.addr, &spec, &barrier);
                scope.spawn(move || {
                    let mut c = Client::connect(addr).expect("connect");
                    barrier.wait();
                    let sub = c.submit(spec, "flood").expect("submit");
                    assert!(response_ok(&sub), "submit failed: {sub:?}");
                    let job = response_job(&sub).expect("job id");
                    let fin = c.wait(&job).expect("wait");
                    assert!(response_ok(&fin), "wait failed: {fin:?}");
                    let fetched = c.fetch(&job).expect("fetch");
                    assert!(response_ok(&fetched), "fetch failed: {fetched:?}");
                    (
                        job,
                        serde_json::to_string(
                            fetched
                                .get("report")
                                .and_then(|r| r.get("measurement"))
                                .expect("measurement"),
                        )
                        .expect("render"),
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                let (job, report) = h.join().expect("client");
                assert_eq!(job, expected_job, "identical specs must share a job id");
                report
            })
            .collect()
    });

    // Exactly one simulation ran; every client got the identical report.
    assert_eq!(srv.counter("serve.sim_runs"), 1);
    assert!(reports.windows(2).all(|w| w[0] == w[1]));
    // N-1 submissions either coalesced onto the live job or hit the
    // result store after it finished.
    assert_eq!(
        srv.counter("serve.coalesced") + srv.counter("serve.cache_hits"),
        (CLIENTS - 1) as u64
    );
    srv.stop();
}

#[test]
fn cancel_removes_queued_job_before_dequeue() {
    let srv = TestServer::start(1, 16, None);
    let mut c = srv.client();

    // Occupy the only worker.
    let blocker = fir(2048, Method::Full);
    let sub = c.submit(&blocker, "t0").expect("submit blocker");
    let blocker_job = response_job(&sub).expect("job id");
    await_state(&mut c, &blocker_job, "running");

    // Queue a victim behind it, then cancel before it can dequeue.
    let victim = fir(512, Method::Full);
    let sub = c.submit(&victim, "t0").expect("submit victim");
    let victim_job = response_job(&sub).expect("job id");
    assert_eq!(sub.get("state"), Some(&Value::String("queued".into())));
    let cancelled = c.cancel(&victim_job).expect("cancel");
    assert!(response_ok(&cancelled));
    assert_eq!(cancelled.get("cancelled"), Some(&Value::Bool(true)));
    assert_eq!(srv.counter("exec.cancelled"), 1);
    assert_eq!(srv.counter("serve.cancelled"), 1);

    // The blocker still finishes; the victim never simulates.
    let fin = c.wait(&blocker_job).expect("wait blocker");
    assert!(response_ok(&fin));
    assert_eq!(srv.counter("serve.sim_runs"), 1);
    assert_eq!(state_of(&mut c, &victim_job), "cancelled");
    srv.stop();
}

#[test]
fn full_queue_rejects_with_retry_hint() {
    let srv = TestServer::start(1, 1, None);
    let mut c = srv.client();

    let sub = c.submit(&fir(2048, Method::Full), "t0").expect("blocker");
    let blocker_job = response_job(&sub).expect("job id");
    await_state(&mut c, &blocker_job, "running");

    // One queued job fills the admission bound...
    let sub = c.submit(&fir(512, Method::Full), "t0").expect("queued");
    assert_eq!(sub.get("state"), Some(&Value::String("queued".into())));
    // ...so a third distinct spec bounces with 429 + a retry hint.
    let rejected = c.submit(&fir(640, Method::Full), "t0").expect("rejected");
    assert!(!response_ok(&rejected));
    assert_eq!(rejected.get("code"), Some(&Value::U64(429)));
    let retry = match rejected.get("retry_after_ms") {
        Some(Value::U64(ms)) => *ms,
        other => panic!("missing retry_after_ms: {other:?}"),
    };
    assert!(retry >= 10, "retry hint too small: {retry}");
    assert_eq!(srv.counter("serve.rejected"), 1);
    srv.stop();
}

#[test]
fn interactive_lane_preempts_queued_batch_work() {
    let srv = TestServer::start(1, 16, None);
    let mut c = srv.client();

    let sub = c.submit(&fir(2048, Method::Full), "t0").expect("blocker");
    let blocker_job = response_job(&sub).expect("job id");
    await_state(&mut c, &blocker_job, "running");

    // Batch first, interactive second: dequeue order must invert.
    let sub = c.submit(&fir(1024, Method::Full), "t0").expect("batch");
    let batch_job = response_job(&sub).expect("job id");
    assert_eq!(sub.get("lane"), Some(&Value::String("batch".into())));
    let sub = c.submit(&fir(512, Method::Pka), "t0").expect("interactive");
    let interactive_job = response_job(&sub).expect("job id");
    assert_eq!(sub.get("lane"), Some(&Value::String("interactive".into())));

    let fin = c.wait(&interactive_job).expect("wait interactive");
    assert!(response_ok(&fin));
    // The moment the interactive job finished, the batch job had not:
    // it was dequeued after (or is only just starting).
    let batch_state = state_of(&mut c, &batch_job);
    assert_ne!(
        batch_state, "done",
        "batch job finished before the interactive one"
    );
    let fin = c.wait(&batch_job).expect("wait batch");
    assert!(response_ok(&fin));
    srv.stop();
}

#[test]
fn fragmented_request_line_survives_read_timeouts() {
    use std::io::{BufRead, BufReader, Write};

    let srv = TestServer::start(1, 16, None);
    let mut stream = std::net::TcpStream::connect(&srv.addr).expect("connect");
    let request = "{\"op\":\"stats\"}\n";
    let (head, tail) = request.split_at(6);
    stream.write_all(head.as_bytes()).expect("head");
    stream.flush().expect("flush");
    // Longer than the server's 200 ms read timeout: the prefix must
    // survive the timed-out read, not be discarded.
    std::thread::sleep(Duration::from_millis(500));
    stream.write_all(tail.as_bytes()).expect("tail");
    let mut line = String::new();
    BufReader::new(stream)
        .read_line(&mut line)
        .expect("response");
    let v: Value = serde_json::from_str(line.trim()).expect("json");
    assert_eq!(v.get("ok"), Some(&Value::Bool(true)), "got: {v:?}");
    srv.stop();
}

#[test]
fn terminal_jobs_are_pruned_from_the_jobs_map() {
    use photon_serve::Scheduler;

    // No workers: submit+cancel walks each distinct spec to a terminal
    // phase without simulating anything.
    let opts = ServeOptions {
        queue_capacity: 8,
        exec: ExecOptions {
            cache: false,
            journal: None,
            ..ExecOptions::default()
        },
        ..ServeOptions::default()
    };
    let sched = Scheduler::new(opts);
    let first = journal_key(&fir(1, Method::Full));
    let last = journal_key(&fir(400, Method::Full));
    for i in 1..=400u64 {
        let spec = fir(i, Method::Full);
        let id = journal_key(&spec);
        sched.submit(spec, "t0");
        sched.cancel(id);
    }
    // Well past the retention bound, the oldest terminal job has been
    // dropped from the jobs map; recent ones are retained.
    assert!(
        sched.status(first).is_none(),
        "oldest terminal job must be pruned"
    );
    assert!(
        sched.status(last).is_some(),
        "recent terminal jobs must be retained"
    );
}

#[test]
fn drain_journals_queued_jobs_and_restart_resumes_them() {
    let dir = std::env::temp_dir().join(format!("photon_serve_drain_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let pending = dir.join("pending.jsonl");

    let srv = TestServer::start(1, 16, Some(pending.clone()));
    let mut c = srv.client();
    let sub = c.submit(&fir(2048, Method::Full), "t0").expect("blocker");
    let blocker_job = response_job(&sub).expect("job id");
    await_state(&mut c, &blocker_job, "running");

    let q1 = fir(512, Method::Full);
    let q2 = fir(512, Method::Pka);
    assert!(response_ok(&c.submit(&q1, "t0").expect("q1")));
    assert!(response_ok(&c.submit(&q2, "t0").expect("q2")));
    drop(c);

    // Drain: the in-flight blocker finishes, the queued pair is
    // journaled.
    let drained = srv.stop();
    assert_eq!(drained, 2);
    assert!(pending.exists(), "drain must write the pending journal");

    // A fresh server on the same pending path resumes both jobs.
    let srv = TestServer::start(1, 16, Some(pending.clone()));
    assert_eq!(srv.counter("serve.resumed_jobs"), 2);
    assert!(!pending.exists(), "resume must consume the pending journal");
    let mut c = srv.client();
    for spec in [&q1, &q2] {
        let job = job_id(journal_key(spec));
        let fin = c.wait(&job).expect("wait resumed");
        assert!(response_ok(&fin), "resumed job failed: {fin:?}");
    }
    drop(c);
    srv.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

//! End-to-end trace + flight-recorder test under fault injection.
//!
//! Lives in its own integration-test binary: the fault plan is
//! process-global, and an `exec.panic` plan armed here would leak into
//! the regular serve tests if they shared a process.

use gpu_telemetry::faults::{self, FaultPlan};
use photon_bench::flightrec;
use photon_bench::{journal_key, ExecOptions, Method, RunSpec};
use photon_serve::client::{response_job, response_ok, Client};
use photon_serve::{job_id, ServeOptions, Server};
use serde_json::Value;
use std::sync::Arc;
use std::time::Duration;

use gpu_sim::GpuConfig;
use gpu_workloads::registry::Benchmark;

fn as_str<'a>(v: &'a Value, name: &str) -> Option<&'a str> {
    match v.get(name) {
        Some(Value::String(s)) => Some(s.as_str()),
        _ => None,
    }
}

/// A job submitted under a 100% `exec.panic` plan fails; its `trace`
/// op then returns a span tree whose failing `sim` span names the
/// injected fault site, and the on-disk flight record carries the same
/// evidence (checksummed, loadable, `job-failed` trigger).
#[test]
fn faulted_job_trace_names_the_fault_site_and_flight_record_matches() {
    let dir = std::env::temp_dir().join(format!("photon_trace_faults_{}", std::process::id()));
    let flightrec_dir = dir.join("flightrec");
    std::fs::create_dir_all(&dir).expect("mkdir");

    faults::install(Some(
        FaultPlan::parse("exec.panic:1.0:7").expect("valid fault spec"),
    ));

    let opts = ServeOptions {
        workers: 1,
        queue_capacity: 8,
        exec: ExecOptions {
            cache: false,
            journal: None,
            retries: 0,
            ..ExecOptions::default()
        },
        flightrec: Some(flightrec_dir.clone()),
        ..ServeOptions::default()
    };
    let server = Arc::new(Server::bind("127.0.0.1:0", opts, None).expect("bind"));
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = server.shutdown_handle();
    let workers = server.spawn_workers();
    let srv = Arc::clone(&server);
    let acceptor = std::thread::spawn(move || srv.run().expect("acceptor"));

    let spec = RunSpec::bench(GpuConfig::tiny(), Benchmark::Fir, 256, Method::Pka);
    let expected_job = job_id(journal_key(&spec));
    let mut c = Client::connect(&addr).expect("connect");
    let sub = c.submit(&spec, "chaos").expect("submit");
    assert!(response_ok(&sub), "submit failed: {sub:?}");
    let job = response_job(&sub).expect("job id");
    assert_eq!(job, expected_job);

    // The job reaches Done with a failed outcome (no retries, 100%
    // panic rate).
    let fin = c.wait(&job).expect("wait");
    assert!(response_ok(&fin), "wait failed: {fin:?}");
    assert!(
        matches!(
            fin.get("report").and_then(|r| r.get("completed")),
            Some(Value::Bool(false))
        ),
        "job must fail under exec.panic: {fin:?}"
    );

    // `trace` returns the span tree; the failing sim span names the
    // injected fault site.
    let trace = c.trace(&job).expect("trace");
    assert!(response_ok(&trace), "trace failed: {trace:?}");
    assert_eq!(as_str(&trace, "job"), Some(job.as_str()));
    let failed = match trace.get("failed") {
        Some(Value::Array(f)) => f.clone(),
        other => panic!("trace has no failed list: {other:?}"),
    };
    assert!(
        failed.iter().any(|f| {
            as_str(f, "kind") == Some("sim")
                && as_str(f, "detail").is_some_and(|d| d.contains("exec.panic"))
        }),
        "no failing sim span naming exec.panic: {failed:?}"
    );
    let spans = match trace.get("spans") {
        Some(Value::Array(s)) => s.len(),
        other => panic!("trace has no spans: {other:?}"),
    };
    assert!(spans >= 3, "expected job+queued+sim spans, got {spans}");

    // The flight recorder dumped the same job: the record loads clean
    // (checksum verified) and its failed spans carry the fault site.
    let dump_path = flightrec::record_path(&flightrec_dir, &job);
    for _ in 0..100 {
        if dump_path.exists() {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let rec = flightrec::load(&dump_path).expect("flight record must load");
    assert_eq!(rec.job, job);
    assert_eq!(rec.trigger, "job-failed");
    assert!(
        rec.tree
            .failed_spans()
            .iter()
            .any(|s| s.detail.contains("exec.panic")),
        "flight record must name the fault site"
    );

    // The metrics op counts the dump and round-trips through the
    // exposition-format parser.
    let text = c.metrics().expect("metrics op");
    let scrape =
        gpu_telemetry::export::parse_prometheus_text(&text).expect("exposition text must parse");
    assert_eq!(scrape.value("photon_serve_flightrec_dumps"), Some(1.0));
    assert_eq!(scrape.value("photon_serve_failed"), Some(1.0));

    drop(c);
    handle.shutdown();
    acceptor.join().expect("acceptor join");
    for w in workers {
        w.join().expect("worker join");
    }
    faults::install(None);
    let _ = std::fs::remove_dir_all(&dir);
}

//! Reference-cache behavior through the executor: warm hits, key
//! invalidation on config/problem-size change, and graceful fallback on
//! corrupt or version-mismatched entries.

use gpu_sim::GpuConfig;
use gpu_workloads::registry::Benchmark;
use photon::Levels;
use photon_bench::{run_specs, ExecOptions, Method, RunSpec, CACHE_SCHEMA_VERSION};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};

/// A unique per-test cache directory (no wall clock / randomness: the
/// process id plus a counter is unique enough for parallel test runs).
fn temp_cache_dir() -> PathBuf {
    static NEXT: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "photon-bench-refcache-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn opts(dir: &Path) -> ExecOptions {
    ExecOptions {
        jobs: 2,
        cache: true,
        cache_dir: Some(dir.to_path_buf()),
        ..ExecOptions::default()
    }
}

fn grid(gpu: GpuConfig, warps: u64) -> Vec<RunSpec> {
    vec![
        RunSpec::bench(gpu.clone(), Benchmark::Fir, warps, Method::Full),
        RunSpec::bench(gpu, Benchmark::Fir, warps, Method::Photon(Levels::all())),
    ]
}

#[test]
fn warm_rerun_performs_zero_full_simulations() {
    let dir = temp_cache_dir();
    let opts = opts(&dir);

    let cold = run_specs(&grid(GpuConfig::tiny(), 64), &opts);
    assert_eq!(cold.stats.full_runs_executed, 1);
    assert_eq!(cold.stats.cache_hits, 0);
    let cold_full = cold.results[0].measurement().unwrap().clone();

    // Same grid, fresh executor: the Full run must come from disk.
    let warm = run_specs(&grid(GpuConfig::tiny(), 64), &opts);
    assert_eq!(warm.stats.full_runs_executed, 0);
    assert_eq!(warm.stats.cache_hits, 1);
    assert!(warm.results[0].from_cache);
    assert_eq!(
        warm.results[0].measurement().unwrap().sim_cycles,
        cold_full.sim_cycles
    );
    // The sampled run is never cached.
    assert!(!warm.results[1].from_cache);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn config_or_problem_size_change_misses() {
    let dir = temp_cache_dir();
    let opts = opts(&dir);

    let cold = run_specs(&grid(GpuConfig::tiny(), 64), &opts);
    assert_eq!(cold.stats.full_runs_executed, 1);

    // Different machine -> different key -> recompute.
    let other_gpu = run_specs(&grid(GpuConfig::tiny().with_num_cus(2), 64), &opts);
    assert_eq!(other_gpu.stats.full_runs_executed, 1);
    assert_eq!(other_gpu.stats.cache_hits, 0);

    // Different problem size -> different key -> recompute.
    let other_size = run_specs(&grid(GpuConfig::tiny(), 128), &opts);
    assert_eq!(other_size.stats.full_runs_executed, 1);
    assert_eq!(other_size.stats.cache_hits, 0);

    // The original entry is still intact.
    let warm = run_specs(&grid(GpuConfig::tiny(), 64), &opts);
    assert_eq!(warm.stats.full_runs_executed, 0);
    assert_eq!(warm.stats.cache_hits, 1);

    let _ = std::fs::remove_dir_all(&dir);
}

/// The single `.json` entry the cold run persisted.
fn only_entry(dir: &Path) -> PathBuf {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("cache dir exists after a cold run")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    assert_eq!(entries.len(), 1, "expected exactly one cache entry");
    entries.pop().unwrap()
}

/// The `.corrupt` quarantine files in a cache directory.
fn quarantined_entries(dir: &Path) -> Vec<PathBuf> {
    std::fs::read_dir(dir)
        .expect("cache dir exists")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "corrupt"))
        .collect()
}

#[test]
fn corrupt_entry_is_quarantined_and_recomputed() {
    let dir = temp_cache_dir();
    let opts = opts(&dir);

    run_specs(&grid(GpuConfig::tiny(), 64), &opts);
    let entry = only_entry(&dir);
    std::fs::write(&entry, "{definitely not json").unwrap();

    let rerun = run_specs(&grid(GpuConfig::tiny(), 64), &opts);
    assert_eq!(rerun.stats.cache_hits, 0);
    assert_eq!(rerun.stats.full_runs_executed, 1);
    assert!(rerun.results[0].measurement().is_some());
    // The corpse was quarantined (not left to re-warn every warm run)
    // and counted in the executor's telemetry.
    assert_eq!(quarantined_entries(&dir).len(), 1);
    assert_eq!(rerun.metrics.counter("refcache.quarantined"), Some(1));

    // The recompute repaired the entry on disk; the quarantine file
    // does not shadow it.
    let warm = run_specs(&grid(GpuConfig::tiny(), 64), &opts);
    assert_eq!(warm.stats.cache_hits, 1);
    assert_eq!(warm.metrics.counter("refcache.quarantined"), Some(0));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn version_mismatched_entry_is_quarantined_and_recomputed() {
    let dir = temp_cache_dir();
    let opts = opts(&dir);

    run_specs(&grid(GpuConfig::tiny(), 64), &opts);
    let entry = only_entry(&dir);
    // Rewrite the entry with a stale schema version, re-framed with a
    // valid checksum so version validation (not the checksum) rejects
    // it.
    let framed = photon_bench::read_framed(&entry).unwrap();
    assert!(framed.verified, "cache entries are checksum-framed");
    let old = format!("\"schema_version\": {CACHE_SCHEMA_VERSION}");
    assert!(
        framed.payload.contains(&old),
        "entry layout changed under the test"
    );
    let stale = framed.payload.replace(&old, "\"schema_version\": 999");
    photon_bench::atomic_write_framed(&entry, &stale).unwrap();

    let rerun = run_specs(&grid(GpuConfig::tiny(), 64), &opts);
    assert_eq!(rerun.stats.cache_hits, 0);
    assert_eq!(rerun.stats.full_runs_executed, 1);
    assert!(rerun.results[0].measurement().is_some());
    assert_eq!(quarantined_entries(&dir).len(), 1);
    assert_eq!(rerun.metrics.counter("refcache.quarantined"), Some(1));

    let _ = std::fs::remove_dir_all(&dir);
}

mod store_properties {
    //! LRU-eviction properties of the sharded store backing the cache:
    //! the byte budget is a hard invariant, and the hottest (most
    //! recently touched) entry is never the eviction victim.

    use photon_bench::ShardedStore;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Single shard, entries capped at a quarter of the budget: the
        /// store never holds more than its budget, and the entry
        /// touched by the previous operation always survives the next
        /// insert's eviction pass.
        #[test]
        fn budget_never_exceeded_and_hottest_never_evicted(
            ops in prop::collection::vec((0u64..24, 1u64..26), 2..250)
        ) {
            const BUDGET: u64 = 100;
            let store: ShardedStore<u64> = ShardedStore::new(1, BUDGET);
            let mut prev: Option<u64> = None;
            for (key, bytes) in ops {
                if store.get(key).is_none() {
                    store.insert(key, key, bytes);
                }
                if let Some(p) = prev {
                    if p != key {
                        prop_assert!(
                            store.get(p).is_some(),
                            "hottest entry {} was evicted",
                            p
                        );
                    }
                }
                let stats = store.stats();
                prop_assert!(
                    stats.bytes <= BUDGET,
                    "store holds {} bytes, budget is {}",
                    stats.bytes,
                    BUDGET
                );
                prev = Some(key);
            }
        }

        /// The budget invariant also holds when keys spread over
        /// multiple shards (each shard enforces its slice).
        #[test]
        fn budget_holds_across_shards(
            ops in prop::collection::vec((0u64..64, 1u64..17), 1..250)
        ) {
            const BUDGET: u64 = 128;
            let store: ShardedStore<u64> = ShardedStore::new(4, BUDGET);
            for (key, bytes) in ops {
                store.insert(key, key, bytes);
                prop_assert!(store.stats().bytes <= BUDGET);
            }
        }
    }
}

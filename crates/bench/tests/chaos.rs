//! Chaos suite: provoke every guardrail in the stack through the
//! seeded fault-injection sites and assert the documented recovery —
//! retries for transient failures, permanent skips for deterministic
//! simulator errors, quarantine for corrupt cache entries, and
//! journal-driven resume that reproduces an uninterrupted run.
//!
//! The fault plan is process-global, so every test takes `lock_faults`
//! (tests in this binary serialize; other test binaries are separate
//! processes with their own — empty — plan).

use gpu_sim::{GpuConfig, GpuSimulator, SamplingController};
use gpu_telemetry::faults::{self, FaultPlan, FaultSite};
use gpu_telemetry::Telemetry;
use gpu_workloads::registry::Benchmark;
use gpu_workloads::App;
use photon::Levels;
use photon_bench::harness::{try_run_app_method, FailureKind, Method, RunOutcome};
use photon_bench::{journal_key, load_journal, run_specs, ExecOptions, RunSpec};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

/// Serializes chaos tests and guarantees the plan is cleared on exit
/// (even when an assertion fails).
struct FaultGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl Drop for FaultGuard {
    fn drop(&mut self) {
        faults::install(None);
        faults::reset_injected();
    }
}

fn lock_faults() -> FaultGuard {
    static LOCK: Mutex<()> = Mutex::new(());
    let g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    faults::install(None);
    faults::reset_injected();
    FaultGuard(g)
}

fn set_faults(spec: &str) {
    faults::install(Some(FaultPlan::parse(spec).expect("valid fault spec")));
}

fn temp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "photon-bench-chaos-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn fir(method: Method) -> RunSpec {
    RunSpec::bench(GpuConfig::tiny(), Benchmark::Fir, 64, method)
}

/// Executor options for chaos runs: hermetic (no cache dir, no journal
/// unless the test opts in) and fast to retry.
fn opts() -> ExecOptions {
    ExecOptions {
        jobs: 1,
        cache: false,
        retries: 2,
        retry_backoff: Duration::from_millis(1),
        ..ExecOptions::default()
    }
}

fn reason_of(outcome: &RunOutcome) -> &str {
    match outcome {
        RunOutcome::Completed(_) => "",
        RunOutcome::Skipped { reason, .. } => reason,
    }
}

/// The wall-clock-free signature used for cross-job-count comparisons:
/// everything that must be bit-identical between `--jobs 1` and
/// `--jobs N`.
fn signature(outcome: &RunOutcome) -> String {
    match outcome {
        RunOutcome::Completed(m) => format!(
            "ok:{}:{}:{}:{}:{}",
            m.sim_cycles, m.detailed_insts, m.functional_insts, m.detailed_warps, m.skipped_kernels
        ),
        RunOutcome::Skipped {
            reason,
            error,
            failure,
            ..
        } => format!("skip:{reason}:{error:?}:{failure:?}"),
    }
}

#[test]
fn exec_panic_is_transient_and_a_retry_succeeds() {
    let spec = fir(Method::Photon(Levels::all()));
    let jkey = journal_key(&spec);
    // Pure seed search: inject on attempt 0 (key = jkey ^ 0), stay
    // clean on attempt 1 (key = jkey ^ 1).
    let seed = (0..100_000u64)
        .find(|&s| {
            let p = FaultPlan::parse(&format!("exec.panic:0.5:{s}")).unwrap();
            p.would_inject(FaultSite::ExecPanic, jkey)
                && !p.would_inject(FaultSite::ExecPanic, jkey ^ 1)
        })
        .expect("a seed that panics attempt 0 and spares attempt 1");

    let _g = lock_faults();
    set_faults(&format!("exec.panic:0.5:{seed}"));
    let report = run_specs(&[spec], &opts());
    assert!(
        report.results[0].measurement().is_some(),
        "retry after an injected panic must succeed: {:?}",
        report.results[0].outcome
    );
    assert_eq!(report.stats.retried, 1);
    assert_eq!(faults::injected(FaultSite::ExecPanic), 1);
}

#[test]
fn exec_panic_at_rate_one_exhausts_the_retry_budget() {
    let _g = lock_faults();
    set_faults("exec.panic:1.0:1");
    let report = run_specs(&[fir(Method::Photon(Levels::all()))], &opts());
    let outcome = &report.results[0].outcome;
    assert!(reason_of(outcome).contains("panicked"), "{outcome:?}");
    assert_eq!(outcome.failure(), Some(FailureKind::Transient));
    // retries = 2 -> three attempts total, two of them retries.
    assert_eq!(report.stats.retried, 2);
    assert_eq!(report.stats.skipped, 1);
    assert_eq!(faults::injected(FaultSite::ExecPanic), 3);
}

#[test]
fn exec_stall_trips_the_timeout_and_counts_the_abandoned_thread() {
    let _g = lock_faults();
    set_faults("exec.stall:1.0:1");
    let mut o = opts();
    o.timeout = Duration::from_millis(100);
    o.retries = 0;
    let report = run_specs(&[fir(Method::Photon(Levels::all()))], &o);
    let outcome = &report.results[0].outcome;
    assert!(reason_of(outcome).contains("timed out"), "{outcome:?}");
    assert_eq!(outcome.failure(), Some(FailureKind::Transient));
    let abandoned = report
        .metrics
        .gauges
        .iter()
        .find(|g| g.name == "exec.abandoned_threads")
        .expect("executor reports the abandoned-thread gauge");
    assert!(abandoned.value >= 1.0, "gauge {}", abandoned.value);
    // Let the injected 200ms sleeper drain before the next test reuses
    // the fault lock (keeps the global abandoned counter quiescent).
    std::thread::sleep(Duration::from_millis(250));
}

#[test]
fn watchdog_fuel_exhaustion_is_a_permanent_skip_without_retries() {
    let _g = lock_faults();
    set_faults("watchdog.fuel:1.0:1");
    let report = run_specs(&[fir(Method::Full)], &opts());
    let outcome = &report.results[0].outcome;
    assert_eq!(outcome.failure(), Some(FailureKind::Permanent));
    match outcome {
        RunOutcome::Skipped { error, .. } => {
            let error = error.as_deref().unwrap_or_default();
            assert!(error.contains("FuelExhausted"), "{error}");
        }
        RunOutcome::Completed(_) => panic!("fuel exhaustion must skip the run"),
    }
    // Deterministic simulator errors never burn the retry budget.
    assert_eq!(report.stats.retried, 0);
    assert!(faults::injected(FaultSite::WatchdogFuel) >= 1);
}

#[test]
fn watchdog_stuck_warp_is_a_permanent_deadlock_skip() {
    let _g = lock_faults();
    set_faults("watchdog.stuck:1.0:1");
    let report = run_specs(&[fir(Method::Full)], &opts());
    let outcome = &report.results[0].outcome;
    assert_eq!(outcome.failure(), Some(FailureKind::Permanent));
    match outcome {
        RunOutcome::Skipped { error, .. } => {
            let error = error.as_deref().unwrap_or_default();
            assert!(error.contains("Deadlock"), "{error}");
        }
        RunOutcome::Completed(_) => panic!("a zero stall budget must deadlock the run"),
    }
    assert_eq!(report.stats.retried, 0);
}

/// Requests an IPC abort after the first elapsed window — the
/// engine-side guardrail (not the controller) must refuse it when the
/// verdict degenerates to NaN.
struct AbortAfterFirstWindow {
    windows: u32,
    ipc: f64,
}

impl SamplingController for AbortAfterFirstWindow {
    fn on_ipc_window(&mut self, _start: gpu_sim::Cycle, insts: u64, window: gpu_sim::Cycle) {
        self.windows += 1;
        self.ipc = insts as f64 / window as f64;
    }
    fn check_abort(&mut self) -> Option<f64> {
        (self.windows >= 1 && self.ipc > 0.0).then_some(self.ipc)
    }
}

#[test]
fn controller_nan_abort_is_refused_and_the_run_stays_detailed() {
    let _g = lock_faults();

    // Control: the same controller aborts and extrapolates when the
    // verdict is sane.
    let mut gpu = GpuSimulator::new(GpuConfig::tiny());
    let app = gpu_workloads::fir::build(&mut gpu, 256, 7);
    let launch = app.launches()[0].launch.clone();
    let mut ctrl = AbortAfterFirstWindow {
        windows: 0,
        ipc: 0.0,
    };
    let aborted = gpu.run_kernel_sampled(&launch, &mut ctrl).unwrap();
    assert!(
        aborted.functional_insts > 0,
        "control run must accept the abort and extrapolate"
    );

    // Fault: the verdict degenerates to NaN at the moment of use; the
    // engine must refuse it and finish in detail.
    set_faults("controller.nan:1.0:9");
    let tel = Telemetry::default();
    let mut gpu = GpuSimulator::with_telemetry(GpuConfig::tiny(), tel.clone());
    let app = gpu_workloads::fir::build(&mut gpu, 256, 7);
    let launch = app.launches()[0].launch.clone();
    let mut ctrl = AbortAfterFirstWindow {
        windows: 0,
        ipc: 0.0,
    };
    let detailed = gpu.run_kernel_sampled(&launch, &mut ctrl).unwrap();
    assert_eq!(
        detailed.functional_insts, 0,
        "a refused abort must stay fully detailed"
    );
    assert!(detailed.detailed_insts > aborted.detailed_insts);
    let snap = tel.snapshot();
    assert!(snap.counter("sim.ipc_abort.refused").unwrap_or(0) >= 1);
    assert!(faults::injected(FaultSite::ControllerNan) >= 1);
}

/// Three identical FIR launches so Photon's kernel-sampling matches the
/// second and third against the first's history entry.
fn fir3(gpu: &mut GpuSimulator) -> App {
    let fir = gpu_workloads::fir::build(gpu, 64, 7);
    let l = fir.launches()[0].clone();
    App::new("FIR", vec![l.clone(), l.clone(), l])
}

#[test]
fn controller_zero_cycle_prediction_falls_back_to_detailed_simulation() {
    let _g = lock_faults();
    let method = Method::Photon(Levels::kernel_only());
    let pcfg = photon_bench::scaled_photon_config(Levels::kernel_only());

    // Control: repeated identical kernels are skipped via history.
    let control = try_run_app_method(
        &GpuConfig::tiny(),
        "FIR",
        &fir3,
        &method,
        &pcfg,
        &Telemetry::default(),
    )
    .unwrap();
    assert!(
        control.skipped_kernels > 0,
        "kernel-sampling must skip a repeated kernel"
    );

    // Fault: every prediction degenerates to zero cycles; the
    // controller's guardrail must refuse the skip and simulate.
    set_faults("controller.zero_cycle:1.0:3");
    let tel = Telemetry::default();
    let guarded =
        try_run_app_method(&GpuConfig::tiny(), "FIR", &fir3, &method, &pcfg, &tel).unwrap();
    assert_eq!(
        guarded.skipped_kernels, 0,
        "zero-cycle skips must be refused"
    );
    assert!(faults::injected(FaultSite::ControllerZeroCycle) >= 1);

    // Refusing the skip means full detail: every kernel's cycles match
    // the detailed reference.
    let full = try_run_app_method(
        &GpuConfig::tiny(),
        "FIR",
        &fir3,
        &Method::Full,
        &pcfg,
        &Telemetry::default(),
    )
    .unwrap();
    faults::install(None);
    assert_eq!(guarded.sim_cycles, full.sim_cycles);
}

#[test]
fn fault_decisions_are_identical_across_job_counts() {
    let grid = vec![
        fir(Method::Full),
        fir(Method::Photon(Levels::all())),
        RunSpec::bench(GpuConfig::tiny(), Benchmark::Relu, 64, Method::Full),
        RunSpec::bench(
            GpuConfig::tiny(),
            Benchmark::Relu,
            64,
            Method::Photon(Levels::all()),
        ),
    ];
    // Pick a seed whose plan panics at least one spec's final attempt,
    // so the comparison covers a surviving injected failure (retries =
    // 1 -> attempts use keys jkey ^ 0 and jkey ^ 1).
    let seed = (0..100_000u64)
        .find(|&s| {
            let p = FaultPlan::parse(&format!("exec.panic:0.5:{s}")).unwrap();
            grid.iter().any(|spec| {
                let k = journal_key(spec);
                p.would_inject(FaultSite::ExecPanic, k)
                    && p.would_inject(FaultSite::ExecPanic, k ^ 1)
            })
        })
        .expect("a seed that exhausts some spec's retry budget");

    let _g = lock_faults();
    let plan = format!("exec.panic:0.5:{seed}");
    let mut o = opts();
    o.retries = 1;

    set_faults(&plan);
    o.jobs = 1;
    let serial = run_specs(&grid, &o);
    // Fresh plan install between runs (counters are diagnostics only;
    // decisions are pure, so reinstalling changes nothing).
    set_faults(&plan);
    o.jobs = 4;
    let parallel = run_specs(&grid, &o);

    let s: Vec<String> = serial
        .results
        .iter()
        .map(|r| signature(&r.outcome))
        .collect();
    let p: Vec<String> = parallel
        .results
        .iter()
        .map(|r| signature(&r.outcome))
        .collect();
    assert_eq!(s, p, "jobs=1 and jobs=4 diverged under the same fault seed");
    assert_eq!(serial.stats.retried, parallel.stats.retried);
    assert!(
        serial.results.iter().any(|r| r.measurement().is_none()),
        "the chosen seed must actually skip something"
    );
}

#[test]
fn torn_cache_write_is_quarantined_on_the_next_lookup() {
    let _g = lock_faults();
    let dir = temp_dir("torn-write");
    let mut o = opts();
    o.cache = true;
    o.cache_dir = Some(dir.clone());

    // The write lands torn (as if the process died mid-write, without
    // the atomic rename): the run itself still completes.
    set_faults("refcache.write.torn:1.0:5");
    let first = run_specs(&[fir(Method::Full)], &o);
    assert!(first.results[0].measurement().is_some());
    assert!(faults::injected(FaultSite::RefcacheWriteTorn) >= 1);

    // Next lookup sees the torn entry: quarantine + recompute + repair.
    faults::install(None);
    let second = run_specs(&[fir(Method::Full)], &o);
    assert_eq!(second.stats.cache_hits, 0);
    assert_eq!(second.stats.full_runs_executed, 1);
    assert_eq!(second.metrics.counter("refcache.quarantined"), Some(1));

    let third = run_specs(&[fir(Method::Full)], &o);
    assert_eq!(third.stats.cache_hits, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_write_io_error_degrades_to_uncached_operation() {
    let _g = lock_faults();
    let dir = temp_dir("ioerr");
    let mut o = opts();
    o.cache = true;
    o.cache_dir = Some(dir.clone());

    set_faults("refcache.write.ioerr:1.0:5");
    let first = run_specs(&[fir(Method::Full)], &o);
    assert!(first.results[0].measurement().is_some());

    // Nothing was persisted, so the rerun recomputes (no hit, no crash).
    faults::install(None);
    let second = run_specs(&[fir(Method::Full)], &o);
    assert_eq!(second.stats.cache_hits, 0);
    assert_eq!(second.stats.full_runs_executed, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bit_corrupted_cache_read_is_quarantined_and_recomputed() {
    let _g = lock_faults();
    let dir = temp_dir("read-corrupt");
    let mut o = opts();
    o.cache = true;
    o.cache_dir = Some(dir.clone());

    // Populate a healthy entry, then corrupt it at read time.
    let cold = run_specs(&[fir(Method::Full)], &o);
    assert!(cold.results[0].measurement().is_some());
    set_faults("refcache.read.corrupt:1.0:5");
    let corrupted = run_specs(&[fir(Method::Full)], &o);
    assert_eq!(corrupted.stats.cache_hits, 0);
    assert_eq!(corrupted.stats.full_runs_executed, 1);
    assert_eq!(corrupted.metrics.counter("refcache.quarantined"), Some(1));
    assert!(faults::injected(FaultSite::RefcacheReadCorrupt) >= 1);
    assert!(corrupted.results[0].measurement().is_some());
    let _ = std::fs::remove_dir_all(&dir);
}

fn journal_grid() -> Vec<RunSpec> {
    vec![
        fir(Method::Full),
        fir(Method::Photon(Levels::all())),
        RunSpec::bench(
            GpuConfig::tiny(),
            Benchmark::Relu,
            64,
            Method::Photon(Levels::all()),
        ),
    ]
}

fn journal_opts(path: &Path) -> ExecOptions {
    ExecOptions {
        journal: Some(path.to_path_buf()),
        ..opts()
    }
}

/// Serialized outcomes + merged metrics — the byte-level content a
/// report is built from (wall-clock included: replay preserves it).
fn report_bytes(report: &photon_bench::ExecReport) -> String {
    let mut merged = gpu_telemetry::MetricsSnapshot::default();
    for r in &report.results {
        merged.merge(&r.metrics);
    }
    merged.merge(&report.metrics);
    let outcomes: Vec<String> = report
        .results
        .iter()
        .map(|r| serde_json::to_string(&r.outcome).unwrap())
        .collect();
    format!(
        "{}|{}",
        outcomes.join("\n"),
        serde_json::to_string(&merged).unwrap()
    )
}

#[test]
fn resume_replays_the_journal_byte_identically() {
    let _g = lock_faults();
    let dir = temp_dir("resume");
    std::fs::create_dir_all(&dir).unwrap();
    let jpath = dir.join("journal.jsonl");
    let o = journal_opts(&jpath);

    let first = run_specs(&journal_grid(), &o);
    assert_eq!(first.stats.executed, 3);
    let load = load_journal(&jpath);
    assert_eq!(load.corrupt_lines, 0);
    assert_eq!(load.entries.len(), 3);

    // Resume with a complete journal: zero simulations, identical
    // report content (measurements, wall clocks, merged metrics).
    let resumed = run_specs(
        &journal_grid(),
        &ExecOptions {
            resume: true,
            ..o.clone()
        },
    );
    assert_eq!(resumed.stats.resumed, 3);
    assert_eq!(resumed.stats.executed, 0);
    assert_eq!(report_bytes(&resumed), report_bytes(&first));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_simulates_only_the_specs_missing_from_the_journal() {
    let _g = lock_faults();
    let dir = temp_dir("resume-partial");
    std::fs::create_dir_all(&dir).unwrap();
    let jpath = dir.join("journal.jsonl");
    let o = journal_opts(&jpath);

    let first = run_specs(&journal_grid(), &o);
    assert_eq!(first.stats.executed, 3);

    // Simulate a kill after the first completed spec: keep only the
    // journal's first line.
    let text = std::fs::read_to_string(&jpath).unwrap();
    let first_line = text.lines().next().unwrap().to_string();
    std::fs::write(&jpath, format!("{first_line}\n")).unwrap();

    let resumed = run_specs(
        &journal_grid(),
        &ExecOptions {
            resume: true,
            ..o.clone()
        },
    );
    assert_eq!(resumed.stats.resumed, 1);
    assert_eq!(resumed.stats.executed, 2);
    assert!(resumed.results.iter().all(|r| r.measurement().is_some()));
    // The journal was appended, not truncated: a second resume replays
    // everything.
    let again = run_specs(&journal_grid(), &ExecOptions { resume: true, ..o });
    assert_eq!(again.stats.resumed, 3);
    assert_eq!(again.stats.executed, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn engine_epoch_stall_slows_workers_without_changing_results() {
    let _g = lock_faults();
    // Deterministic epoch engine at 4 worker threads: injected barrier
    // stalls (a slow/descheduled worker) may cost wall time but must be
    // invisible in every simulated metric — the epoch protocol commits
    // shard effects in canonical order regardless of worker timing.
    let run = || {
        let mut cfg = GpuConfig::tiny();
        cfg.engine.mode = gpu_sim::EngineMode::Deterministic;
        cfg.engine.threads = 4;
        let mut gpu = GpuSimulator::new(cfg);
        let app = gpu_workloads::fir::build(&mut gpu, 64, 7);
        app.run(&mut gpu, &mut gpu_sim::NullController).unwrap();
        gpu.telemetry().snapshot()
    };
    let clean = run();
    set_faults("engine.epoch.stall:0.05:7");
    let stalled = run();
    assert!(faults::injected(FaultSite::EngineEpochStall) >= 1);
    assert_eq!(
        clean, stalled,
        "barrier stalls must not leak into simulation results"
    );
}

#[test]
fn torn_journal_lines_force_a_rerun_instead_of_a_bad_replay() {
    let _g = lock_faults();
    let dir = temp_dir("journal-torn");
    std::fs::create_dir_all(&dir).unwrap();
    let jpath = dir.join("journal.jsonl");
    let o = journal_opts(&jpath);

    // Every journal append lands torn, as if the process crashed
    // mid-line each time.
    set_faults("journal.torn:1.0:1");
    let first = run_specs(&journal_grid(), &o);
    assert_eq!(first.stats.executed, 3);
    assert!(faults::injected(FaultSite::JournalTorn) >= 3);

    faults::install(None);
    let load = load_journal(&jpath);
    assert_eq!(load.entries.len(), 0, "torn lines must not replay");
    // A torn line loses its newline too, so consecutive torn appends
    // run together; what matters is that nothing validates.
    assert!(load.corrupt_lines >= 1);

    // Resume finds nothing usable and re-simulates everything.
    let resumed = run_specs(&journal_grid(), &ExecOptions { resume: true, ..o });
    assert_eq!(resumed.stats.resumed, 0);
    assert_eq!(resumed.stats.executed, 3);
    let _ = std::fs::remove_dir_all(&dir);
}

//! Executor determinism and deduplication: the same grid must produce
//! bit-identical measurements (modulo wall-clock) at any job count.

use gpu_sim::GpuConfig;
use gpu_workloads::registry::Benchmark;
use photon::Levels;
use photon_bench::specs::DEFAULT_SEED;
use photon_bench::{run_specs, ExecOptions, Measurement, Method, RunSpec};

fn grid() -> Vec<RunSpec> {
    let gpu = GpuConfig::tiny();
    let mut specs = Vec::new();
    for bench in [Benchmark::Fir, Benchmark::Mm, Benchmark::Spmv] {
        for method in [Method::Full, Method::Photon(Levels::all()), Method::Pka] {
            specs.push(RunSpec::bench(gpu.clone(), bench, 64, method));
        }
    }
    specs
}

fn opts(jobs: usize) -> ExecOptions {
    ExecOptions {
        jobs,
        cache: false,
        ..ExecOptions::default()
    }
}

/// Everything a measurement determines except wall-clock time.
fn deterministic_view(m: &Measurement) -> impl PartialEq + std::fmt::Debug {
    (
        m.workload.clone(),
        m.method.clone(),
        m.warps,
        (
            m.sim_cycles,
            m.detailed_insts,
            m.functional_insts,
            m.detailed_warps,
            m.predicted_warps,
        ),
        (m.skipped_kernels, m.kernel_cycles.clone()),
    )
}

#[test]
fn jobs_1_and_jobs_4_are_bit_identical() {
    let specs = grid();
    let seq = run_specs(&specs, &opts(1));
    let par = run_specs(&specs, &opts(4));
    assert_eq!(seq.results.len(), par.results.len());
    for (a, b) in seq.results.iter().zip(&par.results) {
        assert_eq!(a.spec, b.spec);
        let (ma, mb) = (
            a.measurement().expect("sequential run completed"),
            b.measurement().expect("parallel run completed"),
        );
        // sim cycles, per-kernel cycles, and every controller decision
        // (sampled vs detailed warps, skipped kernels) must match
        assert_eq!(
            deterministic_view(ma),
            deterministic_view(mb),
            "{} diverged between --jobs 1 and --jobs 4",
            a.spec.label()
        );
        // the run's own telemetry counters are part of the contract too
        assert_eq!(
            a.metrics.counters,
            b.metrics.counters,
            "{} telemetry diverged",
            a.spec.label()
        );
    }
    assert_eq!(seq.stats.executed, par.stats.executed);
    assert_eq!(seq.stats.full_runs_executed, par.stats.full_runs_executed);
}

#[test]
fn identical_specs_are_simulated_once() {
    let gpu = GpuConfig::tiny();
    let spec = RunSpec::bench(gpu, Benchmark::Fir, 64, Method::Full);
    let specs = vec![spec.clone(), spec.clone(), spec];
    let report = run_specs(&specs, &opts(2));
    assert_eq!(report.stats.total, 3);
    assert_eq!(report.stats.executed, 1);
    assert_eq!(report.stats.deduped, 2);
    let m0 = report.results[0].measurement().unwrap();
    for r in &report.results[1..] {
        assert_eq!(
            m0.sim_cycles,
            r.measurement().unwrap().sim_cycles,
            "deduped copies answer with the executed measurement"
        );
        // aliases carry no telemetry, so merging every result's metrics
        // never double-counts the single simulation
        assert!(r.metrics.counters.is_empty());
    }
}

#[test]
fn skipped_runs_do_not_poison_siblings() {
    // 0 warps is rejected by kernel pre-flight validation -> Skipped.
    let gpu = GpuConfig::tiny();
    let specs = vec![
        RunSpec::bench(gpu.clone(), Benchmark::Fir, 0, Method::Full),
        RunSpec::bench(gpu, Benchmark::Fir, 64, Method::Full),
    ];
    let report = run_specs(&specs, &opts(2));
    assert_eq!(report.stats.skipped, 1);
    assert!(report.results[0].measurement().is_none());
    assert!(report.results[1].measurement().is_some());
    assert_eq!(report.results[0].spec.seed, DEFAULT_SEED);
}

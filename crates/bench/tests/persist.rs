//! Torn-write property tests: a file truncated at *every* byte
//! boundary — the on-disk state a crash mid-write can leave behind when
//! the atomic-rename path is bypassed — must never panic a loader and
//! must never yield partial data. A load either fails (and the caller
//! recomputes) or returns exactly what was written.

use photon_bench::hotpath::{load_hot_report, write_hot_report, HotMeasurement, HotReport};
use photon_bench::journal::{load_journal, Journal};
use photon_bench::{atomic_write_framed, read_framed};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

fn temp_dir() -> PathBuf {
    static NEXT: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "photon-bench-persist-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn framed_payload_truncated_at_every_boundary_is_never_partially_verified() {
    let dir = temp_dir();
    let full = dir.join("full.json");
    let payload = "{\"alpha\": 1, \"beta\": [2, 3, 4], \"gamma\": \"delta epsilon\"}";
    atomic_write_framed(&full, payload).unwrap();
    let bytes = std::fs::read(&full).unwrap();

    let torn = dir.join("torn.json");
    for cut in 0..=bytes.len() {
        std::fs::write(&torn, &bytes[..cut]).unwrap();
        match read_framed(&torn) {
            // A verified load must be the complete payload — a torn
            // prefix passing the checksum would be a broken checksum.
            Ok(f) if f.verified => assert_eq!(f.payload, payload, "cut at byte {cut}"),
            // Unverified (legacy-shaped) or failed loads are fine: the
            // caller's parse/validate stage rejects partial JSON.
            Ok(_) | Err(_) => {}
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hot_report_truncated_at_every_boundary_loads_fully_or_not_at_all() {
    let dir = temp_dir();
    let full = dir.join("BENCH_hot.json");
    let report = HotReport {
        schema_version: photon_bench::hotpath::HOT_SCHEMA_VERSION,
        iterations: 3,
        jobs: 2,
        measurements: vec![HotMeasurement {
            workload: "FIR".into(),
            warps: 2048,
            method: "Full".into(),
            detailed_insts: 123_456,
            total_insts: 123_456,
            wall_secs: 1.5,
            insts_per_sec: 82_304.0,
        }],
    };
    write_hot_report(&report, &full).unwrap();
    let bytes = std::fs::read(&full).unwrap();

    let torn = dir.join("torn.json");
    for cut in 0..=bytes.len() {
        std::fs::write(&torn, &bytes[..cut]).unwrap();
        match load_hot_report(&torn) {
            // Success implies complete data, bit for bit.
            Ok(loaded) => assert_eq!(loaded, report, "cut at byte {cut}"),
            Err(e) => assert!(!e.is_empty()),
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn journal_truncated_at_every_boundary_yields_only_complete_entries() {
    use gpu_sim::GpuConfig;
    use gpu_workloads::registry::Benchmark;
    use photon_bench::harness::{Method, RunOutcome};
    use photon_bench::{journal_key, RunSpec};

    let dir = temp_dir();
    let path = dir.join("journal.jsonl");
    let j = Journal::create(&path).unwrap();
    // Three entries with distinct cycle counts so partial data would be
    // distinguishable from complete data.
    let mut keys = Vec::new();
    for (i, warps) in [64u64, 128, 256].iter().enumerate() {
        let spec = RunSpec::bench(GpuConfig::tiny(), Benchmark::Fir, *warps, Method::Full);
        let key = journal_key(&spec);
        keys.push((key, 1000 + i as u64));
        let outcome = RunOutcome::Skipped {
            workload: format!("fir-{warps}"),
            method: "Full".into(),
            reason: format!("probe {i}"),
            error: Some(format!("cycles-{}", 1000 + i)),
            failure: photon_bench::harness::FailureKind::Permanent,
        };
        j.record(key, "fir/Full", &outcome, &Default::default());
    }
    drop(j);
    let bytes = std::fs::read(&path).unwrap();
    let baseline = load_journal(&path);
    assert_eq!(baseline.entries.len(), 3);
    assert_eq!(baseline.corrupt_lines, 0);

    let torn = dir.join("torn.jsonl");
    for cut in 0..=bytes.len() {
        std::fs::write(&torn, &bytes[..cut]).unwrap();
        let load = load_journal(&torn);
        // Never more entries than were written; every surviving entry
        // is byte-identical to the original (crc guarantees it).
        assert!(load.entries.len() <= 3, "cut at byte {cut}");
        for (key, entry) in &load.entries {
            let original = &baseline.entries[key];
            assert_eq!(
                serde_json::to_string(entry).unwrap(),
                serde_json::to_string(original).unwrap(),
                "cut at byte {cut}"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

//! Criterion microbenchmarks for the Photon reproduction: the hot data
//! structures (BBVs, detectors, caches), the functional and timing
//! engines, and end-to-end sampled-vs-detailed comparisons, plus the
//! parameter ablations DESIGN.md calls out (window sizes, projection
//! dimensionality, sample fraction).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_isa::{BasicBlockId, BasicBlockMap, Inst};
use gpu_mem::{AccessKind, Cache, CacheConfig, MemHierarchyConfig, MemoryHierarchy};
use gpu_sim::{GpuConfig, GpuSimulator, NullController, WarpTrace};
use gpu_workloads::registry::Benchmark;
use photon::{Bbv, GpuBbv, LatencyTable, Levels, PhotonConfig, PhotonController, RollingStability};
use std::hint::black_box;

fn barrier_map(n: usize) -> BasicBlockMap {
    let mut insts = Vec::new();
    for _ in 0..n - 1 {
        insts.push(Inst::SBarrier);
    }
    insts.push(Inst::SEndpgm);
    BasicBlockMap::from_program(&insts)
}

fn synthetic_trace(blocks: usize) -> WarpTrace {
    WarpTrace::from_counts(
        (0..blocks as u32)
            .map(|b| (BasicBlockId(b), 1 + (b * 7) % 50))
            .collect(),
        1000,
    )
}

fn bench_bbv(c: &mut Criterion) {
    let map = barrier_map(64);
    let trace = synthetic_trace(64);
    c.bench_function("bbv/from_trace_64_blocks", |b| {
        b.iter(|| Bbv::from_trace(black_box(&trace), &map))
    });

    // projection-dimension ablation (paper uses 16)
    let mut group = c.benchmark_group("ablation/bbv_projection_dim");
    for dim in [8usize, 16, 32, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |b, &dim| {
            b.iter(|| Bbv::from_trace_with_dim(black_box(&trace), &map, dim))
        });
    }
    group.finish();

    let bbv_a = Bbv::from_trace(&trace, &map);
    let gpu_a = GpuBbv::new(vec![(bbv_a.clone(), 90), (bbv_a.clone(), 10)], 1000.0);
    let gpu_b = GpuBbv::new(vec![(bbv_a, 100)], 900.0);
    c.bench_function("bbv/gpu_bbv_distance", |b| {
        b.iter(|| black_box(&gpu_a).distance(black_box(&gpu_b)))
    });
}

fn bench_detector(c: &mut Criterion) {
    // rolling detector push+check throughput — the per-record cost of
    // Photon's online monitoring
    let mut group = c.benchmark_group("ablation/detector_window");
    for window in [512usize, 1024, 2048, 4096] {
        group.bench_with_input(BenchmarkId::from_parameter(window), &window, |b, &w| {
            b.iter_batched(
                || RollingStability::new(w, 0.03),
                |mut d| {
                    for i in 0..1000u64 {
                        d.push(i as f64 * 10.0, i as f64 * 10.0 + 100.0);
                        black_box(d.is_stable());
                    }
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_interval_model(c: &mut Criterion) {
    let mut kb = gpu_isa::KernelBuilder::new("chain");
    let v = kb.vreg();
    for _ in 0..64 {
        kb.valu(
            gpu_isa::VAluOp::FAdd,
            v,
            gpu_isa::VectorSrc::Reg(v),
            gpu_isa::VectorSrc::ImmF32(1.0),
        );
    }
    let p = kb.finish().unwrap();
    let table = LatencyTable::new();
    c.bench_function("interval/predict_64_inst_block", |b| {
        b.iter(|| photon::predict_block_interval(black_box(&p), 0, 64, &table))
    });
}

fn bench_memory(c: &mut Criterion) {
    c.bench_function("cache/tag_array_access", |b| {
        let mut cache = Cache::new(&CacheConfig::new(16 * 1024, 4, 64, 28, 1));
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(4096 + 64);
            black_box(cache.access(i % (1 << 20), AccessKind::Read, i))
        })
    });
    c.bench_function("hierarchy/line_access", |b| {
        let mut cfg = MemHierarchyConfig::r9_nano();
        cfg.num_cus = 4;
        let mut h = MemoryHierarchy::new(cfg);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(h.access_line((i % 4) as usize, i * 7 % 100_000, AccessKind::Read, i))
        })
    });
}

fn bench_engines(c: &mut Criterion) {
    // functional interpreter throughput
    c.bench_function("engine/functional_trace_fir_warp", |b| {
        let mut gpu = GpuSimulator::new(GpuConfig::tiny());
        let app = Benchmark::Fir.build(&mut gpu, 16, 1);
        let launch = &app.launches()[0].launch;
        b.iter(|| {
            black_box(gpu_sim::trace_warp_isolated(
                launch,
                gpu.mem(),
                0,
                10_000_000,
            ))
        })
    });

    // detailed timing engine: small ReLU end to end
    c.bench_function("engine/detailed_relu_256_warps", |b| {
        b.iter_batched(
            || {
                let mut gpu = GpuSimulator::new(GpuConfig::tiny());
                let app = Benchmark::Relu.build(&mut gpu, 256, 1);
                (gpu, app)
            },
            |(mut gpu, app)| black_box(app.run(&mut gpu, &mut NullController).unwrap()),
            criterion::BatchSize::LargeInput,
        )
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    // sampled vs detailed on the same workload: the wall-time win is
    // the paper's headline metric
    let mut group = c.benchmark_group("end_to_end/relu_2048_warps");
    group.sample_size(10);
    group.bench_function("full_detailed", |b| {
        b.iter_batched(
            || {
                let mut gpu = GpuSimulator::new(GpuConfig::r9_nano().with_num_cus(8));
                let app = Benchmark::Relu.build(&mut gpu, 2048, 1);
                (gpu, app)
            },
            |(mut gpu, app)| black_box(app.run(&mut gpu, &mut NullController).unwrap()),
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("photon", |b| {
        b.iter_batched(
            || {
                let mut gpu = GpuSimulator::new(GpuConfig::r9_nano().with_num_cus(8));
                let app = Benchmark::Relu.build(&mut gpu, 2048, 1);
                let ph = PhotonController::new(
                    PhotonConfig::with_levels(Levels::all()).small_windows(128, 64),
                    8,
                );
                (gpu, app, ph)
            },
            |(mut gpu, app, mut ph)| black_box(app.run(&mut gpu, &mut ph).unwrap()),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();

    // sample-fraction ablation: online analysis cost
    let mut group = c.benchmark_group("ablation/sample_fraction");
    group.sample_size(10);
    for pct in [1u32, 2, 5] {
        group.bench_with_input(BenchmarkId::from_parameter(pct), &pct, |b, &pct| {
            b.iter_batched(
                || {
                    let mut gpu = GpuSimulator::new(GpuConfig::tiny());
                    let app = Benchmark::Fir.build(&mut gpu, 512, 1);
                    let cfg = PhotonConfig {
                        sample_fraction: pct as f64 / 100.0,
                        ..PhotonConfig::with_levels(Levels::all()).small_windows(128, 64)
                    };
                    let ph = PhotonController::new(cfg, 4);
                    (gpu, app, ph)
                },
                |(mut gpu, app, mut ph)| black_box(app.run(&mut gpu, &mut ph).unwrap()),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_bbv,
    bench_detector,
    bench_interval_model,
    bench_memory,
    bench_engines,
    bench_end_to_end
);
criterion_main!(benches);

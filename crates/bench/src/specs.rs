//! The one place experiment grids are declared: machine configurations,
//! scaling rules, methods under comparison, and the [`RunSpec`] job
//! descriptions the executor consumes.
//!
//! Before this module each figure binary re-declared its own
//! `r9_nano()`/`mi100()` scaling and method lists by hand; now a figure
//! is a [`RunSpec`] grid built here plus presentation code, and two
//! figures that need the same full-detailed reference automatically
//! produce *identical* specs — which is what lets the executor's
//! reference cache deduplicate them.

use gpu_sim::{GpuConfig, GpuSimulator};
use gpu_workloads::dnn::DnnScale;
use gpu_workloads::registry::{Benchmark, RealWorldApp};
use gpu_workloads::App;
use photon::{Levels, PhotonConfig};
use serde::{Deserialize, Serialize};

/// Whether the full-size (64/120 CU, paper-sized sweeps) mode is on.
pub fn full_size() -> bool {
    std::env::var("PHOTON_BENCH_FULL").is_ok_and(|v| v == "1")
}

/// CU divisor for the scaled experiment configurations.
fn cu_div() -> u32 {
    if full_size() {
        1
    } else {
        4
    }
}

/// Problem-size divisor matching the CU divisor.
pub fn size_scale() -> u64 {
    cu_div() as u64
}

/// The R9 Nano experiment configuration (possibly CU-scaled).
pub fn r9_nano() -> GpuConfig {
    let full = GpuConfig::r9_nano();
    let n = full.num_cus / cu_div();
    full.with_num_cus(n)
}

/// The MI100 experiment configuration (possibly CU-scaled).
pub fn mi100() -> GpuConfig {
    let full = GpuConfig::mi100();
    let n = full.num_cus / cu_div();
    full.with_num_cus(n)
}

/// The Photon configuration used across the experiments: paper
/// thresholds with the warp window scaled alongside the problem sizes
/// (the paper's 1024 assumes full-size problems).
pub fn scaled_photon_config(levels: Levels) -> PhotonConfig {
    let mut cfg = PhotonConfig::with_levels(levels);
    if !full_size() {
        cfg.warp_window = 512;
    }
    cfg
}

/// The DNN scaling used by the real-world experiments (see DESIGN.md's
/// substitution table): kernels must be large enough that detailed
/// simulation dominates the online-analysis overhead, as in the paper.
pub fn dnn_scale() -> DnnScale {
    if full_size() {
        DnnScale {
            input_hw: 224,
            channel_div: 1,
        }
    } else {
        DnnScale {
            input_hw: 64,
            channel_div: 4,
        }
    }
}

/// A simulation methodology under comparison.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Method {
    /// Full detailed simulation (the accuracy baseline).
    Full,
    /// Photon with the given level mask.
    Photon(Levels),
    /// The PKA baseline.
    Pka,
    /// The TBPoint baseline (sampled thread blocks, no stability gate).
    TbPoint,
    /// The Sieve baseline (inter-kernel stratified sampling only).
    Sieve,
}

impl Method {
    /// Display name for table columns.
    pub fn name(&self) -> String {
        match self {
            Method::Full => "Full".to_string(),
            Method::Photon(l) if *l == Levels::all() => "Photon".to_string(),
            Method::Photon(l) if *l == Levels::bb_only() => "BB-sampling".to_string(),
            Method::Photon(l) if *l == Levels::warp_only() => "Warp-sampling".to_string(),
            Method::Photon(l) if *l == Levels::kernel_only() => "Kernel-sampling".to_string(),
            Method::Photon(l) if *l == Levels::kernel_warp() => "Kernel+Warp".to_string(),
            Method::Photon(_) => "Photon(custom)".to_string(),
            Method::Pka => "PKA".to_string(),
            Method::TbPoint => "TBPoint".to_string(),
            Method::Sieve => "Sieve".to_string(),
        }
    }
}

/// Figure 13's method list: PKA and full Photon against the reference.
pub fn fig13_methods() -> Vec<Method> {
    vec![Method::Pka, Method::Photon(Levels::all())]
}

/// Figure 14's method list: full Photon on the MI100.
pub fn fig14_methods() -> Vec<Method> {
    vec![Method::Photon(Levels::all())]
}

/// Figure 15's ablation list: BB-only, warp-only, full Photon.
pub fn fig15_methods() -> Vec<Method> {
    vec![
        Method::Photon(Levels::bb_only()),
        Method::Photon(Levels::warp_only()),
        Method::Photon(Levels::all()),
    ]
}

/// Figure 17's per-layer method list: kernel-sampling, kernel+warp,
/// full Photon.
pub fn fig17_methods() -> Vec<Method> {
    vec![
        Method::Photon(Levels::kernel_only()),
        Method::Photon(Levels::kernel_warp()),
        Method::Photon(Levels::all()),
    ]
}

/// What to simulate: a Table 2 micro-benchmark at a problem size, or a
/// real-world application at a DNN scale. Serializes canonically — the
/// reference cache hashes this rendering.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadSpec {
    /// A single-kernel benchmark at a given warp count.
    Bench {
        /// Which benchmark.
        bench: Benchmark,
        /// Problem size in warps.
        warps: u64,
    },
    /// A multi-kernel real-world application.
    RealWorld {
        /// Which application.
        app: RealWorldApp,
        /// DNN scaling knobs (ignored by PageRank).
        scale: DnnScale,
    },
}

impl WorkloadSpec {
    /// Display / report name of the workload.
    pub fn name(&self) -> String {
        match self {
            WorkloadSpec::Bench { bench, .. } => bench.abbr().to_string(),
            WorkloadSpec::RealWorld { app, .. } => app.name(),
        }
    }

    /// Problem size in warps when statically known (0 for multi-kernel
    /// apps, matching [`crate::harness::Measurement::warps`]).
    pub fn warps(&self) -> u64 {
        match self {
            WorkloadSpec::Bench { warps, .. } => *warps,
            WorkloadSpec::RealWorld { .. } => 0,
        }
    }

    /// Builds the application on a fresh simulator.
    pub fn build(&self, gpu: &mut GpuSimulator, seed: u64) -> App {
        match self {
            WorkloadSpec::Bench { bench, warps } => bench.build(gpu, *warps, seed),
            WorkloadSpec::RealWorld { app, scale } => app.build(gpu, *scale, seed),
        }
    }
}

/// A self-contained, serializable description of one simulation run:
/// everything a worker thread needs to reproduce the run from scratch.
/// Two equal specs produce bit-identical measurements (modulo wall
/// time), which is the contract the executor's deduplication and the
/// reference cache rely on. Deserializes too: `photon-serve` accepts a
/// spec's JSON rendering verbatim over the wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSpec {
    /// What to simulate.
    pub workload: WorkloadSpec,
    /// The methodology driving the run.
    pub method: Method,
    /// The simulated machine.
    pub gpu: GpuConfig,
    /// Photon thresholds (used by `Method::Photon` runs; kept in every
    /// spec so a grid is self-describing).
    pub photon: PhotonConfig,
    /// Workload-construction seed.
    pub seed: u64,
}

impl RunSpec {
    /// A spec for a Table 2 benchmark.
    pub fn bench(gpu: GpuConfig, bench: Benchmark, warps: u64, method: Method) -> RunSpec {
        RunSpec {
            workload: WorkloadSpec::Bench { bench, warps },
            method,
            gpu,
            photon: scaled_photon_config(Levels::all()),
            seed: DEFAULT_SEED,
        }
    }

    /// A spec for a real-world application.
    pub fn real_world(
        gpu: GpuConfig,
        app: RealWorldApp,
        scale: DnnScale,
        method: Method,
    ) -> RunSpec {
        RunSpec {
            workload: WorkloadSpec::RealWorld { app, scale },
            method,
            gpu,
            photon: scaled_photon_config(Levels::all()),
            seed: DEFAULT_SEED,
        }
    }

    /// Short `workload/method` label for logs and thread names.
    pub fn label(&self) -> String {
        format!("{}/{}", self.workload.name(), self.method.name())
    }
}

/// The seed every figure uses (the paper's sweeps are single-seed).
pub const DEFAULT_SEED: u64 = 7;

/// The grid behind the comparison figures (13/14/15): for every
/// (benchmark, sweep size), one `Full` reference spec followed by one
/// spec per method. `Full` in `methods` is ignored (it is always the
/// reference, emitted exactly once).
pub fn comparison_grid(
    gpu_cfg: &GpuConfig,
    methods: &[Method],
    benches: &[Benchmark],
) -> Vec<RunSpec> {
    let mut specs = Vec::new();
    for &bench in benches {
        for warps in bench.sweep(size_scale()) {
            specs.push(RunSpec::bench(gpu_cfg.clone(), bench, warps, Method::Full));
            for method in methods {
                if *method == Method::Full {
                    continue;
                }
                specs.push(RunSpec::bench(
                    gpu_cfg.clone(),
                    bench,
                    warps,
                    method.clone(),
                ));
            }
        }
    }
    specs
}

/// The Figure 16 grid: every real-world application, Full then Photon.
pub fn figure16_grid(gpu_cfg: &GpuConfig, scale: DnnScale) -> Vec<RunSpec> {
    let mut specs = Vec::new();
    for app in RealWorldApp::figure16() {
        specs.push(RunSpec::real_world(
            gpu_cfg.clone(),
            app,
            scale,
            Method::Full,
        ));
        specs.push(RunSpec::real_world(
            gpu_cfg.clone(),
            app,
            scale,
            Method::Photon(Levels::all()),
        ));
    }
    specs
}

/// The Figure 17 grid: VGG-16 under Full plus the per-layer ablation
/// methods. The Full spec is identical to Figure 16's VGG-16 reference,
/// so a suite run simulates it once.
pub fn figure17_grid(gpu_cfg: &GpuConfig, scale: DnnScale) -> Vec<RunSpec> {
    let mut specs = vec![RunSpec::real_world(
        gpu_cfg.clone(),
        RealWorldApp::Vgg16,
        scale,
        Method::Full,
    )];
    for method in fig17_methods() {
        specs.push(RunSpec::real_world(
            gpu_cfg.clone(),
            RealWorldApp::Vgg16,
            scale,
            method,
        ));
    }
    specs
}

/// The fixed smoke grid (`report smoke` and CI): a small FIR under Full
/// and Photon. Large enough that warp-sampling actually triggers, small
/// enough to finish in seconds.
pub fn smoke_grid() -> Vec<RunSpec> {
    let gpu = GpuConfig::r9_nano().with_num_cus(4);
    vec![
        RunSpec::bench(gpu.clone(), Benchmark::Fir, 2048, Method::Full),
        RunSpec::bench(gpu, Benchmark::Fir, 2048, Method::Photon(Levels::all())),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_configs() {
        // default (non-full) mode quarters the machine
        if !full_size() {
            assert_eq!(r9_nano().num_cus, 16);
            assert_eq!(mi100().num_cus, 30);
        }
    }

    #[test]
    fn method_names() {
        assert_eq!(Method::Full.name(), "Full");
        assert_eq!(Method::Photon(Levels::all()).name(), "Photon");
        assert_eq!(Method::Photon(Levels::bb_only()).name(), "BB-sampling");
        assert_eq!(Method::Pka.name(), "PKA");
    }

    #[test]
    fn comparison_grid_emits_full_once_per_size() {
        let grid = comparison_grid(
            &GpuConfig::tiny(),
            &[Method::Full, Method::Pka, Method::Photon(Levels::all())],
            &[Benchmark::Fir],
        );
        let sizes = Benchmark::Fir.sweep(size_scale()).len();
        assert_eq!(grid.len(), 3 * sizes);
        let fulls = grid.iter().filter(|s| s.method == Method::Full).count();
        assert_eq!(fulls, sizes);
    }

    #[test]
    fn shared_references_are_equal_specs() {
        // Figures 16 and 17 must agree on the VGG-16 reference spec so
        // the executor deduplicates it.
        let gpu = r9_nano();
        let scale = dnn_scale();
        let f16 = figure16_grid(&gpu, scale);
        let f17 = figure17_grid(&gpu, scale);
        let vgg_full_16 = f16
            .iter()
            .find(|s| s.method == Method::Full && s.workload.name() == "VGG-16")
            .unwrap();
        assert!(f17.contains(vgg_full_16));
    }

    #[test]
    fn specs_serialize_canonically() {
        let a = RunSpec::bench(GpuConfig::tiny(), Benchmark::Fir, 64, Method::Full);
        let b = a.clone();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
        let c = RunSpec::bench(GpuConfig::tiny(), Benchmark::Fir, 128, Method::Full);
        assert_ne!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&c).unwrap()
        );
    }
}

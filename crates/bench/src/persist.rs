//! Crash-safe artifact persistence: atomic writes, content checksums,
//! and quarantine of corrupt files.
//!
//! Every artifact the bench stack persists (reference-cache entries,
//! `results/BENCH_*.json` reports, the hot-path report, journal lines)
//! goes through this module:
//!
//! * **Atomic writes** ([`atomic_write`]) — content lands in a unique
//!   temporary file in the same directory, is fsync'd, and is renamed
//!   over the destination, with a best-effort directory fsync. A crash
//!   at any point leaves either the old file or the new file, never a
//!   torn mixture.
//! * **Checksum framing** ([`frame`] / [`read_framed`]) — a trailing
//!   footer line `{"photon_checksum":"<16 hex>"}` carries the FNV-1a
//!   hash of the payload bytes, so silent on-disk corruption is
//!   detected at load time. Unframed files (artifacts from before this
//!   scheme, e.g. committed baselines) still load, flagged as
//!   unverified.
//! * **Quarantine** ([`quarantine`]) — a corrupt artifact is renamed to
//!   `<name>.corrupt` instead of being deleted (evidence survives) or
//!   left in place (which would re-warn on every warm run).

use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Marker key of the checksum footer line.
const FOOTER_KEY: &str = "photon_checksum";

/// Content checksum used by the framing: 64-bit FNV-1a, hex-rendered to
/// 16 characters in the footer.
pub fn checksum(bytes: &[u8]) -> u64 {
    gpu_isa::fnv1a(bytes)
}

/// Wraps a payload with its checksum footer line. The checksum covers
/// exactly the payload bytes (not the separating newline).
pub fn frame(payload: &str) -> String {
    format!(
        "{payload}\n{{\"{FOOTER_KEY}\":\"{:016x}\"}}\n",
        checksum(payload.as_bytes())
    )
}

/// A payload read back through [`read_framed`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FramedPayload {
    /// The payload text with the footer stripped.
    pub payload: String,
    /// True when a checksum footer was present and matched; false for
    /// legacy unframed files accepted as-is.
    pub verified: bool,
}

/// Splits a checksum footer off `text`, verifying it when present.
///
/// Files without a recognizable footer are returned whole and
/// unverified (legacy artifacts predate the framing). A footer whose
/// checksum does not match the payload is a hard error — the file is
/// corrupt and must not be parsed.
///
/// # Errors
/// Returns a rendered message on checksum mismatch.
pub fn split_frame(text: &str) -> Result<FramedPayload, String> {
    let trimmed = text.trim_end_matches(['\n', '\r']);
    let footer_start = match trimmed.rfind('\n') {
        Some(i) => i,
        None => {
            return Ok(FramedPayload {
                payload: text.to_string(),
                verified: false,
            })
        }
    };
    let footer = trimmed[footer_start + 1..].trim();
    let Some(stored) = parse_footer(footer) else {
        // Last line is not a checksum footer: unframed legacy file.
        return Ok(FramedPayload {
            payload: text.to_string(),
            verified: false,
        });
    };
    let payload = &trimmed[..footer_start];
    let actual = checksum(payload.as_bytes());
    if actual != stored {
        return Err(format!(
            "checksum mismatch: footer says {stored:016x}, content hashes to {actual:016x}"
        ));
    }
    Ok(FramedPayload {
        payload: payload.to_string(),
        verified: true,
    })
}

/// Parses a footer line `{"photon_checksum":"<16 hex>"}`, tolerating
/// whitespace variations but nothing else.
fn parse_footer(line: &str) -> Option<u64> {
    let inner = line.strip_prefix('{')?.strip_suffix('}')?.trim();
    let rest = inner
        .strip_prefix(&format!("\"{FOOTER_KEY}\""))?
        .trim_start()
        .strip_prefix(':')?
        .trim();
    let hex = rest.strip_prefix('"')?.strip_suffix('"')?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// Reads a file and splits/verifies its checksum frame.
///
/// # Errors
/// Returns a rendered I/O error or checksum mismatch (prefixed with the
/// path either way).
pub fn read_framed(path: &Path) -> Result<FramedPayload, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    split_frame(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Distinguishes concurrent writers to the same destination: each gets
/// its own temporary file, and the last rename wins atomically.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Writes `contents` to `path` atomically: unique temp file in the same
/// directory, fsync, rename over the destination, best-effort directory
/// fsync. Creates parent directories as needed.
///
/// # Errors
/// Returns the first I/O error (the temp file is cleaned up).
pub fn atomic_write(path: &Path, contents: &str) -> std::io::Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    std::fs::create_dir_all(&parent)?;
    let base = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "artifact".to_string());
    let tmp = parent.join(format!(
        ".{base}.tmp-{}-{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let write = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(contents.as_bytes())?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, path)
    })();
    if write.is_err() {
        let _ = std::fs::remove_file(&tmp);
        return write;
    }
    // Durability of the rename itself: fsync the directory. Best-effort
    // (not all platforms/filesystems allow opening directories).
    if let Ok(dir) = std::fs::File::open(&parent) {
        let _ = dir.sync_all();
    }
    Ok(())
}

/// [`atomic_write`] of a checksum-framed payload. When the writing
/// thread is inside a traced job ([`gpu_telemetry::span::enter`]), the
/// write is wrapped in a `persist` span carrying the destination path
/// and any I/O failure.
///
/// # Errors
/// Returns the first I/O error.
pub fn atomic_write_framed(path: &Path, payload: &str) -> std::io::Result<()> {
    use gpu_telemetry::span::{self, SpanKind};
    let guard =
        span::current().map(|ctx| span::guard(ctx, SpanKind::Persist, &path.display().to_string()));
    let result = atomic_write(path, &frame(payload));
    if let Some(g) = guard {
        match &result {
            Ok(()) => g.finish(true, ""),
            Err(e) => g.finish(false, &e.to_string()),
        }
    }
    result
}

/// How many `.corrupt` corpses [`quarantine`] keeps per basename: the
/// newest at `<name>.corrupt`, the previous one at `<name>.corrupt.1`,
/// anything older deleted.
pub const QUARANTINE_KEEP: usize = 2;

/// Quarantines a corrupt artifact by renaming it to `<name>.corrupt`.
/// An existing quarantine is rotated to `<name>.corrupt.1` (replacing
/// any older corpse there), so repeated corruption of one artifact
/// keeps the newest [`QUARANTINE_KEEP`] corpses instead of either
/// replacing the only one or accumulating without bound. Returns the
/// quarantine path on success; warns and returns `None` when the rename
/// itself fails.
pub fn quarantine(path: &Path) -> Option<PathBuf> {
    let mut name = path.file_name()?.to_os_string();
    name.push(".corrupt");
    let dest = path.with_file_name(name);
    if dest.exists() {
        let mut aged = dest.file_name()?.to_os_string();
        aged.push(".1");
        let aged = dest.with_file_name(aged);
        // Replacing `.corrupt.1` drops the oldest corpse; a failed
        // rotation falls through to the plain replace below.
        let _ = std::fs::rename(&dest, &aged);
    }
    match std::fs::rename(path, &dest) {
        Ok(()) => Some(dest),
        Err(e) => {
            eprintln!(
                "warning: could not quarantine {} to {}: {e}",
                path.display(),
                dest.display()
            );
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn temp_path(tag: &str) -> PathBuf {
        static N: AtomicU32 = AtomicU32::new(0);
        std::env::temp_dir().join(format!(
            "photon-persist-{}-{}-{tag}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    #[test]
    fn frame_roundtrips_and_verifies() {
        let payload = "{\n  \"x\": 1\n}";
        let framed = frame(payload);
        let back = split_frame(&framed).unwrap();
        assert!(back.verified);
        assert_eq!(back.payload, payload);
    }

    #[test]
    fn unframed_text_loads_unverified() {
        let back = split_frame("{\n  \"x\": 1\n}").unwrap();
        assert!(!back.verified);
        assert_eq!(back.payload, "{\n  \"x\": 1\n}");
        // Single-line unframed too.
        let back = split_frame("{\"x\":1}").unwrap();
        assert!(!back.verified);
    }

    #[test]
    fn corrupted_payload_fails_the_checksum() {
        let framed = frame("{\"x\": 1}");
        let tampered = framed.replace("\"x\": 1", "\"x\": 2");
        let err = split_frame(&tampered).unwrap_err();
        assert!(err.contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn footer_parsing_is_strict() {
        assert!(parse_footer("{\"photon_checksum\":\"0123456789abcdef\"}").is_some());
        assert!(parse_footer("{\"photon_checksum\": \"0123456789abcdef\"}").is_some());
        assert!(parse_footer("{\"photon_checksum\":\"123\"}").is_none());
        assert!(parse_footer("{\"other\":\"0123456789abcdef\"}").is_none());
        assert!(parse_footer("not json").is_none());
    }

    #[test]
    fn atomic_write_lands_content_and_framed_roundtrip() {
        let path = temp_path("aw").join("sub").join("f.json");
        atomic_write_framed(&path, "{\"v\": 7}").unwrap();
        let back = read_framed(&path).unwrap();
        assert!(back.verified);
        assert_eq!(back.payload, "{\"v\": 7}");
        // No temp droppings left behind.
        let leftovers: Vec<_> = std::fs::read_dir(path.parent().unwrap())
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp-"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        std::fs::remove_dir_all(path.parent().unwrap().parent().unwrap()).ok();
    }

    #[test]
    fn quarantine_renames_to_corrupt() {
        let dir = temp_path("q");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("entry.json");
        std::fs::write(&path, "garbage").unwrap();
        let dest = quarantine(&path).unwrap();
        assert!(!path.exists());
        assert!(dest.exists());
        assert_eq!(
            dest.file_name().unwrap().to_string_lossy(),
            "entry.json.corrupt"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn repeated_quarantines_keep_only_the_newest_two_corpses() {
        let dir = temp_path("qrot");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("entry.json");
        for gen in 0..4 {
            std::fs::write(&path, format!("garbage-{gen}")).unwrap();
            quarantine(&path).unwrap();
        }
        // Newest corpse at .corrupt, previous at .corrupt.1, older gone.
        let newest = std::fs::read_to_string(dir.join("entry.json.corrupt")).unwrap();
        let aged = std::fs::read_to_string(dir.join("entry.json.corrupt.1")).unwrap();
        assert_eq!(newest, "garbage-3");
        assert_eq!(aged, "garbage-2");
        let corpses = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().contains(".corrupt"))
            .count();
        assert_eq!(corpses, QUARANTINE_KEEP);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn framed_write_emits_a_persist_span_inside_a_traced_job() {
        use gpu_telemetry::span::{self, SpanKind};
        let dir = temp_path("pspan");
        let job = 0xbeef_0000_0000_0001;
        let root = span::start_job(job, "persist-span");
        let scope = span::enter(root);
        atomic_write_framed(&dir.join("a.json"), "{\"v\":1}").unwrap();
        drop(scope);
        span::close(root.span, true, "");
        let records = span::job_records(job);
        let persist = records
            .iter()
            .find(|r| r.kind == SpanKind::Persist)
            .expect("persist span recorded");
        assert!(persist.ok);
        assert!(persist.label.ends_with("a.json"), "{}", persist.label);
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! # photon-bench
//!
//! The experiment harness that regenerates every table and figure of
//! the Photon paper's evaluation (see DESIGN.md for the per-experiment
//! index). Each `fig*` binary prints the same rows/series the paper
//! plots; `EXPERIMENTS.md` records paper-vs-measured values.
//!
//! Experiments run on Table 1 configurations scaled to a quarter of the
//! CU count by default (same per-CU parameters, same residency ratios,
//! quarter-sized problems) so a full sweep finishes in minutes; set
//! `PHOTON_BENCH_FULL=1` for the full 64-/120-CU machines with
//! paper-sized problems.

pub mod cli;
pub mod executor;
pub mod figures;
pub mod flightrec;
pub mod harness;
pub mod hotpath;
pub mod journal;
pub mod persist;
pub mod profile;
pub mod refcache;
pub mod report;
pub mod specs;

pub use executor::{
    parallel_map, run_spec_observed, run_specs, ExecOptions, ExecReport, ExecStats, RunResult,
};
pub use flightrec::{FlightRecord, FLIGHTREC_SCHEMA_VERSION};
pub use harness::{
    results_dir, run_app_method, run_benchmark, try_run_app_method, AppBuilder, FailureKind,
    Measurement, RunOutcome, Table,
};
pub use journal::{
    frame_line, journal_key, load_journal, parse_framed_line, Journal, JournalEntry,
    JOURNAL_SCHEMA_VERSION,
};
pub use persist::{atomic_write, atomic_write_framed, quarantine, read_framed};
pub use refcache::{
    reference_key, CacheStats, Origin, RefCache, ShardedStore, StoreStats, CACHE_SCHEMA_VERSION,
};
pub use report::{build_report, load_report, summary_table, write_report};
pub use specs::{mi100, r9_nano, scaled_photon_config, Method, RunSpec, WorkloadSpec};

//! Shared command-line surface of the figure/table binaries: every
//! experiment binary accepts the executor flags parsed here.
//!
//! ```console
//! $ fig13 --jobs 8              # fan the grid over 8 workers
//! $ fig13 --jobs 1 --no-cache   # sequential, cold reference runs
//! $ PHOTON_BENCH_CACHE=0 fig14  # disable the persistent cache
//! ```

use crate::executor::ExecOptions;
use std::time::Duration;

/// Renders the common usage block for a binary's `--help`.
pub fn usage(bin: &str, extra: &str) -> String {
    format!(
        "usage: {bin} [--jobs N] [--timeout SECS] [--no-cache]{extra}\n\
         \x20 --jobs N        worker threads (default: available parallelism)\n\
         \x20 --timeout SECS  per-run wall-clock budget before a run is skipped\n\
         \x20 --no-cache      bypass the persistent results/cache/ reference cache\n\
         \x20                 (PHOTON_BENCH_CACHE=0 does the same)"
    )
}

/// Whether the environment disables the persistent reference cache.
pub fn cache_enabled_by_env() -> bool {
    !std::env::var("PHOTON_BENCH_CACHE").is_ok_and(|v| v == "0")
}

/// Parses the executor flags out of `args`, leaving unrecognized
/// arguments untouched (in order) for the binary's own parsing.
///
/// # Errors
/// Returns a rendered message for malformed values (non-numeric
/// `--jobs` / `--timeout`, or a flag missing its value).
pub fn parse_exec_options(args: &mut Vec<String>) -> Result<ExecOptions, String> {
    let mut opts = ExecOptions {
        cache: cache_enabled_by_env(),
        ..ExecOptions::default()
    };
    let mut rest = Vec::with_capacity(args.len());
    let mut it = args.drain(..);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                opts.jobs = v
                    .parse::<usize>()
                    .map_err(|_| format!("--jobs: not a number: {v}"))?
                    .max(1);
            }
            "--timeout" => {
                let v = it.next().ok_or("--timeout needs a value")?;
                let secs = v
                    .parse::<u64>()
                    .map_err(|_| format!("--timeout: not a number: {v}"))?;
                opts.timeout = Duration::from_secs(secs.max(1));
            }
            "--no-cache" => opts.cache = false,
            _ => rest.push(a),
        }
    }
    drop(it);
    *args = rest;
    Ok(opts)
}

/// Parses the executor flags from the process arguments, exiting with
/// the usage text on malformed input or leftover unknown flags. For
/// binaries whose *only* arguments are the executor flags.
pub fn exec_options_from_args(bin: &str) -> ExecOptions {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    match parse_exec_options(&mut args) {
        Ok(opts) if args.is_empty() => opts,
        Ok(_) => {
            eprintln!("unknown arguments: {args:?}\n{}", usage(bin, ""));
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("{e}\n{}", usage(bin, ""));
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_strips_exec_flags() {
        let mut args: Vec<String> = ["--jobs", "3", "--keep", "--timeout", "9", "--no-cache"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let opts = parse_exec_options(&mut args).unwrap();
        assert_eq!(opts.jobs, 3);
        assert_eq!(opts.timeout, Duration::from_secs(9));
        assert!(!opts.cache);
        assert_eq!(args, vec!["--keep".to_string()]);
    }

    #[test]
    fn rejects_malformed_values() {
        let mut args = vec!["--jobs".to_string(), "many".to_string()];
        assert!(parse_exec_options(&mut args).is_err());
        let mut args = vec!["--timeout".to_string()];
        assert!(parse_exec_options(&mut args).is_err());
    }

    #[test]
    fn jobs_clamped_to_one() {
        let mut args = vec!["--jobs".to_string(), "0".to_string()];
        let opts = parse_exec_options(&mut args).unwrap();
        assert_eq!(opts.jobs, 1);
    }
}

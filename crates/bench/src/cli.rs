//! Shared command-line surface of the figure/table binaries: every
//! experiment binary accepts the executor flags parsed here.
//!
//! ```console
//! $ fig13 --jobs 8              # fan the grid over 8 workers
//! $ fig13 --jobs 1 --no-cache   # sequential, cold reference runs
//! $ PHOTON_BENCH_CACHE=0 fig14  # disable the persistent cache
//! $ fig13 --resume              # replay completed specs from the journal
//! $ fig13 --faults exec.panic:0.3:42   # deterministic chaos
//! ```

use crate::executor::ExecOptions;
use gpu_sim::EngineMode;
use gpu_telemetry::faults::{self, FaultPlan};
use std::time::Duration;

/// Renders the common usage block for a binary's `--help`.
pub fn usage(bin: &str, extra: &str) -> String {
    format!(
        "usage: {bin} [--jobs N] [--timeout SECS] [--retries N] [--no-cache]\n\
         \x20              [--resume] [--no-journal] [--faults SPEC]{extra}\n\
         \x20 --jobs N        worker threads (default: available parallelism)\n\
         \x20 --timeout SECS  per-run wall-clock budget before a run is skipped\n\
         \x20 --retries N     extra attempts for transient failures (default: 2)\n\
         \x20 --no-cache      bypass the persistent results/cache/ reference cache\n\
         \x20                 (PHOTON_BENCH_CACHE=0 does the same)\n\
         \x20 --resume        replay specs already completed in results/journal.jsonl\n\
         \x20                 instead of re-simulating them\n\
         \x20 --no-journal    do not write the run journal\n\
         \x20 --faults SPEC   deterministic fault injection: site:rate:seed[,...]\n\
         \x20                 (PHOTON_FAULTS=SPEC does the same; see --faults help)\n\
         \x20 --engine MODE   timing-engine override for every run in the grid:\n\
         \x20                 serial | deterministic | relaxed\n\
         \x20 --engine-threads N  worker threads per simulation for the epoch\n\
         \x20                 engines (PHOTON_ENGINE_THREADS=N does the same;\n\
         \x20                 default: available parallelism, capped at the CU count)\n\
         \x20 --mem-fidelity M  memory-model override for every run in the grid:\n\
         \x20                 legacy | detailed (MSHRs, NoC bank queues, DRAM banks)"
    )
}

/// Whether the environment disables the persistent reference cache.
pub fn cache_enabled_by_env() -> bool {
    !std::env::var("PHOTON_BENCH_CACHE").is_ok_and(|v| v == "0")
}

/// Renders the fault-site catalog for `--faults help`.
fn fault_sites_help() -> String {
    let mut out =
        String::from("fault-injection sites (--faults site:rate:seed[,site:rate:seed...]):\n");
    for site in faults::FaultSite::ALL {
        out.push_str(&format!("  {}\n", site.name()));
    }
    out.push_str("rate is a probability in [0,1]; decisions are a pure hash of\n(site, seed, run key), so the same spec always sees the same faults.");
    out
}

/// Parses the executor flags out of `args`, leaving unrecognized
/// arguments untouched (in order) for the binary's own parsing.
///
/// `--faults` installs the parsed plan globally as a side effect (the
/// injection sites live below the executor's plumbing); `--no-journal`
/// and `--resume` steer the run journal, which defaults to ON at
/// `results/journal.jsonl` for CLI binaries.
///
/// # Errors
/// Returns a rendered message for malformed values (non-numeric
/// `--jobs` / `--timeout` / `--retries`, a bad `--faults` spec, or a
/// flag missing its value).
pub fn parse_exec_options(args: &mut Vec<String>) -> Result<ExecOptions, String> {
    let mut opts = ExecOptions {
        cache: cache_enabled_by_env(),
        journal: Some(crate::harness::results_dir().join("journal.jsonl")),
        ..ExecOptions::default()
    };
    let mut rest = Vec::with_capacity(args.len());
    let mut it = args.drain(..);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                opts.jobs = v
                    .parse::<usize>()
                    .map_err(|_| format!("--jobs: not a number: {v}"))?
                    .max(1);
            }
            "--timeout" => {
                let v = it.next().ok_or("--timeout needs a value")?;
                let secs = v
                    .parse::<u64>()
                    .map_err(|_| format!("--timeout: not a number: {v}"))?;
                opts.timeout = Duration::from_secs(secs.max(1));
            }
            "--retries" => {
                let v = it.next().ok_or("--retries needs a value")?;
                opts.retries = v
                    .parse::<u32>()
                    .map_err(|_| format!("--retries: not a number: {v}"))?;
            }
            "--no-cache" => opts.cache = false,
            "--resume" => opts.resume = true,
            "--no-journal" => opts.journal = None,
            "--faults" => {
                let v = it.next().ok_or("--faults needs a value")?;
                if v == "help" {
                    return Err(fault_sites_help());
                }
                let plan = FaultPlan::parse(&v).map_err(|e| format!("--faults: {e}"))?;
                faults::install(Some(plan));
            }
            "--engine" => {
                let v = it.next().ok_or("--engine needs a value")?;
                opts.engine_mode = Some(match v.as_str() {
                    "serial" => EngineMode::Serial,
                    "deterministic" | "det" => EngineMode::Deterministic,
                    "relaxed" => EngineMode::Relaxed,
                    _ => {
                        return Err(format!(
                            "--engine: unknown mode {v} (serial | deterministic | relaxed)"
                        ))
                    }
                });
            }
            "--engine-threads" => {
                let v = it.next().ok_or("--engine-threads needs a value")?;
                opts.engine_threads = Some(
                    v.parse::<u32>()
                        .map_err(|_| format!("--engine-threads: not a number: {v}"))?,
                );
            }
            "--mem-fidelity" => {
                let v = it.next().ok_or("--mem-fidelity needs a value")?;
                opts.mem_fidelity = Some(match v.as_str() {
                    "legacy" => gpu_mem::MemFidelityMode::Legacy,
                    "detailed" => gpu_mem::MemFidelityMode::Detailed,
                    _ => {
                        return Err(format!(
                            "--mem-fidelity: unknown mode {v} (legacy | detailed)"
                        ))
                    }
                });
            }
            _ => rest.push(a),
        }
    }
    drop(it);
    *args = rest;
    if opts.resume && opts.journal.is_none() {
        return Err("--resume needs the journal (drop --no-journal)".to_string());
    }
    Ok(opts)
}

/// Parses the executor flags from the process arguments, exiting with
/// the usage text on malformed input or leftover unknown flags. For
/// binaries whose *only* arguments are the executor flags.
pub fn exec_options_from_args(bin: &str) -> ExecOptions {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    match parse_exec_options(&mut args) {
        Ok(opts) if args.is_empty() => opts,
        Ok(_) => {
            eprintln!("unknown arguments: {args:?}\n{}", usage(bin, ""));
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("{e}\n{}", usage(bin, ""));
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_strips_exec_flags() {
        let mut args: Vec<String> = ["--jobs", "3", "--keep", "--timeout", "9", "--no-cache"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let opts = parse_exec_options(&mut args).unwrap();
        assert_eq!(opts.jobs, 3);
        assert_eq!(opts.timeout, Duration::from_secs(9));
        assert!(!opts.cache);
        assert_eq!(args, vec!["--keep".to_string()]);
    }

    #[test]
    fn rejects_malformed_values() {
        let mut args = vec!["--jobs".to_string(), "many".to_string()];
        assert!(parse_exec_options(&mut args).is_err());
        let mut args = vec!["--timeout".to_string()];
        assert!(parse_exec_options(&mut args).is_err());
        let mut args = vec!["--retries".to_string(), "lots".to_string()];
        assert!(parse_exec_options(&mut args).is_err());
        let mut args = vec!["--faults".to_string(), "no.such.site:1:1".to_string()];
        assert!(parse_exec_options(&mut args).is_err());
    }

    #[test]
    fn jobs_clamped_to_one() {
        let mut args = vec!["--jobs".to_string(), "0".to_string()];
        let opts = parse_exec_options(&mut args).unwrap();
        assert_eq!(opts.jobs, 1);
    }

    #[test]
    fn journal_defaults_on_and_flags_steer_it() {
        let mut args: Vec<String> = vec![];
        let opts = parse_exec_options(&mut args).unwrap();
        assert!(opts.journal.is_some());
        assert!(!opts.resume);
        assert_eq!(opts.retries, 2);

        let mut args = vec!["--resume".to_string(), "--retries".to_string(), "5".into()];
        let opts = parse_exec_options(&mut args).unwrap();
        assert!(opts.resume);
        assert_eq!(opts.retries, 5);

        let mut args = vec!["--no-journal".to_string()];
        let opts = parse_exec_options(&mut args).unwrap();
        assert!(opts.journal.is_none());

        // --resume without a journal is contradictory.
        let mut args = vec!["--no-journal".to_string(), "--resume".to_string()];
        assert!(parse_exec_options(&mut args).is_err());
    }
}

//! A command-line runner for individual experiments, in the spirit of
//! the artifact's `testallbench.py`.
//!
//! ```console
//! $ photon_sim --workload mm --warps 4096 --method photon
//! $ photon_sim --workload spmv --warps 1024 --method pka --arch mi100
//! $ photon_sim --workload resnet152 --method photon
//! $ photon_sim --workload vgg16 --method full --cus 16
//! ```

use gpu_sim::GpuSimulator;
use gpu_telemetry::Telemetry;
use gpu_workloads::dnn::DnnScale;
use gpu_workloads::registry::{Benchmark, RealWorldApp};
use photon::Levels;
use photon_bench::harness::RunOutcome;
use photon_bench::report::{build_report, write_report};
use photon_bench::{scaled_photon_config, try_run_app_method, Method};

fn usage() -> ! {
    eprintln!(
        "usage: photon_sim --workload <name> [--warps N] [--method full|photon|pka|tbpoint|sieve|bb|warp|kernel] \
         [--arch r9nano|mi100] [--cus N] [--seed N] [--trace <file.trace.json>] [--report <name>]\n\
         workloads: aes fir sc mm relu spmv pr-<nodes> vgg16 vgg19 resnet18|34|50|101|152\n\
         --trace  writes a Chrome-trace JSON of the run (build with --features telemetry)\n\
         --report writes results/BENCH_<name>.json"
    );
    std::process::exit(2);
}

fn parse_args() -> std::collections::HashMap<String, String> {
    let mut out = std::collections::HashMap::new();
    let mut args = std::env::args().skip(1);
    while let Some(k) = args.next() {
        let Some(key) = k.strip_prefix("--") else {
            usage()
        };
        let Some(v) = args.next() else { usage() };
        out.insert(key.to_string(), v);
    }
    out
}

fn main() {
    let args = parse_args();
    let workload = args.get("workload").cloned().unwrap_or_else(|| usage());
    let warps: u64 = args
        .get("warps")
        .map(|w| w.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(4096);
    let seed: u64 = args
        .get("seed")
        .map(|s| s.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(7);
    let method = match args.get("method").map(String::as_str).unwrap_or("photon") {
        "full" => Method::Full,
        "photon" => Method::Photon(Levels::all()),
        "pka" => Method::Pka,
        "tbpoint" => Method::TbPoint,
        "sieve" => Method::Sieve,
        "bb" => Method::Photon(Levels::bb_only()),
        "warp" => Method::Photon(Levels::warp_only()),
        "kernel" => Method::Photon(Levels::kernel_only()),
        _ => usage(),
    };
    let mut gpu_cfg = match args.get("arch").map(String::as_str).unwrap_or("r9nano") {
        "r9nano" => gpu_sim::GpuConfig::r9_nano(),
        "mi100" => gpu_sim::GpuConfig::mi100(),
        _ => usage(),
    };
    if let Some(cus) = args.get("cus") {
        let n: u32 = cus.parse().unwrap_or_else(|_| usage());
        gpu_cfg = gpu_cfg.with_num_cus(n);
    }

    let scale = DnnScale {
        input_hw: 64,
        channel_div: 4,
    };
    let lower = workload.to_lowercase();
    let builder: Box<dyn Fn(&mut GpuSimulator) -> gpu_workloads::App> = match lower.as_str() {
        "aes" => Box::new(move |g: &mut GpuSimulator| Benchmark::Aes.build(g, warps, seed)),
        "fir" => Box::new(move |g: &mut GpuSimulator| Benchmark::Fir.build(g, warps, seed)),
        "sc" => Box::new(move |g: &mut GpuSimulator| Benchmark::Sc.build(g, warps, seed)),
        "mm" => Box::new(move |g: &mut GpuSimulator| Benchmark::Mm.build(g, warps, seed)),
        "relu" => Box::new(move |g: &mut GpuSimulator| Benchmark::Relu.build(g, warps, seed)),
        "spmv" => Box::new(move |g: &mut GpuSimulator| Benchmark::Spmv.build(g, warps, seed)),
        "vgg16" => Box::new(move |g: &mut GpuSimulator| RealWorldApp::Vgg16.build(g, scale, seed)),
        "vgg19" => Box::new(move |g: &mut GpuSimulator| RealWorldApp::Vgg19.build(g, scale, seed)),
        "resnet18" => {
            Box::new(move |g: &mut GpuSimulator| RealWorldApp::ResNet18.build(g, scale, seed))
        }
        "resnet34" => {
            Box::new(move |g: &mut GpuSimulator| RealWorldApp::ResNet34.build(g, scale, seed))
        }
        "resnet50" => {
            Box::new(move |g: &mut GpuSimulator| RealWorldApp::ResNet50.build(g, scale, seed))
        }
        "resnet101" => {
            Box::new(move |g: &mut GpuSimulator| RealWorldApp::ResNet101.build(g, scale, seed))
        }
        "resnet152" => {
            Box::new(move |g: &mut GpuSimulator| RealWorldApp::ResNet152.build(g, scale, seed))
        }
        other => {
            if let Some(nodes) = other.strip_prefix("pr-") {
                let n: u32 = nodes.parse().unwrap_or_else(|_| usage());
                Box::new(move |g: &mut GpuSimulator| gpu_workloads::pagerank::build(g, n, 10, seed))
            } else {
                usage()
            }
        }
    };

    let pcfg = scaled_photon_config(Levels::all());
    let tel = Telemetry::default();
    let trace_path = args.get("trace");
    if trace_path.is_some() {
        if !gpu_telemetry::tracing_compiled() {
            eprintln!("warning: built without `--features telemetry`; the trace will be empty");
        }
        tel.enable_tracing(1 << 20);
    }

    let run = try_run_app_method(&gpu_cfg, &workload, builder.as_ref(), &method, &pcfg, &tel);

    if let Some(path) = trace_path {
        let log = tel.take_events();
        match std::fs::write(path, gpu_telemetry::export::chrome_trace_json(&log)) {
            Ok(()) => println!(
                "(wrote {path} — {} events, {} dropped)",
                log.events.len(),
                log.dropped
            ),
            Err(e) => eprintln!("warning: could not write {path}: {e}"),
        }
    }

    let outcome = match run {
        Ok(m) => RunOutcome::Completed(m),
        Err(e) => RunOutcome::Skipped {
            workload: workload.clone(),
            method: method.name(),
            reason: format!("simulation error: {e}"),
            error: Some(format!("{e:?}")),
        },
    };
    if let Some(report_name) = args.get("report") {
        let report = build_report(report_name, std::slice::from_ref(&outcome), tel.snapshot());
        match write_report(&report) {
            Ok(path) => println!("(wrote {})", path.display()),
            Err(e) => eprintln!("warning: could not write report: {e}"),
        }
    }

    match outcome {
        RunOutcome::Completed(m) => {
            println!(
                "{} on {} ({} CUs) under {}:",
                workload, gpu_cfg.name, gpu_cfg.num_cus, m.method
            );
            println!("  simulated kernel time : {} cycles", m.sim_cycles);
            println!("  wall time             : {:.3} s", m.wall_secs);
            println!("  detailed instructions : {}", m.detailed_insts);
            println!("  functional instructions: {}", m.functional_insts);
            println!(
                "  warps detailed/predicted: {}/{}",
                m.detailed_warps, m.predicted_warps
            );
            println!("  kernels skipped       : {}", m.skipped_kernels);
        }
        RunOutcome::Skipped { reason, .. } => {
            eprintln!("{workload} under {}: {reason}", method.name());
            std::process::exit(1);
        }
    }
}

//! A command-line runner for individual experiments, in the spirit of
//! the artifact's `testallbench.py`.
//!
//! ```console
//! $ photon_sim --workload mm --warps 4096 --method photon
//! $ photon_sim --workload spmv --warps 1024 --method pka --arch mi100
//! $ photon_sim --workload resnet152 --method photon
//! $ photon_sim --workload vgg16 --method full --cus 16 --no-cache
//! ```
//!
//! Runs go through the same executor as the figure binaries, so a
//! `--method full` run is served from (and feeds) the persistent
//! reference cache under `results/cache/`.

use gpu_workloads::registry::{Benchmark, RealWorldApp};
use photon::Levels;
use photon_bench::cli::parse_exec_options;
use photon_bench::harness::{results_dir, RunOutcome};
use photon_bench::report::{build_report, write_report};
use photon_bench::specs::{dnn_scale, scaled_photon_config, WorkloadSpec, DEFAULT_SEED};
use photon_bench::{run_specs, Method, RunSpec};

fn usage() -> ! {
    eprintln!(
        "usage: photon_sim --workload <name> [--warps N] [--method full|photon|pka|tbpoint|sieve|bb|warp|kernel] \
         [--arch r9nano|mi100] [--cus N] [--seed N] [--jobs N] [--timeout SECS] [--no-cache] \
         [--trace <file.trace.json>] [--report <name>]\n\
         workloads: aes fir sc mm relu spmv pr-<nodes> vgg16 vgg19 resnet18|34|50|101|152\n\
         --trace  writes a Chrome-trace JSON of the run (build with --features telemetry)\n\
         --report writes results/BENCH_<name>.json"
    );
    std::process::exit(2);
}

fn parse_args(args: Vec<String>) -> std::collections::HashMap<String, String> {
    let mut out = std::collections::HashMap::new();
    let mut args = args.into_iter();
    while let Some(k) = args.next() {
        let Some(key) = k.strip_prefix("--") else {
            usage()
        };
        let Some(v) = args.next() else { usage() };
        out.insert(key.to_string(), v);
    }
    out
}

fn main() {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = match parse_exec_options(&mut raw) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            usage();
        }
    };
    let args = parse_args(raw);
    let workload = args.get("workload").cloned().unwrap_or_else(|| usage());
    let warps: u64 = args
        .get("warps")
        .map(|w| w.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(4096);
    let seed: u64 = args
        .get("seed")
        .map(|s| s.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(DEFAULT_SEED);
    let method = match args.get("method").map(String::as_str).unwrap_or("photon") {
        "full" => Method::Full,
        "photon" => Method::Photon(Levels::all()),
        "pka" => Method::Pka,
        "tbpoint" => Method::TbPoint,
        "sieve" => Method::Sieve,
        "bb" => Method::Photon(Levels::bb_only()),
        "warp" => Method::Photon(Levels::warp_only()),
        "kernel" => Method::Photon(Levels::kernel_only()),
        _ => usage(),
    };
    let mut gpu_cfg = match args.get("arch").map(String::as_str).unwrap_or("r9nano") {
        "r9nano" => gpu_sim::GpuConfig::r9_nano(),
        "mi100" => gpu_sim::GpuConfig::mi100(),
        _ => usage(),
    };
    if let Some(cus) = args.get("cus") {
        let n: u32 = cus.parse().unwrap_or_else(|_| usage());
        gpu_cfg = gpu_cfg.with_num_cus(n);
    }

    let scale = dnn_scale();
    let lower = workload.to_lowercase();
    let real_world = |app: RealWorldApp| WorkloadSpec::RealWorld { app, scale };
    let bench = |b: Benchmark| WorkloadSpec::Bench { bench: b, warps };
    let workload_spec = match lower.as_str() {
        "aes" => bench(Benchmark::Aes),
        "fir" => bench(Benchmark::Fir),
        "sc" => bench(Benchmark::Sc),
        "mm" => bench(Benchmark::Mm),
        "relu" => bench(Benchmark::Relu),
        "spmv" => bench(Benchmark::Spmv),
        "vgg16" => real_world(RealWorldApp::Vgg16),
        "vgg19" => real_world(RealWorldApp::Vgg19),
        "resnet18" => real_world(RealWorldApp::ResNet18),
        "resnet34" => real_world(RealWorldApp::ResNet34),
        "resnet50" => real_world(RealWorldApp::ResNet50),
        "resnet101" => real_world(RealWorldApp::ResNet101),
        "resnet152" => real_world(RealWorldApp::ResNet152),
        other => {
            if let Some(nodes) = other.strip_prefix("pr-") {
                let n: u32 = nodes.parse().unwrap_or_else(|_| usage());
                real_world(RealWorldApp::PageRank(n))
            } else {
                usage()
            }
        }
    };
    let spec = RunSpec {
        workload: workload_spec,
        method: method.clone(),
        gpu: gpu_cfg.clone(),
        photon: scaled_photon_config(Levels::all()),
        seed,
    };

    let trace_path = args.get("trace");
    if trace_path.is_some() {
        if !gpu_telemetry::tracing_compiled() {
            eprintln!("warning: built without `--features telemetry`; the trace will be empty");
        }
        opts.trace_capacity = 1 << 20;
    }

    let report = run_specs(std::slice::from_ref(&spec), &opts);
    let result = &report.results[0];
    if result.from_cache {
        println!(
            "(served from reference cache under {})",
            opts.cache_dir
                .clone()
                .unwrap_or_else(|| results_dir().join("cache"))
                .display()
        );
    }

    if let Some(path) = trace_path {
        let log = &result.trace;
        match std::fs::write(path, gpu_telemetry::export::chrome_trace_json(log)) {
            Ok(()) => println!(
                "(wrote {path} — {} events, {} dropped)",
                log.events.len(),
                log.dropped
            ),
            Err(e) => eprintln!("warning: could not write {path}: {e}"),
        }
    }

    if let Some(report_name) = args.get("report") {
        let report = build_report(
            report_name,
            std::slice::from_ref(&result.outcome),
            result.metrics.clone(),
        );
        match write_report(&report) {
            Ok(path) => println!("(wrote {})", path.display()),
            Err(e) => eprintln!("warning: could not write report: {e}"),
        }
    }

    match &result.outcome {
        RunOutcome::Completed(m) => {
            println!(
                "{} on {} ({} CUs) under {}:",
                workload, gpu_cfg.name, gpu_cfg.num_cus, m.method
            );
            println!("  simulated kernel time : {} cycles", m.sim_cycles);
            println!("  wall time             : {:.3} s", m.wall_secs);
            println!("  detailed instructions : {}", m.detailed_insts);
            println!("  functional instructions: {}", m.functional_insts);
            println!(
                "  warps detailed/predicted: {}/{}",
                m.detailed_warps, m.predicted_warps
            );
            println!("  kernels skipped       : {}", m.skipped_kernels);
        }
        RunOutcome::Skipped { reason, .. } => {
            eprintln!("{workload} under {}: {reason}", method.name());
            std::process::exit(1);
        }
    }
}

//! Regenerates the data behind Figure 15 of the paper (see DESIGN.md).
fn main() {
    photon_bench::figures::fig15();
}

//! Regenerates the data behind Figure 15 of the paper (see DESIGN.md).
fn main() {
    let opts = photon_bench::cli::exec_options_from_args("fig15");
    photon_bench::figures::fig15(&opts);
}

//! Regenerates the data behind Figure 17 of the paper (see DESIGN.md).
fn main() {
    photon_bench::figures::fig17();
}

//! Regenerates the data behind Figure 17 of the paper (see DESIGN.md).
fn main() {
    let opts = photon_bench::cli::exec_options_from_args("fig17");
    photon_bench::figures::fig17(&opts);
}

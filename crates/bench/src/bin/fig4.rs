//! Regenerates the data behind Figure 4 of the paper (see DESIGN.md).
fn main() {
    photon_bench::figures::fig4();
}

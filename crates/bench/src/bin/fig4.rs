//! Regenerates the data behind Figure 4 of the paper (see DESIGN.md).
fn main() {
    let opts = photon_bench::cli::exec_options_from_args("fig4");
    photon_bench::figures::fig4(&opts);
}

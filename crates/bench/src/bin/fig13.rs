//! Regenerates the data behind Figure 13 of the paper (see DESIGN.md).
fn main() {
    photon_bench::figures::fig13();
}

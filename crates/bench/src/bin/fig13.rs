//! Regenerates the data behind Figure 13 of the paper (see DESIGN.md).
fn main() {
    let opts = photon_bench::cli::exec_options_from_args("fig13");
    photon_bench::figures::fig13(&opts);
}

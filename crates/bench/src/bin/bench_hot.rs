//! Hot-path wall-clock benchmark: host instructions per second on the
//! fig-spec smoke workloads, through the executor.
//!
//! ```console
//! $ bench_hot                     # measure (best of 3), write results/BENCH_hot.json
//! $ bench_hot --jobs 2 --iters 1  # CI smoke mode: one iteration, 2 workers
//! $ bench_hot --check             # also gate against the committed baseline
//! ```
//!
//! With `--check` the committed `results/baselines/BENCH_hot.json` is
//! loaded *before* measuring and the fresh numbers must stay within
//! [`photon_bench::hotpath::HOT_REGRESSION_FRAC`] of it; regressions
//! exit 1 and leave the baseline file untouched. (Loose
//! `results/*.json` files are gitignored; only `results/baselines/`
//! survives a fresh checkout.)

use photon_bench::cli::{parse_exec_options, usage as exec_usage};
use photon_bench::hotpath::{
    check_engine_scaling, compare_hot, hot_baseline_path, hot_report_path, hot_table,
    load_hot_report, run_hot, write_hot_report, HOT_REGRESSION_FRAC,
};
use photon_bench::ExecOptions;

fn usage() -> ! {
    eprintln!(
        "usage: bench_hot [--iters N] [--check]\n\
         \x20 --iters N   measurement iterations per cell, best-of (default: 3)\n\
         \x20 --check     compare against the committed\n\
         \x20             results/baselines/BENCH_hot.json (>{:.0}% insts/sec\n\
         \x20             drop fails) instead of writing a fresh report\n{}",
        HOT_REGRESSION_FRAC * 100.0,
        exec_usage("bench_hot", " [--iters N] [--check]")
    );
    std::process::exit(2);
}

fn run(opts: ExecOptions, iters: u32, check: bool) -> i32 {
    let base_path = hot_baseline_path();
    // Load the baseline before measuring so a broken file fails fast.
    let baseline = if check {
        match load_hot_report(&base_path) {
            Ok(b) => Some(b),
            Err(e) => {
                eprintln!("error: --check needs a committed baseline: {e}");
                return 1;
            }
        }
    } else {
        None
    };

    let report = match run_hot(&opts, iters) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    println!(
        "(hot grid: {} cells, best of {} iteration(s), jobs={})",
        report.measurements.len(),
        report.iterations,
        report.jobs
    );
    print!("{}", hot_table(&report).render());

    match baseline {
        Some(base) => {
            let regressions = compare_hot(&base, &report, HOT_REGRESSION_FRAC);
            let scaling = check_engine_scaling(&report);
            match &scaling {
                Ok(notice) => println!("{notice}"),
                Err(e) => println!("REGRESSION {e}"),
            }
            if regressions.is_empty() && scaling.is_ok() {
                println!("no hot-path regressions against {}", base_path.display());
                0
            } else {
                for r in &regressions {
                    println!("REGRESSION {r}");
                }
                1
            }
        }
        None => {
            let path = hot_report_path();
            match write_hot_report(&report, &path) {
                Ok(()) => {
                    println!("(wrote {})", path.display());
                    0
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    1
                }
            }
        }
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_exec_options(&mut args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            usage();
        }
    };
    let mut iters = 3u32;
    let mut check = false;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--iters" => {
                let Some(v) = it.next() else { usage() };
                let Ok(n) = v.parse::<u32>() else { usage() };
                iters = n.max(1);
            }
            "--check" => check = true,
            _ => usage(),
        }
    }
    std::process::exit(run(opts, iters, check));
}

//! Regenerates the data behind Figure 6 of the paper (see DESIGN.md).
fn main() {
    // Accepts the common executor flags for a uniform CLI, but the
    // figure is one recorded inference — inherently sequential.
    let _ = photon_bench::cli::exec_options_from_args("fig6");
    photon_bench::figures::fig6();
}

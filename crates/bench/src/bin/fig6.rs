//! Regenerates the data behind Figure 6 of the paper (see DESIGN.md).
fn main() {
    photon_bench::figures::fig6();
}

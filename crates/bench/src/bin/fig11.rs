//! Regenerates the data behind Figure 11 of the paper (see DESIGN.md).
fn main() {
    photon_bench::figures::fig11();
}

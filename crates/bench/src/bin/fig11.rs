//! Regenerates the data behind Figure 11 of the paper (see DESIGN.md).
fn main() {
    let opts = photon_bench::cli::exec_options_from_args("fig11");
    photon_bench::figures::fig11(&opts);
}

//! Cycle-accounting profiler over `results/BENCH_*.json` reports.
//!
//! ```console
//! $ profile show results/BENCH_smoke.json   # stall tables, occupancy, worst BBs
//! $ profile diff base.json current.json     # flag stall-share / cycle drift > 5%
//! $ profile diff base.json current.json 0.10   # custom ceiling (fraction)
//! $ profile check [report.json]             # invariant gate (CI); exit 1 on failure
//! ```
//!
//! The optional `diff` ceiling is how CI gates the relaxed epoch
//! engine: a relaxed-engine smoke report is diffed against the serial
//! one at the documented relaxed-mode bound (see DESIGN.md, "Sharded
//! timing engine") instead of the 5% same-engine default.
//!
//! `check` without an argument validates `results/BENCH_smoke.json`
//! (the artifact `report smoke` writes): every run's stall classes must
//! sum exactly to its resident warp-cycles and every detailed run must
//! carry per-BB prediction-error attribution.

use photon_bench::harness::results_dir;
use photon_bench::profile::{check_report, diff_reports, mem_signature, render_report};
use photon_bench::report::load_report;
use std::path::{Path, PathBuf};

/// Share-of-residency growth (absolute) a stall class may show before
/// `diff` flags it: five percentage points.
const DIFF_THRESHOLD: f64 = 0.05;

fn usage() -> ! {
    eprintln!("usage: profile <show <report>|diff <base> <current> [ceiling]|check [report]>");
    std::process::exit(2);
}

fn load(path: &Path) -> gpu_telemetry::RunReport {
    match load_report(path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match (args.first().map(String::as_str), args.len()) {
        (Some("show"), 2) => {
            print!("{}", render_report(&load(Path::new(&args[1]))));
        }
        (Some("diff"), n) if n == 3 || n == 4 => {
            let threshold = match args.get(3) {
                Some(v) => match v.parse::<f64>() {
                    Ok(t) if t > 0.0 && t < 1.0 => t,
                    _ => {
                        eprintln!("error: ceiling must be a fraction in (0, 1), got {v}");
                        std::process::exit(2);
                    }
                },
                None => DIFF_THRESHOLD,
            };
            let base = load(Path::new(&args[1]));
            let cur = load(Path::new(&args[2]));
            // Memory-model signature first: informational, never fails
            // the diff — it is the review artifact for fidelity changes.
            print!("{}", mem_signature(&base, &cur));
            let flagged = diff_reports(&base, &cur, threshold);
            if flagged.is_empty() {
                println!(
                    "no stall-share or cycle regressions (> {:.0}%) vs {}",
                    threshold * 100.0,
                    args[1]
                );
                return;
            }
            for f in &flagged {
                println!("REGRESSION {f}");
            }
            std::process::exit(1);
        }
        (Some("check"), n) if n <= 2 => {
            let path: PathBuf = args
                .get(1)
                .map(PathBuf::from)
                .unwrap_or_else(|| results_dir().join("BENCH_smoke.json"));
            let report = load(&path);
            let problems = check_report(&report);
            if problems.is_empty() {
                println!(
                    "{}: accounting balanced across {} run(s), per-BB attribution present",
                    path.display(),
                    report.runs.len()
                );
                return;
            }
            for p in &problems {
                eprintln!("FAIL {p}");
            }
            std::process::exit(1);
        }
        _ => usage(),
    }
}

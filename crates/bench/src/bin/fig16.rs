//! Regenerates the data behind Figure 16 of the paper (see DESIGN.md).
fn main() {
    let opts = photon_bench::cli::exec_options_from_args("fig16");
    photon_bench::figures::fig16(&opts);
}

//! Regenerates the data behind Figure 16 of the paper (see DESIGN.md).
fn main() {
    photon_bench::figures::fig16();
}

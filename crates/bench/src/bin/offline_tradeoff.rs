//! Regenerates the §6.3 online/offline tradeoff comparison.
fn main() {
    photon_bench::figures::offline_tradeoff();
}

//! Regenerates the §6.3 online/offline tradeoff comparison.
fn main() {
    // Accepts the common executor flags for a uniform CLI, but the
    // offline pass consumes what the online pass exports — sequential.
    let _ = photon_bench::cli::exec_options_from_args("offline_tradeoff");
    photon_bench::figures::offline_tradeoff();
}

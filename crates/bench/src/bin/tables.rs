//! Prints Tables 1 and 2 of the paper.
fn main() {
    photon_bench::figures::table1();
    photon_bench::figures::table2();
}

//! Prints Tables 1 and 2 of the paper.
fn main() {
    // Accepts the common executor flags for a uniform CLI; the tables
    // print static configuration, no simulations run.
    let _ = photon_bench::cli::exec_options_from_args("tables");
    photon_bench::figures::table1();
    photon_bench::figures::table2();
}

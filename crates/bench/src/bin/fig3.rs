//! Regenerates the data behind Figure 3 of the paper (see DESIGN.md).
fn main() {
    let opts = photon_bench::cli::exec_options_from_args("fig3");
    photon_bench::figures::fig3(&opts);
}

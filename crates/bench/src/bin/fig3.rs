//! Regenerates the data behind Figure 3 of the paper (see DESIGN.md).
fn main() {
    photon_bench::figures::fig3();
}

//! Regenerates the data behind Figure 8 of the paper (see DESIGN.md).
fn main() {
    let opts = photon_bench::cli::exec_options_from_args("fig8");
    photon_bench::figures::fig8(&opts);
}

//! Regenerates the data behind Figure 8 of the paper (see DESIGN.md).
fn main() {
    photon_bench::figures::fig8();
}

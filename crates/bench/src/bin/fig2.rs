//! Regenerates the data behind Figure 2 of the paper (see DESIGN.md).
fn main() {
    let opts = photon_bench::cli::exec_options_from_args("fig2");
    photon_bench::figures::fig2(&opts);
}

//! Regenerates the data behind Figure 2 of the paper (see DESIGN.md).
fn main() {
    photon_bench::figures::fig2();
}

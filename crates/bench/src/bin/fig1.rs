//! Regenerates the data behind Figure 1 of the paper (see DESIGN.md).
fn main() {
    photon_bench::figures::fig1();
}

//! Regenerates the data behind Figure 1 of the paper (see DESIGN.md).
fn main() {
    let opts = photon_bench::cli::exec_options_from_args("fig1");
    photon_bench::figures::fig1(&opts);
}

//! Regenerates the data behind Figure 14 of the paper (see DESIGN.md).
fn main() {
    let opts = photon_bench::cli::exec_options_from_args("fig14");
    photon_bench::figures::fig14(&opts);
}

//! Regenerates the data behind Figure 14 of the paper (see DESIGN.md).
fn main() {
    photon_bench::figures::fig14();
}

//! Benchmark run reports: produce, render, and regression-check
//! `results/BENCH_<app>.json` files.
//!
//! ```console
//! $ report smoke            # run the smoke workload, write BENCH_smoke.json
//! $ report show             # table over every results/BENCH_*.json
//! $ report check            # compare against results/baselines/, exit 1 on regression
//! ```

use gpu_sim::GpuConfig;
use gpu_telemetry::Telemetry;
use gpu_workloads::registry::Benchmark;
use photon::Levels;
use photon_bench::harness::{results_dir, scaled_photon_config, Method, RunOutcome};
use photon_bench::report::{
    build_report, check_against_baselines, load_all_reports, summary_table, write_report,
};
use photon_bench::try_run_app_method;

fn usage() -> ! {
    eprintln!("usage: report <smoke|show|check>");
    std::process::exit(2);
}

/// Runs the fixed smoke workload (small FIR, Full + Photon) and writes
/// `results/BENCH_smoke.json`. With the `telemetry` feature the Photon
/// run's events are exported to `results/TRACE_smoke.trace.json`.
fn smoke() {
    // Large enough that Photon's warp-sampling actually triggers (so
    // coverage/speedup are non-trivial), small enough to finish in
    // seconds.
    let gpu_cfg = GpuConfig::r9_nano().with_num_cus(4);
    let pcfg = scaled_photon_config(Levels::all());
    let (warps, seed) = (2048, 7);
    let tel = Telemetry::default();

    let mut outcomes = Vec::new();
    for method in [Method::Full, Method::Photon(Levels::all())] {
        if method != Method::Full {
            // Trace only the sampled run; the detailed run would dwarf
            // the ring with per-warp events.
            tel.enable_tracing(1 << 16);
        }
        let out = match try_run_app_method(
            &gpu_cfg,
            "smoke",
            &|gpu| Benchmark::Fir.build(gpu, warps, seed),
            &method,
            &pcfg,
            &tel,
        ) {
            Ok(m) => RunOutcome::Completed(m),
            Err(e) => RunOutcome::Skipped {
                workload: "smoke".to_string(),
                method: method.name(),
                reason: format!("simulation error: {e}"),
                error: Some(format!("{e:?}")),
            },
        };
        outcomes.push(out);
    }

    if gpu_telemetry::tracing_compiled() {
        let log = tel.take_events();
        let path = results_dir().join("TRACE_smoke.trace.json");
        match std::fs::write(&path, gpu_telemetry::export::chrome_trace_json(&log)) {
            Ok(()) => println!(
                "(wrote {} — {} events, {} dropped)",
                path.display(),
                log.events.len(),
                log.dropped
            ),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
    }

    let report = build_report("smoke", &outcomes, tel.snapshot());
    match write_report(&report) {
        Ok(path) => println!("(wrote {})", path.display()),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
    print!("{}", summary_table(&[report]).render());
}

fn show() {
    let reports = match load_all_reports(&results_dir()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    if reports.is_empty() {
        println!("no results/BENCH_*.json reports found; run `report smoke` first");
        return;
    }
    print!("{}", summary_table(&reports).render());
}

fn check() {
    let reports = match load_all_reports(&results_dir()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let baseline_dir = results_dir().join("baselines");
    if !baseline_dir.exists() {
        println!(
            "no baseline directory at {}; nothing to check",
            baseline_dir.display()
        );
        return;
    }
    let regressions = check_against_baselines(&reports, &baseline_dir);
    if regressions.is_empty() {
        println!("no regressions against {}", baseline_dir.display());
        return;
    }
    for r in &regressions {
        println!("REGRESSION {} / {}: {}", r.workload, r.method, r.what);
    }
    std::process::exit(1);
}

fn main() {
    match std::env::args().nth(1).as_deref() {
        Some("smoke") => smoke(),
        Some("show") => show(),
        Some("check") => check(),
        _ => usage(),
    }
}

//! Benchmark run reports: produce, render, and regression-check
//! `results/BENCH_<app>.json` files.
//!
//! ```console
//! $ report smoke                    # run the smoke grid, write BENCH_smoke.json
//! $ report smoke --jobs 2           # same grid, fanned over 2 workers
//! $ report smoke --require-cached   # fail unless every Full run was a cache hit
//! $ report show                     # table over every results/BENCH_*.json
//! $ report check                    # compare against results/baselines/, exit 1 on regression
//! $ report flightrec PATH           # load + verify a flight-recorder dump, print its story
//! ```

use gpu_telemetry::MetricsSnapshot;
use photon_bench::cli::{parse_exec_options, usage as exec_usage};
use photon_bench::harness::{results_dir, Method, RunOutcome};
use photon_bench::report::{
    build_report, check_against_baselines, gauge_summary, histogram_summary, load_all_reports,
    summary_table, write_report,
};
use photon_bench::specs::smoke_grid;
use photon_bench::{run_specs, ExecOptions};

fn usage() -> ! {
    eprintln!(
        "usage: report <smoke|show|check|flightrec PATH> [--require-cached]\n{}",
        exec_usage("report smoke", " [--require-cached]")
    );
    std::process::exit(2);
}

/// Runs the fixed smoke grid (small FIR, Full + Photon) through the
/// executor and writes `results/BENCH_smoke.json`. With the `telemetry`
/// feature the Photon run's events are exported to
/// `results/TRACE_smoke.trace.json`.
///
/// Each run owns a private `Telemetry`; the report merges the
/// per-run snapshots explicitly, so concurrent runs can never bleed
/// counters into each other (the old shared-handle smoke run mixed both
/// runs' metrics into one registry).
fn smoke(mut opts: ExecOptions, require_cached: bool) {
    opts.trace_capacity = 1 << 16;
    let grid = smoke_grid();
    let report = run_specs(&grid, &opts);
    println!(
        "(smoke grid: {} specs, {} executed, {} cache hits, jobs={})",
        report.stats.total, report.stats.executed, report.stats.cache_hits, report.stats.jobs
    );
    if require_cached && report.stats.full_runs_executed > 0 {
        eprintln!(
            "error: --require-cached but {} full-detailed run(s) were re-simulated",
            report.stats.full_runs_executed
        );
        std::process::exit(1);
    }

    if gpu_telemetry::tracing_compiled() {
        // Export the Photon run's trace; the detailed run's would dwarf
        // the ring with per-warp events.
        if let Some(r) = report
            .results
            .iter()
            .find(|r| r.spec.method != Method::Full)
        {
            let path = results_dir().join("TRACE_smoke.trace.json");
            match std::fs::write(&path, gpu_telemetry::export::chrome_trace_json(&r.trace)) {
                Ok(()) => println!(
                    "(wrote {} — {} events, {} dropped)",
                    path.display(),
                    r.trace.events.len(),
                    r.trace.dropped
                ),
                Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
            }
        }
    }

    let mut metrics = MetricsSnapshot::default();
    for r in &report.results {
        metrics.merge(&r.metrics);
    }
    // Executor-level health metrics (abandoned threads, quarantined
    // cache entries) ride along so `report show` surfaces them.
    metrics.merge(&report.metrics);
    let mut outcomes = Vec::new();
    for r in &report.results {
        let mut outcome = r.outcome.clone();
        if let RunOutcome::Completed(m) = &mut outcome {
            m.workload = "smoke".to_string();
        }
        outcomes.push(outcome);
    }
    let report = build_report("smoke", &outcomes, metrics);
    match write_report(&report) {
        Ok(path) => println!("(wrote {})", path.display()),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
    print!("{}", summary_table(&[report]).render());
}

fn show() {
    let reports = match load_all_reports(&results_dir()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    if reports.is_empty() {
        println!("no results/BENCH_*.json reports found; run `report smoke` first");
        return;
    }
    print!("{}", summary_table(&reports).render());
    let hists = histogram_summary(&reports);
    if !hists.is_empty() {
        println!();
        print!("{}", hists.render());
    }
    let health = gauge_summary(&reports);
    if !health.is_empty() {
        println!();
        print!("{}", health.render());
    }
}

fn check() {
    let reports = match load_all_reports(&results_dir()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let baseline_dir = results_dir().join("baselines");
    if !baseline_dir.exists() {
        println!(
            "no baseline directory at {}; nothing to check",
            baseline_dir.display()
        );
        return;
    }
    let regressions = check_against_baselines(&reports, &baseline_dir);
    let mut flagged: Vec<String> = regressions
        .iter()
        .map(|r| format!("{} / {}: {}", r.workload, r.method, r.what))
        .collect();

    // Hot-path throughput gate: the wall-clock report has its own
    // schema and comparison rule (insts/sec floor), so it is checked
    // here rather than through compare_reports.
    let hot_base = photon_bench::hotpath::hot_baseline_path();
    let hot_cur = photon_bench::hotpath::hot_report_path();
    if hot_base.exists() && !hot_cur.exists() {
        // Loose results/*.json are gitignored, so a fresh checkout has a
        // baseline but no current measurement. `bench_hot --check`
        // measures fresh and covers the gate; don't flag it here.
        println!(
            "(no {} — run bench_hot to measure; skipping hot-path check)",
            hot_cur.display()
        );
    } else if hot_base.exists() {
        let pair = photon_bench::hotpath::load_hot_report(&hot_base).and_then(|base| {
            photon_bench::hotpath::load_hot_report(&hot_cur).map(|cur| (base, cur))
        });
        match pair {
            Ok((base, cur)) => flagged.extend(photon_bench::hotpath::compare_hot(
                &base,
                &cur,
                photon_bench::hotpath::HOT_REGRESSION_FRAC,
            )),
            Err(e) => flagged.push(format!("hot-path report: {e}")),
        }
    }

    if flagged.is_empty() {
        println!("no regressions against {}", baseline_dir.display());
        return;
    }
    for r in &flagged {
        println!("REGRESSION {r}");
    }
    std::process::exit(1);
}

/// Loads a flight-recorder dump (verifying its checksum frame — a
/// corrupt dump is quarantined and fails the command) and prints what
/// tripped it: trigger, job, per-phase durations, and every failed
/// span with its detail. The CI serve gate greps this output for the
/// injected fault site.
fn flightrec_show(path: &str) {
    let rec = match photon_bench::flightrec::load(std::path::Path::new(path)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "flight record {} ({}) trigger={} wall={:.3}s",
        rec.job, rec.label, rec.trigger, rec.wall_secs
    );
    if !rec.detail.is_empty() {
        println!("  detail: {}", rec.detail);
    }
    println!("  spans: {}", rec.spans.len());
    for p in &rec.tree.phases {
        println!(
            "  phase {:<14} count={:<4} total={:.3}ms",
            p.phase,
            p.count,
            p.total_us as f64 / 1000.0
        );
    }
    let failed = rec.tree.failed_spans();
    if failed.is_empty() {
        println!("  no failed spans");
    }
    for s in failed {
        println!("  FAILED {} {:?}: {}", s.kind.name(), s.label, s.detail);
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_exec_options(&mut args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            usage();
        }
    };
    let require_cached = if let Some(i) = args.iter().position(|a| a == "--require-cached") {
        args.remove(i);
        true
    } else {
        false
    };
    match (args.first().map(String::as_str), args.len()) {
        (Some("smoke"), 1) => smoke(opts, require_cached),
        (Some("show"), 1) => show(),
        (Some("check"), 1) => check(),
        (Some("flightrec"), 2) => flightrec_show(&args[1]),
        _ => usage(),
    }
}

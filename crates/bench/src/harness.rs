//! Shared experiment machinery: methods, measurements, and tables.

use gpu_baselines::{
    PkaConfig, PkaController, SieveConfig, SieveController, TbPointConfig, TbPointController,
};
use gpu_sim::{AppResult, GpuConfig, GpuSimulator, NullController, SamplingController, SimError};
use gpu_telemetry::{BbErrorRow, CycleAccounting, Telemetry};
use gpu_workloads::registry::Benchmark;
use gpu_workloads::App;
use photon::{PhotonConfig, PhotonController};
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::mpsc::{channel, RecvTimeoutError};
use std::time::{Duration, Instant};

// The experiment-grid vocabulary lives in [`crate::specs`]; these
// re-exports keep the long-standing `harness::` paths working.
pub use crate::specs::{full_size, mi100, r9_nano, scaled_photon_config, size_scale, Method};

/// One measured run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// Workload name.
    pub workload: String,
    /// Problem size in warps (0 for multi-kernel apps).
    pub warps: u64,
    /// Method name.
    pub method: String,
    /// Simulated kernel time (sum over kernels), in cycles.
    pub sim_cycles: u64,
    /// Host wall time of the simulation, seconds.
    pub wall_secs: f64,
    /// Instructions simulated in detailed mode.
    pub detailed_insts: u64,
    /// Instructions executed functionally only.
    pub functional_insts: u64,
    /// Warps simulated in detailed mode.
    pub detailed_warps: u64,
    /// Warps whose duration was predicted instead of simulated.
    pub predicted_warps: u64,
    /// Kernels skipped by kernel-sampling.
    pub skipped_kernels: usize,
    /// Per-kernel simulated cycles (for per-layer analyses).
    pub kernel_cycles: Vec<u64>,
    /// Cycle accounting merged across the app's kernels (`None` when
    /// every kernel was skipped, so nothing was resident).
    pub accounting: Option<CycleAccounting>,
    /// Per-basic-block predicted-vs-measured error rows across the
    /// app's kernels.
    pub bb_errors: Vec<BbErrorRow>,
}

impl Measurement {
    /// The paper's error metric against a full-detailed reference.
    pub fn error_vs(&self, full: &Measurement) -> f64 {
        (full.sim_cycles as f64 - self.sim_cycles as f64).abs() / full.sim_cycles as f64
    }

    /// The paper's speedup metric against a full-detailed reference.
    pub fn speedup_vs(&self, full: &Measurement) -> f64 {
        full.wall_secs / self.wall_secs.max(1e-9)
    }
}

/// A closure that prepares an application on a fresh simulator.
pub type AppBuilder<'a> = dyn Fn(&mut GpuSimulator) -> App + 'a;

fn make_controller(
    method: &Method,
    pcfg: &PhotonConfig,
    num_cus: u64,
) -> Box<dyn SamplingController> {
    match method {
        Method::Full => Box::new(NullController),
        Method::Photon(levels) => {
            let mut cfg = pcfg.clone();
            cfg.levels = *levels;
            Box::new(PhotonController::new(cfg, num_cus))
        }
        Method::Pka => Box::new(PkaController::new(PkaConfig::default())),
        Method::TbPoint => Box::new(TbPointController::new(TbPointConfig::default())),
        Method::Sieve => Box::new(SieveController::new(SieveConfig::default())),
    }
}

/// Runs an application under a method on a fresh simulator and
/// measures it, surfacing simulator errors as typed values instead of
/// panics. Counters and (with the `telemetry` feature) trace events
/// land in `telemetry`.
///
/// # Errors
/// Returns the first [`SimError`] the application run hits.
pub fn try_run_app_method(
    gpu_cfg: &GpuConfig,
    name: &str,
    build: &AppBuilder<'_>,
    method: &Method,
    pcfg: &PhotonConfig,
    telemetry: &Telemetry,
) -> Result<Measurement, SimError> {
    let mut gpu = GpuSimulator::with_telemetry(gpu_cfg.clone(), telemetry.clone());
    let app = build(&mut gpu);
    let mut ctrl = make_controller(method, pcfg, gpu_cfg.num_cus as u64);
    let t0 = Instant::now();
    let result = app.run(&mut gpu, ctrl.as_mut())?;
    let wall = t0.elapsed().as_secs_f64();
    Ok(Measurement {
        workload: name.to_string(),
        warps: app.total_warps(),
        method: method.name(),
        sim_cycles: result.total_cycles(),
        wall_secs: wall,
        detailed_insts: result.total_detailed_insts(),
        functional_insts: result.total_functional_insts(),
        detailed_warps: result.total_detailed_warps(),
        predicted_warps: result.total_predicted_warps(),
        skipped_kernels: result.skipped_kernels(),
        kernel_cycles: result.kernels.iter().map(|k| k.cycles).collect(),
        accounting: merge_accounting(&result),
        bb_errors: bb_error_rows(&result),
    })
}

/// Merges the per-kernel cycle-accounting snapshots of an app run into
/// one (timelines concatenate; per-CU classes add).
fn merge_accounting(result: &AppResult) -> Option<CycleAccounting> {
    let mut merged: Option<CycleAccounting> = None;
    for k in &result.kernels {
        if let Some(a) = &k.accounting {
            merged.get_or_insert_with(CycleAccounting::default).merge(a);
        }
    }
    merged
}

/// Builds the per-BB prediction-error rows for an app run: measured
/// values come from the engine's per-BB accounting; the predicted mean
/// is the controller's published estimate when it modeled the block
/// (Photon), otherwise a uniform-CPI equivalent (instructions-per-
/// instance × the kernel's mean per-warp block CPI) so IPC-
/// extrapolating baselines (PKA, Sieve) still decompose against the
/// same yardstick: the delta then reads "how far this block deviates
/// from uniform per-instruction timing".
fn bb_error_rows(result: &AppResult) -> Vec<BbErrorRow> {
    let mut rows = Vec::new();
    for k in &result.kernels {
        // Per-warp latency CPI over the kernel's measured blocks — the
        // same unit as `measured_mean` (a warp's residency through the
        // block), NOT wall-cycles per instruction, which would be ~N×
        // smaller with N warps in flight.
        let bb_cycles: u64 = k.bb_stats.iter().map(|b| b.cycles).sum();
        let bb_insts: u64 = k.bb_stats.iter().map(|b| b.insts).sum();
        let cpi = if bb_insts > 0 {
            bb_cycles as f64 / bb_insts as f64
        } else {
            0.0
        };
        for b in &k.bb_stats {
            let measured_mean = b.measured_mean();
            let predicted_mean = b.predicted_mean.unwrap_or(if b.instances == 0 {
                0.0
            } else {
                b.insts as f64 / b.instances as f64 * cpi
            });
            rows.push(BbErrorRow {
                kernel: k.name.clone(),
                bb: b.bb,
                instances: b.instances,
                insts: b.insts,
                measured_cycles: b.cycles,
                measured_mean,
                predicted_mean,
                delta: predicted_mean - measured_mean,
                stall: b.stall,
            });
        }
    }
    rows
}

/// Runs an application under a method on a fresh simulator and
/// measures it.
///
/// # Panics
/// Panics on simulator errors; sweeps that must survive faulty
/// configurations use [`run_app_method_isolated`] or
/// [`try_run_app_method`] instead.
pub fn run_app_method(
    gpu_cfg: &GpuConfig,
    name: &str,
    build: &AppBuilder<'_>,
    method: &Method,
    pcfg: &PhotonConfig,
) -> Measurement {
    try_run_app_method(gpu_cfg, name, build, method, pcfg, &Telemetry::default())
        .unwrap_or_else(|e| panic!("{name} under {}: {e}", method.name()))
}

/// Whether a failed run is worth retrying.
///
/// The executor's retry budget applies only to [`Transient`] failures —
/// panics, timeouts, and infrastructure hiccups that a fresh attempt
/// may not reproduce. A [`Permanent`] failure is a deterministic
/// property of the spec (a typed [`SimError`]): re-running it burns
/// time to fail identically, so it is skipped once and journaled.
///
/// [`Transient`]: FailureKind::Transient
/// [`Permanent`]: FailureKind::Permanent
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailureKind {
    /// Nondeterministic or environmental: retry may succeed.
    Transient,
    /// Deterministic for this spec: retrying reproduces the failure.
    Permanent,
}

/// Result of an isolated (panic- and hang-guarded) run: either a
/// measurement, or a structured skip explaining why this configuration
/// produced none. Skips serialize into result files so a partially
/// failing sweep still documents its holes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum RunOutcome {
    /// The run finished and was measured.
    Completed(Measurement),
    /// The run was abandoned; siblings continue.
    Skipped {
        /// Workload name.
        workload: String,
        /// Method name.
        method: String,
        /// Human-readable cause (panic message, timeout, ...).
        reason: String,
        /// The typed simulator error rendered to text, when the skip
        /// came from a [`SimError`] (None for panics and timeouts).
        /// Serialized into result files so reports keep the diagnosis.
        error: Option<String>,
        /// Whether a retry could plausibly succeed (drives the
        /// executor's retry budget and journal eligibility).
        failure: FailureKind,
    },
}

impl RunOutcome {
    /// The measurement, if the run completed.
    pub fn measurement(&self) -> Option<&Measurement> {
        match self {
            RunOutcome::Completed(m) => Some(m),
            RunOutcome::Skipped { .. } => None,
        }
    }

    /// The failure kind, if the run was skipped.
    pub fn failure(&self) -> Option<FailureKind> {
        match self {
            RunOutcome::Completed(_) => None,
            RunOutcome::Skipped { failure, .. } => Some(*failure),
        }
    }
}

/// Worker threads abandoned by the timeout path since process start.
/// A timed-out simulation cannot be cancelled, only detached — this
/// counter makes the leak visible (executors publish it as the
/// `exec.abandoned_threads` gauge).
static ABANDONED: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Total worker threads abandoned on timeout since process start.
pub fn abandoned_threads() -> u64 {
    ABANDONED.load(std::sync::atomic::Ordering::Relaxed)
}

/// Records one abandoned worker thread (called by every timeout path).
pub(crate) fn note_abandoned_thread() {
    ABANDONED.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
}

pub(crate) fn panic_reason(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Like [`run_app_method`], but fault-isolated: the run happens on a
/// worker thread behind `catch_unwind` and a wall-clock `timeout`, so a
/// panicking or hanging configuration yields a [`RunOutcome::Skipped`]
/// instead of taking the whole sweep down.
///
/// On timeout the worker thread is abandoned (it cannot be cancelled);
/// it keeps running detached until its simulation finishes or the
/// process exits.
pub fn run_app_method_isolated<F>(
    gpu_cfg: &GpuConfig,
    name: &str,
    build: F,
    method: &Method,
    pcfg: &PhotonConfig,
    timeout: Duration,
) -> RunOutcome
where
    F: Fn(&mut GpuSimulator) -> App + Send + 'static,
{
    let workload = name.to_string();
    let method_name = method.name();
    let skipped =
        |reason: String, error: Option<String>, failure: FailureKind| RunOutcome::Skipped {
            workload: workload.clone(),
            method: method_name.clone(),
            reason,
            error,
            failure,
        };

    let cfg = gpu_cfg.clone();
    let run_name = workload.clone();
    let run_method = method.clone();
    let run_pcfg = pcfg.clone();
    let (tx, rx) = channel();
    let spawn = std::thread::Builder::new()
        .name(format!("bench-{workload}"))
        .spawn(move || {
            let res = catch_unwind(AssertUnwindSafe(|| {
                try_run_app_method(
                    &cfg,
                    &run_name,
                    &build,
                    &run_method,
                    &run_pcfg,
                    &Telemetry::default(),
                )
            }));
            // The receiver may already have timed out and moved on.
            let _ = tx.send(res);
        });
    let handle = match spawn {
        Ok(h) => h,
        Err(e) => {
            return skipped(
                format!("could not spawn worker thread: {e}"),
                None,
                FailureKind::Transient,
            )
        }
    };

    match rx.recv_timeout(timeout) {
        Ok(Ok(Ok(m))) => {
            let _ = handle.join();
            RunOutcome::Completed(m)
        }
        Ok(Ok(Err(sim_err))) => {
            let _ = handle.join();
            // A typed SimError is a deterministic property of the spec:
            // re-running reproduces it, so never burn retries on it.
            skipped(
                format!("simulation error: {sim_err}"),
                Some(format!("{sim_err:?}")),
                FailureKind::Permanent,
            )
        }
        Ok(Err(payload)) => {
            let _ = handle.join();
            skipped(
                format!("panicked: {}", panic_reason(payload.as_ref())),
                None,
                FailureKind::Transient,
            )
        }
        Err(RecvTimeoutError::Timeout) => {
            note_abandoned_thread();
            skipped(
                format!("timed out after {:.1}s", timeout.as_secs_f64()),
                None,
                FailureKind::Transient,
            )
        }
        Err(RecvTimeoutError::Disconnected) => {
            let _ = handle.join();
            skipped(
                "worker thread died without reporting".to_string(),
                None,
                FailureKind::Transient,
            )
        }
    }
}

/// Fault-isolated variant of [`run_benchmark`]; see
/// [`run_app_method_isolated`].
pub fn run_benchmark_isolated(
    gpu_cfg: &GpuConfig,
    bench: Benchmark,
    warps: u64,
    seed: u64,
    method: &Method,
    pcfg: &PhotonConfig,
    timeout: Duration,
) -> RunOutcome {
    let mut out = run_app_method_isolated(
        gpu_cfg,
        bench.abbr(),
        move |gpu| bench.build(gpu, warps, seed),
        method,
        pcfg,
        timeout,
    );
    if let RunOutcome::Completed(m) = &mut out {
        m.warps = warps;
    }
    out
}

/// Runs one Table 2 benchmark at a problem size under a method.
pub fn run_benchmark(
    gpu_cfg: &GpuConfig,
    bench: Benchmark,
    warps: u64,
    seed: u64,
    method: &Method,
    pcfg: &PhotonConfig,
) -> Measurement {
    let mut m = run_app_method(
        gpu_cfg,
        bench.abbr(),
        &|gpu| bench.build(gpu, warps, seed),
        method,
        pcfg,
    );
    m.warps = warps;
    m
}

/// A printable results table.
#[derive(Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// True when no rows have been appended.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    /// Panics on column-count mismatch.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Directory experiment outputs (JSON/CSV) are written to.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("results");
    std::fs::create_dir_all(&dir).ok();
    dir
}

/// Writes measurements as JSON under `results/<name>.json` (atomically:
/// a crash mid-write leaves the previous file, never a torn one).
pub fn write_json<T: Serialize>(name: &str, data: &T) {
    let path = results_dir().join(format!("{name}.json"));
    match serde_json::to_string_pretty(data) {
        Ok(s) => {
            if let Err(e) = crate::persist::atomic_write(&path, &s) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("(wrote {})", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize {name}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["a", "bench"]);
        t.row(vec!["1".into(), "x".into()]);
        let s = t.render();
        assert!(s.contains("bench"));
        assert_eq!(s.lines().count(), 3);
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn table_rejects_bad_rows() {
        let mut t = Table::new(&["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn measurement_metrics() {
        let full = Measurement {
            workload: "x".into(),
            warps: 1,
            method: "Full".into(),
            sim_cycles: 1000,
            wall_secs: 2.0,
            detailed_insts: 0,
            functional_insts: 0,
            detailed_warps: 0,
            predicted_warps: 0,
            skipped_kernels: 0,
            kernel_cycles: vec![],
            accounting: None,
            bb_errors: vec![],
        };
        let fast = Measurement {
            sim_cycles: 900,
            wall_secs: 0.5,
            method: "Photon".into(),
            ..full.clone()
        };
        assert!((fast.error_vs(&full) - 0.1).abs() < 1e-12);
        assert!((fast.speedup_vs(&full) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn panicking_run_is_skipped_and_siblings_continue() {
        let cfg = GpuConfig::tiny();
        let pcfg = PhotonConfig::default();
        let bad = run_app_method_isolated(
            &cfg,
            "bad",
            |_gpu| panic!("builder exploded"),
            &Method::Full,
            &pcfg,
            Duration::from_secs(60),
        );
        match &bad {
            RunOutcome::Skipped {
                workload, reason, ..
            } => {
                assert_eq!(workload, "bad");
                assert!(reason.contains("builder exploded"), "reason: {reason}");
            }
            RunOutcome::Completed(_) => panic!("panicking run completed"),
        }
        assert!(bad.measurement().is_none());

        // A healthy sibling on the same harness still measures.
        let good = run_benchmark_isolated(
            &cfg,
            Benchmark::Fir,
            4,
            7,
            &Method::Full,
            &pcfg,
            Duration::from_secs(60),
        );
        let m = good.measurement().expect("healthy run completes");
        assert!(m.sim_cycles > 0);
        assert_eq!(m.warps, 4);
    }

    #[test]
    fn hung_run_times_out_as_skipped() {
        let cfg = GpuConfig::tiny();
        let out = run_app_method_isolated(
            &cfg,
            "hang",
            |_gpu| -> App {
                // Stand-in for a wedged simulation; the worker is
                // abandoned and finishes sleeping after the test ends.
                std::thread::sleep(Duration::from_secs(30));
                panic!("never reached within the timeout");
            },
            &Method::Full,
            &PhotonConfig::default(),
            Duration::from_millis(100),
        );
        match out {
            RunOutcome::Skipped {
                reason, failure, ..
            } => {
                assert!(reason.contains("timed out"), "reason: {reason}");
                // Timeouts are retryable and the abandoned worker is
                // accounted for.
                assert_eq!(failure, FailureKind::Transient);
                assert!(abandoned_threads() >= 1);
            }
            RunOutcome::Completed(_) => panic!("hung run completed"),
        }
    }

    #[test]
    fn skips_serialize_into_results() {
        let out = RunOutcome::Skipped {
            workload: "x".into(),
            method: "Full".into(),
            reason: "timed out after 1.0s".into(),
            error: None,
            failure: FailureKind::Transient,
        };
        let json = serde_json::to_string(&out).unwrap();
        assert!(json.contains("timed out"));
        assert!(json.contains("Transient"));
    }

    #[test]
    fn sim_errors_keep_their_typed_rendering() {
        // An empty launch produces a typed SimError, not a panic; the
        // outcome must carry both the display and debug renderings so
        // serialized reports stay diagnosable.
        let out = run_app_method_isolated(
            &GpuConfig::tiny(),
            "empty",
            |_gpu| {
                let mut kb = gpu_isa::KernelBuilder::new("empty");
                let s = kb.sreg();
                kb.smov(s, 0i64);
                let launch = gpu_isa::KernelLaunch::new(
                    gpu_isa::Kernel::new(kb.finish().unwrap()),
                    0,
                    0,
                    vec![],
                );
                App::single("empty", launch)
            },
            &Method::Full,
            &PhotonConfig::default(),
            Duration::from_secs(60),
        );
        match out {
            RunOutcome::Skipped {
                reason,
                error,
                failure,
                ..
            } => {
                assert!(reason.contains("simulation error"), "reason: {reason}");
                let error = error.expect("typed error preserved");
                assert!(error.contains("EmptyLaunch"), "error: {error}");
                // Typed SimErrors are deterministic: never retried.
                assert_eq!(failure, FailureKind::Permanent);
            }
            RunOutcome::Completed(_) => panic!("empty launch completed"),
        }
    }
}

//! Nsight-style cycle-accounting profiles over run reports: stall-class
//! breakdowns, occupancy timelines, per-BB prediction-error tables, a
//! report-to-report stall diff, and the `profile check` invariant gate
//! run by CI (stall classes must sum to resident warp-cycles, and every
//! non-skipping run must carry per-BB attribution).

use crate::harness::Table;
use gpu_telemetry::{BbErrorRow, CycleAccounting, MethodRun, RunReport, StallClass};

/// Number of worst-offender BB rows shown per run.
const TOP_BBS: usize = 8;

fn pct(part: u64, whole: u64) -> String {
    if whole == 0 {
        "-".to_string()
    } else {
        format!("{:.1}%", part as f64 / whole as f64 * 100.0)
    }
}

/// The stall-class breakdown of one run: warp-cycles per class and the
/// share of resident warp-cycles, one row per class plus a totals row.
pub fn stall_table(workload: &str, run: &MethodRun, acct: &CycleAccounting) -> Table {
    let mut t = Table::new(&["workload", "method", "stall class", "warp-cycles", "share"]);
    let totals = acct.totals();
    let resident = acct.resident_warp_cycles();
    for class in StallClass::ALL {
        let v = totals[class.index()];
        t.row(vec![
            workload.to_string(),
            run.method.clone(),
            class.name().to_string(),
            v.to_string(),
            pct(v, resident),
        ]);
    }
    t.row(vec![
        workload.to_string(),
        run.method.clone(),
        "resident total".to_string(),
        resident.to_string(),
        pct(totals.iter().sum(), resident),
    ]);
    t
}

/// One-line occupancy summary from the stall timeline: mean and peak
/// resident warps plus the busy share (windows with any residency).
pub fn occupancy_summary(acct: &CycleAccounting) -> String {
    if acct.timeline.is_empty() {
        return "occupancy: no timeline windows".to_string();
    }
    let warps: Vec<f64> = acct
        .timeline
        .iter()
        .map(|w| w.resident_warps(acct.window))
        .collect();
    let mean = warps.iter().sum::<f64>() / warps.len() as f64;
    let peak = warps.iter().cloned().fold(0.0f64, f64::max);
    let busy = warps.iter().filter(|&&w| w > 0.0).count();
    format!(
        "occupancy: mean {:.1} warps, peak {:.1} warps over {} windows of {} cycles ({} busy)",
        mean,
        peak,
        acct.timeline.len(),
        acct.window,
        busy
    )
}

/// Absolute predicted-vs-measured cycle impact of one BB row: how many
/// total cycles the prediction error accounts for across its instances.
fn impact(row: &BbErrorRow) -> f64 {
    (row.delta * row.instances as f64).abs()
}

/// The per-BB error table for one run: rows sorted by absolute cycle
/// impact (`|delta × instances|`), truncated to the worst [`TOP_BBS`]
/// with the dominant stall class of each block's measured cycles.
pub fn bb_error_table(workload: &str, run: &MethodRun) -> Table {
    let mut t = Table::new(&[
        "workload",
        "method",
        "kernel",
        "bb",
        "instances",
        "measured",
        "predicted",
        "delta",
        "impact",
        "top stall",
    ]);
    let mut rows: Vec<&BbErrorRow> = run.bb_errors.iter().collect();
    rows.sort_by(|a, b| {
        impact(b)
            .partial_cmp(&impact(a))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    for row in rows.into_iter().take(TOP_BBS) {
        let top = StallClass::ALL
            .iter()
            .max_by_key(|c| row.stall[c.index()])
            .filter(|c| row.stall[c.index()] > 0)
            .map_or("-", |c| c.name());
        t.row(vec![
            workload.to_string(),
            run.method.clone(),
            row.kernel.clone(),
            row.bb.to_string(),
            row.instances.to_string(),
            format!("{:.2}", row.measured_mean),
            format!("{:.2}", row.predicted_mean),
            format!("{:+.2}", row.delta),
            format!("{:.0}", impact(row)),
            top.to_string(),
        ]);
    }
    t
}

/// Renders the full profile of one report: per run, the stall table,
/// the occupancy summary, and the worst-BB error table.
pub fn render_report(report: &RunReport) -> String {
    let mut out = String::new();
    for run in &report.runs {
        let Some(acct) = &run.accounting else {
            out.push_str(&format!(
                "{} / {}: no accounting data\n",
                report.workload, run.method
            ));
            continue;
        };
        out.push_str(&stall_table(&report.workload, run, acct).render());
        out.push_str(&format!(
            "{} / {}: {}\n",
            report.workload,
            run.method,
            occupancy_summary(acct)
        ));
        let bbs = bb_error_table(&report.workload, run);
        if !bbs.is_empty() {
            out.push_str(&bbs.render());
        }
        out.push('\n');
    }
    out
}

/// Compares matching (workload, method) runs of two reports and flags
/// (a) stall classes whose share of resident warp-cycles grew by more
/// than `threshold` (absolute share, e.g. 0.05 = five percentage
/// points) and (b) total simulated cycles that drifted by more than
/// the same `threshold` as a fraction of the baseline. The cycle bound
/// is what CI holds the relaxed epoch engine to: `profile diff
/// <serial-smoke> <relaxed-smoke>` fails when relaxed-mode timing
/// error leaves the documented envelope.
pub fn diff_reports(base: &RunReport, cur: &RunReport, threshold: f64) -> Vec<String> {
    let mut flagged = Vec::new();
    for cur_run in &cur.runs {
        let Some(base_run) = base.runs.iter().find(|r| r.method == cur_run.method) else {
            continue;
        };
        if base_run.sim_cycles > 0 {
            let drift = (cur_run.sim_cycles as f64 - base_run.sim_cycles as f64).abs()
                / base_run.sim_cycles as f64;
            if drift > threshold {
                flagged.push(format!(
                    "{} / {}: simulated cycles drifted {:.1}% ({} -> {})",
                    cur.workload,
                    cur_run.method,
                    drift * 100.0,
                    base_run.sim_cycles,
                    cur_run.sim_cycles
                ));
            }
        }
        let (Some(ba), Some(ca)) = (&base_run.accounting, &cur_run.accounting) else {
            continue;
        };
        let (bt, ct) = (ba.totals(), ca.totals());
        let (br, cr) = (ba.resident_warp_cycles(), ca.resident_warp_cycles());
        if br == 0 || cr == 0 {
            continue;
        }
        for class in StallClass::ALL {
            // Issued growing is a win, not a stall regression.
            if class == StallClass::Issued {
                continue;
            }
            let before = bt[class.index()] as f64 / br as f64;
            let after = ct[class.index()] as f64 / cr as f64;
            if after - before > threshold {
                flagged.push(format!(
                    "{} / {}: {} share grew {:.1}% -> {:.1}%",
                    cur.workload,
                    cur_run.method,
                    class.name(),
                    before * 100.0,
                    after * 100.0
                ));
            }
        }
    }
    flagged
}

/// Renders the memory-model signature of a base→current report pair:
/// per method, the `mem_pending` / `mem_queue_full` shares of resident
/// warp-cycles, and per hierarchy level the queue-delay p50/p95 from
/// the published `mem.<level>.queue_delay` histograms. This is the
/// review artifact for memory-model changes — `profile diff` prints it
/// unconditionally (informational; only the threshold flags fail the
/// diff), so a fidelity upgrade's stall-share footprint is visible in
/// CI logs even when it stays inside the bound.
pub fn mem_signature(base: &RunReport, cur: &RunReport) -> String {
    let share = |run: &MethodRun, class: StallClass| -> String {
        match &run.accounting {
            Some(a) => pct(a.totals()[class.index()], a.resident_warp_cycles()),
            None => "-".to_string(),
        }
    };
    let mut t = Table::new(&[
        "workload",
        "method",
        "mem_pending",
        "mem_queue_full",
        "(base -> cur)",
    ]);
    for cur_run in &cur.runs {
        let base_run = base.runs.iter().find(|r| r.method == cur_run.method);
        let fmt = |class: StallClass| {
            format!(
                "{} -> {}",
                base_run.map_or("-".to_string(), |r| share(r, class)),
                share(cur_run, class)
            )
        };
        t.row(vec![
            cur.workload.clone(),
            cur_run.method.clone(),
            fmt(StallClass::MemPending),
            fmt(StallClass::MemQueueFull),
            String::new(),
        ]);
    }
    let mut out = t.render();
    let mut q = Table::new(&[
        "queue-delay histogram",
        "count",
        "p50",
        "p95",
        "(base -> cur)",
    ]);
    for h in &cur.metrics.histograms {
        if !h.name.ends_with(".queue_delay") {
            continue;
        }
        let b = base.metrics.histograms.iter().find(|x| x.name == h.name);
        let col = |f: fn(&gpu_telemetry::HistogramSnapshot) -> u64| {
            format!(
                "{} -> {}",
                b.map_or("-".to_string(), |x| f(x).to_string()),
                f(h)
            )
        };
        q.row(vec![
            h.name.clone(),
            col(|x| x.count),
            col(|x| x.p50),
            col(|x| x.p95),
            String::new(),
        ]);
    }
    if !q.is_empty() {
        out.push_str(&q.render());
    }
    out
}

/// Validates a report's accounting data for `profile check`:
///
/// - every run carrying accounting satisfies the stall-sum invariant
///   ([`CycleAccounting::check`]) and accounts a nonzero residency;
/// - every run that simulated cycles without skipping all its kernels
///   carries accounting and a non-empty per-BB attribution (predicting
///   *and* IPC-extrapolating methods both produce rows).
///
/// Returns the list of violations (empty = pass).
pub fn check_report(report: &RunReport) -> Vec<String> {
    let mut problems = Vec::new();
    for run in &report.runs {
        let tag = format!("{} / {}", report.workload, run.method);
        match &run.accounting {
            Some(acct) => {
                if let Err(e) = acct.check() {
                    problems.push(format!("{tag}: {e}"));
                }
                if acct.is_empty() {
                    problems.push(format!("{tag}: accounting present but empty"));
                }
                if run.bb_errors.is_empty() && run.detailed_insts > 0 {
                    problems.push(format!(
                        "{tag}: detailed instructions but no per-BB attribution"
                    ));
                }
            }
            None if run.sim_cycles > 0 && run.skipped_kernels == 0 => {
                problems.push(format!("{tag}: simulated cycles but no accounting"));
            }
            None => {}
        }
    }
    if report.runs.iter().all(|r| r.accounting.is_none()) && !report.runs.is_empty() {
        problems.push(format!("{}: no run carries accounting", report.workload));
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_telemetry::{CuAccounting, StallWindow, STALL_CLASSES};

    fn acct(classes: [u64; STALL_CLASSES]) -> CycleAccounting {
        CycleAccounting {
            cycles: 100,
            window: 64,
            cus: vec![CuAccounting {
                classes,
                resident_warp_cycles: classes.iter().sum(),
            }],
            timeline: vec![
                StallWindow { start: 0, classes },
                StallWindow {
                    start: 64,
                    classes: [0; STALL_CLASSES],
                },
            ],
            shards: Vec::new(),
        }
    }

    fn run(method: &str, acct: Option<CycleAccounting>, bb_errors: Vec<BbErrorRow>) -> MethodRun {
        MethodRun {
            method: method.into(),
            warps: 64,
            wall_secs: 1.0,
            sim_cycles: 100,
            ipc: 1.0,
            detailed_insts: if bb_errors.is_empty() { 0 } else { 100 },
            functional_insts: 0,
            detailed_warps: 64,
            predicted_warps: 0,
            sample_coverage: 1.0,
            skipped_kernels: 0,
            speedup_vs_detailed: 1.0,
            error_vs_detailed: 0.0,
            accounting: acct,
            bb_errors,
        }
    }

    fn bb_row(bb: u32, delta: f64, instances: u64) -> BbErrorRow {
        BbErrorRow {
            kernel: "fir".into(),
            bb,
            instances,
            insts: instances * 8,
            measured_cycles: instances * 10,
            measured_mean: 10.0,
            predicted_mean: 10.0 + delta,
            delta,
            stall: [2, 0, 8, 0, 0, 0, 0, 0],
        }
    }

    fn report(runs: Vec<MethodRun>) -> RunReport {
        let mut r = RunReport::new("fir");
        r.runs = runs;
        r
    }

    #[test]
    fn stall_table_shows_shares() {
        let a = acct([50, 0, 30, 0, 0, 0, 20, 0]);
        let r = run("full", Some(a.clone()), vec![]);
        let rendered = stall_table("fir", &r, &a).render();
        assert!(rendered.contains("issued"), "{rendered}");
        assert!(rendered.contains("50.0%"), "{rendered}");
        assert!(rendered.contains("mem_pending"), "{rendered}");
        assert!(rendered.contains("resident total"), "{rendered}");
        assert!(rendered.contains("100.0%"), "{rendered}");
    }

    #[test]
    fn occupancy_summary_reads_timeline() {
        let s = occupancy_summary(&acct([64, 0, 64, 0, 0, 0, 0, 0]));
        // 128 warp-cycles in the first 64-cycle window = 2 warps; second
        // window is empty, so the mean is 1.0 and the peak 2.0.
        assert!(s.contains("mean 1.0"), "{s}");
        assert!(s.contains("peak 2.0"), "{s}");
        assert!(s.contains("1 busy"), "{s}");
        assert_eq!(
            occupancy_summary(&CycleAccounting::default()),
            "occupancy: no timeline windows"
        );
    }

    #[test]
    fn bb_error_table_sorts_by_impact() {
        // bb 1 has a small per-instance delta but many instances; its
        // total impact (0.5 × 1000 = 500) beats bb 2's (3.0 × 10 = 30).
        let r = run(
            "photon",
            Some(acct([10, 0, 0, 0, 0, 0, 0, 0])),
            vec![bb_row(2, 3.0, 10), bb_row(1, -0.5, 1000)],
        );
        let rendered = bb_error_table("fir", &r).render();
        let bb1 = rendered.find("-0.50").unwrap();
        let bb2 = rendered.find("+3.00").unwrap();
        assert!(bb1 < bb2, "highest-impact row first:\n{rendered}");
        assert!(rendered.contains("mem_pending"), "{rendered}");
    }

    #[test]
    fn render_report_covers_runs_without_accounting() {
        let rep = report(vec![
            run("full", Some(acct([10, 0, 0, 0, 0, 0, 0, 0])), vec![]),
            run("sieve", None, vec![]),
        ]);
        let s = render_report(&rep);
        assert!(s.contains("resident total"), "{s}");
        assert!(s.contains("fir / sieve: no accounting data"), "{s}");
    }

    #[test]
    fn diff_flags_cycle_drift() {
        let base = report(vec![run(
            "full",
            Some(acct([90, 0, 10, 0, 0, 0, 0, 0])),
            vec![],
        )]);
        let mut cur = report(vec![run(
            "full",
            Some(acct([90, 0, 10, 0, 0, 0, 0, 0])),
            vec![],
        )]);
        // 4% drift stays under a 5% bound, 8% does not.
        cur.runs[0].sim_cycles = 104;
        assert!(diff_reports(&base, &cur, 0.05).is_empty());
        cur.runs[0].sim_cycles = 108;
        let flagged = diff_reports(&base, &cur, 0.05);
        assert_eq!(flagged.len(), 1, "{flagged:?}");
        assert!(flagged[0].contains("cycles drifted"), "{flagged:?}");
        // Drift in either direction is an error, not just slowdowns.
        cur.runs[0].sim_cycles = 92;
        assert_eq!(diff_reports(&base, &cur, 0.05).len(), 1);
    }

    #[test]
    fn diff_flags_grown_stall_share() {
        let base = report(vec![run(
            "photon",
            Some(acct([90, 0, 10, 0, 0, 0, 0, 0])),
            vec![],
        )]);
        let cur = report(vec![run(
            "photon",
            Some(acct([50, 0, 50, 0, 0, 0, 0, 0])),
            vec![],
        )]);
        let flagged = diff_reports(&base, &cur, 0.05);
        assert_eq!(flagged.len(), 1, "{flagged:?}");
        assert!(flagged[0].contains("mem_pending"), "{flagged:?}");
        // Within threshold: nothing flagged.
        assert!(diff_reports(&base, &base, 0.05).is_empty());
        // Issued moving is never flagged as a regression.
        assert!(diff_reports(&cur, &base, 0.05).is_empty());
    }

    #[test]
    fn mem_signature_shows_share_movement_and_queue_percentiles() {
        let base = report(vec![run(
            "photon",
            Some(acct([80, 0, 15, 5, 0, 0, 0, 0])),
            vec![],
        )]);
        let mut cur = report(vec![run(
            "photon",
            Some(acct([60, 0, 20, 20, 0, 0, 0, 0])),
            vec![],
        )]);
        let reg = gpu_telemetry::Registry::default();
        reg.histogram("mem.l2.queue_delay").record_n(100, 10);
        cur.metrics.histograms = reg.snapshot().histograms;
        let s = mem_signature(&base, &cur);
        assert!(s.contains("mem_pending"), "{s}");
        assert!(s.contains("15.0% -> 20.0%"), "{s}");
        assert!(s.contains("5.0% -> 20.0%"), "{s}");
        assert!(s.contains("mem.l2.queue_delay"), "{s}");
        // Base has no histogram; the movement column degrades to "-".
        assert!(s.contains("- -> 10"), "{s}");
        // A method missing from the base still renders.
        let lone = report(vec![run("pka", None, vec![])]);
        let s2 = mem_signature(&report(vec![]), &lone);
        assert!(s2.contains("pka"), "{s2}");
        assert!(s2.contains("- -> -"), "{s2}");
    }

    #[test]
    fn check_passes_balanced_report_and_flags_violations() {
        let good = report(vec![run(
            "full",
            Some(acct([50, 0, 50, 0, 0, 0, 0, 0])),
            vec![bb_row(0, 0.1, 10)],
        )]);
        assert!(check_report(&good).is_empty());

        // Unbalanced CU: stall classes no longer sum to residency.
        let mut broken = good.clone();
        broken.runs[0].accounting.as_mut().unwrap().cus[0].resident_warp_cycles += 7;
        let problems = check_report(&broken);
        assert!(problems.iter().any(|p| p.contains("delta")), "{problems:?}");

        // Detailed instructions but empty per-BB attribution.
        let mut missing_bbs = good.clone();
        missing_bbs.runs[0].bb_errors.clear();
        let problems = check_report(&missing_bbs);
        assert!(
            problems.iter().any(|p| p.contains("per-BB")),
            "{problems:?}"
        );

        // A run that simulated cycles without any accounting at all.
        let no_acct = report(vec![run("full", None, vec![])]);
        let problems = check_report(&no_acct);
        assert!(!problems.is_empty(), "{problems:?}");
    }
}

//! The run journal: crash-safe, append-only record of completed
//! [`RunSpec`]s that makes interrupted grid runs resumable.
//!
//! ## Format
//!
//! `results/journal.jsonl` holds one line per completed spec:
//!
//! ```text
//! {"crc":"<16 hex fnv1a>","entry":{...JournalEntry...}}
//! ```
//!
//! The `crc` covers the serialized `entry` object, so a line torn by a
//! crash mid-append (or corrupted on disk) fails validation and is
//! skipped — the loader never propagates partial data, and a journal
//! with a torn trailing line simply resumes one spec earlier. Every
//! line is flushed and fsync'd before the executor reports the spec
//! complete.
//!
//! ## Keying
//!
//! Entries are keyed by [`journal_key`]: FNV-1a over the journal schema
//! version, the ISA fingerprint, and the spec's canonical JSON. Unlike
//! the reference-cache key, the **method is part of the key** — the
//! journal records what ran, not what is derivable.
//!
//! ## Resume semantics
//!
//! Only outcomes worth replaying are journaled: completed measurements
//! and *permanent* skips (a deterministic `SimError` will fail the same
//! way again). Transient skips — panics, timeouts, exhausted retry
//! budgets — are never journaled, so `--resume` retries them.

use crate::harness::RunOutcome;
use crate::specs::RunSpec;
use gpu_isa::{fnv1a, fnv1a_extend, isa_fingerprint};
use gpu_telemetry::faults::{self, FaultSite};
use gpu_telemetry::MetricsSnapshot;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Bumped whenever the entry layout or key derivation changes; old
/// journal lines are then ignored (and re-simulated) instead of
/// misread.
pub const JOURNAL_SCHEMA_VERSION: u32 = 1;

/// The journal identity of a spec: unlike [`crate::reference_key`],
/// every field that selects *what ran* participates — including the
/// method.
pub fn journal_key(spec: &RunSpec) -> u64 {
    let spec_json = serde_json::to_string(spec).unwrap_or_default();
    let mut h = fnv1a(&JOURNAL_SCHEMA_VERSION.to_le_bytes());
    h = fnv1a_extend(h, &isa_fingerprint().to_le_bytes());
    fnv1a_extend(h, spec_json.as_bytes())
}

/// One journal line: the completed spec's outcome plus the run's
/// private metrics snapshot, so a resumed grid reproduces the original
/// report byte-for-byte (metrics merge included).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JournalEntry {
    /// Must equal [`JOURNAL_SCHEMA_VERSION`] to be replayed.
    pub schema_version: u32,
    /// The [`journal_key`] this entry answers, hex-rendered.
    pub key: String,
    /// Human-readable `workload/method` label (diagnostics only).
    pub label: String,
    /// The recorded outcome.
    pub outcome: RunOutcome,
    /// The run's metrics snapshot at completion (empty for cache hits,
    /// exactly as in an uninterrupted run).
    pub metrics: MetricsSnapshot,
}

/// Everything a journal file yielded on load.
#[derive(Debug, Default)]
pub struct JournalLoad {
    /// Replayable entries by key (last line wins on duplicates).
    pub entries: HashMap<u64, JournalEntry>,
    /// Lines that failed crc/parse/schema validation and were skipped.
    pub corrupt_lines: usize,
}

/// Loads a journal, tolerating a missing file (empty journal) and any
/// number of torn or corrupt lines (each counted, never propagated).
pub fn load_journal(path: &Path) -> JournalLoad {
    let mut out = JournalLoad::default();
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(_) => return out,
    };
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match parse_line(line) {
            Some(entry) => match u64::from_str_radix(&entry.key, 16) {
                Ok(key) => {
                    out.entries.insert(key, entry);
                }
                Err(_) => out.corrupt_lines += 1,
            },
            None => out.corrupt_lines += 1,
        }
    }
    out
}

/// Wraps an already-serialized JSON object into one crc-framed journal
/// line (trailing newline included): `{"crc":"<16 hex>","entry":<json>}`.
/// The generic half of the journal format — `photon-serve`'s
/// pending-jobs journal reuses it for entries that are not
/// [`JournalEntry`]s.
pub fn frame_line(entry_json: &str) -> String {
    let crc = crate::persist::checksum(entry_json.as_bytes());
    format!("{{\"crc\":\"{crc:016x}\",\"entry\":{entry_json}}}\n")
}

/// Validates one crc-framed line and returns the inner `entry` value;
/// `None` for anything torn or corrupt. The checksum was taken over the
/// entry's serialized text; the vendored serde_json renders parse(s)
/// back to s byte-identically (numbers keep their shortest form, field
/// order is preserved), so re-serializing the parsed value reproduces
/// the hashed bytes.
pub fn parse_framed_line(line: &str) -> Option<serde_json::Value> {
    let v = serde_json::from_str::<serde_json::Value>(line).ok()?;
    let crc = match v.get("crc") {
        Some(serde_json::Value::String(s)) => u64::from_str_radix(s, 16).ok()?,
        _ => return None,
    };
    let entry_value = v.get("entry")?;
    let entry_json = serde_json::to_string(entry_value).ok()?;
    if crate::persist::checksum(entry_json.as_bytes()) != crc {
        return None;
    }
    Some(entry_value.clone())
}

/// Validates and parses one journal line; `None` for anything torn,
/// corrupt, or from another schema version.
fn parse_line(line: &str) -> Option<JournalEntry> {
    let entry_value = parse_framed_line(line)?;
    let entry = JournalEntry::deserialize(&entry_value).ok()?;
    if entry.schema_version != JOURNAL_SCHEMA_VERSION {
        return None;
    }
    Some(entry)
}

/// Whether an outcome is worth journaling: replaying it on resume must
/// be indistinguishable from re-running the spec. Transient failures
/// (panics, stalls, exhausted retries) must re-run instead.
pub fn journalable(outcome: &RunOutcome) -> bool {
    match outcome {
        RunOutcome::Completed(_) => true,
        RunOutcome::Skipped { failure, .. } => *failure == crate::harness::FailureKind::Permanent,
    }
}

/// An open journal file: append-only, one fsync'd line per record.
/// Worker threads share it behind `&self`.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: Mutex<std::fs::File>,
}

impl Journal {
    /// Opens a journal for a fresh grid run (truncates any previous
    /// journal — the file describes *this* run).
    ///
    /// # Errors
    /// Returns the underlying I/O error.
    pub fn create(path: &Path) -> std::io::Result<Journal> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let file = std::fs::File::create(path)?;
        Ok(Journal {
            path: path.to_path_buf(),
            file: Mutex::new(file),
        })
    }

    /// Opens a journal for appending (resume: completed specs stay
    /// recorded).
    ///
    /// # Errors
    /// Returns the underlying I/O error.
    pub fn append(path: &Path) -> std::io::Result<Journal> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(Journal {
            path: path.to_path_buf(),
            file: Mutex::new(file),
        })
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record and fsyncs it. Failures warn (the journal is
    /// an accelerator for resume, never a correctness dependency).
    pub fn record(&self, key: u64, label: &str, outcome: &RunOutcome, metrics: &MetricsSnapshot) {
        let entry = JournalEntry {
            schema_version: JOURNAL_SCHEMA_VERSION,
            key: format!("{key:016x}"),
            label: label.to_string(),
            outcome: outcome.clone(),
            metrics: metrics.clone(),
        };
        let entry_json = match serde_json::to_string(&entry) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("warning: could not serialize journal entry for {label}: {e}");
                return;
            }
        };
        let mut line = frame_line(&entry_json);
        if faults::active() && faults::should_inject(FaultSite::JournalTorn, key) {
            // Simulate a crash mid-append: only a prefix of the line
            // lands on disk. The loader must skip it cleanly.
            line.truncate(line.len() / 2);
        }
        let mut f = self.file.lock().unwrap_or_else(|e| e.into_inner());
        let write = f
            .write_all(line.as_bytes())
            .and_then(|()| f.flush())
            .and_then(|()| f.sync_data());
        if let Err(e) = write {
            eprintln!(
                "warning: could not append to journal {}: {e}",
                self.path.display()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{FailureKind, Measurement};
    use crate::specs::Method;
    use gpu_sim::GpuConfig;
    use gpu_workloads::registry::Benchmark;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn temp_journal() -> PathBuf {
        static N: AtomicU32 = AtomicU32::new(0);
        std::env::temp_dir().join(format!(
            "photon-journal-{}-{}.jsonl",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn meas() -> Measurement {
        Measurement {
            workload: "fir".into(),
            warps: 64,
            method: "Full".into(),
            sim_cycles: 1234,
            wall_secs: 0.25,
            detailed_insts: 10,
            functional_insts: 0,
            detailed_warps: 64,
            predicted_warps: 0,
            skipped_kernels: 0,
            kernel_cycles: vec![1234],
            accounting: None,
            bb_errors: vec![],
        }
    }

    #[test]
    fn key_includes_the_method() {
        let full = RunSpec::bench(GpuConfig::tiny(), Benchmark::Fir, 64, Method::Full);
        let mut pka = full.clone();
        pka.method = Method::Pka;
        assert_ne!(journal_key(&full), journal_key(&pka));
        assert_eq!(journal_key(&full), journal_key(&full.clone()));
    }

    #[test]
    fn record_and_load_roundtrip() {
        let path = temp_journal();
        let j = Journal::create(&path).unwrap();
        let outcome = RunOutcome::Completed(meas());
        j.record(0xabc, "fir/Full", &outcome, &MetricsSnapshot::default());
        j.record(
            0xdef,
            "fir/PKA",
            &RunOutcome::Skipped {
                workload: "fir".into(),
                method: "PKA".into(),
                reason: "simulation error: deadlock".into(),
                error: Some("Deadlock".into()),
                failure: FailureKind::Permanent,
            },
            &MetricsSnapshot::default(),
        );
        let load = load_journal(&path);
        assert_eq!(load.corrupt_lines, 0);
        assert_eq!(load.entries.len(), 2);
        let e = &load.entries[&0xabc];
        assert_eq!(e.label, "fir/Full");
        assert_eq!(e.outcome.measurement().unwrap().sim_cycles, 1234);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_and_corrupt_lines_are_skipped_not_fatal() {
        let path = temp_journal();
        let j = Journal::create(&path).unwrap();
        j.record(
            1,
            "a/Full",
            &RunOutcome::Completed(meas()),
            &MetricsSnapshot::default(),
        );
        drop(j);
        // A crash mid-append: a torn trailing line.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"crc\":\"0000000000000001\",\"entry\":{\"schema_ver");
        std::fs::write(&path, &text).unwrap();
        let load = load_journal(&path);
        assert_eq!(load.entries.len(), 1);
        assert_eq!(load.corrupt_lines, 1);
        // Bit corruption in a committed line: crc catches it.
        let tampered = std::fs::read_to_string(&path)
            .unwrap()
            .replace("\"sim_cycles\":1234", "\"sim_cycles\":9999");
        std::fs::write(&path, &tampered).unwrap();
        let load = load_journal(&path);
        assert_eq!(load.entries.len(), 0);
        assert_eq!(load.corrupt_lines, 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_journal_is_empty() {
        let load = load_journal(Path::new("/nonexistent/journal.jsonl"));
        assert!(load.entries.is_empty());
        assert_eq!(load.corrupt_lines, 0);
    }

    #[test]
    fn only_replayable_outcomes_are_journalable() {
        assert!(journalable(&RunOutcome::Completed(meas())));
        let skip = |failure| RunOutcome::Skipped {
            workload: "x".into(),
            method: "Full".into(),
            reason: "r".into(),
            error: None,
            failure,
        };
        assert!(journalable(&skip(FailureKind::Permanent)));
        assert!(!journalable(&skip(FailureKind::Transient)));
    }
}

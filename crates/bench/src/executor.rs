//! The parallel experiment executor: [`RunSpec`] jobs fanned out over a
//! work-stealing pool, with full-detailed reference runs deduplicated
//! through the [`RefCache`].
//!
//! ## Job model
//!
//! Every job is self-contained: the worker constructs a fresh
//! `GpuSimulator`, application, controller, and **per-run**
//! [`Telemetry`] from its [`RunSpec`], so concurrent runs share no
//! mutable state and scheduling order cannot affect any measurement.
//! Results are written back by job index — the output order equals the
//! spec order regardless of which worker finished first, and a suite
//! executed with `--jobs 1` and `--jobs N` is bit-identical in
//! everything but wall-clock fields.
//!
//! Each run keeps the harness guardrails: it executes behind
//! `catch_unwind` and a wall-clock timeout on a dedicated run thread
//! (the pool worker blocks on it), so a panicking or wedged
//! configuration becomes a [`RunOutcome::Skipped`] while its siblings
//! continue. A timed-out run thread is abandoned, never joined into the
//! pool.

use crate::harness::{panic_reason, try_run_app_method, FailureKind, Measurement, RunOutcome};
use crate::journal::{journal_key, Journal};
use crate::refcache::{reference_key, RefCache};
use crate::specs::{Method, RunSpec};
use gpu_telemetry::faults::{self, FaultSite};
use gpu_telemetry::span::{self, SpanKind};
use gpu_telemetry::{MetricsSnapshot, Telemetry, TraceLog};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, RecvTimeoutError};
use std::sync::Mutex;
use std::time::Duration;

/// How an executor invocation runs: worker count, per-run timeout,
/// retry budget, journaling, and reference-cache policy.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Worker threads (`--jobs N`); clamped to at least 1.
    pub jobs: usize,
    /// Wall-clock budget per run before it is skipped.
    pub timeout: Duration,
    /// Whether completed `Method::Full` runs are served from / stored
    /// to the persistent reference cache (`PHOTON_BENCH_CACHE=0`
    /// disables it; in-process deduplication still applies).
    pub cache: bool,
    /// Cache directory override; `None` means `results/cache/`. Tests
    /// point this at a temp directory so parallel test binaries never
    /// race on env vars or a shared cache.
    pub cache_dir: Option<std::path::PathBuf>,
    /// Ring capacity for per-run event tracing (0 = off; only recorded
    /// when the `telemetry` feature is compiled in).
    pub trace_capacity: usize,
    /// Extra attempts granted to a run whose failure is
    /// [`FailureKind::Transient`] (panics, timeouts). Permanent
    /// failures never retry.
    pub retries: u32,
    /// Base delay before the first retry; doubles per attempt, capped
    /// at one second.
    pub retry_backoff: Duration,
    /// Run-journal path (`--resume` reads it; every completed spec
    /// appends to it). `None` disables journaling — the default for
    /// library/test use; the CLI turns it on at `results/journal.jsonl`.
    pub journal: Option<std::path::PathBuf>,
    /// Replay completed specs from the journal instead of re-simulating
    /// them (requires `journal`).
    pub resume: bool,
    /// Timing-engine override applied to every spec's machine config
    /// before running (`--engine`). `None` leaves the specs untouched.
    pub engine_mode: Option<gpu_sim::EngineMode>,
    /// Worker-thread override for the epoch engines (`--engine-threads`).
    pub engine_threads: Option<u32>,
    /// Memory-fidelity override applied to every spec's machine config
    /// (`--mem-fidelity legacy|detailed`). `None` leaves the specs
    /// untouched; `Detailed` swaps in [`gpu_mem::MemFidelityConfig::
    /// detailed`]'s knobs, `Legacy` forces the legacy miss path.
    pub mem_fidelity: Option<gpu_mem::MemFidelityMode>,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            jobs: default_jobs(),
            timeout: Duration::from_secs(1800),
            cache: true,
            cache_dir: None,
            trace_capacity: 0,
            retries: 2,
            retry_backoff: Duration::from_millis(50),
            journal: None,
            resume: false,
            engine_mode: None,
            engine_threads: None,
            mem_fidelity: None,
        }
    }
}

/// The default worker count: the machine's available parallelism.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// One executed (or cache-served) spec: the outcome plus the run's own
/// telemetry. Metrics and trace are empty for cache hits and for runs
/// deduplicated against an identical sibling spec.
#[derive(Debug)]
pub struct RunResult {
    /// The spec this result answers.
    pub spec: RunSpec,
    /// Measurement or structured skip.
    pub outcome: RunOutcome,
    /// The run's private metrics snapshot (merge explicitly across runs
    /// with [`MetricsSnapshot::merge`]).
    pub metrics: MetricsSnapshot,
    /// The run's private trace (empty when tracing is off).
    pub trace: TraceLog,
    /// True when the measurement came from the persistent reference
    /// cache instead of a simulation.
    pub from_cache: bool,
}

impl RunResult {
    /// The measurement, if the run completed.
    pub fn measurement(&self) -> Option<&Measurement> {
        self.outcome.measurement()
    }
}

/// Counters describing what an executor invocation actually did — the
/// warm-cache CI assertion reads `full_runs_executed`.
#[derive(Debug, Clone, Default, serde::Serialize)]
pub struct ExecStats {
    /// Worker threads used.
    pub jobs: usize,
    /// Specs submitted.
    pub total: usize,
    /// Simulations actually executed (after dedup and cache hits).
    pub executed: usize,
    /// `Method::Full` simulations actually executed. Zero on a warm
    /// cache.
    pub full_runs_executed: usize,
    /// Specs served from the persistent reference cache.
    pub cache_hits: usize,
    /// Specs answered by an identical sibling spec in the same
    /// invocation.
    pub deduped: usize,
    /// Runs that ended as [`RunOutcome::Skipped`].
    pub skipped: usize,
    /// Extra attempts consumed retrying transient failures.
    pub retried: usize,
    /// Specs replayed from the run journal (`--resume`).
    pub resumed: usize,
}

/// Results (in spec order) plus execution statistics.
#[derive(Debug)]
pub struct ExecReport {
    /// One result per submitted spec, in submission order.
    pub results: Vec<RunResult>,
    /// What the executor did to produce them.
    pub stats: ExecStats,
    /// Executor-level telemetry: the `exec.abandoned_threads` gauge
    /// (worker threads leaked by timeouts during this invocation) and
    /// the `refcache.quarantined` counter. Kept separate from per-run
    /// metrics so merging results never double-counts it.
    pub metrics: MetricsSnapshot,
}

impl ExecReport {
    /// The completed measurements, in submission order, panicking on
    /// the first skip with its recorded reason. Figures that cannot
    /// render partial grids use this; sweeps that tolerate holes match
    /// on [`RunResult::outcome`] instead.
    ///
    /// # Panics
    /// Panics if any run was skipped.
    pub fn measurements(&self) -> Vec<&Measurement> {
        self.results
            .iter()
            .map(|r| match &r.outcome {
                RunOutcome::Completed(m) => m,
                RunOutcome::Skipped {
                    workload,
                    method,
                    reason,
                    ..
                } => panic!("{workload} under {method} skipped: {reason}"),
            })
            .collect()
    }
}

/// Runs every spec and returns results in spec order.
///
/// Identical specs are simulated once (`stats.deduped` counts the
/// copies). Completed `Full` runs are additionally memoized through the
/// reference cache, so a warm rerun of the same grid performs zero
/// full-detailed simulations.
pub fn run_specs(specs: &[RunSpec], opts: &ExecOptions) -> ExecReport {
    // Engine overrides rewrite the specs up front so everything keyed
    // on the spec (deduplication, the reference cache, the journal)
    // sees the machine that actually ran.
    let overridden: Vec<RunSpec>;
    let specs: &[RunSpec] = if opts.engine_mode.is_some()
        || opts.engine_threads.is_some()
        || opts.mem_fidelity.is_some()
    {
        overridden = specs
            .iter()
            .map(|s| {
                let mut s = s.clone();
                if let Some(mode) = opts.engine_mode {
                    s.gpu.engine.mode = mode;
                }
                if let Some(threads) = opts.engine_threads {
                    s.gpu.engine.threads = threads;
                }
                match opts.mem_fidelity {
                    Some(gpu_mem::MemFidelityMode::Detailed) => {
                        s.gpu.mem.fidelity = gpu_mem::MemFidelityConfig::detailed();
                    }
                    Some(gpu_mem::MemFidelityMode::Legacy) => {
                        s.gpu.mem.fidelity.mode = gpu_mem::MemFidelityMode::Legacy;
                    }
                    None => {}
                }
                s
            })
            .collect();
        &overridden
    } else {
        specs
    };
    let mut stats = ExecStats {
        jobs: opts.jobs.max(1),
        total: specs.len(),
        ..ExecStats::default()
    };
    let cache = if opts.cache {
        RefCache::persistent(opts.cache_dir.clone().unwrap_or_else(RefCache::default_dir))
    } else {
        RefCache::memory_only()
    };
    let abandoned_before = crate::harness::abandoned_threads();

    // Run journal: load completed specs when resuming, then open for
    // appending (a fresh run truncates — the journal describes *this*
    // grid). Journal failures degrade to journal-less operation.
    let replay = if opts.resume {
        opts.journal
            .as_deref()
            .map(|p| crate::journal::load_journal(p).entries)
            .unwrap_or_default()
    } else {
        std::collections::HashMap::new()
    };
    let journal = opts.journal.as_deref().and_then(|p| {
        let opened = if opts.resume {
            Journal::append(p)
        } else {
            Journal::create(p)
        };
        match opened {
            Ok(j) => Some(j),
            Err(e) => {
                eprintln!("warning: could not open journal {}: {e}", p.display());
                None
            }
        }
    });

    // Deduplicate identical specs: only the first occurrence simulates.
    let mut unique: Vec<usize> = Vec::new(); // unique-job -> spec index
    let mut alias: Vec<usize> = Vec::with_capacity(specs.len()); // spec -> unique-job
    for (i, spec) in specs.iter().enumerate() {
        match unique.iter().position(|&u| specs[u] == *spec) {
            Some(j) => {
                alias.push(j);
                stats.deduped += 1;
            }
            None => {
                unique.push(i);
                alias.push(unique.len() - 1);
            }
        }
    }

    // Resolve unique jobs: journal replay, cache hit, or simulation.
    enum Resolved {
        Cached(Measurement),
        Journaled {
            outcome: RunOutcome,
            metrics: MetricsSnapshot,
        },
        Ran {
            outcome: RunOutcome,
            metrics: MetricsSnapshot,
            trace: TraceLog,
        },
    }
    let cache_hits = AtomicUsize::new(0);
    let executed = AtomicUsize::new(0);
    let full_executed = AtomicUsize::new(0);
    let retried = AtomicUsize::new(0);
    let resumed = AtomicUsize::new(0);
    let resolved: Vec<Resolved> = parallel_map(
        unique.iter().map(|&i| &specs[i]).collect(),
        stats.jobs,
        &|spec: &RunSpec| {
            let jkey = journal_key(spec);
            if let Some(entry) = replay.get(&jkey) {
                resumed.fetch_add(1, Ordering::Relaxed);
                return Resolved::Journaled {
                    outcome: entry.outcome.clone(),
                    metrics: entry.metrics.clone(),
                };
            }
            // Root job span for this unique spec: CLI grids leave the
            // same evidence trail as serve jobs (same job id — the
            // journal key). Replays above are bookkeeping, not runs, and
            // get no span.
            let jctx = span::start_job(jkey, &spec.label());
            let _jscope = span::enter(jctx);
            let record = |outcome: &RunOutcome, metrics: &MetricsSnapshot| {
                if let Some(j) = &journal {
                    // Transient skips are deliberately not journaled:
                    // a resumed run must retry them, not replay them.
                    if crate::journal::journalable(outcome) {
                        j.record(jkey, &spec.label(), outcome, metrics);
                    }
                }
            };
            let resolved = if spec.method == Method::Full {
                // Single-flight through the cache: a hit answers from
                // memory/disk, a miss leads the simulation (storing the
                // completed measurement before followers wake), and a
                // concurrent identical computation — e.g. photon-serve
                // sharing this cache instance — is joined, not repeated.
                let key = reference_key(spec);
                let probe = span::guard(jctx, SpanKind::CacheProbe, &spec.workload.name());
                let mut led: Option<(RunOutcome, MetricsSnapshot, TraceLog)> = None;
                let (m, _origin) = cache.get_or_compute_full(key, &spec.workload.name(), || {
                    let out = execute_spec_retrying(spec, opts, jkey, &retried, None);
                    executed.fetch_add(1, Ordering::Relaxed);
                    full_executed.fetch_add(1, Ordering::Relaxed);
                    let meas = match &out.0 {
                        RunOutcome::Completed(m) => Some(m.clone()),
                        _ => None,
                    };
                    led = Some(out);
                    meas
                });
                probe.finish(
                    true,
                    if led.is_none() && m.is_some() {
                        "hit"
                    } else {
                        "miss"
                    },
                );
                if let Some((outcome, metrics, trace)) = led {
                    record(&outcome, &metrics);
                    Resolved::Ran {
                        outcome,
                        metrics,
                        trace,
                    }
                } else {
                    match m {
                        Some(m) => {
                            cache_hits.fetch_add(1, Ordering::Relaxed);
                            let outcome = RunOutcome::Completed(m.clone());
                            record(&outcome, &MetricsSnapshot::default());
                            Resolved::Cached(m)
                        }
                        None => {
                            // Coalesced onto a leader (in another executor
                            // sharing this cache) whose run failed: fall back
                            // to running it ourselves so this grid still gets
                            // a first-hand outcome.
                            let (outcome, metrics, trace) =
                                execute_spec_retrying(spec, opts, jkey, &retried, None);
                            executed.fetch_add(1, Ordering::Relaxed);
                            full_executed.fetch_add(1, Ordering::Relaxed);
                            record(&outcome, &metrics);
                            Resolved::Ran {
                                outcome,
                                metrics,
                                trace,
                            }
                        }
                    }
                }
            } else {
                let (outcome, metrics, trace) =
                    execute_spec_retrying(spec, opts, jkey, &retried, None);
                executed.fetch_add(1, Ordering::Relaxed);
                record(&outcome, &metrics);
                Resolved::Ran {
                    outcome,
                    metrics,
                    trace,
                }
            };
            let (ok, detail) = match &resolved {
                Resolved::Cached(_) => (true, String::from("cache-hit")),
                Resolved::Journaled { .. } => (true, String::new()),
                Resolved::Ran { outcome, .. } => match outcome {
                    RunOutcome::Completed(_) => (true, String::new()),
                    RunOutcome::Skipped { reason, .. } => (false, reason.clone()),
                },
            };
            span::close(jctx.span, ok, &detail);
            resolved
        },
    );
    stats.cache_hits = cache_hits.into_inner();
    stats.executed = executed.into_inner();
    stats.full_runs_executed = full_executed.into_inner();
    stats.retried = retried.into_inner();
    stats.resumed = resumed.into_inner();

    // Fan results back out to submission order.
    let mut results = Vec::with_capacity(specs.len());
    for (i, spec) in specs.iter().cloned().enumerate() {
        let job = alias[i];
        let first_owner = i == unique[job];
        let r = match &resolved[job] {
            Resolved::Cached(m) => RunResult {
                spec,
                outcome: RunOutcome::Completed(m.clone()),
                metrics: MetricsSnapshot::default(),
                trace: TraceLog::default(),
                from_cache: true,
            },
            Resolved::Journaled { outcome, metrics } => RunResult {
                spec,
                outcome: outcome.clone(),
                // The journal stored the original run's metrics, so a
                // resumed grid merges to the same snapshot as an
                // uninterrupted one. The trace is gone — it is not part
                // of any report.
                metrics: if first_owner {
                    metrics.clone()
                } else {
                    MetricsSnapshot::default()
                },
                trace: TraceLog::default(),
                from_cache: false,
            },
            Resolved::Ran {
                outcome,
                metrics,
                trace,
            } => RunResult {
                spec,
                outcome: outcome.clone(),
                // Telemetry belongs to the run, not its aliases: only
                // the first occurrence carries it, so merging every
                // result never double-counts a simulation.
                metrics: if first_owner {
                    metrics.clone()
                } else {
                    MetricsSnapshot::default()
                },
                trace: if first_owner {
                    trace.clone()
                } else {
                    TraceLog::default()
                },
                from_cache: false,
            },
        };
        if r.outcome.measurement().is_none() {
            stats.skipped += 1;
        }
        results.push(r);
    }

    // Executor-level telemetry. These are invocation properties, not
    // run properties, so they live beside the per-run snapshots; both
    // values are 0 on a healthy fault-free run, which keeps resumed and
    // uninterrupted reports byte-identical.
    let exec_tel = Telemetry::default();
    exec_tel
        .gauge("exec.abandoned_threads")
        .set((crate::harness::abandoned_threads() - abandoned_before) as f64);
    exec_tel
        .counter("refcache.quarantined")
        .add(cache.quarantined());
    let cache_stats = cache.stats();
    exec_tel
        .counter("refcache.evicted")
        .add(cache_stats.disk_evicted);
    exec_tel
        .counter("refcache.mem_evicted")
        .add(cache_stats.memory.evicted);
    exec_tel
        .counter("refcache.coalesced")
        .add(cache_stats.memory.coalesced);
    ExecReport {
        results,
        stats,
        metrics: exec_tel.snapshot(),
    }
}

/// Executes one spec with the full guardrail + retry stack, observable
/// from outside: when `telemetry` is provided, the run's counters and
/// gauges land in that registry **live** (this is how `photon-serve`
/// streams `status`/`wait` progress events while a simulation runs) in
/// addition to being returned as the final snapshot. With `None` the
/// behavior is exactly the executor's: a fresh private registry per
/// run.
pub fn run_spec_observed(
    spec: &RunSpec,
    opts: &ExecOptions,
    telemetry: Option<&Telemetry>,
) -> (RunOutcome, MetricsSnapshot, TraceLog) {
    let retried = AtomicUsize::new(0);
    let (outcome, mut metrics, trace) =
        execute_spec_retrying(spec, opts, journal_key(spec), &retried, telemetry);
    let retries = retried.load(Ordering::Relaxed) as u64;
    if retries > 0 {
        // The snapshot was taken before the retry count was known; fold
        // it in so observers see how many attempts the outcome cost.
        if let Some(t) = telemetry {
            t.counter("exec.retried").add(retries);
        }
        metrics.counters.push(gpu_telemetry::CounterSnapshot {
            name: "exec.retried".to_string(),
            value: retries,
        });
    }
    (outcome, metrics, trace)
}

/// [`execute_spec`] plus the transient-failure retry loop: a panic or
/// timeout re-runs (after capped exponential backoff) until it succeeds
/// or the budget is exhausted; a deterministic failure returns
/// immediately. The last attempt's outcome is returned either way.
fn execute_spec_retrying(
    spec: &RunSpec,
    opts: &ExecOptions,
    jkey: u64,
    retried: &AtomicUsize,
    external: Option<&Telemetry>,
) -> (RunOutcome, MetricsSnapshot, TraceLog) {
    let mut attempt: u32 = 0;
    loop {
        let out = execute_spec(spec, opts, jkey ^ u64::from(attempt), external);
        match out.0.failure() {
            Some(FailureKind::Transient) if attempt < opts.retries => {
                attempt += 1;
                retried.fetch_add(1, Ordering::Relaxed);
                let backoff = opts
                    .retry_backoff
                    .saturating_mul(1u32 << (attempt - 1).min(16))
                    .min(Duration::from_secs(1));
                std::thread::sleep(backoff);
            }
            _ => return out,
        }
    }
}

/// Executes one spec with the harness guardrails, returning the outcome
/// together with the run's private telemetry.
///
/// The simulation happens on its own named thread behind `catch_unwind`
/// and `opts.timeout`; the calling pool worker just waits. On timeout
/// the run thread is abandoned (it cannot be cancelled) and empty
/// telemetry is returned — the abandoned thread still owns its handle.
///
/// `fault_key` seeds the `exec.panic` / `exec.stall` injection sites:
/// it is the spec's journal key XOR the attempt number, so fault
/// decisions are a pure function of *what* runs (never of scheduling
/// order — `--jobs 1` and `--jobs N` see identical faults) and a retry
/// re-rolls rather than deterministically re-failing.
fn execute_spec(
    spec: &RunSpec,
    opts: &ExecOptions,
    fault_key: u64,
    external: Option<&Telemetry>,
) -> (RunOutcome, MetricsSnapshot, TraceLog) {
    let workload = spec.workload.name();
    let method_name = spec.method.name();
    let skipped =
        |reason: String, error: Option<String>, failure: FailureKind| RunOutcome::Skipped {
            workload: workload.clone(),
            method: method_name.clone(),
            reason,
            error,
            failure,
        };

    let run_spec = spec.clone();
    let trace_capacity = opts.trace_capacity;
    // `Telemetry` is a cheap-clone handle onto a shared registry, so an
    // external observer sees the run's counters move live. (A timed-out
    // run's abandoned thread keeps writing into it until it exits —
    // observers read monotonic counters, so that is benign.)
    let ext = external.cloned();
    // Long enough to trip the timeout with margin, short enough that
    // the abandoned sleeper exits soon after.
    let stall = opts.timeout.saturating_mul(2);
    // The run thread inherits the caller's trace context (thread-locals
    // don't cross the spawn) and wraps the attempt in a `sim` span, so
    // a failed attempt's span names its failure — including the fault
    // site of an injected panic.
    let parent_ctx = span::current();
    let attempt_label = format!("{} attempt {}", spec.label(), fault_key ^ journal_key(spec));
    let (tx, rx) = channel();
    let spawn = std::thread::Builder::new()
        .name(format!("run-{}", spec.label()))
        .spawn(move || {
            let _scope = parent_ctx.map(span::enter);
            let sim_span = parent_ctx.map(|ctx| span::guard(ctx, SpanKind::Sim, &attempt_label));
            let _sim_scope = sim_span.as_ref().map(|g| span::enter(g.ctx()));
            if faults::active() {
                faults::maybe_stall(FaultSite::ExecStall, fault_key, stall);
            }
            let telemetry = ext.unwrap_or_default();
            if trace_capacity > 0 {
                telemetry.enable_tracing(trace_capacity);
            }
            let res = catch_unwind(AssertUnwindSafe(|| {
                if faults::active() {
                    faults::maybe_panic(FaultSite::ExecPanic, fault_key);
                }
                try_run_app_method(
                    &run_spec.gpu,
                    &run_spec.workload.name(),
                    &|gpu| run_spec.workload.build(gpu, run_spec.seed),
                    &run_spec.method,
                    &run_spec.photon,
                    &telemetry,
                )
            }));
            if let Some(g) = sim_span {
                match &res {
                    Ok(Ok(_)) => g.finish(true, ""),
                    Ok(Err(e)) => g.finish(false, &format!("simulation error: {e}")),
                    Err(payload) => g.finish(false, &panic_reason(payload.as_ref())),
                }
            }
            let snapshot = telemetry.snapshot();
            let trace = telemetry.take_events();
            // The receiver may already have timed out and moved on.
            let _ = tx.send((res, snapshot, trace));
        });
    let handle = match spawn {
        Ok(h) => h,
        Err(e) => {
            return (
                skipped(
                    format!("could not spawn run thread: {e}"),
                    None,
                    FailureKind::Transient,
                ),
                MetricsSnapshot::default(),
                TraceLog::default(),
            )
        }
    };

    match rx.recv_timeout(opts.timeout) {
        Ok((res, metrics, trace)) => {
            let _ = handle.join();
            let outcome = match res {
                Ok(Ok(mut m)) => {
                    // Single-kernel benchmarks report the requested
                    // problem size; multi-kernel apps keep the builder's
                    // total.
                    if spec.workload.warps() > 0 {
                        m.warps = spec.workload.warps();
                    }
                    RunOutcome::Completed(m)
                }
                Ok(Err(sim_err)) => skipped(
                    format!("simulation error: {sim_err}"),
                    Some(format!("{sim_err:?}")),
                    FailureKind::Permanent,
                ),
                Err(payload) => skipped(
                    format!("panicked: {}", panic_reason(payload.as_ref())),
                    None,
                    FailureKind::Transient,
                ),
            };
            (outcome, metrics, trace)
        }
        Err(RecvTimeoutError::Timeout) => {
            crate::harness::note_abandoned_thread();
            (
                skipped(
                    format!("timed out after {:.1}s", opts.timeout.as_secs_f64()),
                    None,
                    FailureKind::Transient,
                ),
                MetricsSnapshot::default(),
                TraceLog::default(),
            )
        }
        Err(RecvTimeoutError::Disconnected) => {
            let _ = handle.join();
            (
                skipped(
                    "run thread died without reporting".to_string(),
                    None,
                    FailureKind::Transient,
                ),
                MetricsSnapshot::default(),
                TraceLog::default(),
            )
        }
    }
}

/// Applies `f` to every item on a work-stealing pool of `jobs` workers
/// and returns the results in item order.
///
/// Items are seeded round-robin into per-worker deques; an idle worker
/// drains its own deque LIFO, then steals FIFO from the global injector
/// and its siblings. With `jobs <= 1` (or one item) everything runs on
/// the calling thread — the degenerate case the determinism test
/// compares against.
pub fn parallel_map<T, R, F>(items: Vec<T>, jobs: usize, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs <= 1 {
        return items.into_iter().map(f).collect();
    }

    use crossbeam::deque::{Injector, Steal, Stealer, Worker};
    let total = items.len();
    let injector: Injector<(usize, T)> = Injector::new();
    let workers: Vec<Worker<(usize, T)>> = (0..jobs).map(|_| Worker::new_lifo()).collect();
    let stealers: Vec<Stealer<(usize, T)>> = workers.iter().map(|w| w.stealer()).collect();
    for (i, item) in items.into_iter().enumerate() {
        workers[i % jobs].push((i, item));
    }

    let slots: Vec<Mutex<Option<R>>> = (0..total).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for (wi, worker) in workers.into_iter().enumerate() {
            let stealers = &stealers;
            let injector = &injector;
            let slots = &slots;
            scope.spawn(move || loop {
                // own deque first, then the injector, then siblings
                let next = worker
                    .pop()
                    .or_else(|| injector.steal().success())
                    .or_else(|| {
                        stealers
                            .iter()
                            .enumerate()
                            .filter(|(si, _)| *si != wi)
                            .find_map(|(_, s)| {
                                if let Steal::Success(t) = s.steal() {
                                    Some(t)
                                } else {
                                    None
                                }
                            })
                    });
                // No task produces new tasks, so one empty sweep over
                // every queue means the pool is drained.
                let Some((i, item)) = next else { break };
                let r = f(item);
                *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(r);
            });
        }
    });

    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .unwrap_or_else(|| unreachable!("every pool slot is filled before join"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_item_order() {
        let items: Vec<u64> = (0..100).collect();
        let seq = parallel_map(items.clone(), 1, &|x| x * 3);
        let par = parallel_map(items, 4, &|x| x * 3);
        assert_eq!(seq, par);
        assert_eq!(par[10], 30);
    }

    #[test]
    fn parallel_map_runs_work_concurrently() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let out = parallel_map((0..16).collect::<Vec<_>>(), 4, &|x: u64| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(20));
            live.fetch_sub(1, Ordering::SeqCst);
            x
        });
        assert_eq!(out.len(), 16);
        assert!(
            peak.load(Ordering::SeqCst) > 1,
            "expected overlapping workers, saw peak {}",
            peak.load(Ordering::SeqCst)
        );
    }
}

//! Assembling harness measurements into machine-readable
//! [`RunReport`]s (`results/BENCH_<app>.json`) and rendering /
//! regression-checking them for the `report` binary.

use crate::harness::{results_dir, Measurement, RunOutcome, Table};
use gpu_telemetry::{
    compare_reports, percentile_from_buckets, MethodRun, MetricsSnapshot, Regression, RunReport,
    SkippedRun,
};
use std::path::{Path, PathBuf};

/// Converts one measurement into a [`MethodRun`], computing speedup and
/// cycle error against `detailed` (the full-detailed reference) when one
/// exists.
pub fn method_run(m: &Measurement, detailed: Option<&Measurement>) -> MethodRun {
    let (speedup, error) = match detailed {
        Some(full) if full.sim_cycles > 0 => (m.speedup_vs(full), m.error_vs(full)),
        _ => (0.0, 0.0),
    };
    MethodRun {
        method: m.method.clone(),
        warps: m.warps,
        wall_secs: m.wall_secs,
        sim_cycles: m.sim_cycles,
        ipc: if m.sim_cycles == 0 {
            0.0
        } else {
            m.detailed_insts as f64 / m.sim_cycles as f64
        },
        detailed_insts: m.detailed_insts,
        functional_insts: m.functional_insts,
        detailed_warps: m.detailed_warps,
        predicted_warps: m.predicted_warps,
        sample_coverage: if m.warps == 0 {
            1.0
        } else {
            m.detailed_warps as f64 / m.warps as f64
        },
        skipped_kernels: m.skipped_kernels as u64,
        speedup_vs_detailed: speedup,
        error_vs_detailed: error,
        accounting: m.accounting.clone(),
        bb_errors: m.bb_errors.clone(),
    }
}

/// Builds the per-app report from a sweep's outcomes plus the metric
/// registry snapshot taken after the last run. The `Full` measurement
/// (when present) is the reference for every run's speedup and error —
/// including its own row, which reports speedup 1.0 and error 0.0.
pub fn build_report(
    workload: &str,
    outcomes: &[RunOutcome],
    metrics: MetricsSnapshot,
) -> RunReport {
    let detailed = outcomes
        .iter()
        .filter_map(RunOutcome::measurement)
        .find(|m| m.method == "Full");
    let mut report = RunReport::new(workload);
    report.metrics = metrics;
    for out in outcomes {
        match out {
            RunOutcome::Completed(m) => report.runs.push(method_run(m, detailed)),
            RunOutcome::Skipped {
                method,
                reason,
                error,
                ..
            } => report.skipped.push(SkippedRun {
                method: method.clone(),
                reason: reason.clone(),
                error: error.clone().unwrap_or_default(),
            }),
        }
    }
    report
}

/// The canonical path of a report: `results/BENCH_<workload>.json`.
pub fn report_path(workload: &str) -> PathBuf {
    results_dir().join(format!("BENCH_{workload}.json"))
}

/// Writes a report to its canonical path (atomically, with a checksum
/// footer), returning the path.
///
/// # Errors
/// Returns a rendered I/O or serialization error.
pub fn write_report(report: &RunReport) -> Result<PathBuf, String> {
    let path = report_path(&report.workload);
    let text = serde_json::to_string_pretty(report).map_err(|e| e.to_string())?;
    crate::persist::atomic_write_framed(&path, &text)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(path)
}

/// Reads a report back from disk, verifying its checksum footer when
/// present (reports from before the framing load unverified).
///
/// A report whose checksum fails or that does not parse is quarantined
/// to `<name>.corrupt` — a corrupt artifact must never be loaded, and
/// must not block the next write either. Schema-version mismatches are
/// a plain error (the file is intact, just from another tool version).
///
/// # Errors
/// Returns a rendered I/O, checksum, parse, or schema-version error.
pub fn load_report(path: &Path) -> Result<RunReport, String> {
    let framed = match crate::persist::read_framed(path) {
        Ok(f) => f,
        Err(e) => {
            if path.exists() {
                crate::persist::quarantine(path);
            }
            return Err(e);
        }
    };
    let report: RunReport = match serde_json::from_str(&framed.payload) {
        Ok(r) => r,
        Err(e) => {
            crate::persist::quarantine(path);
            return Err(format!("{}: {e}", path.display()));
        }
    };
    if report.schema_version != gpu_telemetry::REPORT_SCHEMA_VERSION {
        return Err(format!(
            "{}: schema version {} (tool expects {})",
            path.display(),
            report.schema_version,
            gpu_telemetry::REPORT_SCHEMA_VERSION
        ));
    }
    Ok(report)
}

/// Every `results/BENCH_*.json` report, sorted by workload. Corrupt
/// reports are quarantined and skipped with a warning instead of
/// failing the whole listing.
///
/// # Errors
/// Returns an error only when the directory itself is unreadable.
pub fn load_all_reports(dir: &Path) -> Result<Vec<RunReport>, String> {
    let mut out = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        // BENCH_hot.json is the wall-clock hot-path report with its own
        // schema (see [`crate::hotpath`]); parsing it as a RunReport
        // would error out the whole listing.
        if name == crate::hotpath::HOT_REPORT_FILE {
            continue;
        }
        if name.starts_with("BENCH_") && name.ends_with(".json") {
            match load_report(&entry.path()) {
                Ok(r) => out.push(r),
                Err(e) => eprintln!("warning: skipping report: {e}"),
            }
        }
    }
    out.sort_by(|a, b| a.workload.cmp(&b.workload));
    Ok(out)
}

/// Renders reports as a summary table (one row per completed run, one
/// trailing row per skipped run).
pub fn summary_table(reports: &[RunReport]) -> Table {
    let mut t = Table::new(&[
        "workload", "method", "cycles", "IPC", "coverage", "wall (s)", "speedup", "error",
    ]);
    for r in reports {
        for run in &r.runs {
            t.row(vec![
                r.workload.clone(),
                run.method.clone(),
                run.sim_cycles.to_string(),
                format!("{:.3}", run.ipc),
                format!("{:.1}%", run.sample_coverage * 100.0),
                format!("{:.3}", run.wall_secs),
                format!("{:.2}x", run.speedup_vs_detailed),
                format!("{:.3}%", run.error_vs_detailed * 100.0),
            ]);
        }
        for s in &r.skipped {
            t.row(vec![
                r.workload.clone(),
                s.method.clone(),
                "skipped".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                s.reason.clone(),
            ]);
        }
    }
    t
}

/// Renders every histogram carried by the reports' metric snapshots as
/// one summary line per histogram: count, mean, and p50/p95/p99
/// recomputed from the persisted log2 bucket counts. Reports whose
/// snapshot has no histograms contribute nothing.
pub fn histogram_summary(reports: &[RunReport]) -> Table {
    let mut t = Table::new(&[
        "workload",
        "histogram",
        "count",
        "mean",
        "p50",
        "p95",
        "p99",
        "max",
    ]);
    for r in reports {
        for h in &r.metrics.histograms {
            if h.count == 0 {
                continue;
            }
            t.row(vec![
                r.workload.clone(),
                h.name.clone(),
                h.count.to_string(),
                format!("{:.1}", h.mean),
                percentile_from_buckets(&h.buckets, h.count, 0.50).to_string(),
                percentile_from_buckets(&h.buckets, h.count, 0.95).to_string(),
                percentile_from_buckets(&h.buckets, h.count, 0.99).to_string(),
                h.max.to_string(),
            ]);
        }
    }
    t
}

/// `engine.epoch.imbalance` (max/mean shard busy-cycles) above this
/// ratio earns a warning row in [`gauge_summary`]: the busiest shard is
/// doing more than twice the average work, so epoch barriers wait on a
/// straggler.
pub const IMBALANCE_WARN_RATIO: f64 = 2.0;

/// Renders every counter and gauge carried by the reports' metric
/// snapshots that describes executor health — abandoned worker threads,
/// quarantined cache entries, watchdog aborts, refused IPC aborts,
/// timing-engine shard load (`engine.shard.<i>.busy_cycles`), epoch
/// imbalance, and detailed-fidelity memory health (per-bank L2 queue
/// occupancy peaks, DRAM row-buffer hit rate) — so `report show`
/// surfaces leaks, guardrail activity, lopsided shard partitions, and
/// memory-model contention. Zero-valued entries are kept: "0 abandoned
/// threads" is the healthy reading, not noise.
pub fn gauge_summary(reports: &[RunReport]) -> Table {
    const HEALTH: &[&str] = &[
        "exec.abandoned_threads",
        "exec.cancelled",
        "refcache.evicted",
        "refcache.quarantined",
        "sim.watchdog.aborts",
        "sim.ipc_abort.refused",
        "engine.epochs",
        "engine.relaxed.clamped_cycles",
        "mem.dram.row_hit_rate",
    ];
    // Per-instance metric families are matched on prefix: shard and
    // L2-bank counts depend on the machine config, so the names cannot
    // be enumerated statically.
    const HEALTH_PREFIXES: &[&str] = &["engine.shard.", "engine.epoch.", "mem.l2.bank."];
    let is_health =
        |name: &str| HEALTH.contains(&name) || HEALTH_PREFIXES.iter().any(|p| name.starts_with(p));
    let mut t = Table::new(&["workload", "metric", "value"]);
    for r in reports {
        for g in &r.metrics.gauges {
            if is_health(&g.name) {
                t.row(vec![
                    r.workload.clone(),
                    g.name.clone(),
                    format!("{:.2}", g.value),
                ]);
                // The imbalance gauge is max/mean shard busy-cycles; a
                // raw number invites misreading, so interpret it: past
                // the warning ratio, one shard is doing more than twice
                // the average work and epoch barriers are dominated by
                // that straggler.
                if g.name == "engine.epoch.imbalance" && g.value > IMBALANCE_WARN_RATIO {
                    t.row(vec![
                        r.workload.clone(),
                        "  WARNING".to_string(),
                        format!(
                            "shard imbalance {:.2} > {IMBALANCE_WARN_RATIO}x mean busy-cycles; epoch barriers are straggler-bound",
                            g.value
                        ),
                    ]);
                }
            }
        }
        for c in &r.metrics.counters {
            if is_health(&c.name) {
                t.row(vec![
                    r.workload.clone(),
                    c.name.clone(),
                    c.value.to_string(),
                ]);
            }
        }
    }
    t
}

/// Checks every current report that has a stored baseline
/// (`results/baselines/BENCH_<workload>.json`) and returns the flagged
/// regressions. Reports without a baseline are ignored.
pub fn check_against_baselines(current: &[RunReport], baseline_dir: &Path) -> Vec<Regression> {
    let mut out = Vec::new();
    for cur in current {
        let base_path = baseline_dir.join(format!("BENCH_{}.json", cur.workload));
        match load_report(&base_path) {
            Ok(base) => out.extend(compare_reports(&base, cur)),
            Err(_) if !base_path.exists() => {}
            Err(e) => out.push(Regression {
                workload: cur.workload.clone(),
                method: "-".to_string(),
                what: format!("unreadable baseline: {e}"),
            }),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meas(method: &str, cycles: u64, wall: f64) -> Measurement {
        Measurement {
            workload: "fir".into(),
            warps: 100,
            method: method.into(),
            sim_cycles: cycles,
            wall_secs: wall,
            detailed_insts: 5 * cycles,
            functional_insts: 0,
            detailed_warps: if method == "Full" { 100 } else { 10 },
            predicted_warps: if method == "Full" { 0 } else { 90 },
            skipped_kernels: 0,
            kernel_cycles: vec![cycles],
            accounting: None,
            bb_errors: vec![],
        }
    }

    #[test]
    fn report_computes_speedup_and_error_vs_full() {
        let outcomes = vec![
            RunOutcome::Completed(meas("Full", 1000, 2.0)),
            RunOutcome::Completed(meas("Photon", 950, 0.5)),
            RunOutcome::Skipped {
                workload: "fir".into(),
                method: "PKA".into(),
                reason: "simulation error: deadlock".into(),
                error: Some("Deadlock { cycle: 10 }".into()),
                failure: crate::harness::FailureKind::Permanent,
            },
        ];
        let report = build_report("fir", &outcomes, MetricsSnapshot::default());
        assert_eq!(report.schema_version, gpu_telemetry::REPORT_SCHEMA_VERSION);

        let full = report.run("Full").unwrap();
        assert_eq!(full.speedup_vs_detailed, 1.0);
        assert_eq!(full.error_vs_detailed, 0.0);
        assert_eq!(full.sample_coverage, 1.0);

        let photon = report.run("Photon").unwrap();
        assert!((photon.speedup_vs_detailed - 4.0).abs() < 1e-12);
        assert!((photon.error_vs_detailed - 0.05).abs() < 1e-12);
        assert!((photon.sample_coverage - 0.1).abs() < 1e-12);

        assert_eq!(report.skipped.len(), 1);
        assert_eq!(report.skipped[0].error, "Deadlock { cycle: 10 }");
    }

    #[test]
    fn report_without_full_reference_reports_zero_comparisons() {
        let outcomes = vec![RunOutcome::Completed(meas("Photon", 950, 0.5))];
        let report = build_report("fir", &outcomes, MetricsSnapshot::default());
        let photon = report.run("Photon").unwrap();
        assert_eq!(photon.speedup_vs_detailed, 0.0);
        assert_eq!(photon.error_vs_detailed, 0.0);
    }

    #[test]
    fn load_all_reports_skips_hot_report() {
        let dir = std::env::temp_dir().join(format!("photon-reports-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let report = build_report(
            "fir",
            &[RunOutcome::Completed(meas("Full", 1000, 2.0))],
            MetricsSnapshot::default(),
        );
        std::fs::write(
            dir.join("BENCH_fir.json"),
            serde_json::to_string(&report).unwrap(),
        )
        .unwrap();
        // The hot-path report has its own schema; if load_all_reports
        // tried to parse it as a RunReport the whole listing would fail.
        std::fs::write(
            dir.join(crate::hotpath::HOT_REPORT_FILE),
            r#"{"schema_version":1,"iterations":3,"jobs":2,"measurements":[]}"#,
        )
        .unwrap();
        let loaded = load_all_reports(&dir).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].workload, "fir");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn histogram_summary_recomputes_percentiles_from_buckets() {
        use gpu_telemetry::Telemetry;
        let tel = Telemetry::default();
        let h = tel.histogram("mem.queue_delay");
        for v in [1u64, 1, 2, 4, 8, 100] {
            h.record(v);
        }
        let mut report = build_report(
            "fir",
            &[RunOutcome::Completed(meas("Full", 1000, 2.0))],
            tel.snapshot(),
        );
        let rendered = histogram_summary(std::slice::from_ref(&report)).render();
        assert!(rendered.contains("mem.queue_delay"), "{rendered}");
        assert!(rendered.contains("p95"), "{rendered}");
        // Empty histograms are elided entirely.
        report.metrics.histograms.clear();
        assert!(histogram_summary(std::slice::from_ref(&report)).is_empty());
    }

    #[test]
    fn gauge_summary_surfaces_engine_shard_metrics() {
        let tel = gpu_telemetry::Telemetry::default();
        tel.counter("engine.shard.0.busy_cycles").add(400);
        tel.counter("engine.shard.1.busy_cycles").add(100);
        tel.counter("engine.epochs").add(12);
        tel.gauge("engine.epoch.imbalance").set(1.6);
        tel.gauge("mem.dram.row_hit_rate").set(0.75);
        tel.gauge("mem.l2.bank.3.peak_queue").set(9.0);
        tel.counter("sim.unrelated.metric").add(1);
        let report = build_report(
            "vgg",
            &[RunOutcome::Completed(meas("Full", 1000, 2.0))],
            tel.snapshot(),
        );
        let rendered = gauge_summary(std::slice::from_ref(&report)).render();
        assert!(
            rendered.contains("engine.shard.0.busy_cycles"),
            "{rendered}"
        );
        assert!(
            rendered.contains("engine.shard.1.busy_cycles"),
            "{rendered}"
        );
        assert!(rendered.contains("engine.epochs"), "{rendered}");
        assert!(rendered.contains("engine.epoch.imbalance"), "{rendered}");
        assert!(rendered.contains("1.60"), "{rendered}");
        assert!(rendered.contains("mem.dram.row_hit_rate"), "{rendered}");
        assert!(rendered.contains("mem.l2.bank.3.peak_queue"), "{rendered}");
        assert!(!rendered.contains("unrelated"), "{rendered}");
        // 1.6 is under the warning ratio: no interpretation row.
        assert!(!rendered.contains("WARNING"), "{rendered}");
    }

    #[test]
    fn gauge_summary_warns_on_epoch_imbalance_past_the_ratio() {
        let tel = gpu_telemetry::Telemetry::default();
        tel.gauge("engine.epoch.imbalance").set(3.4);
        let report = build_report(
            "vgg",
            &[RunOutcome::Completed(meas("Full", 1000, 2.0))],
            tel.snapshot(),
        );
        let rendered = gauge_summary(std::slice::from_ref(&report)).render();
        assert!(rendered.contains("WARNING"), "{rendered}");
        assert!(rendered.contains("straggler"), "{rendered}");
        assert!(rendered.contains("3.40"), "{rendered}");
    }

    #[test]
    fn summary_table_includes_skips() {
        let outcomes = vec![
            RunOutcome::Completed(meas("Full", 1000, 2.0)),
            RunOutcome::Skipped {
                workload: "fir".into(),
                method: "PKA".into(),
                reason: "timed out after 1.0s".into(),
                error: None,
                failure: crate::harness::FailureKind::Transient,
            },
        ];
        let report = build_report("fir", &outcomes, MetricsSnapshot::default());
        let rendered = summary_table(&[report]).render();
        assert!(rendered.contains("Full"));
        assert!(rendered.contains("timed out"));
    }
}

//! The flight recorder: when a job ends badly — watchdog fire, injected
//! fault, outright failure, or a latency past the p99 — its span trail
//! and a metrics snapshot are dumped to
//! `results/flightrec/<job_id>.json` so the incident can be diagnosed
//! after the fact, without having had tracing "switched on" in advance.
//!
//! Dumps go through the persist layer: checksum-framed atomic writes,
//! and quarantine (with rotation) when a dump is found corrupt at load
//! time. The span list is capped at [`MAX_SPANS`]; when truncating, the
//! newest spans win but failed spans are always kept — the failing span
//! *is* the evidence.

use crate::persist;
use gpu_telemetry::span::{build_tree, job_hex, SpanRecord, SpanTree};
use gpu_telemetry::MetricsSnapshot;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Bumped when the dump layout changes incompatibly.
pub const FLIGHTREC_SCHEMA_VERSION: u32 = 1;

/// Most spans a dump carries (newest win; failed spans always kept).
pub const MAX_SPANS: usize = 256;

/// Why a flight record was cut.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// The job's outcome was a failure (includes watchdog aborts and
    /// timeouts — they surface as failed outcomes).
    JobFailed,
    /// The job completed but a span inside it failed (e.g. an injected
    /// fault absorbed by a retry).
    SpanFailed,
    /// The job's latency exceeded the live p99.
    P99Latency,
}

impl Trigger {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            Trigger::JobFailed => "job-failed",
            Trigger::SpanFailed => "span-failed",
            Trigger::P99Latency => "p99-latency",
        }
    }
}

/// One flight-recorder dump: everything known about a job at the moment
/// it tripped a trigger.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlightRecord {
    /// [`FLIGHTREC_SCHEMA_VERSION`].
    pub schema_version: u32,
    /// The job id, 16 hex (the serve/journal key).
    pub job: String,
    /// Human label (spec label / tenant).
    pub label: String,
    /// [`Trigger::name`] of what cut the record.
    pub trigger: String,
    /// Free-form trigger detail (failure reason, latency vs p99, ...).
    pub detail: String,
    /// Job wall-clock, seconds.
    pub wall_secs: f64,
    /// The span trail (capped at [`MAX_SPANS`]).
    pub spans: Vec<SpanRecord>,
    /// The spans reassembled into a tree with per-phase rollups.
    pub tree: SpanTree,
    /// Metrics snapshot at dump time.
    pub metrics: MetricsSnapshot,
}

/// The default dump directory, under the bench results root.
pub fn default_dir() -> PathBuf {
    crate::harness::results_dir().join("flightrec")
}

/// Assembles a record for `job`: spans are capped (newest win, failed
/// spans always kept), the tree is rebuilt from what is kept.
pub fn assemble(
    job: u64,
    label: &str,
    trigger: Trigger,
    detail: &str,
    wall_secs: f64,
    spans: &[SpanRecord],
    metrics: MetricsSnapshot,
) -> FlightRecord {
    let mut spans: Vec<SpanRecord> = spans.to_vec();
    if spans.len() > MAX_SPANS {
        spans.sort_by_key(|r| r.id);
        let mut kept: Vec<SpanRecord> = spans.iter().filter(|r| !r.ok).cloned().collect();
        let room = MAX_SPANS.saturating_sub(kept.len());
        kept.extend(spans.iter().filter(|r| r.ok).rev().take(room).cloned());
        kept.sort_by_key(|r| r.id);
        spans = kept;
    }
    let tree = build_tree(job, &spans);
    FlightRecord {
        schema_version: FLIGHTREC_SCHEMA_VERSION,
        job: job_hex(job),
        label: label.to_string(),
        trigger: trigger.name().to_string(),
        detail: detail.to_string(),
        wall_secs,
        spans,
        tree,
        metrics,
    }
}

/// Dump path for a record inside `dir`.
pub fn record_path(dir: &Path, job: &str) -> PathBuf {
    dir.join(format!("{job}.json"))
}

/// Writes `rec` to `<dir>/<job>.json` (checksum-framed, atomic).
///
/// # Errors
/// Returns a rendered serialization or I/O error.
pub fn dump(dir: &Path, rec: &FlightRecord) -> Result<PathBuf, String> {
    let path = record_path(dir, &rec.job);
    let payload =
        serde_json::to_string_pretty(rec).map_err(|e| format!("render flight record: {e}"))?;
    persist::atomic_write_framed(&path, &payload)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(path)
}

/// Loads and verifies a dump. A checksum mismatch or unparseable
/// payload quarantines the file (rotating older corpses) and errors; an
/// unframed file is rejected too — every dump this module writes is
/// framed, so a bare one is itself evidence of tampering or truncation.
///
/// # Errors
/// Returns a rendered I/O, checksum, or parse error.
pub fn load(path: &Path) -> Result<FlightRecord, String> {
    let framed = match persist::read_framed(path) {
        Ok(f) => f,
        Err(e) => {
            if path.exists() {
                persist::quarantine(path);
            }
            return Err(e);
        }
    };
    if !framed.verified {
        persist::quarantine(path);
        return Err(format!(
            "{}: flight record has no valid checksum frame",
            path.display()
        ));
    }
    match serde_json::from_str::<FlightRecord>(&framed.payload) {
        Ok(rec) => Ok(rec),
        Err(e) => {
            persist::quarantine(path);
            Err(format!(
                "{}: unparseable flight record: {e}",
                path.display()
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_telemetry::span::SpanKind;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicU32 = AtomicU32::new(0);
        std::env::temp_dir().join(format!(
            "photon-flightrec-{}-{}-{tag}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn rec(id: u64, parent: u64, kind: SpanKind, ok: bool, detail: &str) -> SpanRecord {
        SpanRecord {
            job: 0xabcd,
            id,
            parent,
            kind,
            label: format!("s{id}"),
            start_us: id,
            dur_us: 1,
            open: false,
            ok,
            detail: detail.to_string(),
        }
    }

    #[test]
    fn dump_load_round_trips_and_names_the_fault() {
        let dir = temp_dir("rt");
        let spans = vec![
            rec(1, 0, SpanKind::Job, false, "panicked"),
            rec(
                2,
                1,
                SpanKind::Sim,
                false,
                "fault-injection: exec.panic (key 0x1)",
            ),
        ];
        let record = assemble(
            0xabcd,
            "fir/64",
            Trigger::JobFailed,
            "panicked",
            0.25,
            &spans,
            MetricsSnapshot::default(),
        );
        let path = dump(&dir, &record).unwrap();
        assert_eq!(path, record_path(&dir, "000000000000abcd"));
        let back = load(&path).unwrap();
        assert_eq!(back.trigger, "job-failed");
        assert_eq!(back.spans.len(), 2);
        assert!(back
            .tree
            .failed_spans()
            .iter()
            .any(|s| s.detail.contains("exec.panic")));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_dump_is_quarantined_on_load() {
        let dir = temp_dir("corrupt");
        let record = assemble(
            0xabcd,
            "fir/64",
            Trigger::SpanFailed,
            "",
            0.1,
            &[rec(1, 0, SpanKind::Job, true, "")],
            MetricsSnapshot::default(),
        );
        let path = dump(&dir, &record).unwrap();
        // Flip payload bytes without touching the footer.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replace("fir/64", "fir/99")).unwrap();
        let err = load(&path).unwrap_err();
        assert!(err.contains("checksum mismatch"), "{err}");
        assert!(!path.exists(), "corrupt dump must be moved aside");
        assert!(path.with_extension("json.corrupt").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncation_keeps_failed_and_newest_spans() {
        let mut spans: Vec<SpanRecord> = (1..=400u64)
            .map(|i| rec(i, 0, SpanKind::CacheProbe, true, ""))
            .collect();
        spans[0] = rec(1, 0, SpanKind::Sim, false, "the evidence");
        let record = assemble(
            0xabcd,
            "big",
            Trigger::P99Latency,
            "",
            1.0,
            &spans,
            MetricsSnapshot::default(),
        );
        assert_eq!(record.spans.len(), MAX_SPANS);
        assert!(
            record.spans.iter().any(|s| !s.ok),
            "the failed span must survive truncation"
        );
        assert!(record.spans.iter().any(|s| s.id == 400), "newest span kept");
    }
}

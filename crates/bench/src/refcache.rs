//! The content-addressed reference cache, promoted (PR 7) into a
//! sharded, LRU-bounded, concurrency-safe store with single-flight
//! deduplication — the storage layer behind both the parallel executor
//! and `photon-serve`.
//!
//! ## Layering
//!
//! * [`ShardedStore`] — the generic in-memory core: N mutex-sharded
//!   maps keyed by `u64` content hashes, recency-stamped LRU eviction
//!   under a byte budget, and a single-flight table so concurrent
//!   computations of the same key coalesce onto one leader.
//! * [`RefCache`] — the full-detailed reference cache built on top: a
//!   `ShardedStore<Measurement>` plus crash-safe disk persistence under
//!   `results/cache/` ([`crate::persist`] atomic writes with checksum
//!   footers) and a byte-budgeted disk directory with oldest-mtime
//!   eviction.
//!
//! ## Key definition
//!
//! The key is FNV-1a (64-bit) over the canonical JSON rendering of
//! `(CACHE_SCHEMA_VERSION, isa_fingerprint, workload, gpu, seed)`.
//! The method is deliberately *not* part of the key — only `Full` runs
//! are cached, and the reference measurement is method-independent by
//! definition. Any change to the `GpuConfig`, the problem size, the
//! seed, the ISA revision, or this cache's schema changes the key and
//! therefore invalidates the entry.
//!
//! ## Failure model
//!
//! The cache is an accelerator, never a correctness dependency: a
//! missing, corrupt, or version-mismatched entry produces a warning and
//! a recompute, and write failures are warnings too. Entries are
//! written atomically with a checksum footer ([`crate::persist`]); an
//! entry that fails validation is **quarantined** — renamed to
//! `<key>.json.corrupt` — so the next warm run recomputes silently
//! instead of re-warning about the same corpse forever. Quarantines are
//! counted ([`RefCache::quarantined`]) and surface as the
//! `refcache.quarantined` telemetry counter in executor reports.
//! A leader whose computation fails publishes the failure to its
//! followers (they see `None`) and caches nothing, so a transient
//! failure never poisons the store.

use crate::harness::Measurement;
use crate::persist;
use crate::specs::RunSpec;
use gpu_isa::{fnv1a, fnv1a_extend, isa_fingerprint};
use gpu_telemetry::faults::{self, FaultSite};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Bumped whenever the entry layout or the key derivation changes;
/// entries persisted under any other version are recomputed.
/// Version 2: `Measurement` gained cycle accounting and per-BB error
/// rows (the vendored serde has no `#[serde(default)]`, so old entries
/// cannot deserialize and must be recomputed).
pub const CACHE_SCHEMA_VERSION: u32 = 2;

/// Shard count of the in-memory store: enough that sixteen executor or
/// server workers rarely contend on the same lock, few enough that the
/// per-shard byte budget stays meaningful.
pub const DEFAULT_SHARDS: usize = 16;

/// Default in-memory byte budget (64 MiB).
pub const DEFAULT_MEM_BUDGET: u64 = 64 * 1024 * 1024;

/// Default on-disk byte budget for `results/cache/` (256 MiB).
pub const DEFAULT_DISK_BUDGET: u64 = 256 * 1024 * 1024;

fn env_budget(var: &str, default: u64) -> u64 {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(default)
}

/// The stable cache key of a spec's full-detailed reference.
///
/// Canonical-JSON hashing works because the vendored `serde_json`
/// renders struct fields in declaration order — two equal specs always
/// produce byte-identical text.
pub fn reference_key(spec: &RunSpec) -> u64 {
    let workload = serde_json::to_string(&spec.workload).unwrap_or_default();
    let gpu = serde_json::to_string(&spec.gpu).unwrap_or_default();
    let mut h = fnv1a(&CACHE_SCHEMA_VERSION.to_le_bytes());
    h = fnv1a_extend(h, &isa_fingerprint().to_le_bytes());
    h = fnv1a_extend(h, workload.as_bytes());
    h = fnv1a_extend(h, gpu.as_bytes());
    fnv1a_extend(h, &spec.seed.to_le_bytes())
}

/// Where a [`ShardedStore::get_or_compute`] (or
/// [`RefCache::get_or_compute_full`]) answer came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Origin {
    /// Served from the store (memory or disk) without waiting.
    Hit,
    /// This caller led the computation.
    Miss,
    /// Coalesced onto a concurrent identical computation and received
    /// the leader's result.
    Coalesced,
}

/// Counters describing what a store (or cache) has done so far. All
/// monotonic except `entries`/`bytes`, which are the current residency.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct StoreStats {
    /// In-memory lookups answered.
    pub hits: u64,
    /// In-memory lookups missed.
    pub misses: u64,
    /// Callers that coalesced onto an in-flight computation.
    pub coalesced: u64,
    /// Entries evicted from memory by the LRU byte budget.
    pub evicted: u64,
    /// Entries refused because they alone exceed a shard's budget.
    pub rejected: u64,
    /// Entries currently resident in memory.
    pub entries: u64,
    /// Bytes currently resident in memory (as sized at insert).
    pub bytes: u64,
}

struct Entry<V> {
    value: V,
    bytes: u64,
    stamp: u64,
}

struct Shard<V> {
    map: HashMap<u64, Entry<V>>,
    bytes: u64,
}

impl<V> Default for Shard<V> {
    fn default() -> Self {
        Shard {
            map: HashMap::new(),
            bytes: 0,
        }
    }
}

/// One in-flight computation: followers block on the condvar until the
/// leader publishes. `None` means the leader's computation failed —
/// followers must handle the miss themselves.
struct Flight<V> {
    slot: Mutex<(bool, Option<V>)>,
    cv: Condvar,
}

impl<V> Default for Flight<V> {
    fn default() -> Self {
        Flight {
            slot: Mutex::new((false, None)),
            cv: Condvar::new(),
        }
    }
}

/// The sharded, LRU-bounded, single-flight in-memory store.
///
/// Keys are already well-mixed content hashes; values are cloned out on
/// every hit, so `V` should be cheap to clone or wrapped in an `Arc` by
/// the caller. The byte budget is split evenly across shards and
/// enforced per shard: the store's total residency never exceeds the
/// budget, and the most recently used entry of a shard is never the
/// eviction victim.
pub struct ShardedStore<V> {
    shards: Box<[Mutex<Shard<V>>]>,
    shard_budget: u64,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    evicted: AtomicU64,
    rejected: AtomicU64,
    inflight: Mutex<HashMap<u64, Arc<Flight<V>>>>,
}

impl<V> std::fmt::Debug for ShardedStore<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedStore")
            .field("shards", &self.shards.len())
            .field("shard_budget", &self.shard_budget)
            .finish()
    }
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl<V: Clone> ShardedStore<V> {
    /// A store of `shards` mutex-sharded maps under a total byte
    /// `budget` (split evenly per shard, at least 1 byte each).
    pub fn new(shards: usize, budget: u64) -> ShardedStore<V> {
        let n = shards.max(1);
        ShardedStore {
            shards: (0..n).map(|_| Mutex::new(Shard::default())).collect(),
            shard_budget: (budget / n as u64).max(1),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            inflight: Mutex::new(HashMap::new()),
        }
    }

    fn shard_of(&self, key: u64) -> &Mutex<Shard<V>> {
        // Fibonacci-mix the (already hashed) key so shard choice does
        // not correlate with any bit pattern of the key derivation.
        let i = (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % self.shards.len();
        &self.shards[i]
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&self, key: u64) -> Option<V> {
        let mut shard = lock(self.shard_of(key));
        match shard.map.get_mut(&key) {
            Some(e) => {
                e.stamp = self.clock.fetch_add(1, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(e.value.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts `value` under `key` at an accounted size of `bytes`,
    /// evicting least-recently-used entries of the same shard until the
    /// shard is back under budget. A value that alone exceeds the shard
    /// budget is not stored (counted in `rejected`).
    pub fn insert(&self, key: u64, value: V, bytes: u64) {
        if bytes > self.shard_budget {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut shard = lock(self.shard_of(key));
        if let Some(old) = shard.map.insert(
            key,
            Entry {
                value,
                bytes,
                stamp,
            },
        ) {
            shard.bytes -= old.bytes;
        }
        shard.bytes += bytes;
        while shard.bytes > self.shard_budget {
            // The just-inserted entry carries the freshest stamp, so the
            // victim is always some other entry.
            let victim = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    if let Some(e) = shard.map.remove(&k) {
                        shard.bytes -= e.bytes;
                    }
                    self.evicted.fetch_add(1, Ordering::Relaxed);
                }
                None => break,
            }
        }
    }

    /// Joins an in-flight computation of `key` if one exists (blocking
    /// until the leader publishes), otherwise leads it: `compute`
    /// returns the value plus its accounted byte size and whether to
    /// store it (`false` keeps transient failures out of the cache
    /// while still answering followers).
    ///
    /// Returns the value (or `None` if the computation produced none)
    /// and whether this caller coalesced.
    pub fn join_or_lead<F>(&self, key: u64, compute: F) -> (Option<V>, bool)
    where
        F: FnOnce() -> (Option<V>, u64, bool),
    {
        let flight = {
            let mut inflight = lock(&self.inflight);
            if let Some(f) = inflight.get(&key) {
                let f = Arc::clone(f);
                drop(inflight);
                self.coalesced.fetch_add(1, Ordering::Relaxed);
                let mut slot = lock(&f.slot);
                while !slot.0 {
                    slot = f.cv.wait(slot).unwrap_or_else(|e| e.into_inner());
                }
                return (slot.1.clone(), true);
            }
            let f = Arc::new(Flight::default());
            inflight.insert(key, Arc::clone(&f));
            f
        };
        // Lead. Publish-on-drop so a panicking computation can never
        // strand its followers on the condvar.
        struct Publish<'a, V> {
            store: &'a ShardedStore<V>,
            key: u64,
            flight: Arc<Flight<V>>,
            value: Option<V>,
        }
        impl<V> Drop for Publish<'_, V> {
            fn drop(&mut self) {
                let mut slot = lock(&self.flight.slot);
                slot.0 = true;
                slot.1 = self.value.take();
                self.flight.cv.notify_all();
                drop(slot);
                lock(&self.store.inflight).remove(&self.key);
            }
        }
        let mut publish = Publish {
            store: self,
            key,
            flight,
            value: None,
        };
        let (value, bytes, store) = compute();
        if store {
            if let Some(v) = &value {
                self.insert(key, v.clone(), bytes);
            }
        }
        publish.value = value.clone();
        drop(publish);
        (value, false)
    }

    /// [`get`](Self::get) then [`join_or_lead`](Self::join_or_lead):
    /// the single call sites use for "answer from cache or compute
    /// exactly once across all concurrent callers".
    pub fn get_or_compute<F>(&self, key: u64, compute: F) -> (Option<V>, Origin)
    where
        F: FnOnce() -> (Option<V>, u64, bool),
    {
        if let Some(v) = self.get(key) {
            return (Some(v), Origin::Hit);
        }
        let (v, coalesced) = self.join_or_lead(key, compute);
        (
            v,
            if coalesced {
                Origin::Coalesced
            } else {
                Origin::Miss
            },
        )
    }

    /// Current counters and residency.
    pub fn stats(&self) -> StoreStats {
        let mut entries = 0u64;
        let mut bytes = 0u64;
        for s in self.shards.iter() {
            let s = lock(s);
            entries += s.map.len() as u64;
            bytes += s.bytes;
        }
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            entries,
            bytes,
        }
    }
}

/// One persisted cache entry: the measurement plus enough context to
/// validate it and to audit the cache directory by hand.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CacheEntry {
    /// Must equal [`CACHE_SCHEMA_VERSION`] to be trusted.
    pub schema_version: u32,
    /// The key this entry was stored under, hex-rendered.
    pub key: String,
    /// The ISA fingerprint at store time, hex-rendered (diagnostic; the
    /// fingerprint is already folded into the key).
    pub isa_fingerprint: String,
    /// Workload display name (diagnostic).
    pub workload: String,
    /// The memoized full-detailed measurement.
    pub measurement: Measurement,
}

/// Aggregated health/throughput counters of a [`RefCache`].
#[derive(Debug, Clone, Default, Serialize)]
pub struct CacheStats {
    /// The in-memory store's counters.
    pub memory: StoreStats,
    /// Lookups answered from disk (after a memory miss).
    pub disk_hits: u64,
    /// Disk entries evicted by the on-disk byte budget (oldest mtime
    /// first) — the `refcache.evicted` counter.
    pub disk_evicted: u64,
    /// Disk entries quarantined to `.corrupt`.
    pub quarantined: u64,
}

/// The in-memory + on-disk reference cache. One instance serves a whole
/// executor invocation (or a whole `photon-serve` process); worker
/// threads share it behind `&self`.
#[derive(Debug)]
pub struct RefCache {
    /// Persistence directory (`None` = memory only).
    dir: Option<PathBuf>,
    store: ShardedStore<Measurement>,
    disk_budget: u64,
    disk_hits: AtomicU64,
    disk_evicted: AtomicU64,
    /// Entries quarantined (renamed to `.corrupt`) by this instance.
    quarantined: AtomicU64,
}

impl RefCache {
    /// A cache persisting under `dir` (created on first store), with
    /// budgets from `PHOTON_CACHE_MEM_BUDGET` / `PHOTON_CACHE_DISK_BUDGET`
    /// (bytes) or the defaults.
    pub fn persistent(dir: PathBuf) -> RefCache {
        RefCache::with_budgets(
            Some(dir),
            env_budget("PHOTON_CACHE_MEM_BUDGET", DEFAULT_MEM_BUDGET),
            env_budget("PHOTON_CACHE_DISK_BUDGET", DEFAULT_DISK_BUDGET),
        )
    }

    /// A memory-only cache (used when persistence is disabled: entries
    /// still deduplicate and coalesce within one process).
    pub fn memory_only() -> RefCache {
        RefCache::with_budgets(
            None,
            env_budget("PHOTON_CACHE_MEM_BUDGET", DEFAULT_MEM_BUDGET),
            0,
        )
    }

    /// A cache with explicit byte budgets (tests size these small to
    /// exercise eviction deterministically).
    pub fn with_budgets(dir: Option<PathBuf>, mem_budget: u64, disk_budget: u64) -> RefCache {
        RefCache {
            dir,
            store: ShardedStore::new(DEFAULT_SHARDS, mem_budget),
            disk_budget,
            disk_hits: AtomicU64::new(0),
            disk_evicted: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
        }
    }

    /// Entries this instance quarantined to `.corrupt` files.
    pub fn quarantined(&self) -> u64 {
        self.quarantined.load(Ordering::Relaxed)
    }

    /// Aggregated memory + disk counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            memory: self.store.stats(),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            disk_evicted: self.disk_evicted.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
        }
    }

    /// The default persistence directory, `results/cache/`.
    pub fn default_dir() -> PathBuf {
        crate::harness::results_dir().join("cache")
    }

    fn entry_path(&self, key: u64) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|d| d.join(format!("{key:016x}.json")))
    }

    /// Looks up the reference measurement for `key`, checking memory
    /// first and then disk (a disk hit is promoted into memory). Disk
    /// entries that fail checksum verification, fail to parse, carry
    /// the wrong schema version, or were stored under a different key
    /// are quarantined (renamed to `.corrupt`) with a warning and
    /// recomputed.
    pub fn lookup(&self, key: u64) -> Option<Measurement> {
        if let Some(m) = self.store.get(key) {
            return Some(m);
        }
        let m = self.disk_lookup(key)?;
        self.disk_hits.fetch_add(1, Ordering::Relaxed);
        self.store.insert(key, m.clone(), measurement_bytes(&m));
        Some(m)
    }

    fn disk_lookup(&self, key: u64) -> Option<Measurement> {
        let path = self.entry_path(key)?;
        let mut text = std::fs::read_to_string(&path).ok()?;
        if faults::active() && faults::should_inject(FaultSite::RefcacheReadCorrupt, key) {
            corrupt_one_byte(&mut text, key);
        }
        match validate_entry(&text, key, &path) {
            Ok(m) => Some(m),
            Err(why) => {
                eprintln!(
                    "warning: quarantining reference cache entry {}: {why} (recomputing)",
                    path.display()
                );
                if persist::quarantine(&path).is_some() {
                    self.quarantined.fetch_add(1, Ordering::Relaxed);
                }
                None
            }
        }
    }

    /// Stores a completed full-detailed measurement under `key`, in
    /// memory and (when persistence is on) on disk — atomically, with a
    /// checksum footer — then re-bounds the disk directory. I/O
    /// failures warn and degrade to memory-only.
    pub fn store(&self, key: u64, workload: &str, m: &Measurement) {
        self.store.insert(key, m.clone(), measurement_bytes(m));
        self.store_disk(key, workload, m);
    }

    fn store_disk(&self, key: u64, workload: &str, m: &Measurement) {
        let Some(path) = self.entry_path(key) else {
            return;
        };
        let entry = CacheEntry {
            schema_version: CACHE_SCHEMA_VERSION,
            key: format!("{key:016x}"),
            isa_fingerprint: format!("{:016x}", isa_fingerprint()),
            workload: workload.to_string(),
            measurement: m.clone(),
        };
        let write = || -> Result<(), String> {
            let text = serde_json::to_string_pretty(&entry).map_err(|e| e.to_string())?;
            if faults::active() {
                if faults::should_inject(FaultSite::RefcacheWriteIoErr, key) {
                    return Err("injected I/O error".to_string());
                }
                if faults::should_inject(FaultSite::RefcacheWriteTorn, key) {
                    // Simulate a crash mid-write through the legacy
                    // (non-atomic) path: half the framed entry lands.
                    let framed = persist::frame(&text);
                    let torn = &framed[..framed.len() / 2];
                    if let Some(parent) = path.parent() {
                        std::fs::create_dir_all(parent).map_err(|e| e.to_string())?;
                    }
                    return std::fs::write(&path, torn).map_err(|e| e.to_string());
                }
            }
            persist::atomic_write_framed(&path, &text).map_err(|e| e.to_string())
        };
        if let Err(e) = write() {
            eprintln!(
                "warning: could not persist reference cache entry {}: {e}",
                path.display()
            );
        }
        self.enforce_disk_budget();
    }

    /// Single-flight resolution of a full-detailed reference: serve
    /// from memory/disk, coalesce onto a concurrent identical
    /// computation, or lead it — in which case the completed
    /// measurement is stored and persisted before followers wake.
    ///
    /// `compute` returning `None` means the simulation failed; nothing
    /// is cached and followers receive `None` too.
    pub fn get_or_compute_full<F>(
        &self,
        key: u64,
        workload: &str,
        compute: F,
    ) -> (Option<Measurement>, Origin)
    where
        F: FnOnce() -> Option<Measurement>,
    {
        if let Some(m) = self.lookup(key) {
            return (Some(m), Origin::Hit);
        }
        let (m, coalesced) = self.store.join_or_lead(key, || {
            // Memory already missed above; re-check disk in case a
            // sibling process persisted the entry in the meantime.
            if let Some(m) = self.disk_lookup(key) {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                let bytes = measurement_bytes(&m);
                return (Some(m), bytes, true);
            }
            match compute() {
                Some(m) => {
                    self.store_disk(key, workload, &m);
                    let bytes = measurement_bytes(&m);
                    (Some(m), bytes, true)
                }
                None => (None, 0, false),
            }
        });
        (
            m,
            if coalesced {
                Origin::Coalesced
            } else {
                Origin::Miss
            },
        )
    }

    /// Re-bounds the on-disk cache directory: while the summed size of
    /// `*.json` entries exceeds the disk budget, the oldest-mtime entry
    /// is deleted (counted in [`CacheStats::disk_evicted`]). Quarantined
    /// `.corrupt` files are deleted first — they are evidence, not
    /// cache, and must not crowd out live entries.
    fn enforce_disk_budget(&self) {
        let Some(dir) = &self.dir else { return };
        if self.disk_budget == 0 {
            return;
        }
        let Ok(listing) = std::fs::read_dir(dir) else {
            return;
        };
        let mut entries: Vec<(PathBuf, u64, std::time::SystemTime)> = Vec::new();
        let mut corpses: Vec<PathBuf> = Vec::new();
        let mut total = 0u64;
        for e in listing.flatten() {
            let path = e.path();
            let name = e.file_name();
            let name = name.to_string_lossy();
            let Ok(meta) = e.metadata() else { continue };
            if !meta.is_file() {
                continue;
            }
            if name.ends_with(".corrupt") {
                // Quarantine corpses do not count against the budget but
                // are reaped here once the directory is over it.
                corpses.push(path);
                continue;
            }
            if !name.ends_with(".json") {
                continue;
            }
            let mtime = meta.modified().unwrap_or(std::time::UNIX_EPOCH);
            total += meta.len();
            entries.push((path, meta.len(), mtime));
        }
        if total <= self.disk_budget {
            return;
        }
        // Corpses are evidence, not cache: delete them before any live
        // entry is evicted (they are not counted in disk_evicted).
        for path in corpses {
            let _ = std::fs::remove_file(&path);
        }
        entries.sort_by_key(|(_, _, mtime)| *mtime);
        for (path, len, _) in entries {
            if total <= self.disk_budget {
                break;
            }
            if std::fs::remove_file(&path).is_ok() {
                total -= len;
                self.disk_evicted.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// The accounted in-memory size of a measurement: its canonical JSON
/// length (what the disk entry costs, minus framing) — cheap enough for
/// a cold path and proportional to the real footprint.
pub fn measurement_bytes(m: &Measurement) -> u64 {
    serde_json::to_string(m)
        .map(|s| s.len() as u64)
        .unwrap_or(0)
}

/// Deterministically flips one byte of an in-memory entry text (the
/// `refcache.read.corrupt` fault): position is derived from the key,
/// and the replacement stays ASCII so the text remains a `String`.
fn corrupt_one_byte(text: &mut String, key: u64) {
    if text.is_empty() {
        return;
    }
    let pos = (key as usize).wrapping_mul(0x9e37_79b9) % text.len();
    // SAFETY-free: replace via byte vector, '#' keeps UTF-8 valid.
    let mut bytes = std::mem::take(text).into_bytes();
    bytes[pos] = if bytes[pos] == b'#' { b'%' } else { b'#' };
    *text = String::from_utf8_lossy(&bytes).into_owned();
}

fn validate_entry(text: &str, key: u64, path: &Path) -> Result<Measurement, String> {
    // Checksum frame first: a torn or bit-flipped entry must be caught
    // before JSON parsing sees it. Unframed entries (pre-framing cache
    // dirs) fall through to the parse, which is their only validation.
    let framed = persist::split_frame(text)?;
    let text = framed.payload.as_str();
    let entry: CacheEntry = serde_json::from_str(text).map_err(|e| format!("unparseable ({e})"))?;
    if entry.schema_version != CACHE_SCHEMA_VERSION {
        return Err(format!(
            "schema version {} (tool expects {})",
            entry.schema_version, CACHE_SCHEMA_VERSION
        ));
    }
    let expect = format!("{key:016x}");
    if entry.key != expect {
        return Err(format!(
            "stored under key {} but resolved by {} — stale file name at {}",
            entry.key,
            expect,
            path.display()
        ));
    }
    Ok(entry.measurement)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specs::{Method, RunSpec};
    use gpu_sim::GpuConfig;
    use gpu_workloads::registry::Benchmark;

    fn meas() -> Measurement {
        Measurement {
            workload: "fir".into(),
            warps: 64,
            method: "Full".into(),
            sim_cycles: 1234,
            wall_secs: 0.5,
            detailed_insts: 10,
            functional_insts: 0,
            detailed_warps: 64,
            predicted_warps: 0,
            skipped_kernels: 0,
            kernel_cycles: vec![1234],
            accounting: None,
            bb_errors: vec![],
        }
    }

    #[test]
    fn key_is_stable_and_sensitive() {
        let a = RunSpec::bench(GpuConfig::tiny(), Benchmark::Fir, 64, Method::Full);
        assert_eq!(reference_key(&a), reference_key(&a.clone()));
        // method does NOT change the key (only Full is cached; the
        // reference is method-independent)
        let mut ph = a.clone();
        ph.method = Method::Pka;
        assert_eq!(reference_key(&a), reference_key(&ph));
        // problem size, machine, and seed all do
        let b = RunSpec::bench(GpuConfig::tiny(), Benchmark::Fir, 128, Method::Full);
        assert_ne!(reference_key(&a), reference_key(&b));
        let c = RunSpec::bench(
            GpuConfig::tiny().with_num_cus(2),
            Benchmark::Fir,
            64,
            Method::Full,
        );
        assert_ne!(reference_key(&a), reference_key(&c));
        let mut d = a.clone();
        d.seed = 8;
        assert_ne!(reference_key(&a), reference_key(&d));
    }

    #[test]
    fn memory_only_cache_round_trips() {
        let cache = RefCache::memory_only();
        assert!(cache.lookup(42).is_none());
        cache.store(42, "fir", &meas());
        assert_eq!(cache.lookup(42).unwrap().sim_cycles, 1234);
    }

    #[test]
    fn entry_validation_rejects_bad_entries() {
        let good = CacheEntry {
            schema_version: CACHE_SCHEMA_VERSION,
            key: format!("{:016x}", 7u64),
            isa_fingerprint: "0".into(),
            workload: "fir".into(),
            measurement: meas(),
        };
        let text = serde_json::to_string(&good).unwrap();
        assert!(validate_entry(&text, 7, Path::new("x")).is_ok());
        // wrong key
        assert!(validate_entry(&text, 8, Path::new("x")).is_err());
        // wrong schema version
        let mut stale = good.clone();
        stale.schema_version = CACHE_SCHEMA_VERSION + 1;
        let text = serde_json::to_string(&stale).unwrap();
        assert!(validate_entry(&text, 7, Path::new("x")).is_err());
        // garbage
        assert!(validate_entry("{not json", 7, Path::new("x")).is_err());
    }

    #[test]
    fn sharded_store_lru_eviction_respects_budget_and_recency() {
        // One shard so eviction order is fully deterministic.
        let store: ShardedStore<u64> = ShardedStore::new(1, 100);
        store.insert(1, 10, 40);
        store.insert(2, 20, 40);
        // Touch 1 so 2 becomes the LRU entry.
        assert_eq!(store.get(1), Some(10));
        store.insert(3, 30, 40); // 120 > 100: evict key 2
        assert_eq!(store.get(2), None);
        assert_eq!(store.get(1), Some(10));
        assert_eq!(store.get(3), Some(30));
        let s = store.stats();
        assert_eq!(s.evicted, 1);
        assert!(s.bytes <= 100, "bytes {} over budget", s.bytes);
        // An entry bigger than the whole budget is refused, not stored.
        store.insert(4, 40, 101);
        assert_eq!(store.get(4), None);
        assert_eq!(store.stats().rejected, 1);
    }

    #[test]
    fn single_flight_coalesces_concurrent_computes() {
        use std::sync::atomic::AtomicUsize;
        let store: ShardedStore<u64> = ShardedStore::new(4, 1 << 20);
        let computes = AtomicUsize::new(0);
        let barrier = std::sync::Barrier::new(8);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    scope.spawn(|| {
                        barrier.wait();
                        store.get_or_compute(99, || {
                            computes.fetch_add(1, Ordering::SeqCst);
                            // Give followers time to pile onto the flight.
                            std::thread::sleep(std::time::Duration::from_millis(50));
                            (Some(777u64), 8, true)
                        })
                    })
                })
                .collect();
            let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            for (v, _) in &results {
                assert_eq!(*v, Some(777));
            }
            // Exactly one leader; everyone else hit or coalesced.
            assert_eq!(computes.load(Ordering::SeqCst), 1);
            let leaders = results.iter().filter(|(_, o)| *o == Origin::Miss).count();
            assert_eq!(leaders, 1);
        });
    }

    #[test]
    fn failed_compute_is_not_cached_and_followers_see_none() {
        let store: ShardedStore<u64> = ShardedStore::new(4, 1 << 20);
        let (v, origin) = store.get_or_compute(5, || (None, 0, false));
        assert_eq!(v, None);
        assert_eq!(origin, Origin::Miss);
        // The failure was not cached: the next call recomputes.
        let (v, origin) = store.get_or_compute(5, || (Some(1), 8, true));
        assert_eq!(v, Some(1));
        assert_eq!(origin, Origin::Miss);
    }

    #[test]
    fn disk_budget_evicts_oldest_entries() {
        let dir =
            std::env::temp_dir().join(format!("photon-refcache-diskbudget-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let m = meas();
        // Size one persisted entry, then budget the real cache so only
        // two fit — the third store must evict the oldest.
        let probe = RefCache::with_budgets(Some(dir.clone()), 1 << 20, u64::MAX);
        probe.store(1, "fir", &m);
        let entry_len = std::fs::metadata(dir.join(format!("{:016x}.json", 1u64)))
            .unwrap()
            .len();
        let budget = entry_len * 2 + entry_len / 2;
        let cache = RefCache::with_budgets(Some(dir.clone()), 1 << 20, budget);
        std::thread::sleep(std::time::Duration::from_millis(20));
        cache.store(2, "fir", &m);
        std::thread::sleep(std::time::Duration::from_millis(20));
        cache.store(3, "fir", &m);
        let stats = cache.stats();
        assert!(stats.disk_evicted >= 1, "stats: {stats:?}");
        let on_disk: u64 = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().ends_with(".json"))
            .map(|e| e.metadata().unwrap().len())
            .sum();
        assert!(
            on_disk <= budget,
            "disk usage {on_disk} over budget {budget}"
        );
        // The newest entry survives on disk.
        assert!(dir.join(format!("{:016x}.json", 3u64)).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn disk_budget_reaps_corrupt_quarantine_files() {
        let dir =
            std::env::temp_dir().join(format!("photon-refcache-corpses-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let corpse = dir.join("00000000deadbeef.json.corrupt");
        std::fs::write(&corpse, "torn entry kept as evidence").unwrap();
        let m = meas();
        let probe = RefCache::with_budgets(Some(dir.clone()), 1 << 20, u64::MAX);
        probe.store(1, "fir", &m);
        let entry_len = std::fs::metadata(dir.join(format!("{:016x}.json", 1u64)))
            .unwrap()
            .len();
        // Budget fits one entry: the second store goes over it, which
        // must reap the corpse before evicting any live entry.
        let cache = RefCache::with_budgets(Some(dir.clone()), 1 << 20, entry_len + entry_len / 2);
        std::thread::sleep(std::time::Duration::from_millis(20));
        cache.store(2, "fir", &m);
        assert!(
            !corpse.exists(),
            "corrupt corpse must be reaped once the directory is over budget"
        );
        // The newest live entry survives.
        assert!(dir.join(format!("{:016x}.json", 2u64)).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn get_or_compute_full_hits_after_store() {
        let cache = RefCache::memory_only();
        let (m, origin) = cache.get_or_compute_full(7, "fir", || Some(meas()));
        assert_eq!(origin, Origin::Miss);
        assert_eq!(m.unwrap().sim_cycles, 1234);
        let (m, origin) =
            cache.get_or_compute_full(7, "fir", || panic!("must be served from memory"));
        assert_eq!(origin, Origin::Hit);
        assert_eq!(m.unwrap().sim_cycles, 1234);
    }
}

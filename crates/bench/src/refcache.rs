//! The content-addressed reference cache: full-detailed measurements
//! are expensive and every comparison figure needs them, so completed
//! `Method::Full` runs are memoized in memory and persisted under
//! `results/cache/` keyed by a stable hash of everything that
//! determines the measurement.
//!
//! ## Key definition
//!
//! The key is FNV-1a (64-bit) over the canonical JSON rendering of
//! `(CACHE_SCHEMA_VERSION, isa_fingerprint, workload, gpu, seed)`.
//! The method is deliberately *not* part of the key — only `Full` runs
//! are cached, and the reference measurement is method-independent by
//! definition. Any change to the `GpuConfig`, the problem size, the
//! seed, the ISA revision, or this cache's schema changes the key and
//! therefore invalidates the entry.
//!
//! ## Failure model
//!
//! The cache is an accelerator, never a correctness dependency: a
//! missing, corrupt, or version-mismatched entry produces a warning and
//! a recompute, and write failures are warnings too. Entries are
//! written atomically with a checksum footer ([`crate::persist`]); an
//! entry that fails validation is **quarantined** — renamed to
//! `<key>.json.corrupt` — so the next warm run recomputes silently
//! instead of re-warning about the same corpse forever. Quarantines are
//! counted ([`RefCache::quarantined`]) and surface as the
//! `refcache.quarantined` telemetry counter in executor reports.

use crate::harness::Measurement;
use crate::persist;
use crate::specs::RunSpec;
use gpu_isa::{fnv1a, fnv1a_extend, isa_fingerprint};
use gpu_telemetry::faults::{self, FaultSite};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Bumped whenever the entry layout or the key derivation changes;
/// entries persisted under any other version are recomputed.
/// Version 2: `Measurement` gained cycle accounting and per-BB error
/// rows (the vendored serde has no `#[serde(default)]`, so old entries
/// cannot deserialize and must be recomputed).
pub const CACHE_SCHEMA_VERSION: u32 = 2;

/// The stable cache key of a spec's full-detailed reference.
///
/// Canonical-JSON hashing works because the vendored `serde_json`
/// renders struct fields in declaration order — two equal specs always
/// produce byte-identical text.
pub fn reference_key(spec: &RunSpec) -> u64 {
    let workload = serde_json::to_string(&spec.workload).unwrap_or_default();
    let gpu = serde_json::to_string(&spec.gpu).unwrap_or_default();
    let mut h = fnv1a(&CACHE_SCHEMA_VERSION.to_le_bytes());
    h = fnv1a_extend(h, &isa_fingerprint().to_le_bytes());
    h = fnv1a_extend(h, workload.as_bytes());
    h = fnv1a_extend(h, gpu.as_bytes());
    fnv1a_extend(h, &spec.seed.to_le_bytes())
}

/// One persisted cache entry: the measurement plus enough context to
/// validate it and to audit the cache directory by hand.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CacheEntry {
    /// Must equal [`CACHE_SCHEMA_VERSION`] to be trusted.
    pub schema_version: u32,
    /// The key this entry was stored under, hex-rendered.
    pub key: String,
    /// The ISA fingerprint at store time, hex-rendered (diagnostic; the
    /// fingerprint is already folded into the key).
    pub isa_fingerprint: String,
    /// Workload display name (diagnostic).
    pub workload: String,
    /// The memoized full-detailed measurement.
    pub measurement: Measurement,
}

/// The in-memory + on-disk reference cache. One instance serves a whole
/// executor invocation; worker threads share it behind `&self`.
#[derive(Debug)]
pub struct RefCache {
    /// Persistence directory (`None` = memory only).
    dir: Option<PathBuf>,
    mem: Mutex<HashMap<u64, Measurement>>,
    /// Entries quarantined (renamed to `.corrupt`) by this instance.
    quarantined: AtomicU64,
}

impl RefCache {
    /// A cache persisting under `dir` (created on first store).
    pub fn persistent(dir: PathBuf) -> RefCache {
        RefCache {
            dir: Some(dir),
            mem: Mutex::new(HashMap::new()),
            quarantined: AtomicU64::new(0),
        }
    }

    /// A memory-only cache (used when persistence is disabled: entries
    /// still deduplicate within one process).
    pub fn memory_only() -> RefCache {
        RefCache {
            dir: None,
            mem: Mutex::new(HashMap::new()),
            quarantined: AtomicU64::new(0),
        }
    }

    /// Entries this instance quarantined to `.corrupt` files.
    pub fn quarantined(&self) -> u64 {
        self.quarantined.load(Ordering::Relaxed)
    }

    /// The default persistence directory, `results/cache/`.
    pub fn default_dir() -> PathBuf {
        crate::harness::results_dir().join("cache")
    }

    fn entry_path(&self, key: u64) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|d| d.join(format!("{key:016x}.json")))
    }

    /// Looks up the reference measurement for `key`, checking memory
    /// first and then disk. Disk entries that fail checksum
    /// verification, fail to parse, carry the wrong schema version, or
    /// were stored under a different key are quarantined (renamed to
    /// `.corrupt`) with a warning and recomputed.
    pub fn lookup(&self, key: u64) -> Option<Measurement> {
        if let Some(m) = self.mem.lock().unwrap_or_else(|e| e.into_inner()).get(&key) {
            return Some(m.clone());
        }
        let path = self.entry_path(key)?;
        let mut text = std::fs::read_to_string(&path).ok()?;
        if faults::active() && faults::should_inject(FaultSite::RefcacheReadCorrupt, key) {
            corrupt_one_byte(&mut text, key);
        }
        match validate_entry(&text, key, &path) {
            Ok(m) => {
                self.mem
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .insert(key, m.clone());
                Some(m)
            }
            Err(why) => {
                eprintln!(
                    "warning: quarantining reference cache entry {}: {why} (recomputing)",
                    path.display()
                );
                if persist::quarantine(&path).is_some() {
                    self.quarantined.fetch_add(1, Ordering::Relaxed);
                }
                None
            }
        }
    }

    /// Stores a completed full-detailed measurement under `key`, in
    /// memory and (when persistence is on) on disk — atomically, with a
    /// checksum footer. I/O failures warn and degrade to memory-only.
    pub fn store(&self, key: u64, workload: &str, m: &Measurement) {
        self.mem
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(key, m.clone());
        let Some(path) = self.entry_path(key) else {
            return;
        };
        let entry = CacheEntry {
            schema_version: CACHE_SCHEMA_VERSION,
            key: format!("{key:016x}"),
            isa_fingerprint: format!("{:016x}", isa_fingerprint()),
            workload: workload.to_string(),
            measurement: m.clone(),
        };
        let write = || -> Result<(), String> {
            let text = serde_json::to_string_pretty(&entry).map_err(|e| e.to_string())?;
            if faults::active() {
                if faults::should_inject(FaultSite::RefcacheWriteIoErr, key) {
                    return Err("injected I/O error".to_string());
                }
                if faults::should_inject(FaultSite::RefcacheWriteTorn, key) {
                    // Simulate a crash mid-write through the legacy
                    // (non-atomic) path: half the framed entry lands.
                    let framed = persist::frame(&text);
                    let torn = &framed[..framed.len() / 2];
                    if let Some(parent) = path.parent() {
                        std::fs::create_dir_all(parent).map_err(|e| e.to_string())?;
                    }
                    return std::fs::write(&path, torn).map_err(|e| e.to_string());
                }
            }
            persist::atomic_write_framed(&path, &text).map_err(|e| e.to_string())
        };
        if let Err(e) = write() {
            eprintln!(
                "warning: could not persist reference cache entry {}: {e}",
                path.display()
            );
        }
    }
}

/// Deterministically flips one byte of an in-memory entry text (the
/// `refcache.read.corrupt` fault): position is derived from the key,
/// and the replacement stays ASCII so the text remains a `String`.
fn corrupt_one_byte(text: &mut String, key: u64) {
    if text.is_empty() {
        return;
    }
    let pos = (key as usize).wrapping_mul(0x9e37_79b9) % text.len();
    // SAFETY-free: replace via byte vector, '#' keeps UTF-8 valid.
    let mut bytes = std::mem::take(text).into_bytes();
    bytes[pos] = if bytes[pos] == b'#' { b'%' } else { b'#' };
    *text = String::from_utf8_lossy(&bytes).into_owned();
}

fn validate_entry(text: &str, key: u64, path: &Path) -> Result<Measurement, String> {
    // Checksum frame first: a torn or bit-flipped entry must be caught
    // before JSON parsing sees it. Unframed entries (pre-framing cache
    // dirs) fall through to the parse, which is their only validation.
    let framed = persist::split_frame(text)?;
    let text = framed.payload.as_str();
    let entry: CacheEntry = serde_json::from_str(text).map_err(|e| format!("unparseable ({e})"))?;
    if entry.schema_version != CACHE_SCHEMA_VERSION {
        return Err(format!(
            "schema version {} (tool expects {})",
            entry.schema_version, CACHE_SCHEMA_VERSION
        ));
    }
    let expect = format!("{key:016x}");
    if entry.key != expect {
        return Err(format!(
            "stored under key {} but resolved by {} — stale file name at {}",
            entry.key,
            expect,
            path.display()
        ));
    }
    Ok(entry.measurement)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specs::{Method, RunSpec};
    use gpu_sim::GpuConfig;
    use gpu_workloads::registry::Benchmark;

    fn meas() -> Measurement {
        Measurement {
            workload: "fir".into(),
            warps: 64,
            method: "Full".into(),
            sim_cycles: 1234,
            wall_secs: 0.5,
            detailed_insts: 10,
            functional_insts: 0,
            detailed_warps: 64,
            predicted_warps: 0,
            skipped_kernels: 0,
            kernel_cycles: vec![1234],
            accounting: None,
            bb_errors: vec![],
        }
    }

    #[test]
    fn key_is_stable_and_sensitive() {
        let a = RunSpec::bench(GpuConfig::tiny(), Benchmark::Fir, 64, Method::Full);
        assert_eq!(reference_key(&a), reference_key(&a.clone()));
        // method does NOT change the key (only Full is cached; the
        // reference is method-independent)
        let mut ph = a.clone();
        ph.method = Method::Pka;
        assert_eq!(reference_key(&a), reference_key(&ph));
        // problem size, machine, and seed all do
        let b = RunSpec::bench(GpuConfig::tiny(), Benchmark::Fir, 128, Method::Full);
        assert_ne!(reference_key(&a), reference_key(&b));
        let c = RunSpec::bench(
            GpuConfig::tiny().with_num_cus(2),
            Benchmark::Fir,
            64,
            Method::Full,
        );
        assert_ne!(reference_key(&a), reference_key(&c));
        let mut d = a.clone();
        d.seed = 8;
        assert_ne!(reference_key(&a), reference_key(&d));
    }

    #[test]
    fn memory_only_cache_round_trips() {
        let cache = RefCache::memory_only();
        assert!(cache.lookup(42).is_none());
        cache.store(42, "fir", &meas());
        assert_eq!(cache.lookup(42).unwrap().sim_cycles, 1234);
    }

    #[test]
    fn entry_validation_rejects_bad_entries() {
        let good = CacheEntry {
            schema_version: CACHE_SCHEMA_VERSION,
            key: format!("{:016x}", 7u64),
            isa_fingerprint: "0".into(),
            workload: "fir".into(),
            measurement: meas(),
        };
        let text = serde_json::to_string(&good).unwrap();
        assert!(validate_entry(&text, 7, Path::new("x")).is_ok());
        // wrong key
        assert!(validate_entry(&text, 8, Path::new("x")).is_err());
        // wrong schema version
        let mut stale = good.clone();
        stale.schema_version = CACHE_SCHEMA_VERSION + 1;
        let text = serde_json::to_string(&stale).unwrap();
        assert!(validate_entry(&text, 7, Path::new("x")).is_err());
        // garbage
        assert!(validate_entry("{not json", 7, Path::new("x")).is_err());
    }
}

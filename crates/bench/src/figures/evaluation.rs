//! The evaluation figures (§6): the Full/PKA/Photon comparison, the
//! MI100 robustness check, the sampling-level ablation, the real-world
//! applications, the VGG-16 per-layer analysis, and the online/offline
//! tradeoff, plus Tables 1 and 2.
//!
//! Every comparison figure builds its grid in [`crate::specs`] and runs
//! it through [`crate::executor::run_specs`]: runs fan out across
//! `--jobs` workers and the full-detailed references are shared through
//! the persistent cache, so regenerating a second figure (or re-running
//! one) never re-simulates a reference it already has.

use crate::executor::{run_specs, ExecOptions, ExecReport};
use crate::harness::{write_json, Measurement, Method, RunOutcome, Table};
use crate::specs::{
    comparison_grid, fig13_methods, fig14_methods, fig15_methods, fig17_methods, figure16_grid,
    figure17_grid, mi100, r9_nano, scaled_photon_config, DEFAULT_SEED,
};
use gpu_sim::{GpuConfig, GpuSimulator};
use gpu_workloads::registry::{Benchmark, RealWorldApp};
use photon::{Levels, PhotonController};
use serde::Serialize;
use std::time::Instant;

pub use crate::specs::dnn_scale;

/// One comparison row: a workload/size under one method measured
/// against the full-detailed baseline.
#[derive(Debug, Clone, Serialize)]
pub struct ComparisonRow {
    /// Workload name.
    pub workload: String,
    /// Problem size (warps).
    pub warps: u64,
    /// Method name.
    pub method: String,
    /// Simulated kernel cycles.
    pub sim_cycles: u64,
    /// Error vs full detailed.
    pub error: f64,
    /// Wall-clock speedup vs full detailed.
    pub speedup: f64,
    /// Wall seconds.
    pub wall_secs: f64,
}

fn full_row(full: &Measurement) -> ComparisonRow {
    ComparisonRow {
        workload: full.workload.clone(),
        warps: full.warps,
        method: "Full".to_string(),
        sim_cycles: full.sim_cycles,
        error: 0.0,
        speedup: 1.0,
        wall_secs: full.wall_secs,
    }
}

fn method_row(m: &Measurement, full: &Measurement) -> ComparisonRow {
    ComparisonRow {
        workload: m.workload.clone(),
        warps: m.warps,
        method: m.method.clone(),
        sim_cycles: m.sim_cycles,
        error: m.error_vs(full),
        speedup: m.speedup_vs(full),
        wall_secs: m.wall_secs,
    }
}

fn warn_skip(outcome: &RunOutcome) {
    if let RunOutcome::Skipped {
        workload,
        method,
        reason,
        ..
    } = outcome
    {
        eprintln!("warning: {workload} under {method} skipped: {reason}");
    }
}

/// Turns an executed comparison grid (Full first, then the methods, per
/// workload/size — the [`comparison_grid`] order) into rows. Skipped
/// runs are warned about and omitted; runs whose Full reference was
/// skipped are omitted with it.
fn rows_from_report(report: &ExecReport) -> Vec<ComparisonRow> {
    let mut rows = Vec::new();
    let mut full: Option<&Measurement> = None;
    for r in &report.results {
        warn_skip(&r.outcome);
        if r.spec.method == Method::Full {
            full = r.outcome.measurement();
            if let Some(f) = full {
                rows.push(full_row(f));
            }
        } else if let Some(m) = r.outcome.measurement() {
            match full {
                Some(f) => rows.push(method_row(m, f)),
                None => eprintln!(
                    "warning: no full-detailed reference for {} — row dropped",
                    r.spec.label()
                ),
            }
        }
    }
    rows
}

fn compare(
    gpu_cfg: &GpuConfig,
    methods: &[Method],
    benches: &[Benchmark],
    opts: &ExecOptions,
) -> Vec<ComparisonRow> {
    let grid = comparison_grid(gpu_cfg, methods, benches);
    let report = run_specs(&grid, opts);
    eprintln!(
        "({} specs: {} executed, {} cache hits, {} deduped, {} skipped, jobs={})",
        report.stats.total,
        report.stats.executed,
        report.stats.cache_hits,
        report.stats.deduped,
        report.stats.skipped,
        report.stats.jobs
    );
    rows_from_report(&report)
}

fn print_rows(title: &str, rows: &[ComparisonRow]) {
    println!("== {title} ==");
    let mut table = Table::new(&[
        "workload",
        "warps",
        "method",
        "sim cycles",
        "error",
        "speedup",
        "wall (s)",
    ]);
    for r in rows {
        table.row(vec![
            r.workload.clone(),
            r.warps.to_string(),
            r.method.clone(),
            r.sim_cycles.to_string(),
            format!("{:.1}%", 100.0 * r.error),
            format!("{:.2}x", r.speedup),
            format!("{:.2}", r.wall_secs),
        ]);
    }
    println!("{}", table.render());
    // method summaries
    for method in ["PKA", "Photon", "BB-sampling", "Warp-sampling"] {
        let ms: Vec<&ComparisonRow> = rows.iter().filter(|r| r.method == method).collect();
        if ms.is_empty() {
            continue;
        }
        let avg_err = ms.iter().map(|r| r.error).sum::<f64>() / ms.len() as f64;
        let max_speedup = ms.iter().map(|r| r.speedup).fold(0.0, f64::max);
        let avg_speedup = ms.iter().map(|r| r.speedup).sum::<f64>() / ms.len() as f64;
        println!(
            "{method}: avg error {:.2}%, avg speedup {:.2}x, max speedup {:.2}x",
            100.0 * avg_err,
            avg_speedup,
            max_speedup
        );
    }
    println!();
}

/// Figure 13: Full vs PKA vs Photon on the R9 Nano across all
/// single-kernel benchmarks and problem sizes.
pub fn fig13(opts: &ExecOptions) -> Vec<ComparisonRow> {
    let rows = compare(&r9_nano(), &fig13_methods(), &Benchmark::ALL, opts);
    print_rows("Figure 13: R9 Nano, Full vs PKA vs Photon", &rows);
    write_json("fig13", &rows);
    rows
}

/// Figure 14: Full vs Photon on the MI100 (micro-architecture
/// independence).
pub fn fig14(opts: &ExecOptions) -> Vec<ComparisonRow> {
    let rows = compare(&mi100(), &fig14_methods(), &Benchmark::ALL, opts);
    print_rows("Figure 14: MI100, Full vs Photon", &rows);
    write_json("fig14", &rows);
    rows
}

/// Figure 15: the sampling-level ablation — basic-block-sampling only,
/// warp-sampling only, and full Photon.
pub fn fig15(opts: &ExecOptions) -> Vec<ComparisonRow> {
    let rows = compare(&r9_nano(), &fig15_methods(), &Benchmark::ALL, opts);
    print_rows("Figure 15: sampling levels (BB / Warp / Photon)", &rows);
    write_json("fig15", &rows);
    rows
}

/// Figure 16: real-world applications (PageRank, VGG, ResNet), Full vs
/// Photon.
pub fn fig16(opts: &ExecOptions) -> Vec<ComparisonRow> {
    let grid = figure16_grid(&r9_nano(), dnn_scale());
    let report = run_specs(&grid, opts);
    let rows = rows_from_report(&report);
    for pair in rows.chunks(2) {
        if let [full, ph] = pair {
            if ph.method != "Full" {
                println!(
                    "{}: full {} cycles in {:.2}s; Photon {} cycles in {:.2}s (err {:.1}%, speedup {:.2}x)",
                    full.workload,
                    full.sim_cycles,
                    full.wall_secs,
                    ph.sim_cycles,
                    ph.wall_secs,
                    100.0 * ph.error,
                    ph.speedup,
                );
            }
        }
    }
    let photon_rows: Vec<&ComparisonRow> = rows.iter().filter(|r| r.method == "Photon").collect();
    if !photon_rows.is_empty() {
        let avg = photon_rows.iter().map(|r| r.error).sum::<f64>() / photon_rows.len() as f64;
        println!(
            "average sampling error across applications: {:.1}%",
            100.0 * avg
        );
    }
    write_json("fig16", &rows);
    rows
}

/// One per-layer row of Figure 17.
#[derive(Debug, Clone, Serialize)]
pub struct LayerRow {
    /// Layer label (conv1-1 … fc-8, "whole").
    pub layer: String,
    /// Method name.
    pub method: String,
    /// Absolute runtime error vs full detailed for that layer.
    pub error: f64,
}

/// Figure 17: per-layer error of kernel-sampling, kernel+warp-sampling,
/// and full Photon on VGG-16, plus whole-network speedups.
///
/// # Panics
/// Panics if any of the four VGG-16 runs is skipped — the per-layer
/// table cannot be rendered from a partial grid.
pub fn fig17(opts: &ExecOptions) -> Vec<LayerRow> {
    let gpu_cfg = r9_nano();
    let scale = dnn_scale();

    // layer labels in launch order (identical across runs)
    let labels: Vec<String> = {
        let mut gpu = GpuSimulator::new(gpu_cfg.clone());
        RealWorldApp::Vgg16
            .build(&mut gpu, scale, DEFAULT_SEED)
            .launches()
            .iter()
            .map(|l| l.layer.clone())
            .collect()
    };

    let grid = figure17_grid(&gpu_cfg, scale);
    let report = run_specs(&grid, opts);
    let measures = report.measurements();
    let (full, measures) = (measures[0], &measures[1..]);
    let methods = fig17_methods();

    let mut rows = Vec::new();
    let mut table = Table::new(&["layer", "kernel", "kernel+warp", "Photon"]);
    let layer_order: Vec<String> = {
        let mut seen = Vec::new();
        for l in &labels {
            if !seen.contains(l) {
                seen.push(l.clone());
            }
        }
        seen
    };

    let layer_cycles = |m: &Measurement, layer: &str| -> u64 {
        m.kernel_cycles
            .iter()
            .zip(&labels)
            .filter(|(_, l)| *l == layer)
            .map(|(c, _)| *c)
            .sum()
    };
    for layer in &layer_order {
        let base = layer_cycles(full, layer) as f64;
        let mut cells = vec![layer.clone()];
        for (method, m) in methods.iter().zip(measures) {
            let err = (layer_cycles(m, layer) as f64 - base).abs() / base.max(1.0);
            cells.push(format!("{:.1}%", 100.0 * err));
            rows.push(LayerRow {
                layer: layer.clone(),
                method: method.name(),
                error: err,
            });
        }
        table.row(cells);
    }
    // whole-network row
    let mut cells = vec!["whole".to_string()];
    for (method, m) in methods.iter().zip(measures) {
        let err = m.error_vs(full);
        cells.push(format!("{:.1}%", 100.0 * err));
        rows.push(LayerRow {
            layer: "whole".into(),
            method: method.name(),
            error: err,
        });
    }
    table.row(cells);
    println!("== Figure 17: VGG-16 per-layer absolute runtime error ==");
    println!("{}", table.render());
    for (method, m) in methods.iter().zip(measures) {
        println!(
            "{}: whole-inference speedup {:.2}x (error {:.1}%)",
            method.name(),
            m.speedup_vs(full),
            100.0 * m.error_vs(full)
        );
    }
    write_json("fig17", &rows);
    rows
}

/// §6.3 online/offline tradeoff: Photon with online analysis vs Photon
/// reusing exported analyses.
///
/// Inherently sequential: the offline pass consumes the analyses the
/// online pass exports, so there is nothing for the executor to fan
/// out. (The binary still accepts the common flags for a uniform CLI.)
pub fn offline_tradeoff() -> (f64, f64) {
    let gpu_cfg = r9_nano();
    let scale = dnn_scale();
    let pcfg = scaled_photon_config(Levels::all());

    // online pass, exporting analyses
    let mut gpu = GpuSimulator::new(gpu_cfg.clone());
    let app = RealWorldApp::Vgg16.build(&mut gpu, scale, DEFAULT_SEED);
    let mut online = PhotonController::new(pcfg.clone(), gpu_cfg.num_cus as u64);
    let t0 = Instant::now();
    let online_res = app.run(&mut gpu, &mut online).expect("online run");
    let online_wall = t0.elapsed().as_secs_f64();
    let analyses = online.export_analyses().to_vec();

    // offline pass reusing them
    let mut gpu2 = GpuSimulator::new(gpu_cfg.clone());
    let app2 = RealWorldApp::Vgg16.build(&mut gpu2, scale, DEFAULT_SEED);
    let mut offline = PhotonController::with_offline(pcfg, gpu_cfg.num_cus as u64, analyses);
    let t1 = Instant::now();
    let offline_res = app2.run(&mut gpu2, &mut offline).expect("offline run");
    let offline_wall = t1.elapsed().as_secs_f64();

    println!(
        "online:  {:.2}s wall, {} functional insts, {} cycles",
        online_wall,
        online_res.total_functional_insts(),
        online_res.total_cycles()
    );
    println!(
        "offline: {:.2}s wall, {} functional insts, {} cycles",
        offline_wall,
        offline_res.total_functional_insts(),
        offline_res.total_cycles()
    );
    write_json(
        "offline_tradeoff",
        &serde_json::json!({
            "online_wall_secs": online_wall,
            "offline_wall_secs": offline_wall,
            "online_functional_insts": online_res.total_functional_insts(),
            "offline_functional_insts": offline_res.total_functional_insts(),
        }),
    );
    (online_wall, offline_wall)
}

/// Table 1: the simulated GPU configurations.
pub fn table1() {
    println!("== Table 1: GPU configurations ==");
    let mut table = Table::new(&["Component", "R9 Nano", "MI100"]);
    let r9 = GpuConfig::r9_nano();
    let mi = GpuConfig::mi100();
    table.row(vec![
        "CU".into(),
        format!("1.0GHz, {} per GPU", r9.num_cus),
        format!("1.0GHz, {} per GPU", mi.num_cus),
    ]);
    table.row(vec![
        "L1 Vector Cache".into(),
        format!(
            "{}KB {}-way, {} per GPU",
            r9.mem.l1v.size_bytes / 1024,
            r9.mem.l1v.assoc,
            r9.num_cus
        ),
        format!(
            "{}KB {}-way, {} per GPU",
            mi.mem.l1v.size_bytes / 1024,
            mi.mem.l1v.assoc,
            mi.num_cus
        ),
    ]);
    table.row(vec![
        "L2 Cache".into(),
        format!(
            "{}KB {}-way, {} banks",
            r9.mem.l2.size_bytes / 1024,
            r9.mem.l2.assoc,
            r9.mem.l2_banks
        ),
        format!(
            "{}MB total, {} banks",
            r9_to_mb(mi.mem.l2.size_bytes * mi.mem.l2_banks),
            mi.mem.l2_banks
        ),
    ]);
    table.row(vec![
        "DRAM".into(),
        format!("{}GB", r9.mem.dram.capacity_bytes >> 30),
        format!("{}GB", mi.mem.dram.capacity_bytes >> 30),
    ]);
    println!("{}", table.render());
}

fn r9_to_mb(bytes: u64) -> u64 {
    bytes / (1024 * 1024)
}

/// Table 2: the benchmark registry.
pub fn table2() {
    println!("== Table 2: benchmarks ==");
    let mut table = Table::new(&["Abbr.", "Suite", "Workload Description"]);
    for b in Benchmark::ALL {
        table.row(vec![
            b.abbr().to_string(),
            b.suite().to_string(),
            b.description().to_string(),
        ]);
    }
    table.row(vec![
        "PR-X".into(),
        "Hetero-Mark".into(),
        "PageRank with X nodes".into(),
    ]);
    table.row(vec![
        "VGG".into(),
        "-".into(),
        "VGG-16 and VGG-19; batchsize=1".into(),
    ]);
    table.row(vec![
        "ResNet".into(),
        "-".into(),
        "ResNet-18 (34, 50, 101, 152); batchsize=1".into(),
    ]);
    println!("{}", table.render());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::RunOutcome;
    use crate::specs::{RunSpec, WorkloadSpec};
    use gpu_telemetry::{MetricsSnapshot, TraceLog};

    fn meas(workload: &str, method: &str, cycles: u64) -> Measurement {
        Measurement {
            workload: workload.into(),
            warps: 64,
            method: method.into(),
            sim_cycles: cycles,
            wall_secs: 1.0,
            detailed_insts: 0,
            functional_insts: 0,
            detailed_warps: 0,
            predicted_warps: 0,
            skipped_kernels: 0,
            kernel_cycles: vec![cycles],
            accounting: None,
            bb_errors: vec![],
        }
    }

    fn result(spec: RunSpec, outcome: RunOutcome) -> crate::executor::RunResult {
        crate::executor::RunResult {
            spec,
            outcome,
            metrics: MetricsSnapshot::default(),
            trace: TraceLog::default(),
            from_cache: false,
        }
    }

    #[test]
    fn rows_track_the_preceding_full_reference() {
        let spec = |method: Method| RunSpec {
            workload: WorkloadSpec::Bench {
                bench: Benchmark::Fir,
                warps: 64,
            },
            method,
            gpu: GpuConfig::tiny(),
            photon: scaled_photon_config(Levels::all()),
            seed: 7,
        };
        let report = ExecReport {
            results: vec![
                result(
                    spec(Method::Full),
                    RunOutcome::Completed(meas("fir", "Full", 1000)),
                ),
                result(
                    spec(Method::Pka),
                    RunOutcome::Completed(meas("fir", "PKA", 900)),
                ),
                result(
                    spec(Method::Photon(Levels::all())),
                    RunOutcome::Skipped {
                        workload: "fir".into(),
                        method: "Photon".into(),
                        reason: "timed out".into(),
                        error: None,
                        failure: crate::harness::FailureKind::Transient,
                    },
                ),
            ],
            stats: crate::executor::ExecStats::default(),
            metrics: gpu_telemetry::MetricsSnapshot::default(),
        };
        let rows = rows_from_report(&report);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].method, "Full");
        assert!((rows[1].error - 0.1).abs() < 1e-12);
    }
}

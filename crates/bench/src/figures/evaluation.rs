//! The evaluation figures (§6): the Full/PKA/Photon comparison, the
//! MI100 robustness check, the sampling-level ablation, the real-world
//! applications, the VGG-16 per-layer analysis, and the online/offline
//! tradeoff, plus Tables 1 and 2.

use crate::harness::{
    mi100, r9_nano, run_app_method, run_benchmark, scaled_photon_config, size_scale, write_json,
    Measurement, Method, Table,
};
use gpu_sim::{GpuConfig, GpuSimulator};
use gpu_workloads::dnn::DnnScale;
use gpu_workloads::registry::{Benchmark, RealWorldApp};
use photon::{Levels, PhotonController};
use serde::Serialize;
use std::time::Instant;

/// One comparison row: a workload/size under one method measured
/// against the full-detailed baseline.
#[derive(Debug, Clone, Serialize)]
pub struct ComparisonRow {
    /// Workload name.
    pub workload: String,
    /// Problem size (warps).
    pub warps: u64,
    /// Method name.
    pub method: String,
    /// Simulated kernel cycles.
    pub sim_cycles: u64,
    /// Error vs full detailed.
    pub error: f64,
    /// Wall-clock speedup vs full detailed.
    pub speedup: f64,
    /// Wall seconds.
    pub wall_secs: f64,
}

fn compare(gpu_cfg: &GpuConfig, methods: &[Method], benches: &[Benchmark]) -> Vec<ComparisonRow> {
    let pcfg = scaled_photon_config(Levels::all());
    let mut rows = Vec::new();
    for &bench in benches {
        for warps in bench.sweep(size_scale()) {
            let full = run_benchmark(gpu_cfg, bench, warps, 7, &Method::Full, &pcfg);
            rows.push(ComparisonRow {
                workload: bench.abbr().to_string(),
                warps,
                method: "Full".to_string(),
                sim_cycles: full.sim_cycles,
                error: 0.0,
                speedup: 1.0,
                wall_secs: full.wall_secs,
            });
            for method in methods {
                if *method == Method::Full {
                    continue;
                }
                let m = run_benchmark(gpu_cfg, bench, warps, 7, method, &pcfg);
                rows.push(ComparisonRow {
                    workload: bench.abbr().to_string(),
                    warps,
                    method: m.method.clone(),
                    sim_cycles: m.sim_cycles,
                    error: m.error_vs(&full),
                    speedup: m.speedup_vs(&full),
                    wall_secs: m.wall_secs,
                });
            }
        }
    }
    rows
}

fn print_rows(title: &str, rows: &[ComparisonRow]) {
    println!("== {title} ==");
    let mut table = Table::new(&[
        "workload",
        "warps",
        "method",
        "sim cycles",
        "error",
        "speedup",
        "wall (s)",
    ]);
    for r in rows {
        table.row(vec![
            r.workload.clone(),
            r.warps.to_string(),
            r.method.clone(),
            r.sim_cycles.to_string(),
            format!("{:.1}%", 100.0 * r.error),
            format!("{:.2}x", r.speedup),
            format!("{:.2}", r.wall_secs),
        ]);
    }
    println!("{}", table.render());
    // method summaries
    for method in ["PKA", "Photon", "BB-sampling", "Warp-sampling"] {
        let ms: Vec<&ComparisonRow> = rows.iter().filter(|r| r.method == method).collect();
        if ms.is_empty() {
            continue;
        }
        let avg_err = ms.iter().map(|r| r.error).sum::<f64>() / ms.len() as f64;
        let max_speedup = ms.iter().map(|r| r.speedup).fold(0.0, f64::max);
        let avg_speedup = ms.iter().map(|r| r.speedup).sum::<f64>() / ms.len() as f64;
        println!(
            "{method}: avg error {:.2}%, avg speedup {:.2}x, max speedup {:.2}x",
            100.0 * avg_err,
            avg_speedup,
            max_speedup
        );
    }
    println!();
}

/// Figure 13: Full vs PKA vs Photon on the R9 Nano across all
/// single-kernel benchmarks and problem sizes.
pub fn fig13() -> Vec<ComparisonRow> {
    let rows = compare(
        &r9_nano(),
        &[Method::Pka, Method::Photon(Levels::all())],
        &Benchmark::ALL,
    );
    print_rows("Figure 13: R9 Nano, Full vs PKA vs Photon", &rows);
    write_json("fig13", &rows);
    rows
}

/// Figure 14: Full vs Photon on the MI100 (micro-architecture
/// independence).
pub fn fig14() -> Vec<ComparisonRow> {
    let rows = compare(&mi100(), &[Method::Photon(Levels::all())], &Benchmark::ALL);
    print_rows("Figure 14: MI100, Full vs Photon", &rows);
    write_json("fig14", &rows);
    rows
}

/// Figure 15: the sampling-level ablation — basic-block-sampling only,
/// warp-sampling only, and full Photon.
pub fn fig15() -> Vec<ComparisonRow> {
    let rows = compare(
        &r9_nano(),
        &[
            Method::Photon(Levels::bb_only()),
            Method::Photon(Levels::warp_only()),
            Method::Photon(Levels::all()),
        ],
        &Benchmark::ALL,
    );
    print_rows("Figure 15: sampling levels (BB / Warp / Photon)", &rows);
    write_json("fig15", &rows);
    rows
}

/// The DNN scaling used by the real-world experiments (see DESIGN.md's
/// substitution table): kernels must be large enough that detailed
/// simulation dominates the online-analysis overhead, as in the paper.
pub fn dnn_scale() -> DnnScale {
    if crate::harness::full_size() {
        DnnScale {
            input_hw: 224,
            channel_div: 1,
        }
    } else {
        DnnScale {
            input_hw: 64,
            channel_div: 4,
        }
    }
}

/// Figure 16: real-world applications (PageRank, VGG, ResNet), Full vs
/// Photon.
pub fn fig16() -> Vec<ComparisonRow> {
    let gpu_cfg = r9_nano();
    let pcfg = scaled_photon_config(Levels::all());
    let scale = dnn_scale();
    let mut rows = Vec::new();
    for app in RealWorldApp::figure16() {
        let builder = |gpu: &mut GpuSimulator| app.build(gpu, scale, 7);
        let full = run_app_method(&gpu_cfg, &app.name(), &builder, &Method::Full, &pcfg);
        let ph = run_app_method(
            &gpu_cfg,
            &app.name(),
            &builder,
            &Method::Photon(Levels::all()),
            &pcfg,
        );
        rows.push(ComparisonRow {
            workload: app.name(),
            warps: full.warps,
            method: "Full".into(),
            sim_cycles: full.sim_cycles,
            error: 0.0,
            speedup: 1.0,
            wall_secs: full.wall_secs,
        });
        rows.push(ComparisonRow {
            workload: app.name(),
            warps: ph.warps,
            method: "Photon".into(),
            sim_cycles: ph.sim_cycles,
            error: ph.error_vs(&full),
            speedup: ph.speedup_vs(&full),
            wall_secs: ph.wall_secs,
        });
        println!(
            "{}: full {} cycles in {:.2}s; Photon {} cycles in {:.2}s (err {:.1}%, speedup {:.2}x, {} kernels skipped)",
            app.name(),
            full.sim_cycles,
            full.wall_secs,
            ph.sim_cycles,
            ph.wall_secs,
            100.0 * ph.error_vs(&full),
            ph.speedup_vs(&full),
            ph.skipped_kernels,
        );
    }
    let photon_rows: Vec<&ComparisonRow> = rows.iter().filter(|r| r.method == "Photon").collect();
    let avg = photon_rows.iter().map(|r| r.error).sum::<f64>() / photon_rows.len() as f64;
    println!(
        "average sampling error across applications: {:.1}%",
        100.0 * avg
    );
    write_json("fig16", &rows);
    rows
}

/// One per-layer row of Figure 17.
#[derive(Debug, Clone, Serialize)]
pub struct LayerRow {
    /// Layer label (conv1-1 … fc-8, "whole").
    pub layer: String,
    /// Method name.
    pub method: String,
    /// Absolute runtime error vs full detailed for that layer.
    pub error: f64,
}

/// Figure 17: per-layer error of kernel-sampling, kernel+warp-sampling,
/// and full Photon on VGG-16, plus whole-network speedups.
pub fn fig17() -> Vec<LayerRow> {
    let gpu_cfg = r9_nano();
    let scale = dnn_scale();
    let pcfg = scaled_photon_config(Levels::all());

    // layer labels in launch order (identical across runs)
    let labels: Vec<String> = {
        let mut gpu = GpuSimulator::new(gpu_cfg.clone());
        RealWorldApp::Vgg16
            .build(&mut gpu, scale, 7)
            .launches()
            .iter()
            .map(|l| l.layer.clone())
            .collect()
    };

    let run = |method: &Method| -> Measurement {
        run_app_method(
            &gpu_cfg,
            "VGG-16",
            &|gpu: &mut GpuSimulator| RealWorldApp::Vgg16.build(gpu, scale, 7),
            method,
            &pcfg,
        )
    };

    let full = run(&Method::Full);
    let methods = [
        Method::Photon(Levels::kernel_only()),
        Method::Photon(Levels::kernel_warp()),
        Method::Photon(Levels::all()),
    ];

    let mut rows = Vec::new();
    let mut table = Table::new(&["layer", "kernel", "kernel+warp", "Photon"]);
    let layer_order: Vec<String> = {
        let mut seen = Vec::new();
        for l in &labels {
            if !seen.contains(l) {
                seen.push(l.clone());
            }
        }
        seen
    };

    let measures: Vec<Measurement> = methods.iter().map(&run).collect();
    let layer_cycles = |m: &Measurement, layer: &str| -> u64 {
        m.kernel_cycles
            .iter()
            .zip(&labels)
            .filter(|(_, l)| *l == layer)
            .map(|(c, _)| *c)
            .sum()
    };
    for layer in &layer_order {
        let base = layer_cycles(&full, layer) as f64;
        let mut cells = vec![layer.clone()];
        for (method, m) in methods.iter().zip(&measures) {
            let err = (layer_cycles(m, layer) as f64 - base).abs() / base.max(1.0);
            cells.push(format!("{:.1}%", 100.0 * err));
            rows.push(LayerRow {
                layer: layer.clone(),
                method: method.name(),
                error: err,
            });
        }
        table.row(cells);
    }
    // whole-network row
    let mut cells = vec!["whole".to_string()];
    for (method, m) in methods.iter().zip(&measures) {
        let err = m.error_vs(&full);
        cells.push(format!("{:.1}%", 100.0 * err));
        rows.push(LayerRow {
            layer: "whole".into(),
            method: method.name(),
            error: err,
        });
    }
    table.row(cells);
    println!("== Figure 17: VGG-16 per-layer absolute runtime error ==");
    println!("{}", table.render());
    for (method, m) in methods.iter().zip(&measures) {
        println!(
            "{}: whole-inference speedup {:.2}x (error {:.1}%)",
            method.name(),
            m.speedup_vs(&full),
            100.0 * m.error_vs(&full)
        );
    }
    write_json("fig17", &rows);
    rows
}

/// §6.3 online/offline tradeoff: Photon with online analysis vs Photon
/// reusing exported analyses.
pub fn offline_tradeoff() -> (f64, f64) {
    let gpu_cfg = r9_nano();
    let scale = dnn_scale();
    let pcfg = scaled_photon_config(Levels::all());

    // online pass, exporting analyses
    let mut gpu = GpuSimulator::new(gpu_cfg.clone());
    let app = RealWorldApp::Vgg16.build(&mut gpu, scale, 7);
    let mut online = PhotonController::new(pcfg.clone(), gpu_cfg.num_cus as u64);
    let t0 = Instant::now();
    let online_res = app.run(&mut gpu, &mut online).expect("online run");
    let online_wall = t0.elapsed().as_secs_f64();
    let analyses = online.export_analyses().to_vec();

    // offline pass reusing them
    let mut gpu2 = GpuSimulator::new(gpu_cfg.clone());
    let app2 = RealWorldApp::Vgg16.build(&mut gpu2, scale, 7);
    let mut offline = PhotonController::with_offline(pcfg, gpu_cfg.num_cus as u64, analyses);
    let t1 = Instant::now();
    let offline_res = app2.run(&mut gpu2, &mut offline).expect("offline run");
    let offline_wall = t1.elapsed().as_secs_f64();

    println!(
        "online:  {:.2}s wall, {} functional insts, {} cycles",
        online_wall,
        online_res.total_functional_insts(),
        online_res.total_cycles()
    );
    println!(
        "offline: {:.2}s wall, {} functional insts, {} cycles",
        offline_wall,
        offline_res.total_functional_insts(),
        offline_res.total_cycles()
    );
    write_json(
        "offline_tradeoff",
        &serde_json::json!({
            "online_wall_secs": online_wall,
            "offline_wall_secs": offline_wall,
            "online_functional_insts": online_res.total_functional_insts(),
            "offline_functional_insts": offline_res.total_functional_insts(),
        }),
    );
    (online_wall, offline_wall)
}

/// Table 1: the simulated GPU configurations.
pub fn table1() {
    println!("== Table 1: GPU configurations ==");
    let mut table = Table::new(&["Component", "R9 Nano", "MI100"]);
    let r9 = GpuConfig::r9_nano();
    let mi = GpuConfig::mi100();
    table.row(vec![
        "CU".into(),
        format!("1.0GHz, {} per GPU", r9.num_cus),
        format!("1.0GHz, {} per GPU", mi.num_cus),
    ]);
    table.row(vec![
        "L1 Vector Cache".into(),
        format!(
            "{}KB {}-way, {} per GPU",
            r9.mem.l1v.size_bytes / 1024,
            r9.mem.l1v.assoc,
            r9.num_cus
        ),
        format!(
            "{}KB {}-way, {} per GPU",
            mi.mem.l1v.size_bytes / 1024,
            mi.mem.l1v.assoc,
            mi.num_cus
        ),
    ]);
    table.row(vec![
        "L2 Cache".into(),
        format!(
            "{}KB {}-way, {} banks",
            r9.mem.l2.size_bytes / 1024,
            r9.mem.l2.assoc,
            r9.mem.l2_banks
        ),
        format!(
            "{}MB total, {} banks",
            r9_to_mb(mi.mem.l2.size_bytes * mi.mem.l2_banks),
            mi.mem.l2_banks
        ),
    ]);
    table.row(vec![
        "DRAM".into(),
        format!("{}GB", r9.mem.dram.capacity_bytes >> 30),
        format!("{}GB", mi.mem.dram.capacity_bytes >> 30),
    ]);
    println!("{}", table.render());
}

fn r9_to_mb(bytes: u64) -> u64 {
    bytes / (1024 * 1024)
}

/// Table 2: the benchmark registry.
pub fn table2() {
    println!("== Table 2: benchmarks ==");
    let mut table = Table::new(&["Abbr.", "Suite", "Workload Description"]);
    for b in Benchmark::ALL {
        table.row(vec![
            b.abbr().to_string(),
            b.suite().to_string(),
            b.description().to_string(),
        ]);
    }
    table.row(vec![
        "PR-X".into(),
        "Hetero-Mark".into(),
        "PageRank with X nodes".into(),
    ]);
    table.row(vec![
        "VGG".into(),
        "-".into(),
        "VGG-16 and VGG-19; batchsize=1".into(),
    ]);
    table.row(vec![
        "ResNet".into(),
        "-".into(),
        "ResNet-18 (34, 50, 101, 152); batchsize=1".into(),
    ]);
    println!("{}", table.render());
}

//! Per-figure experiment implementations.
//!
//! Each function regenerates the data behind one figure or table of the
//! paper's evaluation and returns/prints the same rows or series. The
//! `fig*` binaries are thin wrappers over these.

mod evaluation;
mod observations;

pub use evaluation::{
    fig13, fig14, fig15, fig16, fig17, offline_tradeoff, table1, table2, ComparisonRow,
};
pub use observations::{fig1, fig11, fig2, fig3, fig4, fig6, fig8};

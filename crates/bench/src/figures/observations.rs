//! The observation figures (§3): IPC timelines, basic-block and warp
//! issue/retire behavior, distribution sampling, and GPU-BBV
//! clustering.
//!
//! These figures measure *recordings*, not comparison grids, so they do
//! not go through the reference cache; but every per-workload loop fans
//! out over [`parallel_map`] with the binary's `--jobs` setting.
//! Results are collected per workload and printed afterwards in the
//! fixed workload order, so the output is identical at any job count.

use crate::executor::{parallel_map, ExecOptions};
use crate::harness::{r9_nano, scaled_photon_config, size_scale, write_json, Table};
use gpu_sim::{GpuSimulator, Recorder};
use gpu_workloads::dnn::DnnScale;
use gpu_workloads::registry::{Benchmark, RealWorldApp};
use photon::{least_squares, Levels, OnlineAnalysis, PhotonController};
use serde::Serialize;

fn run_recorded(bench: Benchmark, warps: u64) -> (Recorder, u64) {
    let cfg = r9_nano();
    let mut gpu = GpuSimulator::new(cfg);
    let app = bench.build(&mut gpu, warps, 7);
    let mut rec = Recorder::new();
    let result = app.run(&mut gpu, &mut rec).expect("detailed run");
    (rec, result.total_cycles())
}

/// Figure 1: IPC over time for ReLU (stabilizes) and MM (fluctuates).
///
/// Returns `(workload, ipc series)` pairs and writes them to
/// `results/fig1.json`.
pub fn fig1(opts: &ExecOptions) -> Vec<(String, Vec<f64>)> {
    let pairs = vec![(Benchmark::Relu, 16384u64), (Benchmark::Mm, 4096)];
    let computed = parallel_map(pairs, opts.jobs, &|(bench, warps): (Benchmark, u64)| {
        let warps = warps / size_scale().max(1);
        let (rec, cycles) = run_recorded(bench, warps);
        let window = 2048.0;
        let series: Vec<f64> = rec
            .ipc_windows
            .iter()
            .map(|(_, insts)| *insts as f64 / window)
            .collect();
        (bench, cycles, series)
    });
    let mut out = Vec::new();
    for (bench, cycles, series) in computed {
        println!(
            "{}: {} windows over {} cycles; first/mid/last IPC = {:.2}/{:.2}/{:.2}",
            bench.abbr(),
            series.len(),
            cycles,
            series.first().copied().unwrap_or(0.0),
            series.get(series.len() / 2).copied().unwrap_or(0.0),
            series.last().copied().unwrap_or(0.0),
        );
        out.push((bench.abbr().to_string(), series));
    }
    write_json("fig1", &out);
    out
}

/// The dominating basic block (by total execution time) of a recording.
fn dominating_bb(rec: &Recorder) -> u32 {
    use std::collections::HashMap;
    let mut time: HashMap<u32, u64> = HashMap::new();
    for r in &rec.bb_records {
        *time.entry(r.bb.0).or_insert(0) += r.duration();
    }
    time.into_iter()
        .max_by_key(|(_, t)| *t)
        .map(|(b, _)| b)
        .unwrap_or(0)
}

/// One (x, y) series for a scatter-style figure.
#[derive(Debug, Serialize)]
pub struct Series {
    /// Workload label.
    pub workload: String,
    /// Point set.
    pub points: Vec<(f64, f64)>,
    /// Least-squares (a, b) if computable.
    pub fit: Option<(f64, f64)>,
}

/// The (benchmark, paper-size) pairs Figures 2–4 contrast: regular MM
/// against irregular SpMV.
fn regular_vs_irregular() -> Vec<(Benchmark, u64)> {
    vec![(Benchmark::Mm, 4096), (Benchmark::Spmv, 1024)]
}

/// Figure 2: execution time of the dominating basic block over its
/// execution index, plus the global variance the paper shows prior work
/// thresholds on.
pub fn fig2(opts: &ExecOptions) -> Vec<Series> {
    let computed = parallel_map(regular_vs_irregular(), opts.jobs, &|(bench, warps): (
        Benchmark,
        u64,
    )| {
        let warps = warps / size_scale().max(1);
        let (rec, _) = run_recorded(bench, warps);
        let bb = dominating_bb(&rec);
        let durations: Vec<f64> = rec
            .bb_records
            .iter()
            .filter(|r| r.bb.0 == bb)
            .map(|r| r.duration() as f64)
            .collect();
        (bench, bb, durations)
    });
    let mut out = Vec::new();
    for (bench, bb, durations) in computed {
        let n = durations.len() as f64;
        let mean = durations.iter().sum::<f64>() / n;
        let var = durations
            .iter()
            .map(|d| (d - mean) * (d - mean))
            .sum::<f64>()
            / n;
        println!(
            "{}: dominating bb{} executed {} times; mean {:.1}, global variance {:.2} (normalized {:.2})",
            bench.abbr(),
            bb,
            durations.len(),
            mean,
            var,
            var / (mean * mean),
        );
        let points = durations
            .iter()
            .enumerate()
            .step_by((durations.len() / 2000).max(1))
            .map(|(i, d)| (i as f64, *d))
            .collect();
        out.push(Series {
            workload: bench.abbr().to_string(),
            points,
            fit: None,
        });
    }
    write_json("fig2", &out);
    out
}

/// Figure 3: issue vs retired time of the dominating basic block with
/// its least-squares line (slope ≈ 1 once competition stabilizes).
pub fn fig3(opts: &ExecOptions) -> Vec<Series> {
    let computed = parallel_map(regular_vs_irregular(), opts.jobs, &|(bench, warps): (
        Benchmark,
        u64,
    )| {
        let warps = warps / size_scale().max(1);
        let (rec, _) = run_recorded(bench, warps);
        let bb = dominating_bb(&rec);
        let points: Vec<(f64, f64)> = rec
            .bb_records
            .iter()
            .filter(|r| r.bb.0 == bb)
            .map(|r| (r.start as f64, r.end as f64))
            .collect();
        (bench, bb, points)
    });
    let mut out = Vec::new();
    for (bench, bb, points) in computed {
        let fit = least_squares(&points);
        if let Some((a, b)) = fit {
            println!(
                "{}: bb{}: Retired = {:.2} * Issue + {:.2} over {} points",
                bench.abbr(),
                bb,
                a,
                b,
                points.len()
            );
        }
        let thinned = points
            .iter()
            .step_by((points.len() / 2000).max(1))
            .copied()
            .collect();
        out.push(Series {
            workload: bench.abbr().to_string(),
            points: thinned,
            fit,
        });
    }
    write_json("fig3", &out);
    out
}

/// Figure 4: warp issue vs retired time with least-squares fit — the
/// slope is near the stationary expectation for regular MM, far from it
/// for irregular SpMV.
pub fn fig4(opts: &ExecOptions) -> Vec<Series> {
    let computed = parallel_map(regular_vs_irregular(), opts.jobs, &|(bench, warps): (
        Benchmark,
        u64,
    )| {
        let warps = warps / size_scale().max(1);
        let (rec, _) = run_recorded(bench, warps);
        let points: Vec<(f64, f64)> = rec
            .warp_records
            .iter()
            .map(|r| (r.issue as f64, r.retire as f64))
            .collect();
        (bench, points)
    });
    let mut out = Vec::new();
    for (bench, points) in computed {
        let fit = least_squares(&points);
        if let Some((a, b)) = fit {
            println!(
                "{}: warps: Retired = {:.2} * Issue + {:.2} over {} warps",
                bench.abbr(),
                a,
                b,
                points.len()
            );
        }
        out.push(Series {
            workload: bench.abbr().to_string(),
            points,
            fit,
        });
    }
    write_json("fig4", &out);
    out
}

/// Figure 6: IPC of all VGG-16 conv/pool/dense kernels, clustered by
/// GPU BBV — kernels in the same cluster have similar IPC.
///
/// Inherently sequential: one recorded VGG-16 inference produces every
/// kernel record, so there is nothing to fan out.
pub fn fig6() -> Vec<(String, usize, f64)> {
    let cfg = r9_nano();
    let mut gpu = GpuSimulator::new(cfg.clone());
    let app = RealWorldApp::Vgg16.build(&mut gpu, DnnScale::default(), 3);
    // run fully detailed but under a Photon controller with no sampling
    // levels: it records each kernel's GPU BBV and measured IPC.
    let mut ph = PhotonController::new(scaled_photon_config(Levels::none()), cfg.num_cus as u64);
    app.run(&mut gpu, &mut ph).expect("vgg run");

    // greedy clustering by GPU-BBV distance
    let records = ph.history().records();
    let mut clusters: Vec<usize> = Vec::with_capacity(records.len());
    let mut reps: Vec<usize> = Vec::new();
    for (i, r) in records.iter().enumerate() {
        let found = reps
            .iter()
            .position(|&rep| records[rep].gpu_bbv.distance(&r.gpu_bbv) < 0.25);
        match found {
            Some(c) => clusters.push(c),
            None => {
                reps.push(i);
                clusters.push(reps.len() - 1);
            }
        }
    }
    let mut rows = Vec::new();
    let mut table = Table::new(&["kernel", "layer-kernel", "cluster", "IPC"]);
    for (i, (r, c)) in records.iter().zip(&clusters).enumerate() {
        table.row(vec![
            i.to_string(),
            r.name.clone(),
            c.to_string(),
            format!("{:.2}", r.ipc),
        ]);
        rows.push((r.name.clone(), *c, r.ipc));
    }
    println!("{}", table.render());

    // report intra-cluster vs global IPC spread
    let n_clusters = reps.len();
    let global_mean = rows.iter().map(|r| r.2).sum::<f64>() / rows.len() as f64;
    let global_var = rows
        .iter()
        .map(|r| (r.2 - global_mean).powi(2))
        .sum::<f64>()
        / rows.len() as f64;
    let mut intra_var = 0.0;
    for c in 0..n_clusters {
        let members: Vec<f64> = rows.iter().filter(|r| r.1 == c).map(|r| r.2).collect();
        let m = members.iter().sum::<f64>() / members.len() as f64;
        intra_var += members.iter().map(|x| (x - m).powi(2)).sum::<f64>();
    }
    intra_var /= rows.len() as f64;
    println!(
        "{} kernels in {} clusters; IPC variance global {:.3} vs intra-cluster {:.3}",
        rows.len(),
        n_clusters,
        global_var,
        intra_var
    );
    write_json("fig6", &rows);
    rows
}

fn distribution_figure(
    name: &str,
    opts: &ExecOptions,
    per_item: impl Fn(&OnlineAnalysis) -> Vec<(String, f64)> + Sync,
) -> Vec<(String, String, f64, f64)> {
    let pairs = vec![(Benchmark::Sc, 8192u64), (Benchmark::Spmv, 1024)];
    let computed = parallel_map(pairs, opts.jobs, &|(bench, warps): (Benchmark, u64)| {
        let warps = warps / size_scale().max(1);
        let cfg = r9_nano();
        let mut gpu = GpuSimulator::new(cfg);
        let app = bench.build(&mut gpu, warps, 7);
        let launch = &app.launches()[0].launch;
        let total = launch.total_warps();
        let bb_map = launch.kernel.program().basic_blocks();

        // all warps
        let all_traces: Vec<_> = (0..total)
            .map(|w| {
                gpu_sim::trace_warp_isolated(launch, gpu.mem(), w, 50_000_000)
                    .expect("figure kernels trace cleanly")
            })
            .collect();
        let all =
            OnlineAnalysis::from_traces(&all_traces, bb_map).expect("figure kernels have warps");
        // 1% sample
        let ids = photon::sample_warp_ids(total, 0.01, 8);
        let sample_traces: Vec<_> = ids
            .iter()
            .map(|&w| {
                gpu_sim::trace_warp_isolated(launch, gpu.mem(), w, 50_000_000)
                    .expect("figure kernels trace cleanly")
            })
            .collect();
        let sample =
            OnlineAnalysis::from_traces(&sample_traces, bb_map).expect("figure kernels have warps");
        (bench, per_item(&all), per_item(&sample))
    });
    let mut out = Vec::new();
    for (bench, a, s) in computed {
        println!("{} ({name}):", bench.abbr());
        let mut table = Table::new(&["item", "all warps", "1% sample"]);
        for (key, va) in &a {
            let vs = s
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| *v)
                .unwrap_or(0.0);
            table.row(vec![
                key.clone(),
                format!("{:.4}", va),
                format!("{:.4}", vs),
            ]);
            out.push((bench.abbr().to_string(), key.clone(), *va, vs));
        }
        println!("{}", table.render());
    }
    out
}

/// Figure 8: basic-block instruction-share distribution, all warps vs a
/// 1 % sample — the sample suffices for online analysis.
pub fn fig8(opts: &ExecOptions) -> Vec<(String, String, f64, f64)> {
    let rows = distribution_figure("basic blocks", opts, |a| {
        a.bb_inst_share
            .iter()
            .map(|(bb, share)| (format!("bb{}", bb.0), *share))
            .collect()
    });
    write_json("fig8", &rows);
    rows
}

/// Figure 11: warp-type distribution, all warps vs a 1 % sample —
/// regular applications have a dominant type, irregular ones do not.
pub fn fig11(opts: &ExecOptions) -> Vec<(String, String, f64, f64)> {
    let rows = distribution_figure("warp types", opts, |a| {
        let total: u64 = a.types.iter().map(|(_, n)| *n).sum();
        a.types
            .iter()
            .take(8)
            .enumerate()
            .map(|(i, (_, n))| (format!("type{}", i), *n as f64 / total as f64))
            .collect()
    });
    write_json("fig11", &rows);
    rows
}

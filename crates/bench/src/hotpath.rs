//! Wall-clock hot-path benchmark: host instructions per second through
//! the executor on the fig-spec smoke workloads.
//!
//! The figures measure *simulated* speedup (Photon vs. full-detailed
//! cycles); this module measures the *simulator's* own throughput — how
//! many instructions the host retires per wall-clock second — which is
//! what engine work (allocation removal, event-queue design, latency
//! tables) actually moves. Results are written to
//! `results/BENCH_hot.json` with their own schema (they are not
//! [`gpu_telemetry::RunReport`]s and are skipped by
//! [`crate::report::load_all_reports`]); `report check` and
//! `bench_hot --check` gate regressions against a committed baseline.

use crate::executor::{run_specs, ExecOptions};
use crate::harness::results_dir;
use crate::specs::{Method, RunSpec};
use crate::Table;
use gpu_sim::{EngineConfig, EngineMode, GpuConfig};
use gpu_workloads::dnn::DnnScale;
use gpu_workloads::registry::{Benchmark, RealWorldApp};
use photon::Levels;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Schema version of `BENCH_hot.json`. Bump on layout changes so stale
/// baselines are rejected instead of misread. Version 2 added the
/// timing-engine threads sweep (`@det1`/`@det4`/`@relaxed4` cells on
/// the VGG-16 grid).
pub const HOT_SCHEMA_VERSION: u32 = 2;

/// File name of the hot-path report under `results/`.
pub const HOT_REPORT_FILE: &str = "BENCH_hot.json";

/// Insts/sec drop (fraction of the baseline) tolerated before
/// [`compare_hot`] flags a regression. Wall-clock numbers are noisy;
/// 20% is well past run-to-run jitter with best-of-N iterations.
pub const HOT_REGRESSION_FRAC: f64 = 0.20;

/// Throughput of one (workload, method) cell, best over the iterations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HotMeasurement {
    /// Workload name (e.g. "FIR").
    pub workload: String,
    /// Method name (e.g. "Full", "Photon").
    pub method: String,
    /// Problem size in warps.
    pub warps: u64,
    /// Instructions simulated in detailed mode per run.
    pub detailed_insts: u64,
    /// Total instructions (detailed + functional) per run.
    pub total_insts: u64,
    /// Best (minimum) wall seconds over the iterations.
    pub wall_secs: f64,
    /// Best host throughput: `total_insts / wall_secs`.
    pub insts_per_sec: f64,
}

/// The `results/BENCH_hot.json` document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HotReport {
    /// Schema version ([`HOT_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Iterations each cell was measured (best-of).
    pub iterations: u32,
    /// Worker threads used.
    pub jobs: usize,
    /// One entry per grid cell.
    pub measurements: Vec<HotMeasurement>,
}

/// The DNN scale of the threads-sweep cells: small enough that the
/// sweep stays in CI budget, large enough that per-epoch work dwarfs
/// the barrier overhead being measured.
pub fn sweep_scale() -> DnnScale {
    DnnScale {
        input_hw: 32,
        channel_div: 32,
    }
}

/// The engine configurations of the threads sweep: serial, the
/// deterministic epoch engine at 1 and 4 workers, and the relaxed
/// engine at 4 workers.
pub fn engine_sweep() -> Vec<EngineConfig> {
    vec![
        EngineConfig::default(),
        EngineConfig {
            mode: EngineMode::Deterministic,
            threads: 1,
            quantum: 0,
        },
        EngineConfig {
            mode: EngineMode::Deterministic,
            threads: 4,
            quantum: 0,
        },
        EngineConfig {
            mode: EngineMode::Relaxed,
            threads: 4,
            quantum: 0,
        },
    ]
}

/// Renders an engine configuration as the cell-name suffix: serial
/// keeps the legacy bare method name, the epoch engines append
/// `@det<threads>` / `@relaxed<threads>`.
pub fn engine_tag(engine: &EngineConfig) -> String {
    match engine.mode {
        EngineMode::Serial => String::new(),
        EngineMode::Deterministic => format!("@det{}", engine.threads),
        EngineMode::Relaxed => format!("@relaxed{}", engine.threads),
    }
}

/// The fixed hot-path grid: the smoke FIR under full-detailed and full
/// Photon (matching [`crate::specs::smoke_grid`] so the detailed-mode
/// row is the workload the acceptance criterion tracks), plus the
/// timing-engine threads sweep — full-detailed VGG-16 under every
/// [`engine_sweep`] configuration.
pub fn hot_grid() -> Vec<RunSpec> {
    let gpu = GpuConfig::r9_nano().with_num_cus(4);
    let mut grid = vec![
        RunSpec::bench(gpu.clone(), Benchmark::Fir, 2048, Method::Full),
        RunSpec::bench(
            gpu.clone(),
            Benchmark::Fir,
            2048,
            Method::Photon(Levels::all()),
        ),
    ];
    for engine in engine_sweep() {
        let mut g = gpu.clone();
        g.engine = engine;
        grid.push(RunSpec::real_world(
            g,
            RealWorldApp::Vgg16,
            sweep_scale(),
            Method::Full,
        ));
    }
    grid
}

/// Measures the hot-path grid `iterations` times through the executor
/// and keeps the best throughput per cell. The reference cache is
/// force-disabled: a cached `Full` run would report a stale wall time
/// and a bogus throughput.
///
/// # Errors
/// Returns a rendered message if any run is skipped (a hot-path
/// benchmark with holes would silently gate on the wrong numbers).
pub fn run_hot(opts: &ExecOptions, iterations: u32) -> Result<HotReport, String> {
    let mut opts = opts.clone();
    opts.cache = false;
    let grid = hot_grid();
    let mut best: Vec<Option<HotMeasurement>> = vec![None; grid.len()];
    for _ in 0..iterations.max(1) {
        let report = run_specs(&grid, &opts);
        for (i, r) in report.results.iter().enumerate() {
            let m = match r.outcome.measurement() {
                Some(m) => m,
                None => return Err(format!("hot-path run skipped: {}", r.spec.label())),
            };
            let total = m.detailed_insts + m.functional_insts;
            let ips = total as f64 / m.wall_secs.max(1e-9);
            let better = best[i].as_ref().is_none_or(|b| ips > b.insts_per_sec);
            if better {
                best[i] = Some(HotMeasurement {
                    workload: m.workload.clone(),
                    method: format!("{}{}", m.method, engine_tag(&grid[i].gpu.engine)),
                    warps: m.warps,
                    detailed_insts: m.detailed_insts,
                    total_insts: total,
                    wall_secs: m.wall_secs,
                    insts_per_sec: ips,
                });
            }
        }
    }
    Ok(HotReport {
        schema_version: HOT_SCHEMA_VERSION,
        iterations: iterations.max(1),
        jobs: opts.jobs.max(1),
        measurements: best.into_iter().flatten().collect(),
    })
}

/// The canonical path: `results/BENCH_hot.json`.
pub fn hot_report_path() -> PathBuf {
    results_dir().join(HOT_REPORT_FILE)
}

/// The committed baseline: `results/baselines/BENCH_hot.json`. Loose
/// `results/*.json` files are gitignored, so this is the copy that
/// survives a fresh checkout and that `--check` / `report check` gate
/// against.
pub fn hot_baseline_path() -> PathBuf {
    results_dir().join("baselines").join(HOT_REPORT_FILE)
}

/// Writes a hot report to a path.
///
/// # Errors
/// Returns a rendered I/O or serialization error.
pub fn write_hot_report(report: &HotReport, path: &Path) -> Result<(), String> {
    let text = serde_json::to_string_pretty(report).map_err(|e| e.to_string())?;
    crate::persist::atomic_write_framed(path, &text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Reads a hot report back, rejecting schema mismatches. The checksum
/// footer is verified when present; the committed baseline predates the
/// framing and loads unverified.
///
/// # Errors
/// Returns a rendered I/O, checksum, parse, or schema-version error.
pub fn load_hot_report(path: &Path) -> Result<HotReport, String> {
    let framed = crate::persist::read_framed(path)?;
    let report: HotReport =
        serde_json::from_str(&framed.payload).map_err(|e| format!("{}: {e}", path.display()))?;
    if report.schema_version != HOT_SCHEMA_VERSION {
        return Err(format!(
            "{}: hot schema version {} (tool expects {HOT_SCHEMA_VERSION})",
            path.display(),
            report.schema_version
        ));
    }
    Ok(report)
}

/// Compares a current hot report against a baseline: every baseline
/// cell must still exist, and every *serial* cell must retain at least
/// `1 - tolerance` of its insts/sec. Engine-sweep cells (`@`-tagged
/// methods) are exempt from the throughput floor — their wall time is
/// dominated by per-epoch thread spawn/join, which jitters far past the
/// tolerance on contended hosts; [`check_engine_scaling`] gates them on
/// the det4-vs-serial *ratio* instead, which cancels host noise.
/// Returns one rendered message per regression.
pub fn compare_hot(base: &HotReport, cur: &HotReport, tolerance: f64) -> Vec<String> {
    let mut out = Vec::new();
    for b in &base.measurements {
        let Some(c) = cur
            .measurements
            .iter()
            .find(|c| c.workload == b.workload && c.method == b.method)
        else {
            out.push(format!(
                "{} / {}: present in baseline, missing from current hot report",
                b.workload, b.method
            ));
            continue;
        };
        if b.method.contains('@') {
            continue;
        }
        let floor = b.insts_per_sec * (1.0 - tolerance);
        if c.insts_per_sec < floor {
            out.push(format!(
                "{} / {}: insts/sec fell {:.2}M -> {:.2}M (floor {:.2}M at {:.0}% tolerance)",
                b.workload,
                b.method,
                b.insts_per_sec / 1e6,
                c.insts_per_sec / 1e6,
                floor / 1e6,
                tolerance * 100.0
            ));
        }
    }
    out
}

/// Minimum `Full@det4` / `Full` throughput ratio on the VGG-16 sweep
/// cells demanded by [`check_engine_scaling`] on machines with at
/// least four hardware threads.
pub const ENGINE_SPEEDUP_FLOOR: f64 = 2.0;

/// Gates the deterministic engine's parallel scaling: at 4 worker
/// threads the VGG-16 cell must reach at least
/// [`ENGINE_SPEEDUP_FLOOR`]× the serial cell's Minsts/s. On hosts
/// without 4 hardware threads the gate cannot be meaningful (the
/// workers just time-slice one core), so it returns the skip notice in
/// `Ok` instead of failing.
///
/// # Errors
/// Returns a rendered message when the sweep cells are missing or the
/// speedup is below the floor.
pub fn check_engine_scaling(report: &HotReport) -> Result<String, String> {
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    if host_threads < 4 {
        return Ok(format!(
            "engine-scaling gate skipped: host has {host_threads} hardware thread(s), \
             the 4-thread sweep needs 4"
        ));
    }
    let cell = |method: &str| {
        report
            .measurements
            .iter()
            .find(|m| m.workload == "VGG-16" && m.method == method)
            .ok_or_else(|| format!("engine-scaling gate: no VGG-16/{method} cell in hot report"))
    };
    let serial = cell("Full")?;
    let det4 = cell("Full@det4")?;
    let ratio = det4.insts_per_sec / serial.insts_per_sec.max(1e-9);
    if ratio < ENGINE_SPEEDUP_FLOOR {
        return Err(format!(
            "engine-scaling gate: Full@det4 is {ratio:.2}x serial on VGG-16 \
             (floor {ENGINE_SPEEDUP_FLOOR:.1}x): {:.2}M vs {:.2}M insts/sec",
            det4.insts_per_sec / 1e6,
            serial.insts_per_sec / 1e6
        ));
    }
    Ok(format!(
        "engine-scaling gate: Full@det4 is {ratio:.2}x serial on VGG-16 (floor {:.1}x)",
        ENGINE_SPEEDUP_FLOOR
    ))
}

/// Renders a hot report as an aligned table.
pub fn hot_table(report: &HotReport) -> Table {
    let mut t = Table::new(&[
        "workload", "method", "warps", "insts", "wall (s)", "Minsts/s",
    ]);
    for m in &report.measurements {
        t.row(vec![
            m.workload.clone(),
            m.method.clone(),
            m.warps.to_string(),
            m.total_insts.to_string(),
            format!("{:.3}", m.wall_secs),
            format!("{:.2}", m.insts_per_sec / 1e6),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hot(ips: f64) -> HotReport {
        HotReport {
            schema_version: HOT_SCHEMA_VERSION,
            iterations: 1,
            jobs: 1,
            measurements: vec![HotMeasurement {
                workload: "FIR".into(),
                method: "Full".into(),
                warps: 2048,
                detailed_insts: 1000,
                total_insts: 1000,
                wall_secs: 1.0,
                insts_per_sec: ips,
            }],
        }
    }

    #[test]
    fn compare_flags_regressions_and_missing_cells() {
        let base = hot(10e6);
        // Above the floor: fine.
        assert!(compare_hot(&base, &hot(8.5e6), HOT_REGRESSION_FRAC).is_empty());
        // Below the floor: flagged.
        let regs = compare_hot(&base, &hot(7.0e6), HOT_REGRESSION_FRAC);
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert!(regs[0].contains("insts/sec fell"));
        // Missing cell: flagged.
        let mut empty = hot(1.0);
        empty.measurements.clear();
        let regs = compare_hot(&base, &empty, HOT_REGRESSION_FRAC);
        assert_eq!(regs.len(), 1);
        assert!(regs[0].contains("missing"));
    }

    #[test]
    fn compare_exempts_engine_sweep_cells_from_throughput_floor() {
        let sweep = |ips: f64| {
            let mut r = hot(ips);
            r.measurements[0].method = "Full@det4".into();
            r
        };
        // A sweep cell that got 10x slower is not a throughput
        // regression — check_engine_scaling owns those cells.
        assert!(compare_hot(&sweep(10e6), &sweep(1e6), HOT_REGRESSION_FRAC).is_empty());
        // But a sweep cell vanishing from the grid is still flagged.
        let mut gone = sweep(1.0);
        gone.measurements.clear();
        let regs = compare_hot(&sweep(10e6), &gone, HOT_REGRESSION_FRAC);
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert!(regs[0].contains("missing"));
    }

    #[test]
    fn roundtrip_and_schema_gate() {
        let dir = std::env::temp_dir().join(format!("hot-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(HOT_REPORT_FILE);
        let report = hot(5e6);
        write_hot_report(&report, &path).unwrap();
        assert_eq!(load_hot_report(&path).unwrap(), report);

        let mut stale = report;
        stale.schema_version = HOT_SCHEMA_VERSION + 1;
        write_hot_report(&stale, &path).unwrap();
        let err = load_hot_report(&path).unwrap_err();
        assert!(err.contains("schema version"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn grid_covers_detailed_photon_and_engine_sweep() {
        let grid = hot_grid();
        assert_eq!(grid.len(), 2 + engine_sweep().len());
        assert_eq!(grid[0].method, Method::Full);
        assert!(matches!(grid[1].method, Method::Photon(_)));
        // Same workload cell as the smoke grid, so the detailed-mode
        // acceptance row tracks the CI smoke workload.
        let smoke = crate::specs::smoke_grid();
        assert_eq!(grid[0].workload, smoke[0].workload);
        // The sweep cells are all full-detailed VGG-16 and differ only
        // in the engine configuration, so their throughput ratios
        // isolate the engine.
        let tags: Vec<String> = grid[2..]
            .iter()
            .map(|s| {
                assert_eq!(s.method, Method::Full);
                assert_eq!(s.workload.name(), "VGG-16");
                engine_tag(&s.gpu.engine)
            })
            .collect();
        assert_eq!(tags, ["", "@det1", "@det4", "@relaxed4"]);
    }

    #[test]
    fn engine_scaling_gate_reads_sweep_cells() {
        let mk = |method: &str, ips: f64| HotMeasurement {
            workload: "VGG-16".into(),
            method: method.into(),
            warps: 0,
            detailed_insts: 1000,
            total_insts: 1000,
            wall_secs: 1.0,
            insts_per_sec: ips,
        };
        let mut report = hot(10e6);
        report.measurements.push(mk("Full", 1e6));
        report.measurements.push(mk("Full@det4", 2.5e6));
        let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        let msg = check_engine_scaling(&report).expect("above the floor");
        if host_threads < 4 {
            assert!(msg.contains("skipped"), "{msg}");
            return; // The remaining assertions need the gate armed.
        }
        assert!(msg.contains("2.50x"), "{msg}");
        // Below the floor: fails.
        report.measurements.last_mut().unwrap().insts_per_sec = 1.5e6;
        let err = check_engine_scaling(&report).unwrap_err();
        assert!(err.contains("floor"), "{err}");
        // Missing cell: fails.
        report.measurements.pop();
        assert!(check_engine_scaling(&report).is_err());
    }
}

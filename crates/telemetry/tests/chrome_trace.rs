//! Trace Event Format conformance for the Chrome-trace exporter:
//! round-trips a trace containing duration events, instant events, and
//! the cycle-accounting counter tracks through `serde_json` and asserts
//! the `ph`/`pid`/`tid`/`args` fields match what the format (and the
//! Perfetto / `chrome://tracing` viewers) expect.

use gpu_telemetry::export::chrome_trace_json;
use gpu_telemetry::{EventKind, SampleMode, TraceEvent, TraceLog, SCHEMA_VERSION};
use serde_json::Value;

fn get<'a>(v: &'a Value, key: &str) -> &'a Value {
    v.get(key)
        .unwrap_or_else(|| panic!("missing field `{key}` in {v:?}"))
}

fn get_u64(v: &Value, key: &str) -> u64 {
    match get(v, key) {
        Value::U64(n) => *n,
        Value::I64(n) => *n as u64,
        other => panic!("field `{key}` is not an integer: {other:?}"),
    }
}

fn get_str<'a>(v: &'a Value, key: &str) -> &'a str {
    match get(v, key) {
        Value::String(s) => s.as_str(),
        other => panic!("field `{key}` is not a string: {other:?}"),
    }
}

fn log_with_counters() -> TraceLog {
    TraceLog {
        events: vec![
            TraceEvent {
                ts: 0,
                dur: 120,
                kind: EventKind::KernelEnd {
                    kernel: "fir".to_string(),
                    seq: 0,
                    cycles: 120,
                    detailed_insts: 640,
                    functional_insts: 0,
                    skipped: false,
                },
            },
            TraceEvent {
                ts: 3,
                dur: 0,
                kind: EventKind::WgDispatch {
                    wg: 0,
                    cu: 2,
                    mode: SampleMode::Detailed,
                },
            },
            TraceEvent {
                ts: 64,
                dur: 0,
                kind: EventKind::StallSample {
                    issued: 100,
                    dep_scoreboard: 40,
                    mem_pending: 200,
                    mem_queue_full: 12,
                    barrier: 0,
                    lds_conflict: 4,
                    no_warp_ready: 60,
                    drained: 8,
                },
            },
            TraceEvent {
                ts: 64,
                dur: 0,
                kind: EventKind::OccupancySample { resident_warps: 6 },
            },
        ],
        dropped: 0,
    }
}

/// Parses the exporter's output and returns the traceEvents array.
fn exported_events() -> Vec<Value> {
    let text = chrome_trace_json(&log_with_counters());
    let doc: Value = serde_json::from_str(&text).expect("exporter must emit valid JSON");
    match get(&doc, "traceEvents") {
        Value::Array(events) => events.clone(),
        other => panic!("traceEvents is not an array: {other:?}"),
    }
}

#[test]
fn duration_event_has_x_phase_with_dur() {
    let events = exported_events();
    let kernel = &events[0];
    assert_eq!(get_str(kernel, "name"), "kernel");
    assert_eq!(get_str(kernel, "ph"), "X");
    assert_eq!(get_u64(kernel, "ts"), 0);
    assert_eq!(get_u64(kernel, "dur"), 120);
    assert_eq!(get_u64(kernel, "pid"), 1);
    assert_eq!(get_u64(kernel, "tid"), 0);
    let args = get(kernel, "args");
    assert_eq!(get_u64(args, "cycles"), 120);
    assert_eq!(get_str(args, "kernel"), "fir");
}

#[test]
fn instant_event_has_i_phase_with_scope() {
    let events = exported_events();
    let wg = &events[1];
    assert_eq!(get_str(wg, "name"), "wg_dispatch");
    assert_eq!(get_str(wg, "ph"), "i");
    assert_eq!(get_str(wg, "s"), "t");
    assert!(wg.get("dur").is_none(), "instant events carry no dur");
    assert_eq!(get_u64(wg, "pid"), 1);
    assert_eq!(get_u64(wg, "tid"), 1);
    assert_eq!(get_u64(get(wg, "args"), "cu"), 2);
}

#[test]
fn counter_events_have_c_phase_and_per_series_args() {
    let events = exported_events();
    let stall = &events[2];
    assert_eq!(get_str(stall, "name"), "stall_mix");
    assert_eq!(get_str(stall, "ph"), "C");
    assert_eq!(get_u64(stall, "ts"), 64);
    assert_eq!(get_u64(stall, "pid"), 1);
    assert_eq!(get_u64(stall, "tid"), 7);
    // Counters must not carry a duration or an instant scope.
    assert!(stall.get("dur").is_none());
    assert!(stall.get("s").is_none());
    // One args entry per stall class, values as recorded.
    let args = get(stall, "args");
    let expected = [
        ("issued", 100),
        ("dep_scoreboard", 40),
        ("mem_pending", 200),
        ("mem_queue_full", 12),
        ("barrier", 0),
        ("lds_conflict", 4),
        ("no_warp_ready", 60),
        ("drained", 8),
    ];
    for (name, value) in expected {
        assert_eq!(get_u64(args, name), value, "series {name}");
    }

    let occ = &events[3];
    assert_eq!(get_str(occ, "name"), "occupancy");
    assert_eq!(get_str(occ, "ph"), "C");
    assert_eq!(get_u64(occ, "tid"), 7);
    assert_eq!(get_u64(get(occ, "args"), "resident_warps"), 6);
}

#[test]
fn document_metadata_carries_schema_version() {
    let text = chrome_trace_json(&log_with_counters());
    let doc: Value = serde_json::from_str(&text).unwrap();
    let other = get(&doc, "otherData");
    assert_eq!(get_u64(other, "schema_version"), u64::from(SCHEMA_VERSION));
    assert_eq!(get_u64(other, "dropped_events"), 0);
}

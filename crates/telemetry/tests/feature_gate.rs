//! Proves the `enabled` feature gate: with it off the `Trace` handle is
//! a zero-sized no-op whose `emit_with` closure is never invoked; with
//! it on, clones share one ring buffer with drop-oldest overflow.

use gpu_telemetry::{tracing_compiled, EventKind, Telemetry, Trace, TraceEvent};

fn ev(ts: u64) -> TraceEvent {
    TraceEvent {
        ts,
        dur: 0,
        kind: EventKind::DramAccess { channel: 0 },
    }
}

#[cfg(not(feature = "enabled"))]
#[test]
fn trace_is_a_zero_sized_noop_when_feature_off() {
    assert!(!tracing_compiled());
    // The handle occupies no space, so carrying it through every
    // subsystem is free.
    assert_eq!(std::mem::size_of::<Trace>(), 0);

    let tel = Telemetry::default();
    tel.enable_tracing(1024);
    assert!(!tel.tracing_active());

    // The emit_with closure must never run: event construction is
    // compiled out of hot paths, not just discarded.
    let mut built = false;
    tel.trace().emit_with(|| {
        built = true;
        ev(1)
    });
    assert!(!built);

    tel.trace().emit(ev(2));
    let log = tel.take_events();
    assert!(log.events.is_empty());
    assert_eq!(log.dropped, 0);
}

#[cfg(feature = "enabled")]
#[test]
fn trace_records_through_shared_clones_when_feature_on() {
    assert!(tracing_compiled());

    let tel = Telemetry::default();
    let clone = tel.clone();

    // Before attach: inactive, events discarded.
    tel.trace().emit(ev(0));
    assert!(!tel.tracing_active());

    // Attaching through one handle activates every clone.
    tel.enable_tracing(4);
    assert!(clone.tracing_active());
    for i in 1..=6u64 {
        clone.trace().emit_with(|| ev(i));
    }

    // Ring of 4: the two oldest of the six were overwritten.
    let log = tel.take_events();
    assert_eq!(log.dropped, 2);
    let ts: Vec<u64> = log.events.iter().map(|e| e.ts).collect();
    assert_eq!(ts, vec![3, 4, 5, 6]);

    // take() drains but leaves the ring attached.
    assert!(tel.tracing_active());
    assert!(tel.take_events().events.is_empty());
}

//! Golden-file tests for the exporters: a fixed trace must render to
//! byte-identical Chrome-trace JSON and JSONL across runs and
//! platforms. Regenerate the goldens with `UPDATE_GOLDEN=1 cargo test
//! -p gpu-telemetry` after an intentional schema change (and bump
//! `SCHEMA_VERSION`).

use gpu_telemetry::export::{chrome_trace_json, jsonl};
use gpu_telemetry::{AbortKind, CacheLevel, EventKind, SampleMode, TraceEvent, TraceLog};
use std::path::Path;

fn fixed_log() -> TraceLog {
    let events = vec![
        TraceEvent {
            ts: 0,
            dur: 0,
            kind: EventKind::KernelBegin {
                kernel: "fir".to_string(),
                seq: 0,
                total_warps: 8,
            },
        },
        TraceEvent {
            ts: 0,
            dur: 0,
            kind: EventKind::WgDispatch {
                wg: 0,
                cu: 1,
                mode: SampleMode::Detailed,
            },
        },
        TraceEvent {
            ts: 4,
            dur: 0,
            kind: EventKind::CacheAccess {
                level: CacheLevel::L1V,
                hit: false,
                evicted: false,
            },
        },
        TraceEvent {
            ts: 4,
            dur: 0,
            kind: EventKind::DramAccess { channel: 2 },
        },
        TraceEvent {
            ts: 10,
            dur: 6,
            kind: EventKind::BbInterval {
                warp: 3,
                bb: 1,
                insts: 5,
            },
        },
        TraceEvent {
            ts: 12,
            dur: 0,
            kind: EventKind::BarrierWait {
                wg: 0,
                warp: 3,
                arrived: 1,
                expected: 2,
            },
        },
        TraceEvent {
            ts: 14,
            dur: 0,
            kind: EventKind::BarrierRelease { wg: 0, released: 2 },
        },
        TraceEvent {
            ts: 16,
            dur: 0,
            kind: EventKind::IpcWindow {
                insts: 40,
                window: 16,
            },
        },
        TraceEvent {
            ts: 2,
            dur: 18,
            kind: EventKind::WarpRetire {
                warp: 3,
                cu: 1,
                insts: 20,
            },
        },
        TraceEvent {
            ts: 20,
            dur: 0,
            kind: EventKind::ControllerDecision {
                controller: "photon".to_string(),
                decision: "switch-bb".to_string(),
                detail: "bb latencies converged".to_string(),
            },
        },
        TraceEvent {
            ts: 25,
            dur: 0,
            kind: EventKind::WatchdogAbort {
                kind: AbortKind::FuelExhausted,
                stuck_warps: 2,
                detail: "fuel 1000 exhausted; warp 3 @pc 16".to_string(),
            },
        },
        TraceEvent {
            ts: 0,
            dur: 30,
            kind: EventKind::KernelEnd {
                kernel: "fir".to_string(),
                seq: 0,
                cycles: 30,
                detailed_insts: 160,
                functional_insts: 40,
                skipped: false,
            },
        },
        TraceEvent {
            ts: 16,
            dur: 0,
            kind: EventKind::StallSample {
                issued: 40,
                dep_scoreboard: 12,
                mem_pending: 30,
                mem_queue_full: 6,
                barrier: 8,
                lds_conflict: 2,
                no_warp_ready: 20,
                drained: 10,
            },
        },
        TraceEvent {
            ts: 16,
            dur: 0,
            kind: EventKind::OccupancySample { resident_warps: 8 },
        },
    ];
    TraceLog { events, dropped: 3 }
}

fn check_golden(name: &str, actual: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).unwrap();
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {} ({e}); run with UPDATE_GOLDEN=1", name));
    assert_eq!(
        actual, expected,
        "{name} drifted from its golden; if intentional, bump SCHEMA_VERSION and regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn chrome_trace_matches_golden() {
    check_golden("trace.chrome.json", &chrome_trace_json(&fixed_log()));
}

#[test]
fn jsonl_matches_golden() {
    check_golden("trace.jsonl", &jsonl(&fixed_log()));
}

#[test]
fn chrome_golden_is_valid_json_with_all_event_kinds() {
    let out = chrome_trace_json(&fixed_log());
    let v: serde_json::Value = serde_json::from_str(&out).unwrap();
    let serde_json::Value::Object(fields) = v else {
        panic!("not an object");
    };
    let Some((_, serde_json::Value::Array(events))) =
        fields.iter().find(|(k, _)| k == "traceEvents")
    else {
        panic!("no traceEvents array");
    };
    assert_eq!(events.len(), fixed_log().events.len());
    for name in [
        "kernel_begin",
        "wg_dispatch",
        "cache_access",
        "dram_access",
        "bb",
        "barrier_wait",
        "barrier_release",
        "ipc_window",
        "warp",
        "controller_decision",
        "watchdog_abort",
        "kernel",
        "stall_mix",
        "occupancy",
    ] {
        assert!(
            out.contains(&format!("\"name\": \"{name}\"")),
            "{name} missing"
        );
    }
}

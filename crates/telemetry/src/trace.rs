//! Structured event tracing: a bounded ring buffer of typed
//! [`TraceEvent`]s and the feature-gated [`Trace`] handle instrumented
//! code emits through.
//!
//! Event timestamps are **simulated cycles** (not host time), so a
//! trace lines up with the timing model's view of the run. With the
//! `enabled` cargo feature off, [`Trace`] is a zero-sized type whose
//! methods are empty `#[inline]` bodies — instrumentation compiles to
//! nothing.

use serde::{Deserialize, Serialize};

/// Version stamped into exported traces and reports; bump on any
/// incompatible change to the event vocabulary or report schema.
/// Version 2 added the cycle-accounting counter tracks
/// ([`EventKind::StallSample`], [`EventKind::OccupancySample`]).
pub const SCHEMA_VERSION: u32 = 2;

/// Execution mode a workgroup was dispatched in (mirror of the
/// simulator's `WgMode`, kept here so `gpu-telemetry` stays at the
/// bottom of the dependency graph).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SampleMode {
    /// Full detailed timing.
    Detailed,
    /// Functional execution with per-warp predicted durations.
    BbSampled,
    /// Scheduler-only with predicted durations.
    WarpSampled,
}

/// Which cache level an access event refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CacheLevel {
    /// Per-CU vector L1.
    L1V,
    /// Shared scalar cache.
    L1S,
    /// Banked L2.
    L2,
}

/// Which watchdog condition aborted a launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AbortKind {
    /// No forward progress was possible (barrier deadlock or stall).
    Deadlock,
    /// The launch exceeded its cycle-fuel budget.
    FuelExhausted,
}

/// The event vocabulary (see DESIGN.md "Observability" for semantics).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// A kernel entered the engine. `seq` is the per-simulator launch
    /// index.
    KernelBegin {
        /// Kernel name.
        kernel: String,
        /// Launch index on this simulator.
        seq: u64,
        /// Warps in the launch.
        total_warps: u64,
    },
    /// A kernel finished (any mode). Emitted as a span covering the
    /// kernel's simulated duration.
    KernelEnd {
        /// Kernel name.
        kernel: String,
        /// Launch index on this simulator.
        seq: u64,
        /// Simulated cycles charged.
        cycles: u64,
        /// Instructions executed in detailed mode.
        detailed_insts: u64,
        /// Instructions executed functionally only.
        functional_insts: u64,
        /// Whether kernel-sampling skipped the kernel outright.
        skipped: bool,
    },
    /// A workgroup was dispatched to a CU in the given mode (the
    /// controller's per-workgroup decision).
    WgDispatch {
        /// Flat workgroup id.
        wg: u32,
        /// Compute unit it landed on.
        cu: u32,
        /// Mode the controller chose.
        mode: SampleMode,
    },
    /// A detailed warp retired. The event's `dur` spans issue→retire.
    WarpRetire {
        /// Global warp id.
        warp: u64,
        /// Compute unit it ran on.
        cu: u32,
        /// Dynamic instructions executed.
        insts: u64,
    },
    /// A basic-block instance of a detailed warp completed. The event's
    /// `dur` is the paper's block execution interval.
    BbInterval {
        /// Global warp id.
        warp: u64,
        /// Basic block index.
        bb: u32,
        /// Instructions in this instance.
        insts: u32,
    },
    /// A line transaction was looked up in a cache.
    CacheAccess {
        /// Which level.
        level: CacheLevel,
        /// Whether the tag array hit.
        hit: bool,
        /// Whether a valid line was evicted to make room (miss only).
        evicted: bool,
    },
    /// A line was fetched from DRAM.
    DramAccess {
        /// DRAM channel serving the fetch.
        channel: u32,
    },
    /// A warp arrived at a workgroup barrier and parked.
    BarrierWait {
        /// Flat workgroup id.
        wg: u32,
        /// Global warp id.
        warp: u64,
        /// Warps arrived so far (including this one).
        arrived: u32,
        /// Warps the barrier waits for.
        expected: u32,
    },
    /// A workgroup barrier released all its warps.
    BarrierRelease {
        /// Flat workgroup id.
        wg: u32,
        /// Warps released.
        released: u32,
    },
    /// One IPC window elapsed (detailed instructions issued in it).
    IpcWindow {
        /// Instructions issued in the window.
        insts: u64,
        /// Window width in cycles.
        window: u64,
    },
    /// The watchdog aborted the launch; `detail` is the rendered
    /// stuck-warp snapshot, so an exported trace alone explains the
    /// abort.
    WatchdogAbort {
        /// Which condition fired.
        kind: AbortKind,
        /// Warps still resident at the abort.
        stuck_warps: u64,
        /// Rendered [`WatchdogSnapshot`](https://docs.rs) text.
        detail: String,
    },
    /// A sampling controller made a policy decision (kernel skip, mode
    /// switch, abort, fallback).
    ControllerDecision {
        /// Controller name (`photon`, `pka`, `tbpoint`, `sieve`).
        controller: String,
        /// Short decision tag (`kernel-skip`, `switch-bb`, ...).
        decision: String,
        /// Human-readable detail.
        detail: String,
    },
    /// Cycle-accounting counter sample: warp-cycles per stall class in
    /// one timeline window, summed over CUs. Exported as a Chrome-trace
    /// counter track (`"ph":"C"`) so the stall mix renders as a stacked
    /// graph. Field order matches `StallClass` discriminant order.
    StallSample {
        /// Warp-cycles spent issuing.
        issued: u64,
        /// Warp-cycles waiting on ALU/branch results.
        dep_scoreboard: u64,
        /// Warp-cycles waiting on outstanding memory accesses.
        mem_pending: u64,
        /// Warp-cycles queued behind busy memory resources.
        mem_queue_full: u64,
        /// Warp-cycles parked at workgroup barriers.
        barrier: u64,
        /// Warp-cycles waiting on LDS latency.
        lds_conflict: u64,
        /// Warp-cycles ready but not selected for issue.
        no_warp_ready: u64,
        /// Warp-cycles resident after retirement (workgroup draining).
        drained: u64,
    },
    /// Cycle-accounting counter sample: mean resident warps across one
    /// timeline window (active-warp occupancy), rounded to the nearest
    /// warp. Exported as a Chrome-trace counter track.
    OccupancySample {
        /// Mean resident warps in the window.
        resident_warps: u64,
    },
    /// One epoch of the sharded timing engine completed its barrier.
    /// The event's `ts` is the epoch start and `dur` its quantum.
    EpochBarrier {
        /// Epoch ordinal within the kernel launch.
        epoch: u64,
        /// Shards that processed at least one event this epoch.
        busy_shards: u32,
        /// Memory requests drained across the port boundary.
        requests: u32,
    },
}

impl EventKind {
    /// Short display name (used as the Chrome-trace event name).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::KernelBegin { .. } => "kernel_begin",
            EventKind::KernelEnd { .. } => "kernel",
            EventKind::WgDispatch { .. } => "wg_dispatch",
            EventKind::WarpRetire { .. } => "warp",
            EventKind::BbInterval { .. } => "bb",
            EventKind::CacheAccess { .. } => "cache_access",
            EventKind::DramAccess { .. } => "dram_access",
            EventKind::BarrierWait { .. } => "barrier_wait",
            EventKind::BarrierRelease { .. } => "barrier_release",
            EventKind::IpcWindow { .. } => "ipc_window",
            EventKind::WatchdogAbort { .. } => "watchdog_abort",
            EventKind::ControllerDecision { .. } => "controller_decision",
            EventKind::StallSample { .. } => "stall_mix",
            EventKind::OccupancySample { .. } => "occupancy",
            EventKind::EpochBarrier { .. } => "epoch_barrier",
        }
    }

    /// Whether this event exports as a Chrome-trace counter track
    /// (`"ph":"C"`) rather than a duration/instant event.
    pub fn is_counter(&self) -> bool {
        matches!(
            self,
            EventKind::StallSample { .. } | EventKind::OccupancySample { .. }
        )
    }
}

/// One trace event: a timestamp (simulated cycle), an optional duration
/// (0 = instantaneous), and the typed payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Start cycle.
    pub ts: u64,
    /// Duration in cycles (0 for instant events).
    pub dur: u64,
    /// Typed payload.
    pub kind: EventKind,
}

/// A bounded ring buffer of trace events. When full, the **oldest**
/// event is overwritten (ring semantics), so a trace always holds the
/// most recent window of activity; `dropped` counts the overwritten
/// events.
#[derive(Debug)]
pub struct Tracer {
    capacity: usize,
    buf: Vec<TraceEvent>,
    head: usize,
    dropped: u64,
}

impl Tracer {
    /// Creates a tracer holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Tracer {
            capacity,
            buf: Vec::new(),
            head: 0,
            dropped: 0,
        }
    }

    /// Appends an event, overwriting the oldest when full.
    pub fn record(&mut self, ev: TraceEvent) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no events are held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events overwritten (or rejected by a zero-capacity tracer).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The held events in record order (oldest first).
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }
}

/// The events (and overflow count) drained from a [`Trace`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceLog {
    /// Events in record order (oldest first).
    pub events: Vec<TraceEvent>,
    /// Events lost to ring overflow before the drain.
    pub dropped: u64,
}

#[cfg(feature = "enabled")]
mod handle {
    use super::{TraceEvent, TraceLog, Tracer};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Mutex};

    #[derive(Debug, Default)]
    struct Shared {
        active: AtomicBool,
        tracer: Mutex<Option<Tracer>>,
    }

    /// The handle instrumented code emits events through. Clones share
    /// one ring buffer; until [`Trace::attach`] is called every emit is
    /// a cheap branch on a relaxed atomic.
    #[derive(Debug, Clone, Default)]
    pub struct Trace {
        shared: Arc<Shared>,
    }

    impl Trace {
        fn lock(&self) -> std::sync::MutexGuard<'_, Option<Tracer>> {
            self.shared.tracer.lock().unwrap_or_else(|e| e.into_inner())
        }

        /// Attaches a ring buffer of `capacity` events; all clones of
        /// this handle start recording.
        pub fn attach(&self, capacity: usize) {
            *self.lock() = Some(Tracer::new(capacity));
            self.shared.active.store(true, Ordering::Release);
        }

        /// Whether a ring buffer is attached and recording.
        #[inline]
        pub fn is_active(&self) -> bool {
            self.shared.active.load(Ordering::Relaxed)
        }

        /// Records an event (no-op until attached).
        #[inline]
        pub fn emit(&self, ev: TraceEvent) {
            if self.is_active() {
                if let Some(t) = self.lock().as_mut() {
                    t.record(ev);
                }
            }
        }

        /// Records the event built by `f`, constructing it only when a
        /// ring buffer is attached — use this on hot paths so payload
        /// construction (string allocation etc.) is skipped when
        /// tracing is off.
        #[inline]
        pub fn emit_with(&self, f: impl FnOnce() -> TraceEvent) {
            if self.is_active() {
                if let Some(t) = self.lock().as_mut() {
                    t.record(f());
                }
            }
        }

        /// Drains the held events, leaving an empty (still attached)
        /// ring behind.
        pub fn take(&self) -> TraceLog {
            let mut guard = self.lock();
            match guard.as_mut() {
                Some(t) => {
                    let log = TraceLog {
                        events: t.events(),
                        dropped: t.dropped(),
                    };
                    *t = Tracer::new(t.capacity);
                    log
                }
                None => TraceLog::default(),
            }
        }
    }
}

#[cfg(not(feature = "enabled"))]
mod handle {
    use super::{TraceEvent, TraceLog};

    /// Zero-sized no-op stand-in compiled when the `enabled` feature is
    /// off: every method is an empty inline body, so instrumented call
    /// sites vanish entirely. Deliberately `Clone` but not `Copy` so
    /// call sites read identically in both feature configurations
    /// (the real handle holds an `Arc` and must be `.clone()`d).
    #[derive(Debug, Clone, Default)]
    pub struct Trace {}

    impl Trace {
        /// No-op (tracing is compiled out).
        #[inline(always)]
        pub fn attach(&self, _capacity: usize) {}

        /// Always `false`.
        #[inline(always)]
        pub fn is_active(&self) -> bool {
            false
        }

        /// No-op (the event is discarded).
        #[inline(always)]
        pub fn emit(&self, _ev: TraceEvent) {}

        /// No-op; `f` is never called.
        #[inline(always)]
        pub fn emit_with(&self, _f: impl FnOnce() -> TraceEvent) {}

        /// Always empty.
        #[inline(always)]
        pub fn take(&self) -> TraceLog {
            TraceLog::default()
        }
    }
}

pub use handle::Trace;

/// Whether event recording is compiled into this build (the `enabled`
/// cargo feature).
pub const fn tracing_compiled() -> bool {
    cfg!(feature = "enabled")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64) -> TraceEvent {
        TraceEvent {
            ts,
            dur: 0,
            kind: EventKind::DramAccess { channel: 0 },
        }
    }

    #[test]
    fn ring_keeps_most_recent_window() {
        let mut t = Tracer::new(3);
        for i in 0..5 {
            t.record(ev(i));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let ts: Vec<u64> = t.events().iter().map(|e| e.ts).collect();
        assert_eq!(ts, vec![2, 3, 4]);
    }

    #[test]
    fn ring_under_capacity_keeps_all() {
        let mut t = Tracer::new(8);
        t.record(ev(1));
        t.record(ev(2));
        assert_eq!(t.dropped(), 0);
        let ts: Vec<u64> = t.events().iter().map(|e| e.ts).collect();
        assert_eq!(ts, vec![1, 2]);
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let mut t = Tracer::new(0);
        t.record(ev(1));
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn event_names_are_stable() {
        assert_eq!(ev(0).kind.name(), "dram_access");
        assert_eq!(
            EventKind::WatchdogAbort {
                kind: AbortKind::Deadlock,
                stuck_warps: 1,
                detail: String::new(),
            }
            .name(),
            "watchdog_abort"
        );
        assert_eq!(
            EventKind::OccupancySample { resident_warps: 3 }.name(),
            "occupancy"
        );
    }

    #[test]
    fn only_accounting_samples_are_counters() {
        assert!(!ev(0).kind.is_counter());
        assert!(EventKind::OccupancySample { resident_warps: 0 }.is_counter());
        assert!(EventKind::StallSample {
            issued: 1,
            dep_scoreboard: 0,
            mem_pending: 0,
            mem_queue_full: 0,
            barrier: 0,
            lds_conflict: 0,
            no_warp_ready: 0,
            drained: 0,
        }
        .is_counter());
    }
}

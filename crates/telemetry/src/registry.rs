//! The metrics registry: named monotonic counters, gauges, and
//! log2-bucketed histograms behind cheap `Arc` handles.
//!
//! Handles are resolved once (at subsystem construction) and then
//! updated lock-free, so instrumented hot paths pay one relaxed atomic
//! operation per update. The registry itself is only locked when a
//! metric is registered or a [`MetricsSnapshot`] is taken — both cold
//! paths.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Locks a mutex, recovering the guard from a poisoned lock (telemetry
/// must never take the simulation down).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A monotonically increasing counter handle.
///
/// Cloning shares the underlying cell; updates use relaxed atomics.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge handle (stored as `f64` bits).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Stores a value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Number of log2 buckets: bucket 0 holds the value 0, bucket `i` holds
/// values in `[2^(i-1), 2^i)`.
const BUCKETS: usize = 65;

#[derive(Debug)]
struct HistogramInner {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for HistogramInner {
    fn default() -> Self {
        HistogramInner {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Lower bound of a bucket.
fn bucket_floor(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Midpoint of a bucket — the representative value in percentile
/// estimates. Bucket `i > 0` covers `[2^(i-1), 2^i - 1]`; the floor
/// would systematically underestimate, so percentiles report the
/// center. Bucket 0 holds only the value 0.
fn bucket_mid(i: usize) -> u64 {
    let lo = bucket_floor(i);
    if i == 0 {
        0
    } else {
        lo + (lo - 1) / 2
    }
}

/// Percentile estimate over log2 bucket counts: the midpoint of the
/// bucket holding the observation at rank `ceil(p × count)`.
/// Resolution is the bucket width; `0` when `count` is 0. Public so
/// report tools can recompute percentiles from snapshot bucket data.
pub fn percentile_from_buckets(buckets: &[u64], count: u64, p: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let rank = (p * count as f64).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for (i, n) in buckets.iter().enumerate() {
        seen += n;
        if seen >= rank {
            return bucket_mid(i);
        }
    }
    bucket_mid(buckets.len().max(1) - 1)
}

/// A log2-bucketed histogram handle for latency/duration distributions.
///
/// Recording is O(1); percentiles are approximate (bucket resolution).
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<Mutex<HistogramInner>>);

impl Histogram {
    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` observations of the same value in one locked update
    /// (bulk import of pre-aggregated data, e.g. per-level queue-delay
    /// buckets published at kernel end).
    pub fn record_n(&self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        let mut h = lock(&self.0);
        h.buckets[bucket_index(v)] += n;
        h.count += n;
        h.sum = h.sum.saturating_add(v.saturating_mul(n));
        h.min = h.min.min(v);
        h.max = h.max.max(v);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        lock(&self.0).count
    }

    /// Snapshot of the distribution under a name.
    fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let h = lock(&self.0);
        HistogramSnapshot {
            name: name.to_string(),
            count: h.count,
            sum: h.sum,
            min: if h.count == 0 { 0 } else { h.min },
            max: h.max,
            mean: if h.count == 0 {
                0.0
            } else {
                h.sum as f64 / h.count as f64
            },
            p50: percentile_from_buckets(&h.buckets, h.count, 0.50),
            p95: percentile_from_buckets(&h.buckets, h.count, 0.95),
            p99: percentile_from_buckets(&h.buckets, h.count, 0.99),
            buckets: h.buckets.to_vec(),
        }
    }
}

/// One counter in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Registered name.
    pub name: String,
    /// Value at snapshot time.
    pub value: u64,
}

/// One gauge in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSnapshot {
    /// Registered name.
    pub name: String,
    /// Value at snapshot time.
    pub value: f64,
}

/// Summary of one histogram in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Registered name.
    pub name: String,
    /// Observations.
    pub count: u64,
    /// Sum of observations (saturating).
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Mean observation.
    pub mean: f64,
    /// Approximate median (log2-bucket resolution).
    pub p50: u64,
    /// Approximate 95th percentile.
    pub p95: u64,
    /// Approximate 99th percentile.
    pub p99: u64,
    /// Raw log2 bucket counts (length [`BUCKETS`]): bucket 0 holds the
    /// value 0, bucket `i` holds `[2^(i-1), 2^i)`. Carried so merged
    /// snapshots can recompute percentiles exactly and report tools can
    /// render distributions.
    pub buckets: Vec<u64>,
}

/// A serializable snapshot of every metric in a [`Registry`], sorted by
/// name for deterministic export.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// All counters.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histograms.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Value of a counter by name, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// All counters whose name starts with `prefix`, as `(name, value)`
    /// pairs in name order — how `photon-serve` selects the `sim.*`
    /// progress counters to stream to `status`/`wait` clients without
    /// shipping the whole snapshot per poll.
    pub fn counters_with_prefix(&self, prefix: &str) -> Vec<(String, u64)> {
        self.counters
            .iter()
            .filter(|c| c.name.starts_with(prefix))
            .map(|c| (c.name.clone(), c.value))
            .collect()
    }

    /// Merges another snapshot into this one, so a suite of *per-run*
    /// registries can be combined into one aggregate without ever
    /// sharing live metric handles between concurrent runs.
    ///
    /// Semantics per metric kind:
    /// * **counters** — summed (both are totals of disjoint runs);
    /// * **gauges** — last writer wins (`other` overwrites `self`);
    /// * **histograms** — `count`/`sum` summed and `min`/`max` combined
    ///   exactly; `mean` recomputed from the merged sum and count;
    ///   bucket counts are added elementwise and `p50`/`p95`/`p99`
    ///   recomputed exactly from the merged buckets. When either side
    ///   lacks bucket data (a snapshot from an older producer), the
    ///   percentiles fall back to the max of the two parts — a
    ///   conservative upper-bound approximation.
    ///
    /// Name order stays sorted, so merging is deterministic regardless
    /// of the order runs finish in.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for c in &other.counters {
            match self.counters.iter_mut().find(|m| m.name == c.name) {
                Some(m) => m.value += c.value,
                None => self.counters.push(c.clone()),
            }
        }
        self.counters.sort_by(|a, b| a.name.cmp(&b.name));
        for g in &other.gauges {
            match self.gauges.iter_mut().find(|m| m.name == g.name) {
                Some(m) => m.value = g.value,
                None => self.gauges.push(g.clone()),
            }
        }
        self.gauges.sort_by(|a, b| a.name.cmp(&b.name));
        for h in &other.histograms {
            match self.histograms.iter_mut().find(|m| m.name == h.name) {
                Some(m) => {
                    let count = m.count + h.count;
                    m.sum = m.sum.saturating_add(h.sum);
                    m.min = if m.count == 0 {
                        h.min
                    } else if h.count == 0 {
                        m.min
                    } else {
                        m.min.min(h.min)
                    };
                    m.max = m.max.max(h.max);
                    m.mean = if count == 0 {
                        0.0
                    } else {
                        m.sum as f64 / count as f64
                    };
                    if m.buckets.len() == BUCKETS && h.buckets.len() == BUCKETS {
                        for (a, b) in m.buckets.iter_mut().zip(h.buckets.iter()) {
                            *a += b;
                        }
                        m.p50 = percentile_from_buckets(&m.buckets, count, 0.50);
                        m.p95 = percentile_from_buckets(&m.buckets, count, 0.95);
                        m.p99 = percentile_from_buckets(&m.buckets, count, 0.99);
                    } else {
                        m.buckets.clear();
                        m.p50 = m.p50.max(h.p50);
                        m.p95 = m.p95.max(h.p95);
                        m.p99 = m.p99.max(h.p99);
                    }
                    m.count = count;
                }
                None => self.histograms.push(h.clone()),
            }
        }
        self.histograms.sort_by(|a, b| a.name.cmp(&b.name));
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: Vec<(String, Counter)>,
    gauges: Vec<(String, Gauge)>,
    histograms: Vec<(String, Histogram)>,
}

/// The metric registry. One per simulated GPU (shared by its memory
/// hierarchy and any attached controllers), cheap to share via
/// [`crate::Telemetry`].
///
/// # Example
/// ```
/// use gpu_telemetry::Registry;
/// let reg = Registry::default();
/// let c = reg.counter("sim.kernels");
/// c.inc();
/// assert_eq!(reg.snapshot().counter("sim.kernels"), Some(1));
/// ```
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

impl Registry {
    /// Returns the counter registered under `name`, creating it on
    /// first use. Repeated calls share one cell.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = lock(&self.inner);
        if let Some((_, c)) = inner.counters.iter().find(|(n, _)| n == name) {
            return c.clone();
        }
        let c = Counter::default();
        inner.counters.push((name.to_string(), c.clone()));
        c
    }

    /// Returns the gauge registered under `name`, creating it on first
    /// use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = lock(&self.inner);
        if let Some((_, g)) = inner.gauges.iter().find(|(n, _)| n == name) {
            return g.clone();
        }
        let g = Gauge::default();
        inner.gauges.push((name.to_string(), g.clone()));
        g
    }

    /// Returns the histogram registered under `name`, creating it on
    /// first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut inner = lock(&self.inner);
        if let Some((_, h)) = inner.histograms.iter().find(|(n, _)| n == name) {
            return h.clone();
        }
        let h = Histogram::default();
        inner.histograms.push((name.to_string(), h.clone()));
        h
    }

    /// Snapshot of every registered metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = lock(&self.inner);
        let mut counters: Vec<CounterSnapshot> = inner
            .counters
            .iter()
            .map(|(n, c)| CounterSnapshot {
                name: n.clone(),
                value: c.get(),
            })
            .collect();
        counters.sort_by(|a, b| a.name.cmp(&b.name));
        let mut gauges: Vec<GaugeSnapshot> = inner
            .gauges
            .iter()
            .map(|(n, g)| GaugeSnapshot {
                name: n.clone(),
                value: g.get(),
            })
            .collect();
        gauges.sort_by(|a, b| a.name.cmp(&b.name));
        let mut histograms: Vec<HistogramSnapshot> = inner
            .histograms
            .iter()
            .map(|(n, h)| h.snapshot(n))
            .collect();
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_shared_by_name() {
        let reg = Registry::default();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4);
        assert_eq!(reg.snapshot().counter("x"), Some(4));
        assert_eq!(reg.snapshot().counter("y"), None);
    }

    #[test]
    fn gauge_last_value_wins() {
        let reg = Registry::default();
        let g = reg.gauge("ipc");
        g.set(1.5);
        g.set(2.25);
        assert_eq!(g.get(), 2.25);
        assert_eq!(reg.snapshot().gauges[0].value, 2.25);
    }

    #[test]
    fn histogram_buckets_and_percentiles() {
        let h = Histogram::default();
        for v in [0u64, 1, 2, 3, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot("lat");
        assert_eq!(s.count, 6);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1000);
        assert_eq!(s.sum, 1106);
        // p50 falls into the [2,3] bucket, whose midpoint is 2.
        assert_eq!(s.p50, 2);
        assert!(s.p99 >= 512);
    }

    #[test]
    fn empty_histogram_snapshot_is_zeroed() {
        let s = Histogram::default().snapshot("empty");
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.p50, 0);
    }

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_floor(2), 2);
        assert_eq!(bucket_floor(64), 1u64 << 63);
        // Midpoints center each [2^(i-1), 2^i - 1] range and stay
        // inside their own bucket.
        assert_eq!(bucket_mid(0), 0);
        assert_eq!(bucket_mid(1), 1);
        assert_eq!(bucket_mid(3), 5);
        assert_eq!(bucket_mid(10), 767);
        for i in 0..BUCKETS {
            assert_eq!(bucket_index(bucket_mid(i)), i);
        }
    }

    #[test]
    fn merge_sums_counters_and_combines_histograms() {
        let a = Registry::default();
        a.counter("runs").add(2);
        a.gauge("ipc").set(1.0);
        let ha = a.histogram("lat");
        ha.record(10);
        ha.record(20);

        let b = Registry::default();
        b.counter("runs").add(3);
        b.counter("only_b").inc();
        b.gauge("ipc").set(2.0);
        let hb = b.histogram("lat");
        hb.record(5);
        hb.record(1000);

        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.counter("runs"), Some(5));
        assert_eq!(merged.counter("only_b"), Some(1));
        assert_eq!(merged.gauges[0].value, 2.0);
        let h = &merged.histograms[0];
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 1035);
        assert_eq!(h.min, 5);
        assert_eq!(h.max, 1000);
        assert!((h.mean - 1035.0 / 4.0).abs() < 1e-9);
        // Counter names stay sorted after merging in new entries.
        let names: Vec<_> = merged.counters.iter().map(|c| c.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }

    #[test]
    fn record_n_bulk_matches_repeated_record() {
        let a = Histogram::default();
        for _ in 0..5 {
            a.record(16);
        }
        a.record(3);
        let b = Histogram::default();
        b.record_n(16, 5);
        b.record_n(3, 1);
        b.record_n(99, 0); // no-op
        assert_eq!(a.snapshot("h"), b.snapshot("h"));
        assert_eq!(b.count(), 6);
    }

    #[test]
    fn merged_percentiles_are_exact_from_buckets() {
        // One side holds many small values, the other a few large ones.
        // The max-of-parts approximation would report p50 = 512 (the
        // larger side's median); the exact bucket merge keeps p50 small.
        let a = Registry::default();
        let ha = a.histogram("lat");
        ha.record_n(2, 90);
        let b = Registry::default();
        let hb = b.histogram("lat");
        hb.record_n(512, 10);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        let h = &merged.histograms[0];
        assert_eq!(h.count, 100);
        assert_eq!(h.p50, 2);
        // 512 lands in the [512, 1023] bucket; percentiles report the
        // bucket midpoint, not its floor.
        assert_eq!(h.p95, 767);
        assert_eq!(h.buckets.iter().sum::<u64>(), 100);

        // Without bucket data the merge falls back to max-of-parts.
        let mut no_buckets = a.snapshot();
        no_buckets.histograms[0].buckets.clear();
        no_buckets.merge(&b.snapshot());
        assert_eq!(no_buckets.histograms[0].p50, 767);
        assert!(no_buckets.histograms[0].buckets.is_empty());
    }

    #[test]
    fn merge_into_empty_snapshot_copies_everything() {
        let b = Registry::default();
        b.counter("x").add(7);
        b.histogram("h").record(3);
        let mut merged = MetricsSnapshot::default();
        merged.merge(&b.snapshot());
        assert_eq!(merged.counter("x"), Some(7));
        assert_eq!(merged.histograms[0].min, 3);
    }

    #[test]
    fn snapshot_is_name_sorted() {
        let reg = Registry::default();
        reg.counter("b");
        reg.counter("a");
        let names: Vec<_> = reg
            .snapshot()
            .counters
            .into_iter()
            .map(|c| c.name)
            .collect();
        assert_eq!(names, vec!["a".to_string(), "b".to_string()]);
    }
}

//! # gpu-telemetry
//!
//! Unified observability for the Photon stack: a low-overhead metrics
//! registry (counters / gauges / histograms), a structured event tracer
//! with Chrome-trace and JSONL exporters, the machine-readable
//! [`RunReport`] schema benchmark runs are recorded in, and the
//! deterministic [`faults`] injection harness chaos tests drive the
//! stack's guardrails with.
//!
//! The crate sits at the bottom of the workspace dependency graph so
//! every layer (`mem`, `sim`, `core`, `baselines`, `bench`) can emit
//! through one [`Telemetry`] handle. Metrics are always compiled in
//! (they back the load-bearing simulation statistics); **event
//! recording** is behind the `enabled` cargo feature — without it the
//! [`Trace`] handle is a zero-sized no-op and instrumented call sites
//! vanish.
//!
//! # Example
//!
//! ```
//! use gpu_telemetry::Telemetry;
//!
//! let tel = Telemetry::default();
//! let hits = tel.counter("mem.l2.hits");
//! hits.add(3);
//! assert_eq!(tel.snapshot().counter("mem.l2.hits"), Some(3));
//!
//! // Event recording is active only with `--features enabled` and
//! // after a ring buffer is attached:
//! tel.enable_tracing(1 << 16);
//! ```

// Production code must surface failures as typed errors, not panics;
// tests are free to unwrap.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

mod accounting;
pub mod export;
pub mod faults;
mod registry;
mod report;
pub mod span;
mod trace;

pub use accounting::{
    BbErrorRow, CuAccounting, CycleAccounting, ShardAccounting, StallClass, StallWindow,
    STALL_CLASSES,
};
pub use registry::{
    percentile_from_buckets, Counter, CounterSnapshot, Gauge, GaugeSnapshot, Histogram,
    HistogramSnapshot, MetricsSnapshot, Registry,
};
pub use report::{
    compare_reports, MethodRun, Regression, RunReport, SkippedRun, ERROR_REGRESSION_ABS,
    REPORT_SCHEMA_VERSION, SPEEDUP_REGRESSION_FRAC,
};
pub use span::{SpanGuard, SpanKind, SpanRecord, SpanTree, TraceCtx};
pub use trace::{
    tracing_compiled, AbortKind, CacheLevel, EventKind, SampleMode, Trace, TraceEvent, TraceLog,
    Tracer, SCHEMA_VERSION,
};

use std::sync::Arc;

/// The one handle instrumented code holds: a shared metrics registry
/// plus the (feature-gated) trace emitter. Cloning is cheap and all
/// clones observe the same registry and ring buffer, so a simulator can
/// hand copies to its memory hierarchy and controllers.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    registry: Arc<Registry>,
    trace: Trace,
}

impl Telemetry {
    /// The shared metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The trace emission handle (zero-sized no-op without the
    /// `enabled` feature).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Shorthand for `registry().counter(name)`.
    pub fn counter(&self, name: &str) -> Counter {
        self.registry.counter(name)
    }

    /// Shorthand for `registry().gauge(name)`.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.registry.gauge(name)
    }

    /// Shorthand for `registry().histogram(name)`.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.registry.histogram(name)
    }

    /// Attaches a ring buffer of `capacity` events; all clones of this
    /// handle start recording. No-op without the `enabled` feature.
    pub fn enable_tracing(&self, capacity: usize) {
        self.trace.attach(capacity);
    }

    /// Whether events are currently being recorded.
    pub fn tracing_active(&self) -> bool {
        self.trace.is_active()
    }

    /// Drains recorded events (empty without the `enabled` feature).
    pub fn take_events(&self) -> TraceLog {
        self.trace.take()
    }

    /// Snapshot of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }
}

// Compile-time guarantee that telemetry handles can move to (Send) and
// be updated from (Sync) executor worker threads. Each run owns its own
// `Telemetry`, so concurrent runs never share a registry or ring; these
// bounds are what let the handle travel with its simulator.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Telemetry>();
    assert_send_sync::<Registry>();
    assert_send_sync::<Counter>();
    assert_send_sync::<Gauge>();
    assert_send_sync::<Histogram>();
    const fn assert_send<T: Send>() {}
    assert_send::<MetricsSnapshot>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_registry() {
        let a = Telemetry::default();
        let b = a.clone();
        a.counter("x").add(2);
        b.counter("x").inc();
        assert_eq!(a.snapshot().counter("x"), Some(3));
    }

    #[test]
    fn tracing_matches_compiled_feature() {
        let tel = Telemetry::default();
        assert!(!tel.tracing_active());
        tel.enable_tracing(16);
        assert_eq!(tel.tracing_active(), tracing_compiled());
        assert!(tel.take_events().events.is_empty());
    }
}

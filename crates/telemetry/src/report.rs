//! Machine-readable run reports: the schema every benchmark run is
//! recorded in (`results/BENCH_<app>.json`) and the regression
//! comparison used by the bench `report` tool.

use crate::accounting::{BbErrorRow, CycleAccounting};
use crate::registry::MetricsSnapshot;
use serde::{Deserialize, Serialize};

/// Version stamped into every [`RunReport`]; bump on incompatible
/// schema changes so old reports are not silently misread. Version 2
/// added cycle accounting, per-BB prediction-error rows, and histogram
/// bucket data.
pub const REPORT_SCHEMA_VERSION: u32 = 2;

/// One completed (workload, method) measurement inside a [`RunReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MethodRun {
    /// Sampling method (`full`, `photon`, `pka`, ...).
    pub method: String,
    /// Warps launched across the app.
    pub warps: u64,
    /// Host wall-clock seconds for the simulation.
    pub wall_secs: f64,
    /// Simulated cycles across all kernels.
    pub sim_cycles: u64,
    /// Detailed instructions per simulated cycle.
    pub ipc: f64,
    /// Instructions simulated in detailed timing mode.
    pub detailed_insts: u64,
    /// Instructions executed functionally only.
    pub functional_insts: u64,
    /// Warps that ran in detailed mode.
    pub detailed_warps: u64,
    /// Warps whose duration was predicted instead of simulated.
    pub predicted_warps: u64,
    /// Fraction of warps simulated in detail (1.0 for full detailed).
    pub sample_coverage: f64,
    /// Kernels skipped outright by kernel-level sampling.
    pub skipped_kernels: u64,
    /// Host-time speedup relative to the detailed run (0 when no
    /// detailed reference exists in the report).
    pub speedup_vs_detailed: f64,
    /// Relative cycle error vs. the detailed run (0 when no reference).
    pub error_vs_detailed: f64,
    /// Per-CU stall attribution and occupancy timeline, merged across
    /// the app's kernels (`None` when the run produced no accounting —
    /// e.g. every kernel skipped).
    pub accounting: Option<CycleAccounting>,
    /// Per-BB predicted-vs-measured error decomposition by stall class.
    pub bb_errors: Vec<BbErrorRow>,
}

/// A (workload, method) pair that did not produce a measurement, with
/// the typed error preserved (previously lost on serialization).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SkippedRun {
    /// Sampling method that was attempted.
    pub method: String,
    /// Why the harness skipped it (panic, timeout, sim error).
    pub reason: String,
    /// The typed simulator error rendered to text, when one existed
    /// (empty for panics/timeouts with no `SimError`).
    pub error: String,
}

/// The per-app benchmark report serialized to `results/BENCH_<app>.json`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Report schema version ([`REPORT_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Workload name.
    pub workload: String,
    /// Completed measurements, one per method.
    pub runs: Vec<MethodRun>,
    /// Methods that failed or were skipped.
    pub skipped: Vec<SkippedRun>,
    /// Metric registry snapshot taken after the last run (empty when
    /// telemetry was not collected).
    pub metrics: MetricsSnapshot,
}

impl RunReport {
    /// A report for `workload` with the schema version filled in.
    pub fn new(workload: &str) -> Self {
        RunReport {
            schema_version: REPORT_SCHEMA_VERSION,
            workload: workload.to_string(),
            ..RunReport::default()
        }
    }

    /// The run for `method`, if it completed.
    pub fn run(&self, method: &str) -> Option<&MethodRun> {
        self.runs.iter().find(|r| r.method == method)
    }
}

/// A difference between a baseline report and a current report that the
/// `report check` tool flags.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Regression {
    /// Workload the regression is in.
    pub workload: String,
    /// Method the regression is in.
    pub method: String,
    /// What regressed, human-readable.
    pub what: String,
}

/// Absolute worsening in `error_vs_detailed` that counts as a
/// regression (one percentage point).
pub const ERROR_REGRESSION_ABS: f64 = 0.01;

/// Fractional drop in `speedup_vs_detailed` that counts as a
/// regression (20%).
pub const SPEEDUP_REGRESSION_FRAC: f64 = 0.20;

/// Compares `current` against `baseline` and returns every flagged
/// regression: methods that disappeared or started failing, cycle-error
/// increases beyond [`ERROR_REGRESSION_ABS`], and speedup drops beyond
/// [`SPEEDUP_REGRESSION_FRAC`]. Improvements are never flagged.
pub fn compare_reports(baseline: &RunReport, current: &RunReport) -> Vec<Regression> {
    let mut out = Vec::new();
    let flag = |out: &mut Vec<Regression>, method: &str, what: String| {
        out.push(Regression {
            workload: current.workload.clone(),
            method: method.to_string(),
            what,
        });
    };
    for base in &baseline.runs {
        let Some(cur) = current.run(&base.method) else {
            let detail = current
                .skipped
                .iter()
                .find(|s| s.method == base.method)
                .map(|s| format!("now skipped: {}", s.reason))
                .unwrap_or_else(|| "missing from current report".to_string());
            flag(&mut out, &base.method, detail);
            continue;
        };
        let err_delta = cur.error_vs_detailed - base.error_vs_detailed;
        if err_delta > ERROR_REGRESSION_ABS {
            flag(
                &mut out,
                &base.method,
                format!(
                    "cycle error {:.3} -> {:.3} (+{:.3})",
                    base.error_vs_detailed, cur.error_vs_detailed, err_delta
                ),
            );
        }
        if base.speedup_vs_detailed > 0.0
            && cur.speedup_vs_detailed < base.speedup_vs_detailed * (1.0 - SPEEDUP_REGRESSION_FRAC)
        {
            flag(
                &mut out,
                &base.method,
                format!(
                    "speedup {:.2}x -> {:.2}x",
                    base.speedup_vs_detailed, cur.speedup_vs_detailed
                ),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(method: &str, error: f64, speedup: f64) -> MethodRun {
        MethodRun {
            method: method.to_string(),
            warps: 64,
            wall_secs: 0.1,
            sim_cycles: 1000,
            ipc: 1.0,
            detailed_insts: 100,
            functional_insts: 0,
            detailed_warps: 64,
            predicted_warps: 0,
            sample_coverage: 1.0,
            skipped_kernels: 0,
            speedup_vs_detailed: speedup,
            error_vs_detailed: error,
            accounting: None,
            bb_errors: Vec::new(),
        }
    }

    fn report(runs: Vec<MethodRun>) -> RunReport {
        RunReport {
            runs,
            ..RunReport::new("fir")
        }
    }

    #[test]
    fn identical_reports_have_no_regressions() {
        let r = report(vec![run("full", 0.0, 0.0), run("photon", 0.02, 5.0)]);
        assert!(compare_reports(&r, &r).is_empty());
    }

    #[test]
    fn error_increase_is_flagged_improvement_is_not() {
        let base = report(vec![run("photon", 0.02, 5.0)]);
        let worse = report(vec![run("photon", 0.05, 5.0)]);
        let better = report(vec![run("photon", 0.001, 5.0)]);
        let regs = compare_reports(&base, &worse);
        assert_eq!(regs.len(), 1);
        assert!(regs[0].what.contains("cycle error"));
        assert!(compare_reports(&base, &better).is_empty());
    }

    #[test]
    fn speedup_drop_and_missing_method_are_flagged() {
        let base = report(vec![run("photon", 0.02, 10.0), run("pka", 0.05, 8.0)]);
        let mut cur = report(vec![run("photon", 0.02, 2.0)]);
        cur.skipped.push(SkippedRun {
            method: "pka".to_string(),
            reason: "panicked: boom".to_string(),
            error: String::new(),
        });
        let regs = compare_reports(&base, &cur);
        assert_eq!(regs.len(), 2);
        assert!(regs.iter().any(|r| r.what.contains("speedup")));
        assert!(regs.iter().any(|r| r.what.contains("now skipped")));
    }

    #[test]
    fn report_roundtrips_through_json() {
        let mut r = report(vec![run("full", 0.0, 0.0)]);
        r.skipped.push(SkippedRun {
            method: "sieve".to_string(),
            reason: "timed out".to_string(),
            error: "deadlock at cycle 10".to_string(),
        });
        let text = serde_json::to_string_pretty(&r).unwrap_or_default();
        let back: RunReport = match serde_json::from_str(&text) {
            Ok(v) => v,
            Err(e) => panic!("roundtrip failed: {e}"),
        };
        assert_eq!(r, back);
        assert_eq!(back.run("full").map(|m| m.warps), Some(64));
    }
}

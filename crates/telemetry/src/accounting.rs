//! Cycle accounting: the fixed stall taxonomy every resident warp-cycle
//! is attributed to, per-CU totals, per-window stall/occupancy
//! timelines, and the per-BB prediction-error rows surfaced in run
//! reports.
//!
//! The load-bearing invariant (asserted by [`CycleAccounting::check`],
//! a sim test, and `profile check`): for every CU, the stall-class
//! counts sum **exactly** to the CU's resident warp-cycles — each
//! cycle a warp is resident on a CU lands in exactly one class. The
//! engine attributes spans at event boundaries (never per-cycle ticks),
//! so accounting is O(events), not O(cycles), and is observation-only:
//! simulated cycles are bit-identical with accounting on and off.

use serde::{Deserialize, Serialize};

/// Number of stall classes in the taxonomy.
pub const STALL_CLASSES: usize = 8;

/// What a resident warp was doing (or waiting on) during a cycle.
///
/// Exactly one class applies per warp-cycle. Discriminants are stable:
/// they index the flat `[u64; STALL_CLASSES]` arrays in
/// [`CuAccounting`] and the exported counter tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[repr(u8)]
pub enum StallClass {
    /// The warp issued an instruction this cycle.
    Issued = 0,
    /// Waiting on the scoreboard: the previous ALU/branch result was
    /// not ready yet.
    DepScoreboard = 1,
    /// Waiting on an outstanding memory access (cache/DRAM latency).
    MemPending = 2,
    /// The portion of a memory wait spent queued behind a busy
    /// cache/DRAM resource rather than in the access itself.
    MemQueueFull = 3,
    /// Parked at a workgroup barrier.
    Barrier = 4,
    /// Waiting on LDS (shared-memory) access latency.
    LdsConflict = 5,
    /// Ready to issue but not selected (SIMD issue-port contention or
    /// waiting for the first issue slot after dispatch).
    NoWarpReady = 6,
    /// Retired (or predicted-complete) but still resident while the
    /// rest of its workgroup drains.
    Drained = 7,
}

impl StallClass {
    /// Every class, in discriminant order.
    pub const ALL: [StallClass; STALL_CLASSES] = [
        StallClass::Issued,
        StallClass::DepScoreboard,
        StallClass::MemPending,
        StallClass::MemQueueFull,
        StallClass::Barrier,
        StallClass::LdsConflict,
        StallClass::NoWarpReady,
        StallClass::Drained,
    ];

    /// Index into the flat per-CU arrays.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case display name (used in tables, counter tracks,
    /// and stuck-warp reports).
    pub fn name(self) -> &'static str {
        match self {
            StallClass::Issued => "issued",
            StallClass::DepScoreboard => "dep_scoreboard",
            StallClass::MemPending => "mem_pending",
            StallClass::MemQueueFull => "mem_queue_full",
            StallClass::Barrier => "barrier",
            StallClass::LdsConflict => "lds_conflict",
            StallClass::NoWarpReady => "no_warp_ready",
            StallClass::Drained => "drained",
        }
    }

    /// The class with discriminant `i` (wraps out-of-range to
    /// [`StallClass::Drained`], the safe catch-all).
    pub fn from_index(i: usize) -> StallClass {
        *StallClass::ALL.get(i).unwrap_or(&StallClass::Drained)
    }
}

/// Per-CU stall totals: warp-cycles attributed to each class plus the
/// resident warp-cycles they must sum to.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CuAccounting {
    /// Warp-cycles per [`StallClass`], indexed by `StallClass::index()`.
    pub classes: [u64; STALL_CLASSES],
    /// Total resident warp-cycles on this CU: for every workgroup that
    /// completed residency, `warps × (completion − dispatch)`.
    pub resident_warp_cycles: u64,
}

impl CuAccounting {
    /// Sum over all classes.
    pub fn total(&self) -> u64 {
        self.classes.iter().sum()
    }
}

/// One window of the stall timeline: warp-cycles per class spent inside
/// `[start, start + window)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StallWindow {
    /// Absolute start cycle of the window.
    pub start: u64,
    /// Warp-cycles per [`StallClass`] inside the window, summed over
    /// CUs.
    pub classes: [u64; STALL_CLASSES],
}

impl StallWindow {
    /// Mean resident warps across the window (every resident warp-cycle
    /// is classified exactly once, so the class sum *is* residency).
    pub fn resident_warps(&self, window: u64) -> f64 {
        let total: u64 = self.classes.iter().sum();
        total as f64 / window.max(1) as f64
    }
}

/// Per-shard stall totals: the same class/resident pair as
/// [`CuAccounting`], attributed by one event domain of the sharded
/// timing engine. The serial engine reports a single shard spanning
/// all CUs; the epoch engines report one per CU shard. Each shard
/// accumulates its counts independently of the per-CU arrays, so the
/// cross-consistency check in [`CycleAccounting::check`] catches
/// merge bugs in the parallel paths.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardAccounting {
    /// Shard index (CU index in the epoch engines).
    pub shard: u32,
    /// Warp-cycles per [`StallClass`] attributed by this shard.
    pub classes: [u64; STALL_CLASSES],
    /// Resident warp-cycles credited by this shard.
    pub resident_warp_cycles: u64,
}

impl ShardAccounting {
    /// Sum over all classes.
    pub fn total(&self) -> u64 {
        self.classes.iter().sum()
    }
}

/// The cycle-accounting snapshot attached to kernel results and run
/// reports: per-CU stall totals plus a windowed timeline.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleAccounting {
    /// Simulated cycles covered (summed across kernels after a merge).
    pub cycles: u64,
    /// Timeline window width in cycles (the engine's IPC window).
    pub window: u64,
    /// One entry per CU.
    pub cus: Vec<CuAccounting>,
    /// Stall mix per window, CU-aggregated, oldest first.
    pub timeline: Vec<StallWindow>,
    /// Per-event-domain totals (diagnostic; skipped on the wire so
    /// reports written before the sharded engine stay loadable —
    /// deserialized snapshots simply carry no shard breakdown and
    /// [`CycleAccounting::check`] tolerates the empty vector).
    #[serde(skip)]
    pub shards: Vec<ShardAccounting>,
}

impl CycleAccounting {
    /// Warp-cycles per class summed over all CUs.
    pub fn totals(&self) -> [u64; STALL_CLASSES] {
        let mut out = [0u64; STALL_CLASSES];
        for cu in &self.cus {
            for (o, c) in out.iter_mut().zip(cu.classes.iter()) {
                *o += c;
            }
        }
        out
    }

    /// Total resident warp-cycles over all CUs.
    pub fn resident_warp_cycles(&self) -> u64 {
        self.cus.iter().map(|c| c.resident_warp_cycles).sum()
    }

    /// Whether no warp-cycles were accounted (e.g. a skipped kernel or
    /// a run without accounting data).
    pub fn is_empty(&self) -> bool {
        self.resident_warp_cycles() == 0 && self.cus.iter().all(|c| c.total() == 0)
    }

    /// Verifies the stall-sum invariant: every CU's class counts sum
    /// exactly to its resident warp-cycles, and — when a shard
    /// breakdown is present — the same holds per shard *and* the shard
    /// totals agree with the CU totals class-by-class (the shard
    /// counts are accumulated independently by each event domain, so
    /// agreement is evidence the parallel merge lost nothing).
    ///
    /// # Errors
    /// Returns a rendered description of the first violation.
    pub fn check(&self) -> Result<(), String> {
        for (i, cu) in self.cus.iter().enumerate() {
            let total = cu.total();
            if total != cu.resident_warp_cycles {
                return Err(format!(
                    "cu {i}: stall classes sum to {total} but resident warp-cycles are {} \
                     (delta {})",
                    cu.resident_warp_cycles,
                    total as i64 - cu.resident_warp_cycles as i64
                ));
            }
        }
        if self.shards.is_empty() {
            return Ok(());
        }
        let mut shard_classes = [0u64; STALL_CLASSES];
        let mut shard_resident = 0u64;
        for s in &self.shards {
            let total = s.total();
            if total != s.resident_warp_cycles {
                return Err(format!(
                    "shard {}: stall classes sum to {total} but resident warp-cycles are {} \
                     (delta {})",
                    s.shard,
                    s.resident_warp_cycles,
                    total as i64 - s.resident_warp_cycles as i64
                ));
            }
            for (acc, c) in shard_classes.iter_mut().zip(s.classes.iter()) {
                *acc += c;
            }
            shard_resident += s.resident_warp_cycles;
        }
        let cu_classes = self.totals();
        if shard_classes != cu_classes {
            return Err(format!(
                "shard totals diverge from CU totals: shards {shard_classes:?} vs cus \
                 {cu_classes:?}"
            ));
        }
        if shard_resident != self.resident_warp_cycles() {
            return Err(format!(
                "shard resident warp-cycles {shard_resident} diverge from CU total {}",
                self.resident_warp_cycles()
            ));
        }
        Ok(())
    }

    /// Merges another accounting (e.g. the next kernel of an app) into
    /// this one: class counts add per CU, timelines concatenate (window
    /// starts are absolute cycles, so successive kernels extend the
    /// timeline monotonically).
    pub fn merge(&mut self, other: &CycleAccounting) {
        self.cycles += other.cycles;
        if self.window == 0 {
            self.window = other.window;
        }
        if self.cus.len() < other.cus.len() {
            self.cus.resize(other.cus.len(), CuAccounting::default());
        }
        for (mine, theirs) in self.cus.iter_mut().zip(other.cus.iter()) {
            for (m, t) in mine.classes.iter_mut().zip(theirs.classes.iter()) {
                *m += t;
            }
            mine.resident_warp_cycles += theirs.resident_warp_cycles;
        }
        for theirs in &other.shards {
            match self.shards.iter_mut().find(|s| s.shard == theirs.shard) {
                Some(mine) => {
                    for (m, t) in mine.classes.iter_mut().zip(theirs.classes.iter()) {
                        *m += t;
                    }
                    mine.resident_warp_cycles += theirs.resident_warp_cycles;
                }
                None => self.shards.push(*theirs),
            }
        }
        self.timeline.extend(other.timeline.iter().copied());
    }
}

/// One basic block's predicted-vs-measured error decomposition: how far
/// the sampling controller's duration prediction was from the measured
/// detailed timing, and which stall classes the measured cycles were
/// spent in.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BbErrorRow {
    /// Kernel the block belongs to.
    pub kernel: String,
    /// Basic block index within the kernel.
    pub bb: u32,
    /// Detailed block instances measured.
    pub instances: u64,
    /// Dynamic instructions across those instances.
    pub insts: u64,
    /// Measured detailed cycles across those instances.
    pub measured_cycles: u64,
    /// Measured mean cycles per instance.
    pub measured_mean: f64,
    /// Predicted mean cycles per instance (the controller's estimate,
    /// or the method's uniform-CPI equivalent for IPC-extrapolating
    /// baselines).
    pub predicted_mean: f64,
    /// `predicted_mean − measured_mean` (signed; positive means the
    /// prediction over-charged this block).
    pub delta: f64,
    /// Warp-cycles per [`StallClass`] attributed to this block's
    /// detailed instances.
    pub stall: [u64; STALL_CLASSES],
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cu(classes: [u64; STALL_CLASSES]) -> CuAccounting {
        CuAccounting {
            classes,
            resident_warp_cycles: classes.iter().sum(),
        }
    }

    #[test]
    fn class_names_and_indices_are_stable() {
        let names: Vec<_> = StallClass::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(
            names,
            vec![
                "issued",
                "dep_scoreboard",
                "mem_pending",
                "mem_queue_full",
                "barrier",
                "lds_conflict",
                "no_warp_ready",
                "drained"
            ]
        );
        for (i, c) in StallClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert_eq!(StallClass::from_index(i), *c);
        }
        assert_eq!(StallClass::from_index(99), StallClass::Drained);
    }

    #[test]
    fn check_accepts_balanced_and_rejects_unbalanced() {
        let mut acc = CycleAccounting {
            cycles: 100,
            window: 64,
            cus: vec![cu([10, 5, 0, 0, 3, 0, 2, 4]), cu([0; STALL_CLASSES])],
            timeline: Vec::new(),
            shards: Vec::new(),
        };
        assert!(acc.check().is_ok());
        acc.cus[0].resident_warp_cycles += 1;
        let err = acc.check().unwrap_err();
        assert!(err.contains("cu 0"), "{err}");
        assert!(err.contains("delta -1"), "{err}");
    }

    #[test]
    fn totals_and_merge_accumulate() {
        let a = CycleAccounting {
            cycles: 50,
            window: 64,
            cus: vec![cu([1, 2, 0, 0, 0, 0, 0, 0])],
            timeline: vec![StallWindow {
                start: 0,
                classes: [3, 0, 0, 0, 0, 0, 0, 0],
            }],
            shards: Vec::new(),
        };
        let b = CycleAccounting {
            cycles: 70,
            window: 64,
            cus: vec![cu([4, 0, 0, 0, 0, 0, 0, 0]), cu([0, 0, 8, 0, 0, 0, 0, 0])],
            timeline: vec![StallWindow {
                start: 64,
                classes: [0, 0, 12, 0, 0, 0, 0, 0],
            }],
            shards: Vec::new(),
        };
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.cycles, 120);
        assert_eq!(m.cus.len(), 2);
        assert_eq!(m.totals()[StallClass::Issued.index()], 5);
        assert_eq!(m.totals()[StallClass::MemPending.index()], 8);
        assert_eq!(m.resident_warp_cycles(), 15);
        assert!(m.check().is_ok());
        assert_eq!(m.timeline.len(), 2);
        assert_eq!(m.timeline[1].start, 64);
        assert!((m.timeline[1].resident_warps(64) - 12.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn empty_accounting_is_empty_and_checks_clean() {
        let acc = CycleAccounting::default();
        assert!(acc.is_empty());
        assert!(acc.check().is_ok());
        assert_eq!(acc.totals(), [0; STALL_CLASSES]);
    }

    fn shard(id: u32, classes: [u64; STALL_CLASSES]) -> ShardAccounting {
        ShardAccounting {
            shard: id,
            classes,
            resident_warp_cycles: classes.iter().sum(),
        }
    }

    #[test]
    fn shard_invariant_holds_per_shard_and_globally() {
        let mut acc = CycleAccounting {
            cycles: 100,
            window: 64,
            cus: vec![cu([10, 5, 0, 0, 0, 0, 0, 0]), cu([0, 0, 7, 0, 0, 0, 0, 0])],
            timeline: Vec::new(),
            shards: vec![
                shard(0, [10, 5, 0, 0, 0, 0, 0, 0]),
                shard(1, [0, 0, 7, 0, 0, 0, 0, 0]),
            ],
        };
        assert!(acc.check().is_ok());

        // A shard whose classes don't sum to its resident count fails.
        acc.shards[1].resident_warp_cycles += 1;
        let err = acc.check().unwrap_err();
        assert!(err.contains("shard 1"), "{err}");
        acc.shards[1].resident_warp_cycles -= 1;

        // Shard totals must agree with CU totals class-by-class.
        acc.shards[1].classes[StallClass::MemPending.index()] -= 1;
        acc.shards[1].resident_warp_cycles -= 1;
        let err = acc.check().unwrap_err();
        assert!(err.contains("diverge from CU totals"), "{err}");
    }

    #[test]
    fn merge_adds_matching_shards_and_adopts_new_ones() {
        let mut a = CycleAccounting {
            cycles: 10,
            window: 64,
            cus: vec![cu([4, 0, 0, 0, 0, 0, 0, 0])],
            timeline: Vec::new(),
            shards: vec![shard(0, [4, 0, 0, 0, 0, 0, 0, 0])],
        };
        let b = CycleAccounting {
            cycles: 10,
            window: 64,
            cus: vec![cu([2, 0, 0, 0, 0, 0, 0, 0]), cu([0, 3, 0, 0, 0, 0, 0, 0])],
            timeline: Vec::new(),
            shards: vec![
                shard(0, [2, 0, 0, 0, 0, 0, 0, 0]),
                shard(1, [0, 3, 0, 0, 0, 0, 0, 0]),
            ],
        };
        a.merge(&b);
        assert_eq!(a.shards.len(), 2);
        assert_eq!(a.shards[0].classes[0], 6);
        assert_eq!(a.shards[1].classes[1], 3);
        assert!(a.check().is_ok());
    }

    #[test]
    fn shards_are_not_serialized() {
        let acc = CycleAccounting {
            cycles: 10,
            window: 4,
            cus: vec![cu([1, 0, 0, 0, 0, 0, 0, 0])],
            timeline: Vec::new(),
            shards: vec![shard(0, [1, 0, 0, 0, 0, 0, 0, 0])],
        };
        let text = serde_json::to_string(&acc).unwrap();
        assert!(!text.contains("shards"), "{text}");
        let back: CycleAccounting = serde_json::from_str(&text).unwrap();
        assert!(back.shards.is_empty());
        assert!(back.check().is_ok(), "deserialized form must still check");
    }

    #[test]
    fn accounting_roundtrips_through_json() {
        let acc = CycleAccounting {
            cycles: 10,
            window: 4,
            cus: vec![cu([1, 0, 0, 0, 0, 0, 0, 1])],
            timeline: vec![StallWindow {
                start: 0,
                classes: [1, 0, 0, 0, 0, 0, 0, 1],
            }],
            shards: Vec::new(),
        };
        let text = serde_json::to_string(&acc).unwrap();
        let back: CycleAccounting = serde_json::from_str(&text).unwrap();
        assert_eq!(acc, back);
        let row = BbErrorRow {
            kernel: "fir".into(),
            bb: 2,
            instances: 8,
            insts: 64,
            measured_cycles: 100,
            measured_mean: 12.5,
            predicted_mean: 13.0,
            delta: 0.5,
            stall: [4, 0, 96, 0, 0, 0, 0, 0],
        };
        let text = serde_json::to_string(&row).unwrap();
        let back: BbErrorRow = serde_json::from_str(&text).unwrap();
        assert_eq!(row, back);
    }
}

//! Seeded, deterministic fault injection.
//!
//! Every failure path in the stack (watchdog aborts, corrupt-cache
//! recovery, executor panic/timeout isolation, degenerate controller
//! predictions) is guarded — but a guardrail that is never exercised is
//! a guess. This module lets chaos tests and CI *provoke* those
//! failures on demand, deterministically, at named injection sites
//! threaded through the stack.
//!
//! ## Configuration
//!
//! A fault plan is a comma-separated list of `site:rate:seed` rules,
//! supplied either programmatically ([`install`]) or through the
//! `PHOTON_FAULTS` environment variable / `--faults` CLI flag:
//!
//! ```console
//! $ PHOTON_FAULTS="exec.panic:0.4:1337" report smoke
//! $ fig13 --faults "refcache.read.corrupt:1.0:7,watchdog.fuel:0.1:7"
//! ```
//!
//! ## Determinism
//!
//! An injection decision is a **pure function** of `(site, seed, key)`
//! — never of call order, thread identity, or wall clock — where `key`
//! is a stable identifier the call site supplies (a cache key, a spec
//! hash XOR the attempt number, a kernel-name hash). Two executor runs
//! of the same grid with `--jobs 1` and `--jobs N` therefore inject the
//! *same* faults into the *same* runs, and a retried run re-rolls only
//! because its attempt number is folded into the key.
//!
//! ## Cost when off
//!
//! Unconfigured, every hook reduces to [`active`]: one `Once` fast-path
//! check plus one relaxed atomic load. Call sites additionally consult
//! faults at coarse granularity only (once per run, per kernel, or per
//! cache operation) — never inside per-instruction loops.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Once, RwLock};
use std::time::Duration;

/// A named injection point. The `Display`/parse names are the stable
/// public vocabulary used by `PHOTON_FAULTS`, `--faults`, and DESIGN.md.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Reference-cache read returns bit-corrupted entry text.
    RefcacheReadCorrupt,
    /// Reference-cache write lands torn (truncated, bypassing the
    /// atomic rename) as if the process died mid-write.
    RefcacheWriteTorn,
    /// Reference-cache write fails with an I/O error.
    RefcacheWriteIoErr,
    /// Executor run thread panics before simulating.
    ExecPanic,
    /// Executor run thread stalls long enough to trip `--timeout`.
    ExecStall,
    /// Engine watchdog fuel collapses to zero (immediate
    /// `FuelExhausted`).
    WatchdogFuel,
    /// Engine watchdog stall budget collapses to zero (immediate
    /// `Deadlock`).
    WatchdogStuck,
    /// Controller kernel-time prediction degenerates to zero cycles
    /// (must trigger the skip-refused detailed fallback).
    ControllerZeroCycle,
    /// Controller abort IPC degenerates to NaN (must trigger the
    /// engine's refuse-and-stay-detailed guardrail).
    ControllerNan,
    /// Run-journal line lands torn (truncated mid-line).
    JournalTorn,
    /// Epoch barrier of the sharded timing engine stalls for a beat
    /// (wall-clock only; simulated results must be unaffected, which is
    /// exactly what the chaos gate verifies).
    EngineEpochStall,
}

impl FaultSite {
    /// Every site, for enumeration in docs/tests.
    pub const ALL: [FaultSite; 11] = [
        FaultSite::RefcacheReadCorrupt,
        FaultSite::RefcacheWriteTorn,
        FaultSite::RefcacheWriteIoErr,
        FaultSite::ExecPanic,
        FaultSite::ExecStall,
        FaultSite::WatchdogFuel,
        FaultSite::WatchdogStuck,
        FaultSite::ControllerZeroCycle,
        FaultSite::ControllerNan,
        FaultSite::JournalTorn,
        FaultSite::EngineEpochStall,
    ];

    /// The stable configuration name.
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::RefcacheReadCorrupt => "refcache.read.corrupt",
            FaultSite::RefcacheWriteTorn => "refcache.write.torn",
            FaultSite::RefcacheWriteIoErr => "refcache.write.ioerr",
            FaultSite::ExecPanic => "exec.panic",
            FaultSite::ExecStall => "exec.stall",
            FaultSite::WatchdogFuel => "watchdog.fuel",
            FaultSite::WatchdogStuck => "watchdog.stuck",
            FaultSite::ControllerZeroCycle => "controller.zero_cycle",
            FaultSite::ControllerNan => "controller.nan",
            FaultSite::JournalTorn => "journal.torn",
            FaultSite::EngineEpochStall => "engine.epoch.stall",
        }
    }

    /// Parses a configuration name.
    pub fn parse(name: &str) -> Option<FaultSite> {
        FaultSite::ALL.iter().copied().find(|s| s.name() == name)
    }

    fn index(self) -> usize {
        match self {
            FaultSite::RefcacheReadCorrupt => 0,
            FaultSite::RefcacheWriteTorn => 1,
            FaultSite::RefcacheWriteIoErr => 2,
            FaultSite::ExecPanic => 3,
            FaultSite::ExecStall => 4,
            FaultSite::WatchdogFuel => 5,
            FaultSite::WatchdogStuck => 6,
            FaultSite::ControllerZeroCycle => 7,
            FaultSite::ControllerNan => 8,
            FaultSite::JournalTorn => 9,
            FaultSite::EngineEpochStall => 10,
        }
    }
}

/// One `site:rate:seed` rule of a fault plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRule {
    /// Where to inject.
    pub site: FaultSite,
    /// Injection probability in `[0, 1]` per decision key.
    pub rate: f64,
    /// Seed decorrelating this rule from every other rule and run.
    pub seed: u64,
}

/// A parsed fault plan: the set of active rules. At most one rule per
/// site (later rules for the same site replace earlier ones).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// Parses a comma-separated `site:rate:seed[,site:rate:seed...]`
    /// specification.
    ///
    /// # Errors
    /// Returns a rendered message naming the malformed component and
    /// listing the valid sites.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let mut it = part.splitn(3, ':');
            let (site, rate, seed) = (it.next(), it.next(), it.next());
            let (Some(site), Some(rate), Some(seed)) = (site, rate, seed) else {
                return Err(format!(
                    "fault rule `{part}` is not of the form site:rate:seed"
                ));
            };
            let site = FaultSite::parse(site).ok_or_else(|| {
                let names: Vec<&str> = FaultSite::ALL.iter().map(|s| s.name()).collect();
                format!(
                    "unknown fault site `{site}` (valid sites: {})",
                    names.join(", ")
                )
            })?;
            let rate: f64 = rate
                .parse()
                .map_err(|_| format!("fault rate `{rate}` is not a number"))?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("fault rate {rate} is outside [0, 1]"));
            }
            let seed: u64 = seed
                .parse()
                .map_err(|_| format!("fault seed `{seed}` is not an integer"))?;
            plan.add(FaultRule { site, rate, seed });
        }
        Ok(plan)
    }

    /// Adds (or replaces) the rule for a site.
    pub fn add(&mut self, rule: FaultRule) {
        match self.rules.iter_mut().find(|r| r.site == rule.site) {
            Some(r) => *r = rule,
            None => self.rules.push(rule),
        }
    }

    /// The rule for a site, if any.
    pub fn rule(&self, site: FaultSite) -> Option<FaultRule> {
        self.rules.iter().copied().find(|r| r.site == site)
    }

    /// True when the plan has no rules (installing it is a no-op).
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The pure injection decision: whether this plan injects at `site`
    /// for decision `key`. Tests use this to search for seeds with a
    /// desired injection pattern before installing the plan.
    pub fn would_inject(&self, site: FaultSite, key: u64) -> bool {
        let Some(rule) = self.rule(site) else {
            return false;
        };
        decide(rule.seed, site, key, rule.rate)
    }
}

/// `splitmix64` — a cheap, well-distributed 64-bit mixer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The decision function shared by [`FaultPlan::would_inject`] and the
/// installed-plan path: hash `(seed, site, key)` to a uniform fraction
/// and compare against the rate. Site index is salted in so rules with
/// the same seed stay decorrelated across sites.
fn decide(seed: u64, site: FaultSite, key: u64, rate: f64) -> bool {
    if rate <= 0.0 {
        return false;
    }
    if rate >= 1.0 {
        return true;
    }
    let h = splitmix64(seed ^ splitmix64(site.index() as u64 ^ 0xc4a5_0c15) ^ key);
    // Upper 53 bits -> uniform in [0, 1) at full f64 resolution.
    let frac = (h >> 11) as f64 / (1u64 << 53) as f64;
    frac < rate
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static PLAN: RwLock<Option<Arc<FaultPlan>>> = RwLock::new(None);
static ENV_INIT: Once = Once::new();
/// Per-site count of injections actually performed (diagnostics and
/// test assertions; monotone for the process lifetime unless reset).
static INJECTED: [AtomicU64; 11] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

/// Loads `PHOTON_FAULTS` into the global plan exactly once, unless a
/// plan was already installed programmatically.
fn init_from_env() {
    ENV_INIT.call_once(|| {
        let Ok(spec) = std::env::var("PHOTON_FAULTS") else {
            return;
        };
        if spec.trim().is_empty() {
            return;
        }
        match FaultPlan::parse(&spec) {
            Ok(plan) if !plan.is_empty() => {
                let mut guard = PLAN.write().unwrap_or_else(|e| e.into_inner());
                if guard.is_none() {
                    *guard = Some(Arc::new(plan));
                    ACTIVE.store(true, Ordering::Release);
                }
            }
            Ok(_) => {}
            Err(e) => eprintln!("warning: ignoring PHOTON_FAULTS: {e}"),
        }
    });
}

/// Installs a fault plan globally (`None` / empty plan clears it).
/// Supersedes any `PHOTON_FAULTS` environment configuration.
pub fn install(plan: Option<FaultPlan>) {
    // Mark env init done so a later lazy init cannot overwrite an
    // explicit install (or an explicit clear).
    ENV_INIT.call_once(|| {});
    let plan = plan.filter(|p| !p.is_empty());
    let mut guard = PLAN.write().unwrap_or_else(|e| e.into_inner());
    ACTIVE.store(plan.is_some(), Ordering::Release);
    *guard = plan.map(Arc::new);
}

/// Fast path: whether any fault plan is installed. Call sites gate all
/// other fault queries behind this.
#[inline]
pub fn active() -> bool {
    init_from_env();
    ACTIVE.load(Ordering::Acquire)
}

/// The installed plan, if any.
pub fn current_plan() -> Option<Arc<FaultPlan>> {
    if !active() {
        return None;
    }
    PLAN.read().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Whether to inject at `site` for decision `key` under the installed
/// plan. Counts the injection when the answer is yes.
pub fn should_inject(site: FaultSite, key: u64) -> bool {
    let Some(plan) = current_plan() else {
        return false;
    };
    let hit = plan.would_inject(site, key);
    if hit {
        INJECTED[site.index()].fetch_add(1, Ordering::Relaxed);
    }
    hit
}

/// Number of injections performed at `site` so far in this process.
pub fn injected(site: FaultSite) -> u64 {
    INJECTED[site.index()].load(Ordering::Relaxed)
}

/// Resets every per-site injection count (test isolation).
pub fn reset_injected() {
    for c in &INJECTED {
        c.store(0, Ordering::Relaxed);
    }
}

/// Panics with a recognizable message when the plan injects at `site`
/// for `key`. Used inside `catch_unwind`-guarded run threads.
///
/// # Panics
/// That is the point.
pub fn maybe_panic(site: FaultSite, key: u64) {
    if should_inject(site, key) {
        panic!("fault-injection: {} (key {key:#018x})", site.name());
    }
}

/// Sleeps for `dur` when the plan injects at `site` for `key` (an
/// artificial stall, e.g. to trip a run timeout).
pub fn maybe_stall(site: FaultSite, key: u64, dur: Duration) {
    if should_inject(site, key) {
        std::thread::sleep(dur);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_all_sites() {
        for site in FaultSite::ALL {
            assert_eq!(FaultSite::parse(site.name()), Some(site));
        }
        assert_eq!(FaultSite::parse("nope"), None);
    }

    #[test]
    fn plan_parsing_accepts_lists_and_rejects_garbage() {
        let plan = FaultPlan::parse("exec.panic:0.5:7, watchdog.fuel:1.0:9").unwrap();
        assert_eq!(
            plan.rule(FaultSite::ExecPanic),
            Some(FaultRule {
                site: FaultSite::ExecPanic,
                rate: 0.5,
                seed: 7
            })
        );
        assert_eq!(plan.rule(FaultSite::WatchdogFuel).unwrap().rate, 1.0);
        assert!(plan.rule(FaultSite::ExecStall).is_none());

        assert!(FaultPlan::parse("exec.panic:0.5").is_err());
        assert!(FaultPlan::parse("bogus.site:0.5:1").is_err());
        assert!(FaultPlan::parse("exec.panic:1.5:1").is_err());
        assert!(FaultPlan::parse("exec.panic:x:1").is_err());
        assert!(FaultPlan::parse("exec.panic:0.5:x").is_err());
        assert!(FaultPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn later_rules_replace_earlier_ones() {
        let plan = FaultPlan::parse("exec.panic:0.1:1,exec.panic:0.9:2").unwrap();
        assert_eq!(plan.rule(FaultSite::ExecPanic).unwrap().rate, 0.9);
    }

    #[test]
    fn decisions_are_pure_and_rate_shaped() {
        let plan = FaultPlan::parse("exec.panic:0.25:42").unwrap();
        // Pure: same inputs, same answer.
        for key in 0..64u64 {
            assert_eq!(
                plan.would_inject(FaultSite::ExecPanic, key),
                plan.would_inject(FaultSite::ExecPanic, key)
            );
        }
        // Other sites never fire.
        assert!(!plan.would_inject(FaultSite::WatchdogFuel, 3));
        // Rate 0 and 1 are exact.
        let never = FaultPlan::parse("exec.panic:0.0:42").unwrap();
        let always = FaultPlan::parse("exec.panic:1.0:42").unwrap();
        for key in 0..32u64 {
            assert!(!never.would_inject(FaultSite::ExecPanic, key));
            assert!(always.would_inject(FaultSite::ExecPanic, key));
        }
        // The hit fraction roughly tracks the rate over many keys.
        let hits = (0..4000u64)
            .filter(|&k| plan.would_inject(FaultSite::ExecPanic, k))
            .count();
        let frac = hits as f64 / 4000.0;
        assert!((frac - 0.25).abs() < 0.05, "hit fraction {frac}");
    }

    #[test]
    fn seeds_decorrelate_decisions() {
        let a = FaultPlan::parse("exec.panic:0.5:1").unwrap();
        let b = FaultPlan::parse("exec.panic:0.5:2").unwrap();
        let differs = (0..256u64).any(|k| {
            a.would_inject(FaultSite::ExecPanic, k) != b.would_inject(FaultSite::ExecPanic, k)
        });
        assert!(differs);
    }

    #[test]
    fn install_and_query_global_plan() {
        // Serialized against other global-state tests by running in one
        // test: install, observe, count, clear.
        install(Some(FaultPlan::parse("journal.torn:1.0:5").unwrap()));
        assert!(active());
        reset_injected();
        assert!(should_inject(FaultSite::JournalTorn, 9));
        assert!(!should_inject(FaultSite::ExecPanic, 9));
        assert_eq!(injected(FaultSite::JournalTorn), 1);
        assert_eq!(injected(FaultSite::ExecPanic), 0);
        install(None);
        assert!(!active());
        assert!(!should_inject(FaultSite::JournalTorn, 9));
        reset_injected();
    }
}

//! Trace exporters: Chrome trace-event JSON (loadable in
//! `chrome://tracing` / Perfetto), line-delimited JSON (JSONL) for
//! ad-hoc tooling, and Prometheus text exposition for the registry
//! (served by photon-serve's `metrics` op).
//!
//! All formats are deterministic for a given input: events/metrics are
//! emitted in record (or name) order and object keys in a fixed order,
//! so golden tests can compare exported bytes directly.

use crate::registry::MetricsSnapshot;
use crate::trace::{EventKind, TraceEvent, TraceLog, SCHEMA_VERSION};
use serde_json::Value;

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn s(v: &str) -> Value {
    Value::String(v.to_string())
}

fn u(v: u64) -> Value {
    Value::U64(v)
}

/// Chrome-trace args payload for an event (flat key/value object).
fn args(kind: &EventKind) -> Value {
    match kind {
        EventKind::KernelBegin {
            kernel,
            seq,
            total_warps,
        } => obj(vec![
            ("kernel", s(kernel)),
            ("seq", u(*seq)),
            ("total_warps", u(*total_warps)),
        ]),
        EventKind::KernelEnd {
            kernel,
            seq,
            cycles,
            detailed_insts,
            functional_insts,
            skipped,
        } => obj(vec![
            ("kernel", s(kernel)),
            ("seq", u(*seq)),
            ("cycles", u(*cycles)),
            ("detailed_insts", u(*detailed_insts)),
            ("functional_insts", u(*functional_insts)),
            ("skipped", Value::Bool(*skipped)),
        ]),
        EventKind::WgDispatch { wg, cu, mode } => obj(vec![
            ("wg", u(u64::from(*wg))),
            ("cu", u(u64::from(*cu))),
            ("mode", s(&format!("{mode:?}"))),
        ]),
        EventKind::WarpRetire { warp, cu, insts } => obj(vec![
            ("warp", u(*warp)),
            ("cu", u(u64::from(*cu))),
            ("insts", u(*insts)),
        ]),
        EventKind::BbInterval { warp, bb, insts } => obj(vec![
            ("warp", u(*warp)),
            ("bb", u(u64::from(*bb))),
            ("insts", u(u64::from(*insts))),
        ]),
        EventKind::CacheAccess {
            level,
            hit,
            evicted,
        } => obj(vec![
            ("level", s(&format!("{level:?}"))),
            ("hit", Value::Bool(*hit)),
            ("evicted", Value::Bool(*evicted)),
        ]),
        EventKind::DramAccess { channel } => obj(vec![("channel", u(u64::from(*channel)))]),
        EventKind::BarrierWait {
            wg,
            warp,
            arrived,
            expected,
        } => obj(vec![
            ("wg", u(u64::from(*wg))),
            ("warp", u(*warp)),
            ("arrived", u(u64::from(*arrived))),
            ("expected", u(u64::from(*expected))),
        ]),
        EventKind::BarrierRelease { wg, released } => obj(vec![
            ("wg", u(u64::from(*wg))),
            ("released", u(u64::from(*released))),
        ]),
        EventKind::IpcWindow { insts, window } => {
            obj(vec![("insts", u(*insts)), ("window", u(*window))])
        }
        EventKind::WatchdogAbort {
            kind,
            stuck_warps,
            detail,
        } => obj(vec![
            ("kind", s(&format!("{kind:?}"))),
            ("stuck_warps", u(*stuck_warps)),
            ("detail", s(detail)),
        ]),
        EventKind::ControllerDecision {
            controller,
            decision,
            detail,
        } => obj(vec![
            ("controller", s(controller)),
            ("decision", s(decision)),
            ("detail", s(detail)),
        ]),
        EventKind::StallSample {
            issued,
            dep_scoreboard,
            mem_pending,
            mem_queue_full,
            barrier,
            lds_conflict,
            no_warp_ready,
            drained,
        } => obj(vec![
            ("issued", u(*issued)),
            ("dep_scoreboard", u(*dep_scoreboard)),
            ("mem_pending", u(*mem_pending)),
            ("mem_queue_full", u(*mem_queue_full)),
            ("barrier", u(*barrier)),
            ("lds_conflict", u(*lds_conflict)),
            ("no_warp_ready", u(*no_warp_ready)),
            ("drained", u(*drained)),
        ]),
        EventKind::OccupancySample { resident_warps } => {
            obj(vec![("resident_warps", u(*resident_warps))])
        }
        EventKind::EpochBarrier {
            epoch,
            busy_shards,
            requests,
        } => obj(vec![
            ("epoch", u(*epoch)),
            ("busy_shards", u(u64::from(*busy_shards))),
            ("requests", u(u64::from(*requests))),
        ]),
    }
}

/// Chrome-trace track (`tid`) an event is drawn on, grouping related
/// activity into lanes.
fn track(kind: &EventKind) -> u64 {
    match kind {
        EventKind::KernelBegin { .. } | EventKind::KernelEnd { .. } => 0,
        EventKind::WgDispatch { .. } => 1,
        EventKind::WarpRetire { .. } | EventKind::BbInterval { .. } => 2,
        EventKind::CacheAccess { .. } | EventKind::DramAccess { .. } => 3,
        EventKind::BarrierWait { .. } | EventKind::BarrierRelease { .. } => 4,
        EventKind::IpcWindow { .. } => 5,
        EventKind::WatchdogAbort { .. } | EventKind::ControllerDecision { .. } => 6,
        EventKind::StallSample { .. } | EventKind::OccupancySample { .. } => 7,
        EventKind::EpochBarrier { .. } => 8,
    }
}

fn chrome_event(ev: &TraceEvent) -> Value {
    // Counter ("C") events render as stacked per-series graphs from
    // their args; complete ("X") events carry a duration; everything
    // else is an instant ("i"). Timestamps are simulated cycles
    // reported as µs — Chrome's viewer needs *some* unit, and
    // 1 cycle = 1 µs keeps the numbers readable.
    let counter = ev.kind.is_counter();
    let ph = if counter {
        "C"
    } else if ev.dur > 0 {
        "X"
    } else {
        "i"
    };
    let mut fields = vec![("name", s(ev.kind.name())), ("ph", s(ph)), ("ts", u(ev.ts))];
    if counter {
        // Counters take only name/ts/pid/args; a duration or instant
        // scope field would be ignored (or rejected) by the viewer.
    } else if ev.dur > 0 {
        fields.push(("dur", u(ev.dur)));
    } else {
        fields.push(("s", s("t")));
    }
    fields.push(("pid", u(1)));
    fields.push(("tid", u(track(&ev.kind))));
    fields.push(("args", args(&ev.kind)));
    obj(fields)
}

/// Renders a [`TraceLog`] as a Chrome trace-event JSON document
/// (`{"traceEvents": [...], ...}` object form).
pub fn chrome_trace_json(log: &TraceLog) -> String {
    let events: Vec<Value> = log.events.iter().map(chrome_event).collect();
    let doc = obj(vec![
        ("traceEvents", Value::Array(events)),
        ("displayTimeUnit", s("ms")),
        (
            "otherData",
            obj(vec![
                ("schema_version", u(u64::from(SCHEMA_VERSION))),
                ("dropped_events", u(log.dropped)),
            ]),
        ),
    ]);
    serde_json::to_string_pretty(&doc).unwrap_or_default()
}

/// Renders a [`TraceLog`] as JSONL: one `{"ts","dur","kind",...payload}`
/// object per line, preceded by a header line carrying the schema
/// version and drop count.
pub fn jsonl(log: &TraceLog) -> String {
    let mut out = String::new();
    let header = obj(vec![
        ("schema_version", u(u64::from(SCHEMA_VERSION))),
        ("dropped_events", u(log.dropped)),
        ("events", u(log.events.len() as u64)),
    ]);
    out.push_str(&serde_json::to_string(&header).unwrap_or_default());
    out.push('\n');
    for ev in &log.events {
        let line = obj(vec![
            ("ts", u(ev.ts)),
            ("dur", u(ev.dur)),
            ("kind", s(ev.kind.name())),
            ("args", args(&ev.kind)),
        ]);
        out.push_str(&serde_json::to_string(&line).unwrap_or_default());
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------
// Prometheus text exposition (format version 0.0.4).
// ---------------------------------------------------------------------

/// Maps a registry metric name onto the Prometheus charset: prefixed
/// `photon_`, every character outside `[a-zA-Z0-9_:]` replaced with
/// `_` (so `engine.shard.0.busy_cycles` becomes
/// `photon_engine_shard_0_busy_cycles`).
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 7);
    out.push_str("photon_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Renders a [`MetricsSnapshot`] in Prometheus text exposition format:
/// counters and gauges as single samples, histograms as cumulative
/// `le`-labelled buckets (upper bounds at the log2 bucket boundaries)
/// plus `_sum`/`_count`. Deterministic: metrics come out in snapshot
/// (name) order.
pub fn prometheus_text(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for c in &snap.counters {
        let name = prometheus_name(&c.name);
        out.push_str(&format!("# TYPE {name} counter\n{name} {}\n", c.value));
    }
    for g in &snap.gauges {
        let name = prometheus_name(&g.name);
        out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", g.value));
    }
    for h in &snap.histograms {
        let name = prometheus_name(&h.name);
        out.push_str(&format!("# TYPE {name} histogram\n"));
        let mut cum = 0u64;
        for (i, n) in h.buckets.iter().enumerate() {
            cum += n;
            if *n > 0 {
                // Bucket i covers [2^(i-1), 2^i) (bucket 0 holds the
                // value 0): the inclusive upper bound is 2^i - 1.
                let le = if i == 0 {
                    0.0
                } else {
                    (1u128 << i) as f64 - 1.0
                };
                out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cum}\n"));
            }
        }
        out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
        out.push_str(&format!("{name}_sum {}\n", h.sum));
        out.push_str(&format!("{name}_count {}\n", h.count));
    }
    out
}

/// One parsed exposition sample.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Metric name (including any `_bucket`/`_sum`/`_count` suffix).
    pub name: String,
    /// Label pairs, in source order (`le` for histogram buckets).
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

/// A parsed exposition document: `# TYPE` declarations plus samples.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PromScrape {
    /// `(metric, type)` pairs from `# TYPE` lines, in source order.
    pub types: Vec<(String, String)>,
    /// All samples, in source order.
    pub samples: Vec<PromSample>,
}

impl PromScrape {
    /// The value of the sample named `name` with no labels.
    pub fn value(&self, name: &str) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| s.name == name && s.labels.is_empty())
            .map(|s| s.value)
    }
}

/// A minimal Prometheus text-exposition parser: exactly the subset
/// [`prometheus_text`] emits (`# TYPE`/`# HELP` comments, optional
/// `{k="v",...}` label sets, floating-point values; no timestamps).
/// The CI gate round-trips a live scrape through this to prove the
/// `metrics` op emits well-formed exposition text.
///
/// # Errors
/// Returns `"line N: reason"` for the first malformed line.
pub fn parse_prometheus_text(text: &str) -> Result<PromScrape, String> {
    let mut scrape = PromScrape::default();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut parts = comment.trim().splitn(3, ' ');
            if parts.next() == Some("TYPE") {
                let name = parts
                    .next()
                    .ok_or_else(|| format!("line {lineno}: TYPE without a metric name"))?;
                let kind = parts
                    .next()
                    .ok_or_else(|| format!("line {lineno}: TYPE without a type"))?;
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(format!("line {lineno}: unknown metric type {kind:?}"));
                }
                scrape.types.push((name.to_string(), kind.to_string()));
            }
            continue;
        }
        // Sample line: name[{labels}] value
        let (name_part, rest) = match line.find('{') {
            Some(brace) => {
                let close = line
                    .rfind('}')
                    .ok_or_else(|| format!("line {lineno}: unclosed label set"))?;
                if close < brace {
                    return Err(format!("line {lineno}: unclosed label set"));
                }
                (&line[..brace], &line[close + 1..])
            }
            None => match line.find(char::is_whitespace) {
                Some(sp) => (&line[..sp], &line[sp..]),
                None => return Err(format!("line {lineno}: sample without a value")),
            },
        };
        let name = name_part.trim();
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(format!("line {lineno}: invalid metric name {name:?}"));
        }
        let mut labels = Vec::new();
        if let Some(brace) = line.find('{') {
            let close = line.rfind('}').unwrap_or(brace);
            for pair in line[brace + 1..close].split(',') {
                let pair = pair.trim();
                if pair.is_empty() {
                    continue;
                }
                let (k, v) = pair
                    .split_once('=')
                    .ok_or_else(|| format!("line {lineno}: label without '='"))?;
                let v = v.trim();
                let v = v
                    .strip_prefix('"')
                    .and_then(|v| v.strip_suffix('"'))
                    .ok_or_else(|| format!("line {lineno}: unquoted label value"))?;
                labels.push((k.trim().to_string(), v.to_string()));
            }
        }
        let value_text = rest.trim();
        let value = match value_text {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            "NaN" => f64::NAN,
            v => v
                .parse::<f64>()
                .map_err(|_| format!("line {lineno}: bad sample value {v:?}"))?,
        };
        scrape.samples.push(PromSample {
            name: name.to_string(),
            labels,
            value,
        });
    }
    Ok(scrape)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{AbortKind, CacheLevel};

    fn sample_log() -> TraceLog {
        TraceLog {
            events: vec![
                TraceEvent {
                    ts: 0,
                    dur: 120,
                    kind: EventKind::KernelEnd {
                        kernel: "fir".to_string(),
                        seq: 0,
                        cycles: 120,
                        detailed_insts: 640,
                        functional_insts: 0,
                        skipped: false,
                    },
                },
                TraceEvent {
                    ts: 8,
                    dur: 0,
                    kind: EventKind::CacheAccess {
                        level: CacheLevel::L1V,
                        hit: false,
                        evicted: true,
                    },
                },
                TraceEvent {
                    ts: 40,
                    dur: 0,
                    kind: EventKind::WatchdogAbort {
                        kind: AbortKind::Deadlock,
                        stuck_warps: 2,
                        detail: "w0 @barrier".to_string(),
                    },
                },
                TraceEvent {
                    ts: 64,
                    dur: 0,
                    kind: EventKind::OccupancySample { resident_warps: 12 },
                },
            ],
            dropped: 1,
        }
    }

    #[test]
    fn chrome_trace_has_events_and_metadata() {
        let out = chrome_trace_json(&sample_log());
        assert!(out.contains("\"traceEvents\""));
        assert!(out.contains("\"ph\": \"X\""));
        assert!(out.contains("\"ph\": \"i\""));
        assert!(out.contains("\"ph\": \"C\""));
        assert!(out.contains("\"dropped_events\": 1"));
        assert!(out.contains("watchdog_abort"));
        // Must parse back as JSON.
        let v: Value = serde_json::from_str(&out).unwrap();
        match v {
            Value::Object(fields) => {
                assert!(fields.iter().any(|(k, _)| k == "traceEvents"));
            }
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let out = jsonl(&sample_log());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 5); // header + 4 events
        for line in &lines {
            let _: Value = serde_json::from_str(line).unwrap();
        }
        assert!(lines[0].contains("\"schema_version\":2"));
        assert!(lines[2].contains("cache_access"));
        assert!(lines[4].contains("occupancy"));
    }

    #[test]
    fn empty_log_exports_cleanly() {
        let log = TraceLog::default();
        let chrome = chrome_trace_json(&log);
        assert!(chrome.contains("\"traceEvents\": []"));
        assert_eq!(jsonl(&log).lines().count(), 1);
    }

    #[test]
    fn prometheus_round_trips_through_the_parser() {
        let tel = crate::Telemetry::default();
        tel.counter("serve.completed").add(7);
        tel.gauge("engine.epoch.imbalance").set(1.5);
        let h = tel.histogram("serve.latency_ms");
        h.record(3);
        h.record(120);
        h.record(4000);
        let text = prometheus_text(&tel.snapshot());

        let scrape = parse_prometheus_text(&text).expect("own output must parse");
        assert_eq!(scrape.value("photon_serve_completed"), Some(7.0));
        assert_eq!(scrape.value("photon_engine_epoch_imbalance"), Some(1.5));
        assert_eq!(scrape.value("photon_serve_latency_ms_count"), Some(3.0));
        assert_eq!(scrape.value("photon_serve_latency_ms_sum"), Some(4123.0));
        assert!(scrape.types.contains(&(
            "photon_serve_latency_ms".to_string(),
            "histogram".to_string()
        )));
        // Cumulative buckets end at +Inf == count.
        let inf = scrape
            .samples
            .iter()
            .find(|s| {
                s.name == "photon_serve_latency_ms_bucket"
                    && s.labels.iter().any(|(k, v)| k == "le" && v == "+Inf")
            })
            .expect("+Inf bucket");
        assert_eq!(inf.value, 3.0);
        // Buckets are cumulative (monotone nondecreasing).
        let buckets: Vec<f64> = scrape
            .samples
            .iter()
            .filter(|s| s.name == "photon_serve_latency_ms_bucket")
            .map(|s| s.value)
            .collect();
        assert!(buckets.windows(2).all(|w| w[0] <= w[1]), "{buckets:?}");
    }

    #[test]
    fn prometheus_names_are_sanitized() {
        assert_eq!(
            prometheus_name("engine.shard.0.busy_cycles"),
            "photon_engine_shard_0_busy_cycles"
        );
        assert_eq!(prometheus_name("a-b c"), "photon_a_b_c");
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_prometheus_text("photon_x{le=\"1\" 3").is_err());
        assert!(parse_prometheus_text("photon x 3").is_err());
        assert!(parse_prometheus_text("photon_x notanumber").is_err());
        assert!(parse_prometheus_text("# TYPE photon_x flurble\nphoton_x 1").is_err());
        // Unknown comments and blank lines are ignored.
        let ok = parse_prometheus_text("# HELP photon_x something\n\nphoton_x 1\n").unwrap();
        assert_eq!(ok.value("photon_x"), Some(1.0));
    }
}

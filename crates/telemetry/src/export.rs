//! Trace exporters: Chrome trace-event JSON (loadable in
//! `chrome://tracing` / Perfetto) and line-delimited JSON (JSONL) for
//! ad-hoc tooling.
//!
//! Both formats are deterministic for a given [`TraceLog`]: events are
//! emitted in record order and object keys in a fixed order, so golden
//! tests can compare exported bytes directly.

use crate::trace::{EventKind, TraceEvent, TraceLog, SCHEMA_VERSION};
use serde_json::Value;

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn s(v: &str) -> Value {
    Value::String(v.to_string())
}

fn u(v: u64) -> Value {
    Value::U64(v)
}

/// Chrome-trace args payload for an event (flat key/value object).
fn args(kind: &EventKind) -> Value {
    match kind {
        EventKind::KernelBegin {
            kernel,
            seq,
            total_warps,
        } => obj(vec![
            ("kernel", s(kernel)),
            ("seq", u(*seq)),
            ("total_warps", u(*total_warps)),
        ]),
        EventKind::KernelEnd {
            kernel,
            seq,
            cycles,
            detailed_insts,
            functional_insts,
            skipped,
        } => obj(vec![
            ("kernel", s(kernel)),
            ("seq", u(*seq)),
            ("cycles", u(*cycles)),
            ("detailed_insts", u(*detailed_insts)),
            ("functional_insts", u(*functional_insts)),
            ("skipped", Value::Bool(*skipped)),
        ]),
        EventKind::WgDispatch { wg, cu, mode } => obj(vec![
            ("wg", u(u64::from(*wg))),
            ("cu", u(u64::from(*cu))),
            ("mode", s(&format!("{mode:?}"))),
        ]),
        EventKind::WarpRetire { warp, cu, insts } => obj(vec![
            ("warp", u(*warp)),
            ("cu", u(u64::from(*cu))),
            ("insts", u(*insts)),
        ]),
        EventKind::BbInterval { warp, bb, insts } => obj(vec![
            ("warp", u(*warp)),
            ("bb", u(u64::from(*bb))),
            ("insts", u(u64::from(*insts))),
        ]),
        EventKind::CacheAccess {
            level,
            hit,
            evicted,
        } => obj(vec![
            ("level", s(&format!("{level:?}"))),
            ("hit", Value::Bool(*hit)),
            ("evicted", Value::Bool(*evicted)),
        ]),
        EventKind::DramAccess { channel } => obj(vec![("channel", u(u64::from(*channel)))]),
        EventKind::BarrierWait {
            wg,
            warp,
            arrived,
            expected,
        } => obj(vec![
            ("wg", u(u64::from(*wg))),
            ("warp", u(*warp)),
            ("arrived", u(u64::from(*arrived))),
            ("expected", u(u64::from(*expected))),
        ]),
        EventKind::BarrierRelease { wg, released } => obj(vec![
            ("wg", u(u64::from(*wg))),
            ("released", u(u64::from(*released))),
        ]),
        EventKind::IpcWindow { insts, window } => {
            obj(vec![("insts", u(*insts)), ("window", u(*window))])
        }
        EventKind::WatchdogAbort {
            kind,
            stuck_warps,
            detail,
        } => obj(vec![
            ("kind", s(&format!("{kind:?}"))),
            ("stuck_warps", u(*stuck_warps)),
            ("detail", s(detail)),
        ]),
        EventKind::ControllerDecision {
            controller,
            decision,
            detail,
        } => obj(vec![
            ("controller", s(controller)),
            ("decision", s(decision)),
            ("detail", s(detail)),
        ]),
        EventKind::StallSample {
            issued,
            dep_scoreboard,
            mem_pending,
            mem_queue_full,
            barrier,
            lds_conflict,
            no_warp_ready,
            drained,
        } => obj(vec![
            ("issued", u(*issued)),
            ("dep_scoreboard", u(*dep_scoreboard)),
            ("mem_pending", u(*mem_pending)),
            ("mem_queue_full", u(*mem_queue_full)),
            ("barrier", u(*barrier)),
            ("lds_conflict", u(*lds_conflict)),
            ("no_warp_ready", u(*no_warp_ready)),
            ("drained", u(*drained)),
        ]),
        EventKind::OccupancySample { resident_warps } => {
            obj(vec![("resident_warps", u(*resident_warps))])
        }
        EventKind::EpochBarrier {
            epoch,
            busy_shards,
            requests,
        } => obj(vec![
            ("epoch", u(*epoch)),
            ("busy_shards", u(u64::from(*busy_shards))),
            ("requests", u(u64::from(*requests))),
        ]),
    }
}

/// Chrome-trace track (`tid`) an event is drawn on, grouping related
/// activity into lanes.
fn track(kind: &EventKind) -> u64 {
    match kind {
        EventKind::KernelBegin { .. } | EventKind::KernelEnd { .. } => 0,
        EventKind::WgDispatch { .. } => 1,
        EventKind::WarpRetire { .. } | EventKind::BbInterval { .. } => 2,
        EventKind::CacheAccess { .. } | EventKind::DramAccess { .. } => 3,
        EventKind::BarrierWait { .. } | EventKind::BarrierRelease { .. } => 4,
        EventKind::IpcWindow { .. } => 5,
        EventKind::WatchdogAbort { .. } | EventKind::ControllerDecision { .. } => 6,
        EventKind::StallSample { .. } | EventKind::OccupancySample { .. } => 7,
        EventKind::EpochBarrier { .. } => 8,
    }
}

fn chrome_event(ev: &TraceEvent) -> Value {
    // Counter ("C") events render as stacked per-series graphs from
    // their args; complete ("X") events carry a duration; everything
    // else is an instant ("i"). Timestamps are simulated cycles
    // reported as µs — Chrome's viewer needs *some* unit, and
    // 1 cycle = 1 µs keeps the numbers readable.
    let counter = ev.kind.is_counter();
    let ph = if counter {
        "C"
    } else if ev.dur > 0 {
        "X"
    } else {
        "i"
    };
    let mut fields = vec![("name", s(ev.kind.name())), ("ph", s(ph)), ("ts", u(ev.ts))];
    if counter {
        // Counters take only name/ts/pid/args; a duration or instant
        // scope field would be ignored (or rejected) by the viewer.
    } else if ev.dur > 0 {
        fields.push(("dur", u(ev.dur)));
    } else {
        fields.push(("s", s("t")));
    }
    fields.push(("pid", u(1)));
    fields.push(("tid", u(track(&ev.kind))));
    fields.push(("args", args(&ev.kind)));
    obj(fields)
}

/// Renders a [`TraceLog`] as a Chrome trace-event JSON document
/// (`{"traceEvents": [...], ...}` object form).
pub fn chrome_trace_json(log: &TraceLog) -> String {
    let events: Vec<Value> = log.events.iter().map(chrome_event).collect();
    let doc = obj(vec![
        ("traceEvents", Value::Array(events)),
        ("displayTimeUnit", s("ms")),
        (
            "otherData",
            obj(vec![
                ("schema_version", u(u64::from(SCHEMA_VERSION))),
                ("dropped_events", u(log.dropped)),
            ]),
        ),
    ]);
    serde_json::to_string_pretty(&doc).unwrap_or_default()
}

/// Renders a [`TraceLog`] as JSONL: one `{"ts","dur","kind",...payload}`
/// object per line, preceded by a header line carrying the schema
/// version and drop count.
pub fn jsonl(log: &TraceLog) -> String {
    let mut out = String::new();
    let header = obj(vec![
        ("schema_version", u(u64::from(SCHEMA_VERSION))),
        ("dropped_events", u(log.dropped)),
        ("events", u(log.events.len() as u64)),
    ]);
    out.push_str(&serde_json::to_string(&header).unwrap_or_default());
    out.push('\n');
    for ev in &log.events {
        let line = obj(vec![
            ("ts", u(ev.ts)),
            ("dur", u(ev.dur)),
            ("kind", s(ev.kind.name())),
            ("args", args(&ev.kind)),
        ]);
        out.push_str(&serde_json::to_string(&line).unwrap_or_default());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{AbortKind, CacheLevel};

    fn sample_log() -> TraceLog {
        TraceLog {
            events: vec![
                TraceEvent {
                    ts: 0,
                    dur: 120,
                    kind: EventKind::KernelEnd {
                        kernel: "fir".to_string(),
                        seq: 0,
                        cycles: 120,
                        detailed_insts: 640,
                        functional_insts: 0,
                        skipped: false,
                    },
                },
                TraceEvent {
                    ts: 8,
                    dur: 0,
                    kind: EventKind::CacheAccess {
                        level: CacheLevel::L1V,
                        hit: false,
                        evicted: true,
                    },
                },
                TraceEvent {
                    ts: 40,
                    dur: 0,
                    kind: EventKind::WatchdogAbort {
                        kind: AbortKind::Deadlock,
                        stuck_warps: 2,
                        detail: "w0 @barrier".to_string(),
                    },
                },
                TraceEvent {
                    ts: 64,
                    dur: 0,
                    kind: EventKind::OccupancySample { resident_warps: 12 },
                },
            ],
            dropped: 1,
        }
    }

    #[test]
    fn chrome_trace_has_events_and_metadata() {
        let out = chrome_trace_json(&sample_log());
        assert!(out.contains("\"traceEvents\""));
        assert!(out.contains("\"ph\": \"X\""));
        assert!(out.contains("\"ph\": \"i\""));
        assert!(out.contains("\"ph\": \"C\""));
        assert!(out.contains("\"dropped_events\": 1"));
        assert!(out.contains("watchdog_abort"));
        // Must parse back as JSON.
        let v: Value = serde_json::from_str(&out).unwrap();
        match v {
            Value::Object(fields) => {
                assert!(fields.iter().any(|(k, _)| k == "traceEvents"));
            }
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let out = jsonl(&sample_log());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 5); // header + 4 events
        for line in &lines {
            let _: Value = serde_json::from_str(line).unwrap();
        }
        assert!(lines[0].contains("\"schema_version\":2"));
        assert!(lines[2].contains("cache_access"));
        assert!(lines[4].contains("occupancy"));
    }

    #[test]
    fn empty_log_exports_cleanly() {
        let log = TraceLog::default();
        let chrome = chrome_trace_json(&log);
        assert!(chrome.contains("\"traceEvents\": []"));
        assert_eq!(jsonl(&log).lines().count(), 1);
    }
}
